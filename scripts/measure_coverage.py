"""Line-coverage measurement without coverage.py.

The container running local development has no ``coverage``/``pytest-cov``
install, but the CI workflow enforces a ``--cov-fail-under`` floor.  This
script measures the same quantity — executed lines / executable lines across
``src/repro`` — with a ``sys.settrace`` hook, so the floor recorded in the
workflow can be calibrated against a local run:

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

The denominator walks every compiled code object of every module file (the
same line universe ``coverage.py`` uses modulo exclusion pragmas), so the
number is directly comparable with pytest-cov's report, up to a point or two.
"""

from __future__ import annotations

import pathlib
import sys
import threading

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
PREFIX = str(SRC) + "/"

hits: dict[str, set[int]] = {}


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(PREFIX):
        # Never trace inside third-party frames: returning None here stops
        # line events for the whole call subtree, keeping overhead sane.
        return None
    if event == "line":
        hits.setdefault(filename, set()).add(frame.f_lineno)
    return _trace


def _executable_lines(path: pathlib.Path) -> set[int]:
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(ln for _, _, ln in obj.co_lines() if ln is not None)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


def main() -> int:
    import pytest

    sys.settrace(_trace)
    threading.settrace(_trace)
    rc = pytest.main(sys.argv[1:] or ["-q", "tests"])
    sys.settrace(None)
    threading.settrace(None)

    total = covered = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        executable = _executable_lines(path)
        got = hits.get(str(path), set()) & executable
        total += len(executable)
        covered += len(got)
        pct = 100.0 * len(got) / len(executable) if executable else 100.0
        rows.append((str(path.relative_to(SRC.parent)), len(got), len(executable), pct))

    width = max(len(name) for name, *_ in rows)
    for name, got, n, pct in rows:
        print(f"{name:<{width}}  {got:>5}/{n:<5}  {pct:6.2f}%")
    overall = 100.0 * covered / total if total else 100.0
    print(f"\nTOTAL  {covered}/{total}  {overall:.2f}%")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
