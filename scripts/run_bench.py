#!/usr/bin/env python
"""Benchmark runner: execute a set of experiments and emit a JSON snapshot.

The default **smoke** profile runs a small, representative slice of the
experiment registry — the backend ablation, the triangle-mode ablation and
the tiled-scaling experiment, plus one streaming workload — at a reduced
scale, so it finishes in minutes on a single CPU.  CI runs it on every push
and uploads ``BENCH_smoke.json`` as an artifact, which is what gives the
project a recorded performance trajectory over time.

Usage::

    PYTHONPATH=src python scripts/run_bench.py                 # smoke profile
    PYTHONPATH=src python scripts/run_bench.py --profile full  # every experiment
    PYTHONPATH=src python scripts/run_bench.py --experiments scaling backends \\
        --scale 0.25 --workers 2 --out my_bench.json

The full profile at scale 1.0 takes much longer (the paper-scale sweeps run
up to 64 K points per configuration); on a small container run it detached,
e.g. ``nohup python scripts/run_bench.py --profile full &``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    list_experiments,
    list_streaming_experiments,
    run_experiment,
    run_streaming_experiment,
)

#: experiment slice + scale that completes in minutes on one CPU.
SMOKE = {
    "experiments": ["backends", "sec6c", "scaling"],
    "streaming": ["stream-drift"],
    "scale": 0.5,
}

FULL = {
    "experiments": list_experiments(),
    "streaming": list_streaming_experiments(),
    "scale": 1.0,
}


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=("smoke", "full"), default="smoke",
                        help="experiment slice to run (default smoke)")
    parser.add_argument("--experiments", nargs="*", default=None, metavar="ID",
                        help="explicit experiment ids (overrides the profile slice)")
    parser.add_argument("--streaming", nargs="*", default=None, metavar="ID",
                        help="explicit streaming experiment ids (overrides the profile)")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset-size scale factor (default: profile's)")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep-cell parallelism via the ParallelMap executor")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_<profile>.json)")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    profile = SMOKE if args.profile == "smoke" else FULL
    experiments = args.experiments if args.experiments is not None else profile["experiments"]
    streaming = args.streaming if args.streaming is not None else profile["streaming"]
    scale = args.scale if args.scale is not None else profile["scale"]
    out = Path(args.out) if args.out else Path(f"BENCH_{args.profile}.json")

    started = time.time()
    payload: dict = {
        "meta": {
            "profile": args.profile,
            "scale": scale,
            "workers": args.workers,
            "repro_version": repro.__version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "started_unix": started,
        },
        "experiments": {},
        "streaming": {},
    }

    for exp_id in experiments:
        t0 = time.perf_counter()
        print(f"[bench] experiment {exp_id} (scale {scale}) ...", flush=True)
        records = run_experiment(exp_id, scale=scale, workers=args.workers)
        payload["experiments"][exp_id] = {
            "wall_seconds": time.perf_counter() - t0,
            "records": [r.as_dict() for r in records],
        }
        oks = sum(r.status == "ok" for r in records)
        print(f"[bench]   {len(records)} records ({oks} ok) "
              f"in {payload['experiments'][exp_id]['wall_seconds']:.1f}s", flush=True)

    for exp_id in streaming:
        t0 = time.perf_counter()
        print(f"[bench] streaming {exp_id} (scale {scale}) ...", flush=True)
        result = run_streaming_experiment(exp_id, scale=scale)
        payload["streaming"][exp_id] = {
            "wall_seconds": time.perf_counter() - t0,
            "result": result.as_dict(),
        }
        print(f"[bench]   {len(result.updates)} updates "
              f"in {payload['streaming'][exp_id]['wall_seconds']:.1f}s", flush=True)

    payload["meta"]["total_wall_seconds"] = time.time() - started
    out.write_text(json.dumps(payload, indent=2, default=float))
    print(f"[bench] wrote {out} ({payload['meta']['total_wall_seconds']:.1f}s total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
