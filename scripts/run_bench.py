#!/usr/bin/env python
"""Benchmark runner: execute a set of experiments and emit a JSON snapshot.

The default **smoke** profile runs a small, representative slice of the
experiment registry — the backend ablation, the triangle-mode ablation and
the tiled-scaling experiment, plus one streaming workload — at a reduced
scale, so it finishes in minutes on a single CPU.  CI runs it on every push
(with a wall-clock budget assertion, see ``--budget-file``) and uploads
``BENCH_smoke.json`` as an artifact, which is what gives the project a
recorded performance trajectory over time.

The **perf** profile measures *host* performance rather than simulated device
time: for every neighbour backend it runs RT-DBSCAN fits on the 50 K-point
blobs scaling ladder in fresh subprocesses and records wall-clock seconds,
peak RSS and the tracemalloc peak (the peak size of live Python/NumPy
intermediates).  Backends with a compiled implementation (``[native]`` in
``rt-dbscan list``) are measured twice per cell — once forced to pure numpy,
once on the cffi kernel tier — and the paired cells are emitted under
``perf.native_vs_numpy`` with their wall speedup and a proof that labels,
counts and simulated seconds are identical.  ``--budget-file`` gates those
speedups (``native_min_speedup`` / ``native_gate_min_n`` keys) in addition
to the smoke wall budget.  Passing ``--baseline older_BENCH_perf.json``
embeds the older records and per-configuration speedups, so successive
snapshots form a wall-clock trajectory.  Labels are recorded as a SHA-256
checksum and the simulated device seconds are carried verbatim, which is how
a snapshot *proves* that a host-side optimisation changed neither the
clustering output nor the cost-model accounting.

Usage::

    PYTHONPATH=src python scripts/run_bench.py                 # smoke profile
    PYTHONPATH=src python scripts/run_bench.py --profile full  # every experiment
    PYTHONPATH=src python scripts/run_bench.py --profile perf \\
        --baseline BENCH_perf.json --out BENCH_perf.json
    PYTHONPATH=src python scripts/run_bench.py --experiments scaling backends \\
        --scale 0.25 --workers 2 --out my_bench.json

The full profile at scale 1.0 takes much longer (the paper-scale sweeps run
up to 64 K points per configuration); on a small container run it detached,
e.g. ``nohup python scripts/run_bench.py --profile full &``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import resource
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.bench.experiments import (  # noqa: E402
    calibrate_eps,
    list_experiments,
    list_streaming_experiments,
    run_experiment,
    run_streaming_experiment,
)

#: experiment slice + scale that completes in minutes on one CPU.
SMOKE = {
    "experiments": ["backends", "sec6c", "scaling"],
    "streaming": ["stream-drift"],
    "scale": 0.5,
}

FULL = {
    "experiments": list_experiments(),
    "streaming": list_streaming_experiments(),
    "scale": 1.0,
}

#: the perf profile: host wall-clock / memory per backend on the blobs ladder.
PERF = {
    "dataset": "blobs",
    "sizes": (12_500, 25_000, 50_000),
    "backends": ("rt", "grid", "kdtree", "brute"),
    "min_pts": 10,
    "eps_quantile": 0.30,
    "seed": 2023,
}

#: backends measured on both kernel tiers (must match the registry's
#: ``native=True`` exact entries; since the parallel-tier PR that is every
#: perf backend — kdtree shares the compiled BVH DFS kernel.  The approximate
#: tier (lsh/sampled) is also native-capable, but its end-to-end wall is
#: dominated by tier-independent candidate generation, so its compiled
#: confirm pass is gated by the dedicated microbench below instead).
NATIVE_BACKENDS = ("rt", "grid", "kdtree", "brute")


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=("smoke", "full", "perf"), default="smoke",
                        help="experiment slice to run (default smoke)")
    parser.add_argument("--experiments", nargs="*", default=None, metavar="ID",
                        help="explicit experiment ids (overrides the profile slice)")
    parser.add_argument("--streaming", nargs="*", default=None, metavar="ID",
                        help="explicit streaming experiment ids (overrides the profile)")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset-size scale factor (default: profile's)")
    parser.add_argument("--workers", type=int, default=None,
                        help="sweep-cell parallelism via the ParallelMap executor")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_<profile>.json)")
    parser.add_argument("--baseline", default=None, metavar="JSON",
                        help="perf profile: older BENCH_perf.json to compare against")
    parser.add_argument("--perf-sizes", nargs="*", type=int, default=None, metavar="N",
                        help="perf profile: explicit ladder sizes (overrides --scale)")
    parser.add_argument("--budget-file", default=None, metavar="JSON",
                        help="smoke budget: JSON with smoke_seconds_seed and "
                             "smoke_budget_factor; exit 3 when the run exceeds "
                             "seed seconds x factor")
    parser.add_argument("--require-native", action="store_true",
                        help="perf profile: fail (exit 3) unless the native "
                             "tier built and produced paired cells — stops a "
                             "CI native job from passing vacuously when the "
                             "tier silently fell back to numpy")
    parser.add_argument("--perf-child", default=None, help=argparse.SUPPRESS)
    return parser.parse_args(argv)


# --------------------------------------------------------------------------- #
# Perf profile: one (backend, size) measurement per fresh subprocess so that
# peak RSS and tracemalloc peaks are attributable to a single configuration.
# --------------------------------------------------------------------------- #
def perf_child(config_json: str) -> int:
    """Measure one RT-DBSCAN fit; print a JSON record on stdout."""
    cfg = json.loads(config_json)

    from repro.data.registry import generate
    from repro.dbscan.rt_dbscan import RTDBSCAN

    points = generate(cfg["dataset"], cfg["n"], seed=cfg["seed"])
    clusterer = RTDBSCAN(
        eps=cfg["eps"], min_pts=cfg["min_pts"], backend=cfg["backend"],
        native=cfg.get("native"), native_threads=cfg.get("native_threads"),
    )

    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    result = clusterer.fit(points)
    wall = time.perf_counter() - t0
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    counts: dict[str, int] = {}
    if result.report is not None:
        for phase in result.report.phases:
            for key, value in phase.counts.as_dict().items():
                counts[key] = counts.get(key, 0) + int(value)

    # Report the thread count the dispatcher actually resolved for this cell,
    # so a snapshot read on another machine is self-describing.
    import contextlib

    from repro.native import dispatch as native_dispatch

    nk = native_dispatch.kernels() if cfg.get("native") else None
    if nk is None:
        resolved_threads = 1
    else:
        tctx = (
            native_dispatch.thread_override(cfg["native_threads"])
            if cfg.get("native_threads") is not None
            else contextlib.nullcontext()
        )
        with tctx:
            resolved_threads = nk.resolve_threads()

    record = {
        "backend": cfg["backend"],
        "dataset": cfg["dataset"],
        "n": cfg["n"],
        "eps": cfg["eps"],
        "min_pts": cfg["min_pts"],
        "kernel_tier": result.extra.get("kernel_tier", "numpy"),
        "native_threads": cfg.get("native_threads"),
        "resolved_threads": resolved_threads,
        "wall_seconds": wall,
        "ru_maxrss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
        "tracemalloc_peak_bytes": int(traced_peak),
        "num_clusters": result.num_clusters,
        "num_noise": result.num_noise,
        "labels_sha256": hashlib.sha256(
            result.labels.astype("int64").tobytes()
        ).hexdigest(),
        "simulated_seconds": (
            result.report.total_simulated_seconds if result.report else None
        ),
        "counts": counts,
    }
    print(json.dumps(record))
    return 0


def _run_perf_cell(cfg: dict) -> dict:
    """Run one perf measurement in a fresh subprocess and parse its record."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--perf-child", json.dumps(cfg)],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"perf child failed for {cfg['backend']}@{cfg['n']}")
    record = json.loads(proc.stdout.strip().splitlines()[-1])
    print(f"[bench]   {record['wall_seconds']:.1f}s wall, "
          f"{record['ru_maxrss_bytes'] / 2**20:.0f} MiB RSS, "
          f"{record['tracemalloc_peak_bytes'] / 2**20:.0f} MiB traced peak",
          flush=True)
    return record


def run_perf(args: argparse.Namespace, payload: dict) -> None:
    """Drive the perf ladder, one subprocess per (size, backend) cell."""
    import os

    from repro.data.registry import generate

    scale = args.scale if args.scale is not None else 1.0
    if args.perf_sizes:
        sizes = [int(s) for s in args.perf_sizes]
    else:
        sizes = [max(1_000, int(round(s * scale))) for s in PERF["sizes"]]
    payload["meta"]["perf_config"] = {
        **PERF, "sizes": sizes, "native_backends": NATIVE_BACKENDS,
    }
    # Probe the native tier once in the parent: the build lands in the shared
    # on-disk cache, so child processes load it instead of racing to compile.
    # When the tier is unavailable (no cffi / no compiler) the paired native
    # cells are skipped rather than re-measuring numpy twice.
    from repro.native import dispatch as native_dispatch

    pair_native = native_dispatch.available()
    if not pair_native:
        print(f"[bench] native tier unavailable "
              f"({native_dispatch.status()['fallback_reason']}); "
              f"running numpy cells only", flush=True)
    cpu_count = os.cpu_count() or 1
    payload["meta"]["cpu_count"] = cpu_count
    if pair_native:
        status = native_dispatch.status()
        payload["meta"]["native"] = {
            "variant": status["variant"],
            "openmp": status["openmp"],
            "max_threads": status["max_threads"],
        }

    records = []
    for n in sizes:
        points = generate(PERF["dataset"], n, seed=PERF["seed"])
        eps = calibrate_eps(points, PERF["min_pts"], PERF["eps_quantile"])
        for backend in PERF["backends"]:
            # Backends with a compiled path run the identical cell on both
            # kernel tiers; single-tier backends run pure numpy only.
            tiers = (False, True) if pair_native and backend in NATIVE_BACKENDS else (False,)
            for native in tiers:
                cfg = {
                    "dataset": PERF["dataset"], "n": n, "seed": PERF["seed"],
                    "eps": eps, "min_pts": PERF["min_pts"], "backend": backend,
                    "native": native,
                }
                tier = "native" if native else "numpy"
                print(f"[bench] perf {backend}@{n} [{tier}] (eps={eps:.5g}) ...",
                      flush=True)
                records.append(_run_perf_cell(cfg))
    payload["perf"] = {"records": records}

    # Paired numpy-vs-native cells: the native tier must prove byte-identical
    # labels, identical charged counts and identical simulated seconds; the
    # wall speedup is what the budget file gates.
    comparisons = []
    for rec in records:
        if rec["kernel_tier"] != "native":
            continue
        base = next(
            (b for b in records
             if b["backend"] == rec["backend"] and b["n"] == rec["n"]
             and b["kernel_tier"] == "numpy"),
            None,
        )
        if base is None:
            continue
        comparisons.append({
            "backend": rec["backend"],
            "n": rec["n"],
            "numpy_wall_seconds": base["wall_seconds"],
            "native_wall_seconds": rec["wall_seconds"],
            "wall_speedup": base["wall_seconds"] / max(rec["wall_seconds"], 1e-9),
            "labels_identical": base["labels_sha256"] == rec["labels_sha256"],
            "counts_identical": base["counts"] == rec["counts"],
            "simulated_seconds_identical": (
                base["simulated_seconds"] == rec["simulated_seconds"]
            ),
        })
    payload["perf"]["native_vs_numpy"] = comparisons
    for c in comparisons:
        print(f"[bench] native {c['backend']}@{c['n']}: "
              f"{c['wall_speedup']:.2f}x wall speedup, "
              f"labels_identical={c['labels_identical']}, "
              f"counts_identical={c['counts_identical']}", flush=True)

    # Thread-scaling curves: the largest ladder size on every native backend,
    # swept over an explicit thread axis.  Every cell must reproduce the
    # 1-thread bytes exactly (per-thread CSR fragments merge in query order);
    # the speedup-vs-1-thread column is what the budget file gates on
    # multi-core hosts.  On a serial build or a 1-core box the axis collapses
    # to [1], which still records an honest (1.0x) curve.
    if pair_native:
        nk = native_dispatch.kernels()
        max_threads = nk.openmp_max_threads() if nk.has_openmp else 1
        thread_axis = sorted({t for t in (1, 2, 4, max_threads) if 1 <= t <= max_threads})
        n_top = sizes[-1]
        points = generate(PERF["dataset"], n_top, seed=PERF["seed"])
        eps = calibrate_eps(points, PERF["min_pts"], PERF["eps_quantile"])
        scaling_records = []
        for backend in NATIVE_BACKENDS:
            cells = []
            for nthreads in thread_axis:
                print(f"[bench] perf {backend}@{n_top} [native, {nthreads}t] ...",
                      flush=True)
                cells.append(_run_perf_cell({
                    "dataset": PERF["dataset"], "n": n_top, "seed": PERF["seed"],
                    "eps": eps, "min_pts": PERF["min_pts"], "backend": backend,
                    "native": True, "native_threads": nthreads,
                }))
            base = cells[0]
            for nthreads, rec in zip(thread_axis, cells):
                scaling_records.append({
                    "backend": backend,
                    "n": n_top,
                    "threads": nthreads,
                    "resolved_threads": rec["resolved_threads"],
                    "wall_seconds": rec["wall_seconds"],
                    "speedup_vs_1_thread": (
                        base["wall_seconds"] / max(rec["wall_seconds"], 1e-9)
                    ),
                    "labels_identical": rec["labels_sha256"] == base["labels_sha256"],
                    "counts_identical": rec["counts"] == base["counts"],
                    "simulated_seconds_identical": (
                        rec["simulated_seconds"] == base["simulated_seconds"]
                    ),
                })
        payload["perf"]["thread_scaling"] = {
            "threads_axis": thread_axis,
            "max_threads": max_threads,
            "cpu_count": cpu_count,
            "records": scaling_records,
        }
        for r in scaling_records:
            print(f"[bench] threads {r['backend']}@{r['n']} x{r['threads']}: "
                  f"{r['speedup_vs_1_thread']:.2f}x vs 1 thread, "
                  f"labels_identical={r['labels_identical']}", flush=True)

        # The approximate tier's exact-distance confirm pass, isolated: the
        # lsh backend's end-to-end wall is dominated by tier-independent
        # candidate generation (hashing + pair dedupe grow superlinearly), so
        # pairing full lsh fits would measure the wrong thing.  This times
        # the confirm step alone — the numpy einsum path vs the compiled
        # pair kernel — on a deduped pair stream shaped like lsh's.
        import numpy as np

        rng = np.random.default_rng(PERF["seed"])
        r2 = eps * eps
        nq_mb = min(2048, n_top)
        per_q = min(64, n_top)
        points = np.ascontiguousarray(points)
        block = np.ascontiguousarray(points[:nq_mb])
        rep = np.repeat(np.arange(nq_mb, dtype=np.intp), per_q)
        raw = rng.integers(0, n_top, size=nq_mb * per_q)
        pair_key = np.unique(rep.astype(np.int64) * n_top + raw)
        rep_q = (pair_key // n_top).astype(np.intp)
        cand = (pair_key % n_top).astype(np.intp)
        cands_i64 = np.ascontiguousarray(cand, dtype=np.int64)
        pair_indptr = np.ascontiguousarray(
            np.searchsorted(rep_q, np.arange(nq_mb + 1)), dtype=np.int64
        )

        def numpy_confirm():
            d = block[rep_q] - points[cand]
            hit = np.einsum("ij,ij->i", d, d) <= r2
            hit &= rep_q != cand
            rc = np.bincount(rep_q[hit], minlength=nq_mb).astype(np.int64)
            return rc, cand[hit]

        def native_confirm():
            rc = np.zeros(nq_mb, dtype=np.int64)
            if not nk.confirm_pairs(block, 0, points, cands_i64, pair_indptr,
                                    r2, True, row_counts=rc):
                raise RuntimeError("confirm_pairs rejected the microbench arrays")
            indptr = np.zeros(nq_mb + 1, dtype=np.int64)
            np.cumsum(rc, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=np.intp)
            nk.confirm_pairs(block, 0, points, cands_i64, pair_indptr, r2,
                             True, indptr=indptr, indices=indices)
            return rc, indices

        rc_np, ix_np = numpy_confirm()
        rc_nat, ix_nat = native_confirm()
        identical = bool(
            np.array_equal(rc_np, rc_nat)
            and np.array_equal(ix_np.astype(np.int64), ix_nat.astype(np.int64))
        )

        def best_of(fn, reps=9):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        numpy_wall = best_of(numpy_confirm)
        native_wall = best_of(native_confirm)
        payload["perf"]["confirm_kernel"] = {
            "n_points": n_top,
            "queries": nq_mb,
            "pairs": int(rep_q.size),
            "hits": int(rc_np.sum()),
            "numpy_wall_seconds": numpy_wall,
            "native_wall_seconds": native_wall,
            "wall_speedup": numpy_wall / max(native_wall, 1e-12),
            "identical": identical,
        }
        print(f"[bench] confirm kernel: {rep_q.size} pairs, "
              f"{payload['perf']['confirm_kernel']['wall_speedup']:.2f}x wall "
              f"speedup, identical={identical}", flush=True)

    # Speedup-vs-agreement sweep of the approximate tier: every knob setting
    # of the lsh/sampled backends against the exact brute baseline, so the
    # perf snapshot records each approximate speedup next to its error bar.
    from repro.bench.experiments import run_approx_experiment
    from repro.bench.report import format_agreement_table

    print("[bench] perf approx agreement sweep ...", flush=True)
    approx_records = run_approx_experiment("approx", scale=scale)
    payload["perf"]["approx"] = [r.as_dict() for r in approx_records]
    print(format_agreement_table(
        approx_records,
        title="[bench] approximate tier: speedup vs agreement (baseline rt-dbscan@brute)",
    ), flush=True)

    # Multi-tenant serving: interleaved skewed feeds through the session
    # layer (micro-batching on) against a serial one-engine-per-tenant
    # baseline over the identical ensemble.
    from repro.bench.experiments import run_service_experiment

    print("[bench] perf multi-tenant service throughput ...", flush=True)
    svc = run_service_experiment()
    payload["perf"]["service"] = svc
    print(f"[bench]   {svc['num_tenants']} tenants x {svc['num_chunks_per_tenant']} "
          f"chunks: batching {svc['batching_factor']:.2f}x, "
          f"simulated speedup {svc['simulated_speedup_vs_serial']:.2f}x, "
          f"wall speedup {svc['wall_speedup_vs_serial']:.2f}x vs serial, "
          f"labels_match={svc['labels_match']}", flush=True)

    # Durability cost curve: checkpoint write / restore latency vs window
    # size, with the restore-parity bit that keeps the numbers honest.
    from repro.bench.experiments import run_recovery_experiment

    print("[bench] perf checkpoint write/restore latency ...", flush=True)
    rec = run_recovery_experiment()
    payload["perf"]["service_recovery"] = rec
    for row in rec["rows"]:
        print(f"[bench]   window={row['window']:<5} "
              f"bytes={row['checkpoint_bytes']:<7} "
              f"write={row['write_seconds'] * 1e3:.2f}ms "
              f"restore={row['restore_seconds'] * 1e3:.2f}ms "
              f"labels_match={row['labels_match']}", flush=True)

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        base_records = base.get("perf", {}).get("records", [])
        payload["perf"]["baseline"] = {
            "path": str(args.baseline),
            "records": base_records,
        }
        comparisons = []
        for rec in records:
            # Older snapshots predate the kernel-tier column; their records
            # are pure numpy, so only same-tier cells compare.
            match = next(
                (b for b in base_records
                 if b["backend"] == rec["backend"] and b["n"] == rec["n"]
                 and b.get("kernel_tier", "numpy") == rec.get("kernel_tier", "numpy")),
                None,
            )
            if match is None:
                continue
            comparisons.append({
                "backend": rec["backend"],
                "n": rec["n"],
                "kernel_tier": rec.get("kernel_tier", "numpy"),
                "wall_speedup": match["wall_seconds"] / max(rec["wall_seconds"], 1e-9),
                "rss_ratio": match["ru_maxrss_bytes"] / max(rec["ru_maxrss_bytes"], 1),
                "traced_peak_ratio": (
                    match["tracemalloc_peak_bytes"]
                    / max(rec["tracemalloc_peak_bytes"], 1)
                ),
                "labels_identical": match["labels_sha256"] == rec["labels_sha256"],
                "simulated_seconds_identical": (
                    match["simulated_seconds"] == rec["simulated_seconds"]
                ),
                "counts_identical": match["counts"] == rec["counts"],
            })
        payload["perf"]["vs_baseline"] = comparisons
        if comparisons:
            compared = {
                (c["backend"], c["n"], c["kernel_tier"]) for c in comparisons
            }
            total_base = sum(
                b["wall_seconds"] for b in base_records
                if (b["backend"], b["n"], b.get("kernel_tier", "numpy")) in compared
            )
            total_now = sum(
                r["wall_seconds"] for r in records
                if (r["backend"], r["n"], r.get("kernel_tier", "numpy")) in compared
            )
            payload["perf"]["overall_wall_speedup"] = total_base / max(total_now, 1e-9)
            print(f"[bench] overall wall speedup vs baseline: "
                  f"{payload['perf']['overall_wall_speedup']:.2f}x", flush=True)


def check_native_budget(args: argparse.Namespace, payload: dict) -> int:
    """Gate the perf profile's paired native cells against the budget file.

    Parity (identical labels, counts and simulated seconds) is a hard
    requirement on *every* paired cell regardless of size, and on every
    thread-scaling cell regardless of thread count.  The speedup floor
    (``native_min_speedup``, per backend) only applies to cells with at least
    ``native_gate_min_n`` points, so a scaled-down CI run is not falsely
    gated on warm-up-dominated small cells.  The multi-thread floor
    (``native_thread_scaling_min``, per backend) additionally requires the
    host to have at least ``threads_gate_min_cores`` cores.  Exit code 3
    mirrors the smoke budget check.
    """
    comparisons = payload.get("perf", {}).get("native_vs_numpy", [])
    scaling = payload.get("perf", {}).get("thread_scaling", {})
    scaling_records = scaling.get("records", [])
    failures = []
    if args.require_native and not comparisons:
        failures.append("--require-native set but no paired native cells ran "
                        "(tier unavailable or fell back to numpy)")
    for c in comparisons:
        if not (c["labels_identical"] and c["counts_identical"]
                and c["simulated_seconds_identical"]):
            failures.append(
                f"{c['backend']}@{c['n']}: native tier broke parity "
                f"(labels={c['labels_identical']}, counts={c['counts_identical']}, "
                f"simulated={c['simulated_seconds_identical']})"
            )
    confirm = payload.get("perf", {}).get("confirm_kernel")
    if confirm and not confirm["identical"]:
        failures.append(
            "confirm kernel: native output differs from the numpy confirm"
        )
    # Thread-count parity is unconditional: a multi-thread cell that differs
    # from the 1-thread bytes is a determinism bug, never a tuning matter.
    for r in scaling_records:
        if not (r["labels_identical"] and r["counts_identical"]
                and r["simulated_seconds_identical"]):
            failures.append(
                f"{r['backend']}@{r['n']} x{r['threads']}t: thread count broke "
                f"parity (labels={r['labels_identical']}, "
                f"counts={r['counts_identical']}, "
                f"simulated={r['simulated_seconds_identical']})"
            )
    if args.budget_file:
        budget = json.loads(Path(args.budget_file).read_text())
        floors = budget.get("native_min_speedup", {})
        gate_min_n = int(budget.get("native_gate_min_n", 50_000))
        for c in comparisons:
            floor = floors.get(c["backend"])
            if floor is None or c["n"] < gate_min_n:
                continue
            if c["wall_speedup"] < float(floor):
                failures.append(
                    f"{c['backend']}@{c['n']}: native speedup "
                    f"{c['wall_speedup']:.2f}x below the {float(floor):g}x floor"
                )
        confirm_floor = floors.get("confirm_pairs")
        if confirm and confirm_floor is not None:
            if confirm["wall_speedup"] < float(confirm_floor):
                failures.append(
                    f"confirm kernel: {confirm['wall_speedup']:.2f}x below "
                    f"the {float(confirm_floor):g}x floor"
                )
        # The multi-thread floor only binds on hosts with enough cores to
        # make it attainable (threads_gate_min_cores); a 1-core container
        # records an honest 1.0x curve without failing the gate.
        thread_floors = budget.get("native_thread_scaling_min", {})
        gate_min_cores = int(budget.get("threads_gate_min_cores", 4))
        cpu_count = int(scaling.get("cpu_count", 1))
        if cpu_count >= gate_min_cores:
            best = {}
            for r in scaling_records:
                if r["threads"] >= 2 and r["n"] >= gate_min_n:
                    key = (r["backend"], r["n"])
                    best[key] = max(best.get(key, 0.0), r["speedup_vs_1_thread"])
            for backend, floor in thread_floors.items():
                cells = {k: v for k, v in best.items() if k[0] == backend}
                if not cells and scaling_records:
                    failures.append(
                        f"{backend}: no multi-thread scaling cell at "
                        f">={gate_min_n} points despite {cpu_count} cores"
                    )
                for (b, n), speedup in cells.items():
                    if speedup < float(floor):
                        failures.append(
                            f"{b}@{n}: thread scaling {speedup:.2f}x below "
                            f"the {float(floor):g}x multi-thread floor"
                        )
    if failures:
        for line in failures:
            print(f"[bench] NATIVE BUDGET FAILED: {line}", file=sys.stderr)
        return 3
    if comparisons:
        print(f"[bench] native tier: {len(comparisons)} paired cells, "
              "parity held on all of them")
    if scaling_records:
        print(f"[bench] thread scaling: {len(scaling_records)} cells, "
              "thread-count parity held on all of them")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    if args.perf_child is not None:
        return perf_child(args.perf_child)

    started = time.time()
    scale = args.scale
    payload: dict = {
        "meta": {
            "profile": args.profile,
            "scale": scale,
            "workers": args.workers,
            "repro_version": repro.__version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "started_unix": started,
        },
        "experiments": {},
        "streaming": {},
    }

    if args.profile == "perf":
        out = Path(args.out) if args.out else Path("BENCH_perf.json")
        run_perf(args, payload)
        payload["meta"]["total_wall_seconds"] = time.time() - started
        out.write_text(json.dumps(payload, indent=2, default=float))
        print(f"[bench] wrote {out} ({payload['meta']['total_wall_seconds']:.1f}s total)")
        return check_native_budget(args, payload)

    profile = SMOKE if args.profile == "smoke" else FULL
    experiments = args.experiments if args.experiments is not None else profile["experiments"]
    streaming = args.streaming if args.streaming is not None else profile["streaming"]
    scale = args.scale if args.scale is not None else profile["scale"]
    payload["meta"]["scale"] = scale
    out = Path(args.out) if args.out else Path(f"BENCH_{args.profile}.json")

    for exp_id in experiments:
        t0 = time.perf_counter()
        print(f"[bench] experiment {exp_id} (scale {scale}) ...", flush=True)
        records = run_experiment(exp_id, scale=scale, workers=args.workers)
        payload["experiments"][exp_id] = {
            "wall_seconds": time.perf_counter() - t0,
            "records": [r.as_dict() for r in records],
        }
        oks = sum(r.status == "ok" for r in records)
        print(f"[bench]   {len(records)} records ({oks} ok) "
              f"in {payload['experiments'][exp_id]['wall_seconds']:.1f}s", flush=True)

    for exp_id in streaming:
        t0 = time.perf_counter()
        print(f"[bench] streaming {exp_id} (scale {scale}) ...", flush=True)
        result = run_streaming_experiment(exp_id, scale=scale)
        payload["streaming"][exp_id] = {
            "wall_seconds": time.perf_counter() - t0,
            "result": result.as_dict(),
        }
        print(f"[bench]   {len(result.updates)} updates "
              f"in {payload['streaming'][exp_id]['wall_seconds']:.1f}s", flush=True)

    payload["meta"]["total_wall_seconds"] = time.time() - started
    out.write_text(json.dumps(payload, indent=2, default=float))
    print(f"[bench] wrote {out} ({payload['meta']['total_wall_seconds']:.1f}s total)")

    if args.budget_file:
        budget = json.loads(Path(args.budget_file).read_text())
        seed_seconds = float(budget["smoke_seconds_seed"])
        factor = float(budget.get("smoke_budget_factor", 2.0))
        limit = seed_seconds * factor
        total = payload["meta"]["total_wall_seconds"]
        if total > limit:
            print(f"[bench] BUDGET EXCEEDED: {total:.1f}s > {limit:.1f}s "
                  f"({seed_seconds:.1f}s seed x {factor:g})", file=sys.stderr)
            return 3
        print(f"[bench] within budget: {total:.1f}s <= {limit:.1f}s "
              f"({seed_seconds:.1f}s seed x {factor:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
