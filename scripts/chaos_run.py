#!/usr/bin/env python
"""Seeded chaos driver for the durable serving layer.

Drives a real :class:`ClusteringService` (state dir on disk, fault injector
armed on the live code paths) through a deterministic, seed-derived schedule
of injected failures — worker exceptions, slow updates, disk-write errors,
torn checkpoints, sweeper faults — interleaved with evictions, restores and
checkpoints, and asserts the graceful-degradation contract after every
round:

* a fault never hangs a drain: every submitted request is answered;
* a failing update poisons only its own session (typed error reply), the
  other tenants' feeds keep flowing;
* a torn checkpoint is quarantined and the tenant starts fresh — restore
  never crashes the pool;
* healthy tenants' labels stay bit-identical to a monolithic
  :class:`StreamingRTDBSCAN` replay of the same feed;
* the pool leaks nothing: at exit every session is closed and no temp
  files remain in the state dir.

The final Prometheus metrics snapshot is written to ``--out`` so CI can
upload it as an artifact (``rt-dbscan`` SLO counters after a seeded storm).

Usage::

    python scripts/chaos_run.py --seed 0 --out chaos-metrics.txt
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ClustererSpec  # noqa: E402
from repro.service import (  # noqa: E402
    ClusteringService,
    FaultInjector,
    Request,
    ServiceConfig,
)
from repro.streaming import StreamingRTDBSCAN  # noqa: E402

EPS, MIN_PTS, WINDOW = 0.4, 5, 240

#: The fault matrix one seeded storm draws from.  (site, kwargs) pairs —
#: every entry is exercised with probability drawn from the run's rng.
FAULT_MATRIX = [
    ("session.update", {}),                                  # worker raises
    ("session.update", {"delay_s": 0.01}),                   # slow update
    ("store.write", {"error": OSError(28, "No space left on device")}),
    ("store.corrupt", {"corrupt": "truncate"}),              # torn checkpoint
    ("store.corrupt", {"corrupt": "flip"}),                  # bit rot
    ("sweep", {}),                                           # sweeper fault
]


def make_feeds(rng: np.random.Generator, tenants: int, chunks: int) -> dict:
    feeds = {}
    for i in range(tenants):
        centre = rng.uniform(-1, 1, size=3)
        feeds[f"tenant-{i}"] = [
            centre + rng.normal(scale=0.3, size=(40, 3)) for _ in range(chunks)
        ]
    return feeds


def reference_labels(chunks: list) -> list:
    with StreamingRTDBSCAN(eps=EPS, min_pts=MIN_PTS, window=WINDOW) as engine:
        for chunk in chunks:
            engine.update(chunk)
        return engine.result().labels.tolist()


async def storm(seed: int, tenants: int, chunks: int, state_dir: str) -> tuple[str, dict]:
    rng = np.random.default_rng(seed)
    feeds = make_feeds(rng, tenants, chunks)
    faults = FaultInjector()
    config = ServiceConfig(
        spec=ClustererSpec(algo="streaming-rt-dbscan", eps=EPS, min_pts=MIN_PTS,
                           params={"window": WINDOW}),
        state_dir=state_dir,
        checkpoint_interval_s=None,  # the storm checkpoints explicitly
        session_ttl_s=None,
    )
    poisoned: set[str] = set()
    # Continuity tracking: an evicted tenant whose spill or restore was hit
    # by a store fault comes back *fresh* (quarantined checkpoint, counted
    # drop) — graceful, but its window restarts.  Parity is then asserted
    # against a monolithic replay from the reset round, not the whole feed.
    start_round = {tenant: 0 for tenant in feeds}
    pending_reset: set[str] = set()
    report = {"seed": seed, "faults_armed": 0, "evictions": 0,
              "checkpoints": 0, "resets": 0}

    async def ingest_with_drain(service, tenant, chunk):
        """Submit one chunk; busy means retry after letting workers run."""
        while True:
            response = await service.submit(Request.ingest(tenant, chunk))
            if response.ok:
                return response
            if response.busy:
                await asyncio.sleep(0)
                continue
            return response  # typed error: the session failed — record it

    async with ClusteringService(config, faults=faults) as service:
        for round_no in range(chunks):
            # Seed-derived fault schedule: arm ~one fault every other round.
            if rng.random() < 0.5:
                site, kwargs = FAULT_MATRIX[rng.integers(len(FAULT_MATRIX))]
                faults.arm(site, times=1, **kwargs)
                report["faults_armed"] += 1
            for tenant, feed in feeds.items():
                response = await ingest_with_drain(service, tenant, feed[round_no])
                if not response.ok:
                    poisoned.add(tenant)
                elif tenant in pending_reset:
                    pending_reset.discard(tenant)
                    if not response.body.get("session_restored"):
                        start_round[tenant] = round_no
                        report["resets"] += 1
            # Exercise spill/restore mid-storm: evict a random healthy
            # tenant (spills unless the store faults) — its next ingest
            # restores from disk or starts fresh; both must be graceful.
            if round_no and rng.random() < 0.4:
                victim = f"tenant-{rng.integers(tenants)}"
                if victim not in poisoned:
                    drain = await service.submit(Request.query_labels(victim))
                    if drain.ok:
                        service.sessions.evict(victim, reason="chaos")
                        pending_reset.add(victim)
                        report["evictions"] += 1
            if rng.random() < 0.3:
                await service.checkpoint(drain=False)
                report["checkpoints"] += 1

        # Every request answered, storm over: now verify the survivors.
        parity_checked = 0
        for tenant, feed in feeds.items():
            response = await service.submit(Request.query_labels(tenant))
            if tenant in poisoned:
                assert not response.ok, f"poisoned {tenant} answered ok"
                continue
            # A tenant that failed only *after* its last ingest acked still
            # reports the poisoning here — that is graceful, not silent.
            if not response.ok:
                poisoned.add(tenant)
                continue
            assert response.body["labels"] == reference_labels(
                feed[start_round[tenant]:]
            ), (
                f"{tenant}: labels diverged from the monolithic replay "
                f"(seed={seed}, start_round={start_round[tenant]})"
            )
            parity_checked += 1
        report["poisoned"] = sorted(poisoned)
        report["parity_checked"] = parity_checked
        assert parity_checked + len(poisoned) == tenants
        text = service.metrics.render_prometheus(
            service._clock(), num_sessions=len(service.sessions)
        )

    # Leak checks: the pool is closed, nothing half-written remains.
    assert len(service.sessions) == 0, "sessions leaked past aclose()"
    assert not list(Path(state_dir).glob("*.tmp")), "temp checkpoint leaked"
    return text, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="storm seed")
    parser.add_argument("--tenants", type=int, default=6)
    parser.add_argument("--chunks", type=int, default=8, help="rounds per tenant")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the final Prometheus metrics snapshot here")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="checkpoint directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="rtdbscan-chaos-") as tmp:
        state_dir = args.state_dir or tmp
        text, report = asyncio.run(
            storm(args.seed, args.tenants, args.chunks, state_dir)
        )

    print(f"[chaos] seed={report['seed']}: {report['faults_armed']} faults armed, "
          f"{report['evictions']} evictions, {report['checkpoints']} checkpoints, "
          f"{report['resets']} fresh restarts")
    print(f"[chaos] poisoned={report['poisoned']} "
          f"parity_checked={report['parity_checked']}")
    if args.out:
        Path(args.out).write_text(text)
        print(f"[chaos] metrics snapshot -> {args.out}")
    print("[chaos] ok: every fault degraded gracefully, survivors bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
