#!/usr/bin/env python
"""Run every registered experiment and print a compact paper-vs-measured summary.

Used to fill in EXPERIMENTS.md.  Scale defaults to the benchmark default
(0.5x the already-scaled experiment sizes); pass a float argument to change it.
"""

from __future__ import annotations

import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.runner import speedup_series


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    for exp_id, spec in EXPERIMENTS.items():
        records = run_experiment(exp_id, scale=scale)
        vary = "eps" if spec.mode == "eps_sweep" else "num_points"
        print(f"\n### {exp_id} ({spec.paper_ref}) dataset={spec.dataset} minPts={spec.min_pts} scale={scale}")
        for target in [a for a in spec.algorithms if a != spec.baseline]:
            series = speedup_series(records, baseline=spec.baseline, target=target, key=vary)
            series.sort(key=lambda s: s[vary])
            parts = [f"{s[vary]:g}:{s['speedup']:.2f}x" for s in series]
            print(f"  {target} vs {spec.baseline}: " + "  ".join(parts))
        for r in records:
            if r.status != "ok":
                print(f"  {r.algorithm} n={r.num_points} eps={r.eps:g}: {r.status.upper()}")
        if spec.mode == "breakdown":
            for r in records:
                if r.status == "ok":
                    total = r.simulated_seconds
                    bd = ", ".join(f"{k}={v*1e3:.3f}ms({100*v/total:.0f}%)" for k, v in r.breakdown.items())
                    print(f"  {r.algorithm}: total={total*1e3:.3f}ms  {bd}")


if __name__ == "__main__":
    main()
