"""Metamorphic invariances of the exact DBSCAN pipeline.

Hypothesis-driven checks that the transformations DBSCAN is mathematically
invariant under really do leave every exact backend's output unchanged:

* permuting the points permutes the labelling (DBSCAN-equivalent under the
  inverse permutation);
* rigid motions (translation, rotation) leave the labelling
  DBSCAN-equivalent;
* co-scaling coordinates and eps by a power of two leaves the labels
  bit-identical (power-of-two scaling commutes with float rounding);
* duplicating a point never demotes a core point.

Strategies draw small integers (seeds, indices, exponents) and build the
datasets deterministically from them — never raw float arrays — so examples
shrink well and replay exactly.  Rotation and translation perturb distances
at the 1e-15 relative scale, so eps is placed at the midpoint of the largest
gap in the realised pairwise-distance distribution: no distance sits near
the threshold and the invariance cannot flake on rounding.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import make_blobs
from repro.dbscan.params import DBSCANResult
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.metrics.agreement import compare_results

EXACT_BACKENDS = ("rt", "grid", "kdtree", "brute")
MIN_PTS = 5

backends = st.sampled_from(EXACT_BACKENDS)
seeds = st.integers(min_value=0, max_value=2**16)


def _dataset(seed: int, n: int = 120) -> np.ndarray:
    pts, _ = make_blobs(n, centers=3, std=0.3, seed=seed)
    return np.asarray(pts, dtype=np.float64)


def _margin_eps(pts: np.ndarray) -> float:
    """eps at the midpoint of the largest pairwise-distance gap.

    Restricted to the lower quantiles of the distance distribution so the
    neighbourhood size stays in a DBSCAN-interesting regime; the midpoint of
    the widest gap maximises the margin between eps and any realised
    distance, making rigid-motion invariance immune to float perturbation.
    """
    diffs = pts[:, None, :] - pts[None, :, :]
    d = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    d = np.sort(d[np.triu_indices(pts.shape[0], k=1)])
    band = d[(d >= np.quantile(d, 0.01)) & (d <= np.quantile(d, 0.25))]
    gaps = np.diff(band)
    i = int(np.argmax(gaps))
    return float((band[i] + band[i + 1]) / 2.0)


def _fit(pts: np.ndarray, eps: float, backend: str) -> DBSCANResult:
    return RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend).fit(pts)


def _rotation(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s], [s, c]])


class TestRigidMotionInvariance:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, backend=backends, k=st.integers(min_value=1, max_value=12))
    def test_translation_and_rotation_preserve_clustering(self, seed, backend, k):
        pts = _dataset(seed)
        eps = _margin_eps(pts)
        base = _fit(pts, eps, backend)
        angle = 2.0 * np.pi * k / 13.0
        shift = np.array([17.25, -3.5])
        moved = pts @ _rotation(angle).T + shift
        transformed = _fit(moved, eps, backend)
        report = compare_results(base, transformed, points=pts)
        assert report.equivalent, report.as_dict()
        assert report.ari == 1.0


class TestScaleInvariance:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, backend=backends, exponent=st.integers(min_value=-3, max_value=4))
    def test_power_of_two_coscaling_is_bit_exact(self, seed, backend, exponent):
        pts = _dataset(seed)
        eps = _margin_eps(pts)
        base = _fit(pts, eps, backend)
        factor = 2.0**exponent
        scaled = _fit(pts * factor, eps * factor, backend)
        np.testing.assert_array_equal(scaled.labels, base.labels)
        np.testing.assert_array_equal(scaled.core_mask, base.core_mask)
        np.testing.assert_array_equal(scaled.neighbor_counts, base.neighbor_counts)


class TestPermutationInvariance:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, backend=backends, perm_seed=seeds)
    def test_point_order_does_not_matter(self, seed, backend, perm_seed):
        pts = _dataset(seed)
        eps = _margin_eps(pts)
        base = _fit(pts, eps, backend)
        perm = np.random.default_rng(perm_seed).permutation(pts.shape[0])
        permuted = _fit(pts[perm], eps, backend)
        # Map the permuted labelling back to the original point order and
        # compare as two results over the same points.
        labels = np.empty_like(permuted.labels)
        labels[perm] = permuted.labels
        core_mask = np.empty_like(permuted.core_mask)
        core_mask[perm] = permuted.core_mask
        unpermuted = DBSCANResult(
            labels=labels, core_mask=core_mask, params=permuted.params,
            algorithm=permuted.algorithm,
        )
        report = compare_results(base, unpermuted, points=pts)
        assert report.equivalent, report.as_dict()
        np.testing.assert_array_equal(core_mask, base.core_mask)


class TestMonotonicityUnderDuplication:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, backend=backends, data=st.data())
    def test_duplicating_a_point_never_demotes_a_core_point(self, seed, backend, data):
        pts = _dataset(seed)
        eps = _margin_eps(pts)
        base = _fit(pts, eps, backend)
        idx = data.draw(st.integers(min_value=0, max_value=pts.shape[0] - 1))
        augmented = _fit(np.vstack([pts, pts[idx]]), eps, backend)
        # Adding a point can only grow neighbourhoods: every original core
        # point must still be core, and no original core point may become
        # noise.
        was_core = base.core_mask
        assert np.all(augmented.core_mask[: pts.shape[0]][was_core])
        assert not np.any(augmented.labels[: pts.shape[0]][was_core] < 0)

    @pytest.mark.parametrize("backend", EXACT_BACKENDS)
    def test_duplicated_point_gets_its_twin_label(self, backend):
        pts = _dataset(99)
        eps = _margin_eps(pts)
        augmented = _fit(np.vstack([pts, pts[:4]]), eps, backend)
        twins = augmented.labels[pts.shape[0] :]
        originals = augmented.labels[:4]
        # A duplicate is at distance zero from its twin; whenever the twin
        # is a core point the duplicate must join its cluster.
        for twin, orig, core in zip(twins, originals, augmented.core_mask[:4]):
            if core:
                assert twin == orig
