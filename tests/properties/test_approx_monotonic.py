"""Monotonicity contract of the approximate tier.

Two families of guarantees, matching the docstring of
:mod:`repro.neighbors.approx`:

* **Structural** (exact, hypothesis-verified): with a fixed seed the probe
  tables / sample sets are nested across knob settings, so the discovered
  ε-pair set grows monotonically with the knob, and every reported pair is a
  true ε-pair (perfect precision).
* **Empirical** (fixed seeded dataset): walking each backend's knob ladder
  upward never decreases the measured ARI against the exact reference, and
  at the maximum setting both backends are DBSCAN-equivalent (indeed
  bit-identical) to the brute oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjacency import csr_row_ids
from repro.api.registry import make_backend
from repro.data.synthetic import make_blobs
from repro.dbscan.rt_dbscan import rt_dbscan
from repro.metrics.agreement import compare_results
from repro.metrics.ari import adjusted_rand_index

EPS = 0.25
MIN_PTS = 10

# The fixed seeded dataset of the empirical ladder: dense enough that the
# weakest knob settings visibly disagree with the exact clustering.
POINTS = np.asarray(make_blobs(1500, centers=6, std=0.25, seed=42)[0])

seeds = st.integers(min_value=0, max_value=2**16)


def _pair_set(backend) -> set[tuple[int, int]]:
    indptr, indices, _ = backend.neighbor_csr()
    return set(zip(csr_row_ids(indptr).tolist(), indices.tolist()))


class TestStructuralMonotonicity:
    @settings(max_examples=6, deadline=None)
    @given(seed=seeds, data_seed=seeds)
    def test_lsh_edge_set_grows_with_probe_count(self, seed, data_seed):
        pts = np.asarray(make_blobs(400, centers=4, std=0.3, seed=data_seed)[0])
        previous: set | None = None
        for probes in (1, 2, 4, 8):
            backend = make_backend(
                "lsh", pts, EPS, num_probes=probes, width_factor=1.5, seed=seed
            )
            try:
                pairs = _pair_set(backend)
            finally:
                backend.release()
            if previous is not None:
                assert previous <= pairs
            previous = pairs

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds, data_seed=seeds)
    def test_sampled_pool_is_nested_across_rates(self, seed, data_seed):
        pts = np.asarray(make_blobs(300, centers=3, std=0.3, seed=data_seed)[0])
        previous: set | None = None
        for rate in (0.2, 0.5, 0.8, 1.0):
            backend = make_backend("sampled", pts, EPS, sample_rate=rate, seed=seed)
            try:
                sample = set(backend.sample.tolist())
            finally:
                backend.release()
            if previous is not None:
                assert previous <= sample
            previous = sample

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds, backend_name=st.sampled_from(["lsh", "sampled"]))
    def test_every_reported_pair_is_a_true_eps_pair(self, seed, backend_name):
        pts = np.asarray(make_blobs(300, centers=3, std=0.3, seed=seed)[0])
        backend = make_backend(backend_name, pts, EPS, seed=seed)
        try:
            indptr, indices, _ = backend.neighbor_csr()
            rows = csr_row_ids(indptr)
            d = np.linalg.norm(backend.points[rows] - backend.points[indices], axis=1)
        finally:
            backend.release()
        assert np.all(d <= EPS)


class TestEmpiricalARILadder:
    LADDERS = {
        "lsh": ("recall_target", (0.3, 0.6, 0.9, 1.0)),
        "sampled": ("sample_rate", (0.25, 0.5, 0.75, 1.0)),
    }

    @pytest.mark.parametrize("backend_name", sorted(LADDERS))
    def test_raising_the_knob_never_decreases_ari(self, backend_name):
        exact = rt_dbscan(POINTS, eps=EPS, min_pts=MIN_PTS, backend="brute")
        knob, ladder = self.LADDERS[backend_name]
        aris = []
        for value in ladder:
            approx = rt_dbscan(
                POINTS, eps=EPS, min_pts=MIN_PTS, backend=backend_name,
                backend_kwargs={knob: value, "seed": 0},
            )
            aris.append(adjusted_rand_index(approx.labels, exact.labels))
        for weaker, stronger in zip(aris, aris[1:]):
            assert stronger >= weaker - 1e-12, aris
        assert aris[-1] == 1.0

    @pytest.mark.parametrize("backend_name,knob", [("lsh", "recall_target"),
                                                   ("sampled", "sample_rate")])
    def test_max_knob_is_bit_identical_to_brute(self, backend_name, knob):
        exact = rt_dbscan(POINTS, eps=EPS, min_pts=MIN_PTS, backend="brute")
        approx = rt_dbscan(
            POINTS, eps=EPS, min_pts=MIN_PTS, backend=backend_name,
            backend_kwargs={knob: 1.0},
        )
        np.testing.assert_array_equal(approx.labels, exact.labels)
        np.testing.assert_array_equal(approx.core_mask, exact.core_mask)
        np.testing.assert_array_equal(approx.neighbor_counts, exact.neighbor_counts)
        report = compare_results(exact, approx, points=POINTS)
        assert report.equivalent, report.as_dict()
