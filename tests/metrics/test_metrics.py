"""Tests for the clustering metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbscan.params import DBSCANParams, DBSCANResult
from repro.metrics.agreement import compare_results, core_partitions_equal, labels_equivalent
from repro.metrics.ari import (
    adjusted_rand_index,
    contingency_matrix,
    pair_confusion_matrix,
    rand_index,
)

labelings = st.lists(st.integers(min_value=-1, max_value=4), min_size=2, max_size=40)


class TestARI:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1, 2, -1])
        assert adjusted_rand_index(labels, labels) == 1.0
        assert rand_index(labels, labels) == 1.0

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == 1.0

    def test_completely_split_vs_merged(self):
        a = np.zeros(10, dtype=int)
        b = np.arange(10)
        assert adjusted_rand_index(a, b) == pytest.approx(0.0)

    def test_known_value(self):
        # Classic example: ARI is symmetric and below 1 for partial agreement.
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        val = adjusted_rand_index(a, b)
        assert 0.0 < val < 1.0
        assert val == pytest.approx(adjusted_rand_index(b, a))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([0, 1]), np.array([0, 1, 2]))

    def test_contingency_matrix_sums_to_n(self):
        a = np.array([0, 0, 1, 1, -1])
        b = np.array([1, 1, 0, -1, -1])
        assert contingency_matrix(a, b).sum() == 5

    def test_pair_confusion_total(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert pair_confusion_matrix(a, b).sum() == 4 * 3

    @given(labels=labelings)
    @settings(max_examples=100, deadline=None)
    def test_property_self_agreement(self, labels):
        arr = np.asarray(labels)
        assert adjusted_rand_index(arr, arr) == 1.0

    @given(labels=labelings, shift=st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_property_invariant_to_relabeling(self, labels, shift):
        arr = np.asarray(labels)
        relabeled = np.where(arr >= 0, (arr + shift) % 6 + 10, arr)
        assert adjusted_rand_index(arr, relabeled) == pytest.approx(1.0)


def _make_result(labels, core, eps=0.5, min_pts=3):
    return DBSCANResult(
        labels=np.asarray(labels),
        core_mask=np.asarray(core, dtype=bool),
        params=DBSCANParams(eps, min_pts),
    )


class TestAgreement:
    def test_identical_results_equivalent(self):
        a = _make_result([0, 0, 1, -1], [True, True, True, False])
        b = _make_result([0, 0, 1, -1], [True, True, True, False])
        report = compare_results(a, b)
        assert report.equivalent
        assert report.ari == 1.0

    def test_different_core_masks_not_equivalent(self):
        a = _make_result([0, 0, 1, -1], [True, True, True, False])
        b = _make_result([0, 0, 1, -1], [True, False, True, False])
        assert not compare_results(a, b).equivalent

    def test_core_partition_mismatch_detected(self):
        a = _make_result([0, 0, 1, 1], [True, True, True, True])
        b = _make_result([0, 0, 0, 0], [True, True, True, True])
        report = compare_results(a, b)
        assert not report.core_partition_equal
        assert not report.equivalent

    def test_border_tie_breaking_allowed(self):
        # Point 2 is a border point between two clusters; the two results
        # assign it differently, which is still DBSCAN-equivalent.
        pts = np.array([[0.0, 0.0], [0.4, 0.0], [0.2, 0.0], [1.0, 1.0]])
        core = [True, True, False, False]
        a = _make_result([0, 1, 0, -1], core, eps=0.25)
        b = _make_result([0, 1, 1, -1], core, eps=0.25)
        report = compare_results(a, b, points=pts)
        assert report.core_mask_equal and report.noise_mask_equal
        assert report.core_partition_equal
        assert report.border_assignment_valid
        assert report.equivalent

    def test_invalid_border_assignment_detected(self):
        # Border point assigned to a cluster with no core point within eps.
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.1, 0.0], [10.1, 0.0]])
        core = [True, True, False, False]
        good = _make_result([0, 1, 0, 1], core, eps=0.25)
        bad = _make_result([0, 1, 1, 0], core, eps=0.25)
        assert compare_results(good, good, points=pts).equivalent
        assert not compare_results(good, bad, points=pts).border_assignment_valid

    def test_core_partitions_equal_requires_bijection(self):
        core = np.array([True, True, True])
        assert core_partitions_equal([0, 0, 1], [5, 5, 7], core)
        assert not core_partitions_equal([0, 0, 1], [5, 6, 7], core)
        assert not core_partitions_equal([0, 1, 1], [5, 5, 5], core)

    def test_labels_equivalent_shorthand(self):
        a = _make_result([0, -1], [True, False])
        b = _make_result([0, -1], [True, False])
        assert labels_equivalent(a, b)
