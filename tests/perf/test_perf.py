"""Tests for the device cost model, phase timing and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.cost_model import DEFAULT_COST_MODEL, DeviceCostModel, OpCounts
from repro.perf.memory import DeviceMemoryError, MemoryTracker, estimate_adjacency_bytes
from repro.perf.timing import ExecutionReport, Phase, PhaseTimer


class TestOpCounts:
    def test_merge_adds_fields(self):
        a = OpCounts(rt_node_visits=10, union_ops=2)
        b = OpCounts(rt_node_visits=5, distance_computations=7)
        a.merge(b)
        assert a.rt_node_visits == 15
        assert a.distance_computations == 7
        assert a.union_ops == 2

    def test_as_dict_roundtrip(self):
        c = OpCounts(anyhit_calls=3)
        assert c.as_dict()["anyhit_calls"] == 3


class TestDeviceCostModel:
    def test_calibration_ratios(self):
        m = DEFAULT_COST_MODEL
        # Paper Section V-D: OptiX build ~2-2.5x the plain build; RT traversal
        # about an order of magnitude cheaper per node than shader traversal.
        assert 1.5 <= m.rt_build_per_prim_ns / m.sm_build_per_prim_ns <= 3.0
        assert 5.0 <= m.sm_node_visit_ns / m.rt_node_visit_ns <= 20.0
        assert m.anyhit_call_ns > m.intersection_call_ns

    def test_time_is_linear_in_counts(self):
        m = DEFAULT_COST_MODEL
        one = m.time_s(OpCounts(sm_node_visits=1000))
        two = m.time_s(OpCounts(sm_node_visits=2000))
        assert two == pytest.approx(2 * one)

    def test_build_time_rt_includes_setup(self):
        m = DEFAULT_COST_MODEL
        rt = m.build_time_s(0, unit="rt")
        sm = m.build_time_s(0, unit="sm")
        assert rt > sm
        assert rt == pytest.approx((m.rt_setup_ns + m.kernel_launch_ns) * 1e-9)

    def test_build_time_monotone_in_size(self):
        m = DEFAULT_COST_MODEL
        assert m.build_time_s(2_000_000) > m.build_time_s(1_000_000)

    def test_rt_build_more_expensive_per_prim_but_cheaper_traversal(self):
        m = DEFAULT_COST_MODEL
        n = 1_000_000
        assert m.build_time_s(n, unit="rt") > m.build_time_s(n, unit="sm")
        visits = OpCounts(rt_node_visits=10**7)
        sm_visits = OpCounts(sm_node_visits=10**7)
        assert m.time_s(visits) < m.time_s(sm_visits)

    def test_with_overrides(self):
        m = DEFAULT_COST_MODEL.with_overrides(rt_node_visit_ns=123.0)
        assert m.rt_node_visit_ns == 123.0
        assert m.sm_node_visit_ns == DEFAULT_COST_MODEL.sm_node_visit_ns

    @given(
        visits=st.integers(min_value=0, max_value=10**9),
        calls=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=50, deadline=None)
    def test_time_non_negative_and_monotone(self, visits, calls):
        m = DEFAULT_COST_MODEL
        t = m.time_s(OpCounts(rt_node_visits=visits, intersection_calls=calls))
        t_more = m.time_s(OpCounts(rt_node_visits=visits + 1, intersection_calls=calls))
        assert t >= 0
        assert t_more >= t


class TestMemoryTracker:
    def test_allocate_and_free(self):
        mem = MemoryTracker(capacity_bytes=1000)
        mem.allocate("a", 400)
        mem.allocate("b", 500)
        assert mem.used_bytes == 900
        assert mem.free_bytes == 100
        mem.free("a")
        assert mem.used_bytes == 500

    def test_overflow_raises_with_label(self):
        mem = MemoryTracker(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError, match="big_buffer"):
            mem.allocate("big_buffer", 200)

    def test_negative_allocation_raises(self):
        mem = MemoryTracker(capacity_bytes=100)
        with pytest.raises(ValueError):
            mem.allocate("x", -1)

    def test_free_unknown_label_is_noop(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.free("nothing")
        assert mem.used_bytes == 0

    def test_reset(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate("x", 50)
        mem.reset()
        assert mem.used_bytes == 0

    def test_repeat_label_accumulates(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate("x", 30)
        mem.allocate("x", 30)
        assert mem.allocations["x"] == 60


class TestAdjacencyEstimate:
    def test_scales_with_degree(self):
        small = estimate_adjacency_bytes(1000, 10)
        large = estimate_adjacency_bytes(1000, 100)
        assert large > small

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            estimate_adjacency_bytes(-1, 10)


class TestPhaseTimer:
    def test_phases_recorded_in_order(self):
        timer = PhaseTimer("algo", DEFAULT_COST_MODEL)
        with timer.phase("a") as counts:
            counts.union_ops += 10
        with timer.phase("b"):
            pass
        report = timer.report()
        assert [p.name for p in report.phases] == ["a", "b"]
        assert report.phase("a").simulated_seconds > 0
        assert report.phase("b").simulated_seconds == 0

    def test_simulated_override(self):
        timer = PhaseTimer("algo", DEFAULT_COST_MODEL)
        with timer.phase("build", simulated_seconds=1.5):
            pass
        assert timer.report().phase("build").simulated_seconds == 1.5

    def test_set_last_phase_seconds_overrides(self):
        timer = PhaseTimer("algo", DEFAULT_COST_MODEL)
        with timer.phase("build") as counts:
            counts.kernel_launches += 1
        timer.set_last_phase_seconds(2.25)
        assert timer.report().phase("build").simulated_seconds == 2.25

    def test_set_last_phase_seconds_without_phase_raises(self):
        timer = PhaseTimer("algo", DEFAULT_COST_MODEL)
        with pytest.raises(ValueError):
            timer.set_last_phase_seconds(1.0)

    def test_add_phase_direct(self):
        timer = PhaseTimer("algo", DEFAULT_COST_MODEL)
        timer.add_phase("x", counts=OpCounts(distance_computations=100))
        assert timer.report().phase("x").simulated_seconds > 0

    def test_missing_phase_raises(self):
        report = ExecutionReport("algo", [Phase("only")])
        with pytest.raises(KeyError):
            report.phase("other")

    def test_fraction_and_breakdown(self):
        report = ExecutionReport(
            "algo",
            [Phase("a", simulated_seconds=1.0), Phase("b", simulated_seconds=3.0)],
        )
        assert report.total_simulated_seconds == 4.0
        assert report.fraction("b") == pytest.approx(0.75)
        assert report.breakdown() == {"a": 1.0, "b": 3.0}

    def test_fraction_of_empty_report(self):
        assert ExecutionReport("algo").total_simulated_seconds == 0

    def test_as_dict(self):
        timer = PhaseTimer("algo", DEFAULT_COST_MODEL)
        with timer.phase("a"):
            pass
        d = timer.report().as_dict()
        assert d["algorithm"] == "algo"
        assert len(d["phases"]) == 1
