"""Tests for repro.geometry.sphere and repro.geometry.triangle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.sphere import SphereGeometry
from repro.geometry.triangle import TriangleGeometry, icosphere, tessellate_spheres


class TestSphereGeometry:
    def test_scalar_radius_broadcast(self):
        g = SphereGeometry(np.zeros((4, 3)), 0.5)
        assert g.radii.shape == (4,)
        assert (g.radii == 0.5).all()

    def test_len(self):
        assert len(SphereGeometry(np.zeros((7, 3)), 1.0)) == 7

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            SphereGeometry(np.zeros((2, 3)), -1.0)

    def test_wrong_dim_raises(self):
        with pytest.raises(ValueError):
            SphereGeometry(np.zeros((2, 2)), 1.0)

    def test_bounds_enclose_spheres(self):
        centers = np.array([[0.0, 0.0, 0.0], [2.0, 2.0, 2.0]])
        g = SphereGeometry(centers, 0.5)
        box = g.bounds()
        np.testing.assert_allclose(box.lower[0], [-0.5, -0.5, -0.5])
        np.testing.assert_allclose(box.upper[1], [2.5, 2.5, 2.5])

    def test_contains_is_exact_distance_test(self):
        centers = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        g = SphereGeometry(centers, 1.0)
        pts = np.array([[0.5, 0, 0], [0.5, 0, 0], [4.5, 0, 0]])
        ids = np.array([0, 1, 1])
        assert g.contains(pts, ids).tolist() == [True, False, True]

    def test_squared_distance(self):
        g = SphereGeometry(np.array([[0.0, 0.0, 0.0]]), 1.0)
        d2 = g.squared_distance(np.array([[3.0, 4.0, 0.0]]), np.array([0]))
        np.testing.assert_allclose(d2, [25.0])


class TestIcosphere:
    def test_base_icosahedron(self):
        verts, faces = icosphere(0)
        assert verts.shape == (12, 3)
        assert faces.shape == (20, 3)

    def test_subdivision_quadruples_faces(self):
        _, f0 = icosphere(0)
        _, f1 = icosphere(1)
        _, f2 = icosphere(2)
        assert len(f1) == 4 * len(f0)
        assert len(f2) == 4 * len(f1)

    def test_vertices_on_unit_sphere(self):
        verts, _ = icosphere(2)
        np.testing.assert_allclose(np.linalg.norm(verts, axis=1), 1.0, atol=1e-12)

    def test_negative_subdivision_raises(self):
        with pytest.raises(ValueError):
            icosphere(-1)


class TestTessellateSpheres:
    def test_owner_mapping(self):
        centers = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0], [0.0, 10.0, 0.0]])
        tris = tessellate_spheres(centers, 1.0, subdivisions=0)
        assert len(tris) == 3 * 20
        assert set(np.unique(tris.owners)) == {0, 1, 2}
        assert (np.bincount(tris.owners) == 20).all()

    def test_triangle_vertices_near_their_sphere(self):
        centers = np.array([[5.0, -3.0, 2.0]])
        tris = tessellate_spheres(centers, 2.0, subdivisions=1)
        v = tris.triangle_vertices().reshape(-1, 3)
        dist = np.linalg.norm(v - centers[0], axis=1)
        np.testing.assert_allclose(dist, 2.0, atol=1e-9)

    def test_bounds_per_triangle(self):
        centers = np.array([[0.0, 0.0, 0.0]])
        tris = tessellate_spheres(centers, 1.0, subdivisions=0)
        box = tris.bounds()
        assert len(box) == len(tris)
        assert (box.lower >= -1.0 - 1e-9).all()
        assert (box.upper <= 1.0 + 1e-9).all()

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            tessellate_spheres(np.zeros((1, 3)), -1.0)

    def test_invalid_owner_length_raises(self):
        with pytest.raises(ValueError):
            TriangleGeometry(np.zeros((3, 3)), np.array([[0, 1, 2]]), np.array([0, 1]))

    def test_face_index_out_of_range_raises(self):
        with pytest.raises(ValueError):
            TriangleGeometry(np.zeros((2, 3)), np.array([[0, 1, 2]]), np.array([0]))
