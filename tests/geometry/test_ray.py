"""Tests for repro.geometry.ray."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.ray import (
    EPSILON_RAY_TMAX,
    RayBatch,
    make_point_query_rays,
    point_in_sphere,
    ray_aabb_intersect,
    ray_sphere_intersect,
)

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestRayBatch:
    def test_defaults(self):
        rays = RayBatch(np.zeros((3, 3)), np.ones((3, 3)))
        assert len(rays) == 3
        assert (rays.tmin == 0).all()
        assert np.isinf(rays.tmax).all()

    def test_scalar_interval_broadcast(self):
        rays = RayBatch(np.zeros((2, 3)), np.ones((2, 3)), tmin=0.0, tmax=1.0)
        assert rays.tmax.shape == (2,)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError, match="tmax"):
            RayBatch(np.zeros((1, 3)), np.ones((1, 3)), tmin=1.0, tmax=0.0)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            RayBatch(np.zeros((3, 2)), np.ones((3, 2)))

    def test_point_query_rays_are_infinitesimal(self):
        rays = make_point_query_rays(np.zeros((5, 3)))
        assert rays.is_point_query
        assert (rays.tmax == EPSILON_RAY_TMAX).all()
        np.testing.assert_allclose(rays.directions[:, 2], 1.0)


class TestRayAABB:
    def test_ray_through_box(self):
        ok = ray_aabb_intersect(
            origins=[[-2, 0.5, 0.5]], inv_dirs=[[1.0, np.inf, np.inf]],
            tmin=[0.0], tmax=[10.0],
            box_lower=[[0, 0, 0]], box_upper=[[1, 1, 1]],
        )
        assert ok.all()

    def test_ray_missing_box(self):
        ok = ray_aabb_intersect(
            origins=[[-2, 5, 5]], inv_dirs=[[1.0, np.inf, np.inf]],
            tmin=[0.0], tmax=[10.0],
            box_lower=[[0, 0, 0]], box_upper=[[1, 1, 1]],
        )
        assert not ok.any()

    def test_origin_inside_box_with_tiny_interval(self):
        ok = ray_aabb_intersect(
            origins=[[0.5, 0.5, 0.5]], inv_dirs=[[np.inf, np.inf, 1.0]],
            tmin=[0.0], tmax=[EPSILON_RAY_TMAX],
            box_lower=[[0, 0, 0]], box_upper=[[1, 1, 1]],
        )
        assert ok.all()

    def test_ray_behind_box_does_not_hit(self):
        ok = ray_aabb_intersect(
            origins=[[2, 0.5, 0.5]], inv_dirs=[[1.0, np.inf, np.inf]],
            tmin=[0.0], tmax=[10.0],
            box_lower=[[0, 0, 0]], box_upper=[[1, 1, 1]],
        )
        assert not ok.any()


class TestRaySphere:
    def test_origin_inside_solid_sphere(self):
        hit = ray_sphere_intersect(
            origins=[[0.1, 0, 0]], directions=[[0, 0, 1]],
            tmin=[0.0], tmax=[EPSILON_RAY_TMAX],
            centers=[[0, 0, 0]], radii=np.array([0.5]),
        )
        assert hit.all()

    def test_origin_outside_tiny_ray_misses(self):
        hit = ray_sphere_intersect(
            origins=[[2.0, 0, 0]], directions=[[0, 0, 1]],
            tmin=[0.0], tmax=[EPSILON_RAY_TMAX],
            centers=[[0, 0, 0]], radii=np.array([0.5]),
        )
        assert not hit.any()

    def test_long_ray_hits_sphere_surface(self):
        hit = ray_sphere_intersect(
            origins=[[-5.0, 0, 0]], directions=[[1, 0, 0]],
            tmin=[0.0], tmax=[100.0],
            centers=[[0, 0, 0]], radii=np.array([0.5]),
        )
        assert hit.all()

    def test_long_ray_misses_offset_sphere(self):
        hit = ray_sphere_intersect(
            origins=[[-5.0, 2.0, 0]], directions=[[1, 0, 0]],
            tmin=[0.0], tmax=[100.0],
            centers=[[0, 0, 0]], radii=np.array([0.5]),
        )
        assert not hit.any()

    def test_boundary_point_counts_as_inside(self):
        hit = point_in_sphere([[0.5, 0, 0]], [[0, 0, 0]], np.array([0.5]))
        assert hit.all()


class TestReductionProperty:
    """The core reduction: an ε-ray from q intersects sphere(p, ε) iff |q-p| <= ε."""

    @given(
        q=arrays(np.float64, (1, 3), elements=coords),
        p=arrays(np.float64, (1, 3), elements=coords),
        eps=st.floats(min_value=1e-3, max_value=50.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_epsilon_ray_equivalent_to_distance_test(self, q, p, eps):
        rays = make_point_query_rays(q)
        hit = ray_sphere_intersect(
            rays.origins, rays.directions, rays.tmin, rays.tmax, p, np.array([eps])
        )
        expected = np.linalg.norm(q - p) <= eps
        assert bool(hit[0]) == bool(expected)

    @given(
        pts=arrays(np.float64, (8, 3), elements=coords),
        eps=st.floats(min_value=1e-3, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_self_sphere_always_hit(self, pts, eps):
        rays = make_point_query_rays(pts)
        hit = ray_sphere_intersect(
            rays.origins, rays.directions, rays.tmin, rays.tmax, pts, np.full(8, eps)
        )
        assert hit.all()
