"""Tests for repro.geometry.morton and repro.geometry.transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.morton import (
    expand_bits_10,
    morton3d_30,
    morton3d_63,
    morton_order,
    normalize_to_unit_cube,
)
from repro.geometry.transforms import (
    bounding_extent,
    lift_to_3d,
    minmax_normalize,
    standardize,
    validate_points,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestMorton:
    def test_expand_bits_known_value(self):
        # 0b11 -> bits at positions 0 and 3.
        assert int(expand_bits_10(np.array([3]))[0]) == 0b1001

    def test_origin_is_zero(self):
        assert int(morton3d_30(np.array([[0.0, 0.0, 0.0]]))[0]) == 0

    def test_corner_is_max(self):
        code = int(morton3d_30(np.array([[1.0, 1.0, 1.0]]))[0])
        assert code == (1 << 30) - 1

    def test_monotone_along_single_axis(self):
        z = np.linspace(0, 1, 32)
        coords = np.column_stack([np.zeros(32), np.zeros(32), z])
        codes = morton3d_30(coords)
        assert (np.diff(codes.astype(np.int64)) >= 0).all()

    def test_63_bit_resolution_finer_than_30_bit(self):
        # Two points closer than the 30-bit grid but separated at 21-bit/axis.
        a = np.array([[0.5, 0.5, 0.5]])
        b = a + 1e-5
        assert morton3d_30(a)[0] == morton3d_30(b)[0]
        assert morton3d_63(a)[0] != morton3d_63(b)[0]

    def test_morton_order_is_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-3, 3, size=(100, 3))
        order = morton_order(pts)
        assert sorted(order.tolist()) == list(range(100))

    def test_morton_order_deterministic(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(50, 3))
        assert np.array_equal(morton_order(pts), morton_order(pts))

    def test_morton_order_invalid_bits(self):
        with pytest.raises(ValueError):
            morton_order(np.zeros((4, 3)), bits=16)

    @given(pts=arrays(np.float64, (32, 3), elements=unit))
    @settings(max_examples=50, deadline=None)
    def test_codes_within_30_bits(self, pts):
        codes = morton3d_30(pts)
        assert (codes < (1 << 30)).all()

    def test_normalize_to_unit_cube_degenerate_axis(self):
        pts = np.array([[1.0, 2.0, 5.0], [2.0, 2.0, 7.0]])
        out = normalize_to_unit_cube(pts)
        assert (out[:, 1] == 0.5).all()
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestTransforms:
    def test_validate_points_accepts_2d_and_3d(self):
        assert validate_points(np.zeros((4, 2))).shape == (4, 2)
        assert validate_points(np.zeros((4, 3))).shape == (4, 3)

    def test_validate_points_rejects_high_dim(self):
        with pytest.raises(ValueError, match="at most 3 dimensions"):
            validate_points(np.zeros((4, 5)))

    def test_validate_points_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_points(np.zeros((0, 2)))

    def test_validate_points_rejects_nan(self):
        pts = np.zeros((3, 2))
        pts[1, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            validate_points(pts)

    def test_validate_points_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_points(np.zeros(5))

    def test_lift_to_3d_appends_zero_z(self):
        out = lift_to_3d(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert out.shape == (2, 3)
        assert (out[:, 2] == 0.0).all()

    def test_lift_to_3d_passthrough(self):
        pts = np.arange(9, dtype=float).reshape(3, 3)
        np.testing.assert_array_equal(lift_to_3d(pts), pts)

    def test_minmax_normalize_range(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-7, 9, size=(50, 2))
        out = minmax_normalize(pts)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_standardize_moments(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(5, 3, size=(500, 3))
        out = standardize(pts)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_bounding_extent_unit_square(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert bounding_extent(pts) == pytest.approx(np.sqrt(2))
