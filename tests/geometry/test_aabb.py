"""Tests for repro.geometry.aabb."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.aabb import (
    AABB,
    aabb_centroids,
    aabb_contains_points,
    aabb_overlaps,
    aabb_surface_area,
    aabb_union,
)

finite_coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestAABBConstruction:
    def test_single_box(self):
        box = AABB([[0, 0, 0]], [[1, 2, 3]])
        assert len(box) == 1
        np.testing.assert_allclose(box.extents, [[1, 2, 3]])

    def test_batch_box(self):
        box = AABB(np.zeros((5, 3)), np.ones((5, 3)))
        assert len(box) == 5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            AABB(np.zeros((2, 3)), np.ones((3, 3)))

    def test_wrong_columns_raises(self):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            AABB(np.zeros((2, 2)), np.ones((2, 2)))

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError, match="lower > upper"):
            AABB([[1, 0, 0]], [[0, 1, 1]])

    def test_empty_box(self):
        box = AABB.empty(3)
        assert len(box) == 3
        assert not aabb_contains_points(box.lower, box.upper, [[0, 0, 0]]).any()

    def test_from_points(self):
        pts = np.array([[0, 0, 0], [1, 2, 3], [-1, 5, 2]], dtype=float)
        box = AABB.from_points(pts)
        np.testing.assert_allclose(box.lower, [[-1, 0, 0]])
        np.testing.assert_allclose(box.upper, [[1, 5, 3]])

    def test_from_points_empty(self):
        box = AABB.from_points(np.empty((0, 3)))
        assert len(box) == 1

    def test_from_spheres_scalar_radius(self):
        centers = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        box = AABB.from_spheres(centers, 0.5)
        np.testing.assert_allclose(box.lower[0], [-0.5, -0.5, -0.5])
        np.testing.assert_allclose(box.upper[1], [1.5, 1.5, 1.5])

    def test_from_spheres_negative_radius_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            AABB.from_spheres(np.zeros((1, 3)), -1.0)


class TestAABBQueries:
    def test_centroids(self):
        box = AABB([[0, 0, 0]], [[2, 4, 6]])
        np.testing.assert_allclose(box.centroids, [[1, 2, 3]])

    def test_surface_area_unit_cube(self):
        box = AABB([[0, 0, 0]], [[1, 1, 1]])
        np.testing.assert_allclose(box.surface_area(), [6.0])

    def test_surface_area_empty_is_zero(self):
        box = AABB.empty(2)
        np.testing.assert_allclose(box.surface_area(), [0.0, 0.0])

    def test_union_all(self):
        box = AABB([[0, 0, 0], [2, 2, 2]], [[1, 1, 1], [3, 3, 3]])
        merged = box.union_all()
        np.testing.assert_allclose(merged.lower, [[0, 0, 0]])
        np.testing.assert_allclose(merged.upper, [[3, 3, 3]])

    def test_contains_points_inclusive_boundary(self):
        box = AABB([[0, 0, 0]], [[1, 1, 1]])
        inside = box.contains_points([[0, 0, 0], [1, 1, 1], [0.5, 0.5, 0.5], [1.1, 0, 0]])
        assert inside.tolist() == [[True, True, True, False]]

    def test_overlaps_touching_boxes(self):
        a = AABB([[0, 0, 0]], [[1, 1, 1]])
        b = AABB([[1, 0, 0]], [[2, 1, 1]])
        assert a.overlaps(b).all()

    def test_overlaps_disjoint(self):
        a = AABB([[0, 0, 0]], [[1, 1, 1]])
        b = AABB([[2, 2, 2]], [[3, 3, 3]])
        assert not a.overlaps(b).any()

    def test_expanded(self):
        box = AABB([[0, 0, 0]], [[1, 1, 1]]).expanded(0.5)
        np.testing.assert_allclose(box.lower, [[-0.5, -0.5, -0.5]])
        np.testing.assert_allclose(box.upper, [[1.5, 1.5, 1.5]])

    def test_expanded_negative_raises(self):
        with pytest.raises(ValueError):
            AABB([[0, 0, 0]], [[1, 1, 1]]).expanded(-0.1)


class TestVectorHelpers:
    def test_union_is_componentwise(self):
        lo, hi = aabb_union([[0, 0, 0]], [[1, 1, 1]], [[-1, 0.5, 0]], [[0.5, 2, 1]])
        np.testing.assert_allclose(lo, [[-1, 0, 0]])
        np.testing.assert_allclose(hi, [[1, 2, 1]])

    def test_centroids_shape_preserved(self):
        c = aabb_centroids(np.zeros((4, 3)), np.ones((4, 3)))
        assert c.shape == (4, 3)

    def test_contains_points_matrix_shape(self):
        m = aabb_contains_points(np.zeros((3, 3)), np.ones((3, 3)), np.zeros((5, 3)))
        assert m.shape == (3, 5)
        assert m.all()


class TestAABBProperties:
    @given(
        pts=arrays(np.float64, (16, 3), elements=finite_coords),
        radius=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_sphere_boxes_contain_their_centers(self, pts, radius):
        box = AABB.from_spheres(pts, radius)
        diag = np.arange(16)
        contained = aabb_contains_points(box.lower, box.upper, pts)[diag, diag]
        assert contained.all()

    @given(pts=arrays(np.float64, (12, 3), elements=finite_coords))
    @settings(max_examples=50, deadline=None)
    def test_union_all_contains_every_point(self, pts):
        box = AABB.from_points(pts).union_all()
        assert aabb_contains_points(box.lower, box.upper, pts).all()

    @given(
        lo=arrays(np.float64, (8, 3), elements=st.floats(-100, 0)),
        ext=arrays(np.float64, (8, 3), elements=st.floats(0, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_surface_area_non_negative(self, lo, ext):
        assert (aabb_surface_area(lo, lo + ext) >= 0).all()

    @given(
        lo=arrays(np.float64, (8, 3), elements=st.floats(-100, 0)),
        ext=arrays(np.float64, (8, 3), elements=st.floats(0, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlap_is_symmetric(self, lo, ext):
        hi = lo + ext
        other_lo = lo[::-1]
        other_hi = hi[::-1]
        ab = aabb_overlaps(lo, hi, other_lo, other_hi)
        ba = aabb_overlaps(other_lo, other_hi, lo, hi)
        assert np.array_equal(ab, ba)
