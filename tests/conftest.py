"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.synthetic import make_blobs, make_uniform_noise

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    settings = None

if settings is not None:
    # "ci": no deadline (shared runners have unpredictable timing) and
    # derandomised examples, so property tests cannot flake on CI; "dev"
    # keeps the library defaults, including random exploration.  Selected
    # via HYPOTHESIS_PROFILE (the CI workflow sets it to "ci").
    settings.register_profile("ci", deadline=None, derandomize=True)
    settings.register_profile("dev", settings.default)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def blob_points() -> np.ndarray:
    """Three well-separated Gaussian blobs plus background noise (2D)."""
    pts, _ = make_blobs(600, centers=np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 4.0]]),
                        std=0.25, seed=7)
    noise = make_uniform_noise(60, low=-2.0, high=6.0, dim=2, seed=8)
    return np.vstack([pts, noise])


@pytest.fixture(scope="session")
def blob_points_3d() -> np.ndarray:
    """Three well-separated Gaussian blobs in 3D."""
    pts, _ = make_blobs(
        500,
        centers=np.array([[0.0, 0.0, 0.0], [4.0, 0.0, 1.0], [2.0, 4.0, -1.0]]),
        std=0.3,
        seed=11,
    )
    return pts


@pytest.fixture(scope="session")
def random_points_2d(rng) -> np.ndarray:
    return rng.uniform(-5.0, 5.0, size=(400, 2))


@pytest.fixture(scope="session")
def random_points_3d(rng) -> np.ndarray:
    return rng.uniform(-5.0, 5.0, size=(400, 3))
