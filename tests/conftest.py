"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.synthetic import make_blobs, make_uniform_noise

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    settings = None

if settings is not None:
    # "ci": no deadline (shared runners have unpredictable timing) and
    # derandomised examples, so property tests cannot flake on CI; "dev"
    # keeps the library defaults, including random exploration.  Selected
    # via HYPOTHESIS_PROFILE (the CI workflow sets it to "ci").
    settings.register_profile("ci", deadline=None, derandomize=True)
    settings.register_profile("dev", settings.default)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def blob_points() -> np.ndarray:
    """Three well-separated Gaussian blobs plus background noise (2D)."""
    pts, _ = make_blobs(600, centers=np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 4.0]]),
                        std=0.25, seed=7)
    noise = make_uniform_noise(60, low=-2.0, high=6.0, dim=2, seed=8)
    return np.vstack([pts, noise])


@pytest.fixture(scope="session")
def blob_points_3d() -> np.ndarray:
    """Three well-separated Gaussian blobs in 3D."""
    pts, _ = make_blobs(
        500,
        centers=np.array([[0.0, 0.0, 0.0], [4.0, 0.0, 1.0], [2.0, 4.0, -1.0]]),
        std=0.3,
        seed=11,
    )
    return pts


@pytest.fixture(scope="session")
def random_points_2d(rng) -> np.ndarray:
    return rng.uniform(-5.0, 5.0, size=(400, 2))


@pytest.fixture(scope="session")
def random_points_3d(rng) -> np.ndarray:
    return rng.uniform(-5.0, 5.0, size=(400, 3))


# --------------------------------------------------------------------------- #
# Service-layer fixtures (tests/service/).  The service is asyncio-based but
# the suite runs plain pytest, so every test drives its coroutine through the
# ``run`` fixture (a fresh event loop per test — no pytest-asyncio
# dependency).  ``FakeClock`` replaces ``time.monotonic`` in TTL/eviction
# tests so idle time is advanced explicitly rather than slept.  These live in
# the top-level conftest because pytest imports same-named ``conftest``
# modules from rootdir-anchored test trees into one namespace.
class FakeClock:
    """Manually-advanced monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _make_service_config(**overrides):
    """A small, fast service config for tests (sliding window of 300)."""
    from repro.api import ClustererSpec
    from repro.service import ServiceConfig

    spec = overrides.pop(
        "spec",
        ClustererSpec(algo="streaming-rt-dbscan", eps=0.4, min_pts=5,
                      params={"window": 300}),
    )
    return ServiceConfig(spec=spec, **overrides)


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def run():
    """Run one coroutine to completion on a fresh event loop."""
    import asyncio

    return asyncio.run


@pytest.fixture
def make_config():
    return _make_service_config
