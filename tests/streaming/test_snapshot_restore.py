"""Engine snapshot/restore: bit-identical continuation on every backend.

The durability layer's core contract: ``restore(snapshot())`` rebuilds an
engine whose *future* behaviour — labels, arrival numbering, eviction order,
border tie-breaks — is indistinguishable from the engine that never stopped.
The window replay argument (counts, core flags, anchors and the union–find
forest are pure functions of the live window point set) makes this exact,
so these tests assert byte equality, not approximation.
"""

import json

import numpy as np
import pytest

from repro.streaming.engine import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    StreamingRTDBSCAN,
    StreamUpdate,
)

BACKENDS = ["rt", "grid", "kdtree", "brute"]
EPS, MIN_PTS, WINDOW = 0.45, 5, 220


def make_chunks(seed=11, n_chunks=7, size=70):
    rng = np.random.default_rng(seed)
    chunks = []
    for i in range(n_chunks):
        centre = rng.uniform(-1, 1, size=3)
        chunks.append((centre + rng.normal(scale=0.3, size=(size, 3))).astype(np.float64))
    return chunks


def build(backend, **kwargs):
    return StreamingRTDBSCAN(
        eps=EPS, min_pts=MIN_PTS, window=WINDOW, backend=backend, **kwargs
    )


def feed(engine, chunks):
    last = None
    for chunk in chunks:
        last = engine.update(chunk)
    return last


@pytest.mark.parametrize("backend", BACKENDS)
class TestRestoreParity:
    def test_restore_then_continue_matches_uninterrupted(self, backend):
        chunks = make_chunks()
        reference = build(backend)
        feed(reference, chunks)
        ref = reference.result()

        engine = build(backend)
        feed(engine, chunks[:4])
        resumed = StreamingRTDBSCAN.restore(engine.snapshot())
        feed(resumed, chunks[4:])
        got = resumed.result()

        np.testing.assert_array_equal(got.labels, ref.labels)
        np.testing.assert_array_equal(got.core_mask, ref.core_mask)
        np.testing.assert_array_equal(
            got.extra["window_arrivals"], ref.extra["window_arrivals"]
        )
        assert resumed.restored is True
        assert got.extra["restored"] is True
        assert resumed.backend == backend

    def test_snapshot_survives_json_round_trip(self, backend):
        chunks = make_chunks(seed=5)
        engine = build(backend)
        feed(engine, chunks[:3])
        wire = json.loads(json.dumps(engine.snapshot()))
        resumed = StreamingRTDBSCAN.restore(wire)
        a = feed(resumed, chunks[3:])
        b = feed(engine, chunks[3:])
        assert isinstance(a, StreamUpdate) and isinstance(b, StreamUpdate)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_restore_preserves_running_totals(self, backend):
        chunks = make_chunks(seed=3, n_chunks=5)
        engine = build(backend)
        feed(engine, chunks)
        resumed = StreamingRTDBSCAN.restore(engine.snapshot())
        assert resumed.num_updates == engine.num_updates
        assert resumed.points_ingested == engine.points_ingested
        assert resumed.points_evicted == engine.points_evicted
        assert resumed.total_counts.as_dict() == engine.total_counts.as_dict()

    def test_eviction_order_preserved_across_restore(self, backend):
        # The sliding window keeps evicting in arrival order after a restore;
        # a broken arrival renumbering would surface here as a different
        # window membership, not just different labels.
        chunks = make_chunks(seed=23, n_chunks=10, size=60)
        reference = build(backend)
        feed(reference, chunks)

        engine = build(backend)
        feed(engine, chunks[:5])
        resumed = StreamingRTDBSCAN.restore(engine.snapshot())
        feed(resumed, chunks[5:])
        np.testing.assert_array_equal(
            resumed.result().extra["window_arrivals"],
            reference.result().extra["window_arrivals"],
        )


class TestValidation:
    def snapshot(self):
        engine = build("grid")
        feed(engine, make_chunks(n_chunks=3))
        return engine.snapshot()

    def test_validate_accepts_real_snapshot(self):
        sec = StreamingRTDBSCAN.validate_snapshot(self.snapshot())
        assert sec["format"] == SNAPSHOT_FORMAT
        assert sec["version"] == SNAPSHOT_VERSION

    def test_missing_engine_section_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            StreamingRTDBSCAN.validate_snapshot({"labels": []})

    def test_wrong_format_rejected(self):
        snap = self.snapshot()
        snap["engine"]["format"] = "something-else"
        with pytest.raises(ValueError, match="format"):
            StreamingRTDBSCAN.validate_snapshot(snap)

    def test_future_version_rejected(self):
        snap = self.snapshot()
        snap["engine"]["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            StreamingRTDBSCAN.validate_snapshot(snap)

    def test_non_increasing_arrivals_rejected(self):
        snap = self.snapshot()
        arrivals = snap["engine"]["arrivals"]
        if len(arrivals) >= 2:
            arrivals[1] = arrivals[0]
        with pytest.raises(ValueError, match="increasing"):
            StreamingRTDBSCAN.validate_snapshot(snap)

    def test_arrival_length_mismatch_rejected(self):
        snap = self.snapshot()
        snap["engine"]["arrivals"] = snap["engine"]["arrivals"][:-1]
        with pytest.raises(ValueError, match="arrivals"):
            StreamingRTDBSCAN.validate_snapshot(snap)

    def test_restore_empty_window_snapshot(self):
        engine = build("kdtree")
        resumed = StreamingRTDBSCAN.restore(engine.snapshot())
        update = resumed.update(make_chunks(n_chunks=1)[0])
        fresh = build("kdtree")
        expected = fresh.update(make_chunks(n_chunks=1)[0])
        np.testing.assert_array_equal(update.labels, expected.labels)


class TestBackendSelection:
    def test_approximate_backend_refused(self):
        # Incremental count deltas assume exact neighbourhoods; an
        # approximate backend would silently corrupt promotion/demotion.
        with pytest.raises(ValueError, match="exact"):
            StreamingRTDBSCAN(eps=0.3, min_pts=5, backend="lsh")

    @pytest.mark.parametrize("backend", ["grid", "kdtree", "brute"])
    def test_host_backends_match_rt_labels(self, backend):
        chunks = make_chunks(seed=31, n_chunks=6)
        host = build(backend)
        rt = build("rt")
        feed(host, chunks)
        feed(rt, chunks)
        np.testing.assert_array_equal(host.result().labels, rt.result().labels)

    def test_backend_in_summary(self):
        engine = build("grid")
        assert engine.scene.summary()["backend"] == "grid"
