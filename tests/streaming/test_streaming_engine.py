"""Streaming engine correctness: batch equivalence and window edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stream import drift_blob_stream
from repro.data.synthetic import make_blobs
from repro.dbscan.rt_dbscan import rt_dbscan
from repro.metrics.agreement import compare_results
from repro.metrics.ari import adjusted_rand_index
from repro.streaming import RefitPolicy, StreamingRTDBSCAN


def _blobs(n: int, seed: int, centers: int = 5, std: float = 0.2):
    pts, _ = make_blobs(n, centers=centers, std=std, seed=seed)
    return pts


class TestBatchEquivalence:
    """No-eviction feeds must reproduce the batch labelling exactly."""

    def test_single_chunk_equals_batch_labels(self):
        pts = _blobs(800, seed=11)
        batch = rt_dbscan(pts, eps=0.3, min_pts=5)
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5)
        update = engine.update(pts)
        assert np.array_equal(update.labels, batch.labels)
        assert np.array_equal(update.core_mask, batch.core_mask)
        assert adjusted_rand_index(update.labels, batch.labels) == 1.0

    @pytest.mark.parametrize("seed,chunk", [(3, 100), (7, 137), (21, 400)])
    def test_chunked_feed_matches_batch(self, seed, chunk):
        pts = _blobs(800, seed=seed)
        batch = rt_dbscan(pts, eps=0.3, min_pts=5)
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5)
        last = None
        for lo in range(0, pts.shape[0], chunk):
            last = engine.update(pts[lo : lo + chunk])
        assert last is not None
        assert np.array_equal(last.labels, batch.labels)
        assert adjusted_rand_index(last.labels, batch.labels) == 1.0
        # The cached neighbour counts must match batch stage 1 exactly.
        assert np.array_equal(engine.result().neighbor_counts, batch.neighbor_counts)

    def test_result_is_dbscan_equivalent_to_batch(self):
        pts = _blobs(600, seed=5, centers=4)
        engine = StreamingRTDBSCAN(eps=0.35, min_pts=4)
        for lo in range(0, 600, 200):
            engine.update(pts[lo : lo + 200])
        batch = rt_dbscan(pts, eps=0.35, min_pts=4)
        report = compare_results(batch, engine.result(), points=pts)
        assert report.equivalent, report.as_dict()


class TestSlidingWindow:
    def test_window_respected_and_oldest_evicted(self):
        pts = _blobs(500, seed=9)
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5, window=200)
        for lo in range(0, 500, 100):
            update = engine.update(pts[lo : lo + 100])
        assert update.window_size == 200
        # The window holds exactly the newest 200 points, in arrival order.
        assert np.array_equal(update.window_arrivals, np.arange(300, 500))
        assert np.allclose(np.asarray(engine.window_points)[:, :2], pts[300:])

    @pytest.mark.parametrize("seed", [1, 13])
    def test_every_window_equivalent_to_batch_on_window(self, seed):
        """After each slide, labels agree with batch DBSCAN on the window."""
        rng_stream = drift_blob_stream(6, 120, seed=seed, num_clusters=3, drift=0.3)
        engine = StreamingRTDBSCAN(eps=0.25, min_pts=4, window=360)
        for chunk in rng_stream:
            update = engine.update(chunk)
            window_pts = np.asarray(engine.window_points)
            batch = rt_dbscan(window_pts, eps=0.25, min_pts=4)
            report = compare_results(batch, engine.result(), points=window_pts)
            assert report.equivalent, report.as_dict()
            assert np.array_equal(update.core_mask, batch.core_mask)

    def test_eviction_that_splits_a_cluster(self):
        # A --- bridge --- B along a line; evicting the bridge must split
        # the single chain cluster into two.
        A = np.column_stack([np.linspace(0.0, 2.0, 9), np.zeros(9)])
        bridge = np.column_stack([np.linspace(2.5, 4.5, 5), np.zeros(5)])
        B = np.column_stack([np.linspace(5.0, 7.0, 9), np.zeros(9)])
        engine = StreamingRTDBSCAN(eps=0.6, min_pts=2, window=18, initial_capacity=32)
        engine.update(bridge)
        joined = engine.update(A)
        assert joined.num_clusters == 1  # A + bridge form one chain
        split = engine.update(B)  # bridge (oldest) evicted
        assert split.num_evicted == 5
        assert split.reclustered
        assert split.num_clusters == 2
        window_pts = np.asarray(engine.window_points)
        batch = rt_dbscan(window_pts, eps=0.6, min_pts=2)
        assert np.array_equal(split.labels, batch.labels)

    def test_chunk_larger_than_window_keeps_newest_points(self):
        pts = _blobs(300, seed=2)
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5, window=100)
        update = engine.update(pts)
        assert update.window_size == 100
        assert np.allclose(np.asarray(engine.window_points)[:, :2], pts[200:])


class TestEdgeCases:
    def test_empty_engine_has_empty_window(self):
        engine = StreamingRTDBSCAN(eps=0.5, min_pts=3)
        assert engine.window_size == 0
        result = engine.result()
        assert result.labels.shape == (0,)
        assert result.num_clusters == 0

    def test_empty_chunk_is_a_noop(self):
        engine = StreamingRTDBSCAN(eps=0.5, min_pts=3)
        update = engine.update(np.empty((0, 2)))
        assert update.window_size == 0
        assert update.accel_action == "none"
        pts = _blobs(200, seed=4)
        before = engine.update(pts)
        after = engine.update(np.empty((0, 2)))
        assert np.array_equal(before.labels, after.labels)
        assert after.num_new == 0 and after.num_evicted == 0

    def test_duplicate_points_across_chunks(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0.0, 4.0, size=(250, 2))
        engine = StreamingRTDBSCAN(eps=0.35, min_pts=4)
        engine.update(pts)
        update = engine.update(pts)  # every point arrives a second time
        batch = rt_dbscan(np.vstack([pts, pts]), eps=0.35, min_pts=4)
        assert np.array_equal(update.labels, batch.labels)
        assert adjusted_rand_index(update.labels, batch.labels) == 1.0

    def test_promotion_across_chunks(self):
        # Each chunk alone is too sparse to form cores; together they do.
        base = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        extra = np.array([[0.0, 0.1], [0.1, 0.1], [6.0, 6.0]])
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=3)
        first = engine.update(base)
        assert first.num_clusters == 0
        second = engine.update(extra)
        batch = rt_dbscan(np.vstack([base, extra]), eps=0.3, min_pts=3)
        assert np.array_equal(second.labels, batch.labels)
        assert second.num_clusters == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StreamingRTDBSCAN(eps=-1.0, min_pts=3)
        with pytest.raises(ValueError):
            StreamingRTDBSCAN(eps=0.5, min_pts=0)
        with pytest.raises(ValueError):
            StreamingRTDBSCAN(eps=0.5, min_pts=3, window=0)
        with pytest.raises(ValueError):
            RefitPolicy(mode="bogus")


class TestMaintenancePolicy:
    def test_auto_policy_refits_for_small_updates(self):
        pts = _blobs(1200, seed=6)
        engine = StreamingRTDBSCAN(
            eps=0.3, min_pts=5, window=1000, initial_capacity=1100,
            policy=RefitPolicy(mode="auto"),
        )
        for lo in range(0, 1200, 60):
            engine.update(pts[lo : lo + 60])
        scene = engine.scene.summary()
        assert scene["num_refits"] > scene["num_builds"]
        assert engine.total_counts.bvh_refit_prims > 0

    def test_refit_and_rebuild_modes_agree_on_labels(self):
        pts = _blobs(600, seed=8)
        results = {}
        for mode in ("auto", "rebuild"):
            engine = StreamingRTDBSCAN(
                eps=0.3, min_pts=5, window=500, initial_capacity=600,
                policy=RefitPolicy(mode=mode),
            )
            for lo in range(0, 600, 100):
                update = engine.update(pts[lo : lo + 100])
            results[mode] = (update.labels, engine.summary())
        labels_auto, summary_auto = results["auto"]
        labels_rebuild, summary_rebuild = results["rebuild"]
        assert np.array_equal(labels_auto, labels_rebuild)
        # Identical clustering, cheaper maintenance on the refit path.
        assert (
            summary_auto["total_simulated_seconds"]
            < summary_rebuild["total_simulated_seconds"]
        )

    def test_capacity_growth_forces_rebuild(self):
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5, initial_capacity=64)
        first = engine.update(_blobs(60, seed=1))
        assert first.accel_action == "rebuild"
        second = engine.update(_blobs(300, seed=2))  # overflows capacity 64
        assert second.accel_action == "rebuild"
        assert engine.scene.capacity >= 360

    def test_for_feed_pre_sizes_the_slot_buffer(self):
        """for_feed sizes the scene from the tiler occupancy bound: the slot
        buffer never grows, so only the first commit is a build."""
        feed = _blobs(900, seed=3)
        chunks = [feed[lo : lo + 300] for lo in range(0, 900, 300)]
        engine = StreamingRTDBSCAN.for_feed(
            feed, 0.3, 5, chunk_size=300, policy=RefitPolicy(mode="refit")
        )
        assert engine.scene.capacity >= 900
        for chunk in chunks:
            engine.update(chunk)
        assert engine.scene.num_builds == 1

        # Same labels as an ordinary unbounded engine over the same chunks.
        plain = StreamingRTDBSCAN(eps=0.3, min_pts=5, initial_capacity=256)
        for chunk in chunks:
            plain.update(chunk)
        np.testing.assert_array_equal(
            engine.result().labels, plain.result().labels
        )

    def test_for_feed_capacity_always_covers_the_feed(self):
        """The pre-sized buffer must hold the whole feed the engine ingests
        (the planner's shard bound is per-shard-engine, not for this one)."""
        feed = _blobs(600, seed=9)
        engine = StreamingRTDBSCAN.for_feed(
            feed, 0.3, 5, chunk_size=200, policy=RefitPolicy(mode="refit")
        )
        for lo in range(0, 600, 200):
            engine.update(feed[lo : lo + 200])
        assert engine.scene.capacity >= 600
        assert engine.scene.num_builds == 1


class TestLifecycle:
    """release()/snapshot()/context-manager — the serving layer's hooks."""

    def test_release_is_idempotent_and_counted(self):
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5)
        engine.update(_blobs(200, seed=2))
        assert not engine.released
        engine.release()
        engine.release()
        assert engine.released
        assert engine.num_releases == 1

    def test_context_manager_releases_on_exit(self):
        with StreamingRTDBSCAN(eps=0.3, min_pts=5) as engine:
            engine.update(_blobs(150, seed=6))
            assert not engine.released
        assert engine.released
        assert engine.num_releases == 1

    def test_reingest_after_release_revives_engine(self):
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5)
        engine.update(_blobs(150, seed=6))
        engine.release()
        engine.update(_blobs(150, seed=7))
        assert not engine.released
        engine.release()
        assert engine.num_releases == 2

    def test_snapshot_mirrors_result(self):
        engine = StreamingRTDBSCAN(eps=0.3, min_pts=5, window=120)
        for chunk in drift_blob_stream(3, 60, seed=8):
            engine.update(chunk)
        snap = engine.snapshot()
        result = engine.result()
        assert snap["window_size"] == 120
        assert snap["labels"] == result.labels.tolist()
        assert snap["core_mask"] == result.core_mask.tolist()
        assert snap["window_arrivals"] == result.extra["window_arrivals"].tolist()
        assert snap["num_clusters"] == result.num_clusters
        assert snap["num_noise"] == result.num_noise
        assert snap["released"] is False
        assert snap["summary"]["num_updates"] == 3
