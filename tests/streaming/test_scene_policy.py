"""StreamingScene, RefitPolicy and the refit plumbing through the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbscan.disjoint_set import ParallelDisjointSet
from repro.perf.cost_model import DEFAULT_COST_MODEL, OpCounts
from repro.rtcore.device import RTDevice
from repro.rtcore.owl import owl_context_create
from repro.streaming import RefitPolicy, StreamingScene


class TestCostModelRefit:
    def test_refit_prices_below_build(self):
        for unit in ("rt", "sm"):
            assert (
                DEFAULT_COST_MODEL.refit_time_s(10_000, unit=unit)
                < DEFAULT_COST_MODEL.build_time_s(10_000, unit=unit)
            )

    def test_refit_pays_no_pipeline_setup(self):
        # For tiny primitive counts the build is dominated by the fixed
        # OptiX setup cost, which refit must not pay.
        build = DEFAULT_COST_MODEL.build_time_s(1, unit="rt")
        refit = DEFAULT_COST_MODEL.refit_time_s(1, unit="rt")
        assert refit < build / 5

    def test_opcounts_tracks_refit_prims(self):
        counts = OpCounts(bvh_refit_prims=7)
        merged = OpCounts().merge(counts)
        assert merged.bvh_refit_prims == 7
        assert "bvh_refit_prims" in merged.as_dict()


class TestOWLRefit:
    def test_group_refit_updates_bounds_and_charges_device(self):
        device = RTDevice()
        centers = np.random.default_rng(0).uniform(0, 5, size=(64, 3))
        context = owl_context_create(device)
        _, geom = context.create_sphere_geom_type(centers, 0.4)
        group = context.build_group(geom)
        # Move a primitive, refit, and check the root bounds follow it.
        geom.primitives.centers[0] = np.array([50.0, 50.0, 50.0])
        seconds = group.refit_accel()
        assert seconds > 0
        bvh = group.pipeline.bvh
        assert bvh.node_upper[0][0] >= 50.0
        assert bvh.builder.endswith("+refit")
        assert device.total_counts.bvh_refit_prims == 64
        # Refitting again must not stack another "+refit" suffix.
        group.refit_accel()
        assert bvh.builder.count("+refit") == 1 or group.pipeline.bvh.builder.count("+refit") == 1
        context.destroy()


class TestRefitPolicy:
    def test_invalid_structure_forces_rebuild(self):
        policy = RefitPolicy(mode="refit")
        action = policy.choose(
            cost_model=DEFAULT_COST_MODEL, num_prims=100,
            churn_fraction=0.0, structure_valid=False,
        )
        assert action == "rebuild"

    def test_modes(self):
        kwargs = dict(cost_model=DEFAULT_COST_MODEL, num_prims=1000, churn_fraction=0.1)
        assert RefitPolicy(mode="rebuild").choose(**kwargs) == "rebuild"
        assert RefitPolicy(mode="refit").choose(**kwargs) == "refit"
        assert RefitPolicy(mode="auto").choose(**kwargs) == "refit"

    def test_auto_rebuilds_on_high_churn(self):
        policy = RefitPolicy(mode="auto", churn_rebuild_fraction=0.25)
        assert (
            policy.choose(cost_model=DEFAULT_COST_MODEL, num_prims=1000, churn_fraction=0.5)
            == "rebuild"
        )


class TestStreamingScene:
    def _scene(self, **kwargs) -> StreamingScene:
        return StreamingScene(0.5, RTDevice(), initial_capacity=16, **kwargs)

    def test_allocate_recycles_lowest_slots_first(self):
        scene = self._scene()
        slots = scene.allocate(4)
        scene.set_points(slots, np.zeros((4, 3)))
        scene.commit(RefitPolicy())
        scene.deallocate(slots[[2, 0]])
        again = scene.allocate(3)
        assert list(again) == [0, 2, 4]

    def test_growth_marks_rebuild(self):
        scene = self._scene()
        slots = scene.allocate(10)
        scene.set_points(slots, np.random.default_rng(1).uniform(0, 1, (10, 3)))
        action, _, _ = scene.commit(RefitPolicy())
        assert action == "rebuild"
        more = scene.allocate(20)  # exceeds capacity 16
        assert scene.capacity >= 30
        scene.set_points(more, np.random.default_rng(2).uniform(0, 1, (20, 3)))
        action, _, counts = scene.commit(RefitPolicy(mode="refit"))
        assert action == "rebuild"  # growth invalidates the topology
        assert counts.bvh_build_prims == scene.capacity

    def test_parked_slots_never_hit(self):
        scene = self._scene()
        pts = np.array([[0.0, 0.0, 0.0], [0.3, 0.0, 0.0], [0.6, 0.0, 0.0]])
        slots = scene.allocate(3)
        scene.set_points(slots, pts)
        scene.commit(RefitPolicy())
        scene.deallocate(slots[1:2])
        scene.commit(RefitPolicy())
        q, p, _ = scene.query_pairs(slots[[0, 2]])
        # With the middle sphere parked the remaining points are 0.6 apart —
        # beyond eps=0.5 — so no pair may survive, least of all one
        # involving the parked slot.
        assert q.size == 0 and p.size == 0

    def test_query_excludes_self_and_matches_brute_force(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 2, size=(40, 3))
        scene = StreamingScene(0.4, RTDevice(), initial_capacity=64)
        slots = scene.allocate(40)
        scene.set_points(slots, pts)
        scene.commit(RefitPolicy())
        q, p, stats = scene.query_pairs(slots)
        got = set(zip(q.tolist(), p.tolist()))
        d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        expect = {
            (i, j)
            for i in range(40)
            for j in range(40)
            if i != j and d2[i, j] <= 0.4**2
        }
        assert got == expect
        assert stats.num_rays == 40

    def test_empty_query_is_free(self):
        scene = self._scene()
        q, p, stats = scene.query_pairs(np.empty(0, dtype=np.intp))
        assert q.size == 0 and p.size == 0
        assert stats.counts.kernel_launches == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingScene(0.0)
        with pytest.raises(ValueError):
            StreamingScene(0.5, initial_capacity=0)
        with pytest.raises(ValueError):
            StreamingScene(0.5, growth_factor=1.0)


class TestDisjointSetGrow:
    def test_grow_preserves_sets(self):
        forest = ParallelDisjointSet(4)
        forest.union_edges(np.array([0]), np.array([1]))
        forest.grow(8)
        assert len(forest) == 8
        assert forest.find(0) == forest.find(1)
        assert forest.find(6) == 6
        with pytest.raises(ValueError):
            forest.grow(2)
