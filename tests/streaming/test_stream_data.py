"""Stream generators: shapes, determinism and registry behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.stream import (
    burst_hotspot_stream,
    chunk_stream,
    drift_blob_stream,
    list_streams,
    make_stream,
    ngsim_replay_stream,
)


class TestChunkStream:
    def test_covers_input_exactly(self):
        pts = np.arange(20, dtype=np.float64).reshape(10, 2)
        chunks = list(chunk_stream(pts, 3))
        assert [c.shape[0] for c in chunks] == [3, 3, 3, 1]
        assert np.array_equal(np.vstack(chunks), pts)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunk_stream(np.zeros((4, 2)), 0))


class TestGenerators:
    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (drift_blob_stream, {}),
            (burst_hotspot_stream, {}),
            (ngsim_replay_stream, {}),
        ],
    )
    def test_shapes_and_determinism(self, factory, kwargs):
        a = list(factory(5, 40, seed=3, **kwargs))
        b = list(factory(5, 40, seed=3, **kwargs))
        assert len(a) == 5
        for chunk_a, chunk_b in zip(a, b):
            assert chunk_a.shape == (40, 2)
            assert chunk_a.dtype == np.float64
            assert np.isfinite(chunk_a).all()
            assert np.array_equal(chunk_a, chunk_b)

    def test_seeds_differ(self):
        a = np.vstack(list(drift_blob_stream(3, 30, seed=1)))
        b = np.vstack(list(drift_blob_stream(3, 30, seed=2)))
        assert not np.array_equal(a, b)

    def test_drift_moves_the_distribution(self):
        chunks = list(drift_blob_stream(12, 100, seed=4, drift=0.5, noise_fraction=0.0))
        first = chunks[0].mean(axis=0)
        last = chunks[-1].mean(axis=0)
        assert not np.allclose(first, last, atol=1e-3)

    def test_burst_chunks_are_denser(self):
        chunks = list(burst_hotspot_stream(6, 200, seed=5, burst_every=3))
        # Burst chunks (indices 2 and 5) concentrate points: their standard
        # deviation from the chunk mean is visibly below the uniform chunks'.
        spreads = [float(np.linalg.norm(c - c.mean(axis=0), axis=1).mean()) for c in chunks]
        assert spreads[2] < 0.7 * spreads[0]
        assert spreads[5] < 0.7 * spreads[3]


class TestRegistry:
    def test_list_and_make(self):
        names = list_streams()
        assert {"drift-blobs", "burst-hotspots", "ngsim-replay"} <= set(names)
        for name in names:
            chunks = list(make_stream(name, 2, 25, seed=0))
            assert len(chunks) == 2
            assert all(c.shape == (25, 2) for c in chunks)

    def test_unknown_stream_raises(self):
        with pytest.raises(KeyError):
            make_stream("no-such-stream", 1, 10)


class TestMultiTenantFeeds:
    def test_deterministic_and_decorrelated(self):
        from repro.data.stream import multi_tenant_feeds

        a = multi_tenant_feeds(3, 4, 50, seed=7)
        b = multi_tenant_feeds(3, 4, 50, seed=7)
        assert sorted(a) == ["tenant-00", "tenant-01", "tenant-02"]
        for tenant in a:
            assert all(
                np.array_equal(x, y) for x, y in zip(a[tenant], b[tenant])
            )
        # Different tenants draw from different seeds.
        assert not np.array_equal(a["tenant-00"][0], a["tenant-01"][0])

    def test_skew_concentrates_traffic_preserving_mean_rate(self):
        from repro.data.stream import multi_tenant_feeds

        feeds = multi_tenant_feeds(4, 3, 40, seed=0, skew=1.0)
        sizes = [feeds[t][0].shape[0] for t in sorted(feeds)]
        assert sizes == sorted(sizes, reverse=True)  # hot tenants first
        assert sizes[0] > 40 > sizes[-1]
        # Renormalised Zipf weights keep the ensemble mean near chunk_size.
        assert abs(sum(sizes) / len(sizes) - 40) <= 4

    def test_uniform_when_skew_zero(self):
        from repro.data.stream import multi_tenant_feeds

        feeds = multi_tenant_feeds(3, 2, 30, seed=1, skew=0.0)
        assert {c.shape[0] for chunks in feeds.values() for c in chunks} == {30}

    def test_validation(self):
        from repro.data.stream import multi_tenant_feeds

        with pytest.raises(ValueError):
            multi_tenant_feeds(0, 2, 30)
        with pytest.raises(ValueError):
            multi_tenant_feeds(2, 2, 30, skew=-0.5)


class TestInterleaveFeeds:
    def test_preserves_per_tenant_order_and_covers_all_chunks(self):
        from repro.data.stream import interleave_feeds, multi_tenant_feeds

        feeds = multi_tenant_feeds(3, 4, 20, seed=2)
        schedule = list(interleave_feeds(feeds, seed=5))
        assert len(schedule) == 12
        for tenant, chunks in feeds.items():
            mine = [c for t, c in schedule if t == tenant]
            assert len(mine) == len(chunks)
            for got, want in zip(mine, chunks):
                assert np.array_equal(got, want)

    def test_deterministic_and_actually_interleaved(self):
        from repro.data.stream import interleave_feeds, multi_tenant_feeds

        feeds = multi_tenant_feeds(3, 4, 20, seed=2)
        one = [t for t, _ in interleave_feeds(feeds, seed=5)]
        two = [t for t, _ in interleave_feeds(feeds, seed=5)]
        assert one == two
        # Not a simple concatenation of whole tenant feeds.
        assert one != sorted(one)
