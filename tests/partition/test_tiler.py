"""Tests for the spatial Tiler and the streaming capacity planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.transforms import lift_to_3d
from repro.partition.tiler import Tiler, plan_stream_capacity


class TestTilerValidation:
    def test_eps_must_be_positive(self):
        with pytest.raises(ValueError):
            Tiler(0.0)
        with pytest.raises(ValueError):
            Tiler(-1.0)

    def test_tiles_must_be_positive(self):
        with pytest.raises(ValueError):
            Tiler(0.5, tiles=0)

    def test_grid_must_be_three_positive_ints(self):
        with pytest.raises(ValueError):
            Tiler(0.5, grid=(2, 2))
        with pytest.raises(ValueError):
            Tiler(0.5, grid=(2, 0, 1))

    def test_halo_must_cover_eps(self):
        with pytest.raises(ValueError, match="halo"):
            Tiler(0.5, halo=0.25)
        assert Tiler(0.5, halo=0.75).halo == 0.75


class TestGridShape:
    def test_explicit_grid_wins(self, blob_points):
        assert Tiler(0.3, tiles=9, grid=(2, 1, 1)).grid_shape(blob_points) == (2, 1, 1)

    def test_degenerate_axes_never_split(self, blob_points):
        # 2D data is lifted to z = 0; z must stay unsplit.
        shape = Tiler(0.3, tiles=8).grid_shape(blob_points)
        assert shape[2] == 1
        assert int(np.prod(shape)) >= 8

    def test_single_tile(self, blob_points):
        assert Tiler(0.3, tiles=1).grid_shape(blob_points) == (1, 1, 1)

    def test_constant_data_collapses_to_one_tile(self):
        pts = np.zeros((50, 2))
        assert Tiler(0.5, tiles=4).grid_shape(pts) == (1, 1, 1)

    def test_longest_axis_splits_first(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(200, 2)) * np.array([10.0, 1.0])
        assert Tiler(0.1, tiles=2).grid_shape(pts) == (2, 1, 1)


class TestSplit:
    @pytest.mark.parametrize("tiles", [1, 2, 4, 6, 9])
    def test_ownership_is_a_partition(self, blob_points, tiles):
        split = Tiler(0.3, tiles=tiles).split(blob_points)
        owned = np.concatenate([t.owned for t in split])
        assert owned.size == blob_points.shape[0]
        assert np.array_equal(np.sort(owned), np.arange(blob_points.shape[0]))

    @pytest.mark.parametrize("tiles", [2, 4, 9])
    def test_halo_covers_every_eps_neighbourhood(self, blob_points, tiles):
        """Every ε-neighbour of an owned point must be locally visible."""
        eps = 0.45
        pts = lift_to_3d(blob_points)
        d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        for tile in Tiler(eps, tiles=tiles).split(blob_points):
            local = set(tile.indices.tolist())
            for q in tile.owned:
                neighbours = np.flatnonzero(d2[q] <= eps * eps)
                assert set(neighbours.tolist()) <= local

    def test_halo_points_are_not_owned(self, blob_points):
        for tile in Tiler(0.3, tiles=4).split(blob_points):
            assert not set(tile.owned.tolist()) & set(tile.halo.tolist())

    def test_indices_puts_owned_first(self, blob_points):
        tile = Tiler(0.3, tiles=4).split(blob_points)[0]
        np.testing.assert_array_equal(tile.indices[: tile.num_owned], tile.owned)
        np.testing.assert_array_equal(tile.indices[tile.num_owned :], tile.halo)

    def test_empty_tiles_are_dropped(self):
        # Two distant clumps with a 3-tile split along x: the middle is empty.
        pts = np.vstack([np.zeros((10, 2)), np.full((10, 2), 30.0)])
        split = Tiler(0.5, grid=(3, 1, 1)).split(pts)
        assert len(split) == 2
        assert all(t.num_owned > 0 for t in split)

    def test_3d_data(self, blob_points_3d):
        split = Tiler(0.5, tiles=8).split(blob_points_3d)
        owned = np.concatenate([t.owned for t in split])
        assert owned.size == blob_points_3d.shape[0]

    def test_explicit_grid_on_degenerate_axis(self, blob_points):
        """An explicit grid splitting the zero-extent lifted z axis must not
        divide by zero; ownership collapses into the first z slab."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            split = Tiler(0.3, grid=(2, 2, 2)).split(blob_points)
        owned = np.concatenate([t.owned for t in split])
        assert np.array_equal(np.sort(owned), np.arange(blob_points.shape[0]))
        assert all(t.grid_pos[2] == 0 for t in split)

    def test_summary_fields(self, blob_points):
        s = Tiler(0.3, tiles=4).split(blob_points)[0].summary()
        assert {"tile_id", "grid_pos", "num_owned", "num_halo"} <= set(s)


class TestCapacity:
    def test_occupancy_and_bound(self, blob_points):
        tiler = Tiler(0.3, tiles=4)
        occ = tiler.occupancy(blob_points)
        assert occ.sum() >= blob_points.shape[0]  # halos double-count
        assert tiler.capacity_bound(blob_points) == occ.max()

    def test_single_tile_bound_is_n(self, blob_points):
        assert Tiler(0.3, tiles=1).capacity_bound(blob_points) == blob_points.shape[0]


class TestPlanStreamCapacity:
    def test_unbounded_window_pre_sizes_to_the_feed(self, blob_points):
        cap = plan_stream_capacity(blob_points, 0.3, window=None, chunk_size=50)
        assert cap == blob_points.shape[0]

    def test_windowed_run_is_bounded_by_window_plus_chunk(self, blob_points):
        cap = plan_stream_capacity(blob_points, 0.3, window=100, chunk_size=50)
        assert cap == 150

    def test_small_feed_tightens_the_window_bound(self, blob_points):
        n = blob_points.shape[0]
        cap = plan_stream_capacity(blob_points, 0.3, window=10 * n, chunk_size=50)
        assert cap == n + 50

    def test_sharded_bound_uses_the_largest_tile(self, blob_points):
        whole = plan_stream_capacity(blob_points, 0.3, window=None, chunk_size=50)
        shard = plan_stream_capacity(blob_points, 0.3, window=None, chunk_size=50, tiles=4)
        assert shard < whole

    def test_chunk_size_validated(self, blob_points):
        with pytest.raises(ValueError):
            plan_stream_capacity(blob_points, 0.3, window=None, chunk_size=0)
