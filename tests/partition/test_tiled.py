"""Partition-layer behaviour: halo mechanics, executors, API integration.

The backend x dataset bit-identity acceptance bar for the tiled layer lives
in tests/test_equivalence_matrix.py (the cross-layer equivalence matrix);
this file keeps the partition-specific checks — halo coverage, tiling grids,
worker/process executors, refit, and the per-tile operation counts stitching
back to the untiled run's totals for every workload-invariant counter.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api.registry import get_algorithm
from repro.api.spec import ClustererSpec
from repro.bench.runner import run_sweep
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.partition import ParallelMap, TiledRTDBSCAN, tiled_rt_dbscan

BACKENDS = ["rt", "grid", "kdtree", "brute"]


def _assert_same_result(tiled, ref):
    np.testing.assert_array_equal(tiled.labels, ref.labels)
    np.testing.assert_array_equal(tiled.core_mask, ref.core_mask)
    np.testing.assert_array_equal(tiled.neighbor_counts, ref.neighbor_counts)


class TestLabelEquivalence:
    def test_blobs_3d_match_untiled(self, blob_points_3d):
        ref = RTDBSCAN(eps=0.5, min_pts=5).fit(blob_points_3d)
        tiled = TiledRTDBSCAN(eps=0.5, min_pts=5, tiles=8).fit(blob_points_3d)
        _assert_same_result(tiled, ref)

    def test_halo_overlaps_are_exercised(self, blob_points):
        """The equivalence must hold *because of* the halo, not vacuously."""
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4).fit(blob_points)
        assert tiled.extra["num_boundary_pairs"] > 0
        assert any(t["num_halo"] > 0 for t in tiled.extra["tiles"])
        # At least one cluster spans more than one tile's owned set, so the
        # boundary merge genuinely stitched shards together.
        owned_of = np.empty(blob_points.shape[0], dtype=int)
        for tile in repro.Tiler(0.3, tiles=4).split(blob_points):
            owned_of[tile.owned] = tile.tile_id
        spans = [
            len(set(owned_of[tiled.labels == label].tolist()))
            for label in range(tiled.num_clusters)
        ]
        assert max(spans) > 1

    def test_workers_do_not_change_labels(self, blob_points):
        ref = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4).fit(blob_points)
        threaded = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4, workers=4).fit(blob_points)
        _assert_same_result(threaded, ref)

    def test_process_executor_matches(self, blob_points):
        ref = TiledRTDBSCAN(eps=0.3, min_pts=5, backend="kdtree", tiles=4).fit(blob_points)
        proc = TiledRTDBSCAN(
            eps=0.3, min_pts=5, backend="kdtree", tiles=4, workers=2,
            executor_mode="process",
        ).fit(blob_points)
        _assert_same_result(proc, ref)

    def test_explicit_grid(self, blob_points):
        ref = RTDBSCAN(eps=0.3, min_pts=5).fit(blob_points)
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, grid=(3, 2, 1)).fit(blob_points)
        _assert_same_result(tiled, ref)

    def test_refit_works_from_tiled_result(self, blob_points):
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4).fit(blob_points)
        ref = RTDBSCAN(eps=0.3, min_pts=10).fit(blob_points)
        np.testing.assert_array_equal(tiled.refit(10).labels, ref.labels)

    def test_functional_wrapper(self, blob_points):
        result = tiled_rt_dbscan(blob_points, 0.3, 5, tiles=4)
        assert result.algorithm == "rt-dbscan-tiled"


class TestCountParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_invariant_counters_stitch_back(self, blob_points, backend):
        """Per-tile OpCounts sum to the untiled run's workload invariants."""
        ref = RTDBSCAN(eps=0.3, min_pts=5, backend=backend).fit(blob_points)
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, backend=backend, tiles=4).fit(blob_points)

        # The merge performs the identical union/atomic work (same edge
        # multiset, same deterministic formation pass).
        ref_form = ref.report.phase("cluster_formation").counts
        tiled_form = tiled.report.phase("cluster_formation").counts
        assert tiled_form.union_ops == ref_form.union_ops
        assert tiled_form.atomic_ops == ref_form.atomic_ops

        # One query per owned point per stage: ray totals match exactly, and
        # the per-tile summaries stitch back to the phase totals.
        per_tile = tiled.extra["tiles"]
        n = blob_points.shape[0]
        assert sum(t["num_owned"] for t in per_tile) == n
        phase_total = sum(
            p.counts.distance_computations + p.counts.intersection_calls
            for p in tiled.report.phases
        )
        tile_total = sum(
            t["counts"]["distance_computations"] + t["counts"]["intersection_calls"]
            for t in per_tile
        )
        assert phase_total == tile_total

        # Host backends derive candidates from data volume, so tiling can
        # only shrink them (each shard's index covers its local set).  The
        # rt and kdtree backends charge real tree-traversal candidates,
        # which are BVH/kd-tree-shape dependent — per-tile trees pack
        # differently — so they are only bounded within rounding.
        ref_candidates = sum(
            p.counts.distance_computations + p.counts.intersection_calls
            for p in ref.report.phases
        )
        if backend in ("rt", "kdtree"):
            assert tile_total <= 1.25 * ref_candidates
        else:
            assert tile_total <= ref_candidates

    def test_brute_candidate_work_shrinks(self, blob_points):
        """For the quadratic backend the tiling win is strict and large."""
        ref = RTDBSCAN(eps=0.3, min_pts=5, backend="brute").fit(blob_points)
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, backend="brute", tiles=4).fit(blob_points)
        ref_dist = sum(p.counts.distance_computations for p in ref.report.phases)
        tiled_dist = sum(p.counts.distance_computations for p in tiled.report.phases)
        assert tiled_dist < ref_dist

    def test_critical_path_below_total(self, blob_points):
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4).fit(blob_points)
        meta = tiled.report.metadata
        assert 0 < meta["critical_path_seconds"] < tiled.report.total_simulated_seconds
        assert meta["parallel_speedup_bound"] > 1.0

    def test_report_phases_and_metadata(self, blob_points):
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4, workers=2).fit(blob_points)
        names = [p.name for p in tiled.report.phases]
        assert names == ["tile_split", "bvh_build", "core_identification", "cluster_formation"]
        meta = tiled.report.metadata
        assert meta["num_tiles"] == 4
        assert meta["workers"] == 2
        assert meta["executor_mode"] == "thread"


class TestApiIntegration:
    def test_registry_entry(self):
        entry = get_algorithm("rt-dbscan-tiled")
        assert entry.supports_backend
        assert entry.supports_tiles

    def test_spec_tiles_and_workers_round_trip(self):
        spec = ClustererSpec(algo="rt-dbscan-tiled", eps=0.3, tiles=4, workers=2)
        assert spec.resolve()[0].name == "rt-dbscan-tiled"
        assert spec.as_dict()["tiles"] == 4
        assert spec.as_dict()["workers"] == 2

    def test_spec_rejects_tiles_for_untiled_algorithms(self):
        with pytest.raises(ValueError, match="tiles"):
            ClustererSpec(algo="rt-dbscan", eps=0.3, tiles=4).resolve()

    def test_spec_validates_tiles_and_workers(self):
        with pytest.raises(ValueError):
            ClustererSpec(algo="rt-dbscan-tiled", eps=0.3, tiles=0)
        with pytest.raises(ValueError):
            ClustererSpec(algo="rt-dbscan-tiled", eps=0.3, workers=-2)

    def test_facade_runs_tiled(self, blob_points):
        ref = repro.cluster(blob_points, eps=0.3, min_pts=5)
        got = repro.cluster(
            blob_points, "rt-dbscan-tiled", eps=0.3, min_pts=5, tiles=4, workers=2
        )
        np.testing.assert_array_equal(got.labels, ref.labels)

    def test_facade_at_backend_spelling(self, blob_points):
        ref = repro.cluster(blob_points, eps=0.3, min_pts=5)
        got = repro.cluster(blob_points, "rt-dbscan-tiled@kdtree", eps=0.3, min_pts=5, tiles=4)
        np.testing.assert_array_equal(got.labels, ref.labels)

    def test_facade_exposes_calibrated_eps(self, blob_points):
        result = repro.cluster(blob_points, min_pts=5, seed=11)
        assert result.extra["calibrated_eps"] == pytest.approx(result.params.eps)
        assert result.extra["calibration_seed"] == 11
        assert result.report.metadata["calibrated_eps"] == result.extra["calibrated_eps"]

    def test_facade_explicit_eps_has_no_calibration_metadata(self, blob_points):
        result = repro.cluster(blob_points, eps=0.3, min_pts=5)
        assert "calibrated_eps" not in result.extra

    def test_facade_calibration_seed_is_reproducible(self, rng):
        pts = rng.uniform(-5, 5, size=(600, 2))
        a = repro.cluster(pts, min_pts=5, seed=3, calibration_sample=200)
        b = repro.cluster(pts, min_pts=5, seed=3, calibration_sample=200)
        c = repro.cluster(pts, min_pts=5, seed=4, calibration_sample=200)
        assert a.params.eps == b.params.eps
        # A different seed samples different points; ε may legitimately tie,
        # but the calibration inputs differ — record both for the comparison.
        assert c.extra["calibration_seed"] == 4

    def test_auto_tiles(self, blob_points):
        # "auto" keeps small inputs untiled and stays label-identical.
        ref = RTDBSCAN(eps=0.3, min_pts=5).fit(blob_points)
        tiled = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles="auto").fit(blob_points)
        _assert_same_result(tiled, ref)
        assert tiled.extra["num_tiles"] == 1

    def test_invalid_tiles_rejected(self):
        with pytest.raises(ValueError):
            TiledRTDBSCAN(eps=0.3, min_pts=5, tiles="many")
        with pytest.raises(ValueError):
            TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=0)


class TestSweepParallelism:
    def _configs(self, blob_points):
        return [("blobs", blob_points, 0.3, 5), ("blobs", blob_points, 0.45, 5)]

    def test_parallel_sweep_matches_serial(self, blob_points):
        algos = ["rt-dbscan", "rt-dbscan-tiled"]
        serial = run_sweep(algos, self._configs(blob_points))
        threaded = run_sweep(algos, self._configs(blob_points), workers=4)
        assert len(serial) == len(threaded) == 4
        for s, t in zip(serial, threaded):
            s_dict, t_dict = s.as_dict(), t.as_dict()
            # Wall-clock differs by construction; simulated results must not.
            s_dict.pop("wall_seconds"), t_dict.pop("wall_seconds")
            assert s_dict == t_dict

    def test_existing_executor_accepted(self, blob_points):
        records = run_sweep(
            ["rt-dbscan"], self._configs(blob_points), workers=ParallelMap(workers=2)
        )
        assert [r.status for r in records] == ["ok", "ok"]
