"""Tests for the shared ParallelMap executor."""

from __future__ import annotations

import threading
import time

import pytest

from repro.partition.executor import ParallelMap, as_parallel_map


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_is_the_default(self):
        pm = ParallelMap()
        assert pm.is_serial
        assert pm.workers == 1
        assert pm.map(_square, [1, 2, 3]) == [1, 4, 9]

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_low_worker_counts_force_serial(self, workers):
        pm = ParallelMap(workers=workers, mode="thread")
        assert pm.is_serial

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_results_keep_input_order(self, mode):
        pm = ParallelMap(workers=4, mode=mode)
        items = list(range(20))
        assert pm.map(_square, items) == [x * x for x in items]

    def test_thread_mode_actually_runs_concurrently(self):
        barrier = threading.Barrier(2, timeout=5)

        def rendezvous(_):
            # Both tasks must be in flight at once for the barrier to pass.
            barrier.wait()
            return threading.get_ident()

        idents = ParallelMap(workers=2, mode="thread").map(rendezvous, [0, 1])
        assert len(idents) == 2

    def test_single_item_short_circuits_to_serial(self):
        pm = ParallelMap(workers=4, mode="thread")
        assert pm.map(_square, [3]) == [9]

    def test_empty_input(self):
        assert ParallelMap(workers=4).map(_square, []) == []

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_exceptions_propagate(self, mode):
        def boom(x):
            raise RuntimeError(f"bad item {x}")

        with pytest.raises(RuntimeError, match="bad item"):
            ParallelMap(workers=2, mode=mode).map(boom, [1, 2])

    def test_starmap(self):
        pm = ParallelMap(workers=2)
        assert pm.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_starmap_in_process_mode(self):
        # The unpacking wrapper must be picklable for process pools.
        pm = ParallelMap(workers=2, mode="process")
        assert pm.starmap(divmod, [(7, 2), (9, 4)]) == [(3, 1), (2, 1)]

    def test_invalid_mode_and_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelMap(mode="gpu")
        with pytest.raises(ValueError):
            ParallelMap(workers=-1)

    def test_serial_stays_in_calling_thread(self):
        ident = ParallelMap().map(lambda _: threading.get_ident(), [0])[0]
        assert ident == threading.get_ident()

    def test_thread_mode_overlaps_sleeps(self):
        # Two 50 ms sleeps on two workers should take well under 100 ms.
        pm = ParallelMap(workers=2, mode="thread")
        start = time.perf_counter()
        pm.map(lambda _: time.sleep(0.05), [0, 1])
        assert time.perf_counter() - start < 0.095


class TestAsParallelMap:
    def test_none_gives_serial(self):
        assert as_parallel_map(None).is_serial

    def test_int_gives_threads(self):
        pm = as_parallel_map(3)
        assert pm.workers == 3
        assert pm.mode == "thread"

    def test_mode_override(self):
        assert as_parallel_map(3, mode="process").mode == "process"

    def test_existing_executor_passes_through(self):
        pm = ParallelMap(workers=2, mode="thread")
        assert as_parallel_map(pm) is pm

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_parallel_map("four")
