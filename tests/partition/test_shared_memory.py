"""Process executors ship tile payloads via shared memory, not pickle.

Regression suite for the zero-pickle-cost fan-out: under a process executor
every :class:`TileJob`'s array payloads are :class:`SharedNDArray` handles
backed by one :class:`SharedArrayPool` segment, so pickling a job serialises
segment metadata only — no point bytes cross the pickle pipe.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.partition.executor import SharedArrayPool, SharedNDArray, as_ndarray, as_parallel_map
from repro.partition.tiled import TiledRTDBSCAN, run_tile


@pytest.fixture(scope="module")
def blob_points():
    pts, _ = make_blobs(4000, centers=5, std=0.3, seed=17)
    return pts


class TestSharedNDArray:
    def test_round_trip_through_pickle(self):
        arr = np.arange(3000, dtype=np.float64).reshape(-1, 3)
        with SharedArrayPool.for_arrays([arr]) as pool:
            handle = pool.share(arr)
            payload = pickle.dumps(handle)
            assert len(payload) < 1024  # metadata only, no array bytes
            clone = pickle.loads(payload)
            np.testing.assert_array_equal(clone.asarray(), arr)
            assert not clone.asarray().flags.writeable

    def test_as_ndarray_passthrough(self):
        arr = np.ones(5)
        assert as_ndarray(arr) is arr

    def test_pool_capacity_enforced(self):
        with SharedArrayPool(128) as pool:
            with pytest.raises(ValueError, match="capacity"):
                pool.share(np.zeros(1024))


class TestProcessJobsPickleNoPoints:
    def test_jobs_pickle_small_under_process_executor(self, blob_points):
        clusterer = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4, backend="kdtree")
        pts3 = np.hstack([blob_points, np.zeros((len(blob_points), 1))])
        from repro.partition.tiler import Tiler

        tiler = Tiler(0.3, tiles=4)
        tiles = tiler.split(pts3)
        executor = as_parallel_map(2, mode="process")
        jobs, pool = clusterer._make_jobs(pts3, tiles, executor)
        try:
            assert pool is not None
            point_bytes = sum(as_ndarray(j.points).nbytes for j in jobs)
            assert point_bytes > 50_000  # the payload is genuinely large...
            for job in jobs:
                assert isinstance(job.points, SharedNDArray)
                assert isinstance(job.local_to_global, SharedNDArray)
                assert len(pickle.dumps(job)) < 4096  # ...but the pickle is not
            # A pickled job round-trips into a runnable worker input.
            clone = pickle.loads(pickle.dumps(jobs[0]))
            result = run_tile(clone)
            assert result.num_owned == jobs[0].num_owned
        finally:
            pool.close()

    def test_serial_jobs_stay_plain_arrays(self, blob_points):
        clusterer = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4, backend="kdtree")
        pts3 = np.hstack([blob_points, np.zeros((len(blob_points), 1))])
        from repro.partition.tiler import Tiler

        tiles = Tiler(0.3, tiles=4).split(pts3)
        jobs, pool = clusterer._make_jobs(pts3, tiles, as_parallel_map(None))
        assert pool is None
        assert all(isinstance(j.points, np.ndarray) for j in jobs)

    def test_process_run_matches_serial_labels(self, blob_points):
        serial = TiledRTDBSCAN(eps=0.3, min_pts=5, tiles=4, backend="kdtree").fit(blob_points)
        procs = TiledRTDBSCAN(
            eps=0.3, min_pts=5, tiles=4, backend="kdtree",
            workers=2, executor_mode="process",
        ).fit(blob_points)
        np.testing.assert_array_equal(procs.labels, serial.labels)
        np.testing.assert_array_equal(procs.core_mask, serial.core_mask)
