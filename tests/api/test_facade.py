"""Tests for the one-call ``repro.cluster`` facade.

The acceptance bar: ``repro.cluster(points, algo=a)`` must produce labels
identical to the legacy constructor path for every registered algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api.registry import list_algorithms
from repro.data.synthetic import make_blobs

EPS, MIN_PTS = 0.4, 5


@pytest.fixture(scope="module")
def blobs():
    pts, _ = make_blobs(400, centers=3, std=0.2, seed=7)
    return pts


def _legacy_labels(algo: str, points: np.ndarray) -> np.ndarray:
    """The pre-registry construction path for every algorithm."""
    if algo == "rt-dbscan":
        return repro.RTDBSCAN(eps=EPS, min_pts=MIN_PTS).fit(points).labels
    if algo == "rt-dbscan-triangles":
        return repro.RTDBSCAN(eps=EPS, min_pts=MIN_PTS, triangle_mode=True).fit(points).labels
    if algo == "fdbscan":
        return repro.FDBSCAN(eps=EPS, min_pts=MIN_PTS).fit(points).labels
    if algo == "fdbscan-earlyexit":
        return repro.FDBSCAN(eps=EPS, min_pts=MIN_PTS, early_exit=True).fit(points).labels
    if algo == "g-dbscan":
        return repro.GDBSCAN(eps=EPS, min_pts=MIN_PTS).fit(points).labels
    if algo == "cuda-dclust+":
        return repro.CUDADClustPlus(eps=EPS, min_pts=MIN_PTS).fit(points).labels
    if algo == "classic":
        return repro.classic_dbscan(points, EPS, MIN_PTS).labels
    if algo == "streaming-rt-dbscan":
        engine = repro.StreamingRTDBSCAN(eps=EPS, min_pts=MIN_PTS)
        engine.update(points)
        return engine.result().labels
    if algo == "rt-dbscan-tiled":
        return repro.TiledRTDBSCAN(eps=EPS, min_pts=MIN_PTS).fit(points).labels
    raise AssertionError(f"no legacy path recorded for {algo!r} — extend this test")


class TestFacadeEquivalence:
    def test_every_registered_algorithm_has_a_legacy_path(self):
        # Guards the test itself: a newly registered algorithm must be added
        # to _legacy_labels for the equivalence sweep below to cover it.
        for algo in list_algorithms():
            assert algo in {
                "rt-dbscan", "rt-dbscan-triangles", "rt-dbscan-tiled", "fdbscan",
                "fdbscan-earlyexit", "g-dbscan", "cuda-dclust+", "classic",
                "streaming-rt-dbscan",
            }

    @pytest.mark.parametrize("algo", [
        "rt-dbscan", "rt-dbscan-triangles", "rt-dbscan-tiled", "fdbscan",
        "fdbscan-earlyexit", "g-dbscan", "cuda-dclust+", "classic",
        "streaming-rt-dbscan",
    ])
    def test_facade_matches_legacy_constructor(self, blobs, algo):
        got = repro.cluster(blobs, algo, eps=EPS, min_pts=MIN_PTS)
        np.testing.assert_array_equal(got.labels, _legacy_labels(algo, blobs))

    @pytest.mark.parametrize("backend", ["rt", "grid", "kdtree", "brute"])
    def test_facade_backend_kwarg(self, blobs, backend):
        ref = repro.cluster(blobs, eps=EPS, min_pts=MIN_PTS)
        got = repro.cluster(blobs, eps=EPS, min_pts=MIN_PTS, backend=backend)
        np.testing.assert_array_equal(got.labels, ref.labels)
        assert got.extra["backend"] == backend


class TestFacadeBehaviour:
    def test_auto_eps_calibration(self, blobs):
        result = repro.cluster(blobs, min_pts=5)
        assert result.params.eps > 0
        assert result.num_clusters >= 1

    def test_result_type_and_report(self, blobs):
        result = repro.cluster(blobs, eps=EPS, min_pts=MIN_PTS)
        assert isinstance(result, repro.DBSCANResult)
        assert result.report is not None
        assert "bvh_build" in result.report.breakdown()

    def test_device_is_charged(self, blobs):
        device = repro.RTDevice()
        repro.cluster(blobs, eps=EPS, min_pts=MIN_PTS, device=device)
        assert device.total_counts.rt_node_visits > 0

    def test_unknown_algorithm_raises(self, blobs):
        with pytest.raises(KeyError, match="available"):
            repro.cluster(blobs, "hdbscan", eps=EPS, min_pts=MIN_PTS)

    def test_partial_fit_through_registry(self, blobs):
        spec = repro.ClustererSpec(algo="streaming-rt-dbscan", eps=EPS, min_pts=MIN_PTS)
        engine = repro.make_clusterer(spec)
        for chunk in np.array_split(blobs, 4):
            engine.partial_fit(chunk)
        batch = repro.rt_dbscan(blobs, eps=EPS, min_pts=MIN_PTS)
        np.testing.assert_array_equal(engine.result().labels, batch.labels)
