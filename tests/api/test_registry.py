"""Tests for the algorithm/backend registries and the ClustererSpec."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import registry as reg
from repro.api import ClustererSpec, make_clusterer
from repro.api.protocol import Clusterer, ClustererMixin, StreamingClusterer
from repro.api.registry import (
    get_algorithm,
    get_backend,
    list_algorithms,
    list_backends,
    resolve_algorithm,
)
from repro.data.synthetic import make_blobs


@pytest.fixture()
def blobs():
    pts, _ = make_blobs(300, centers=2, std=0.2, seed=11)
    return pts


class TestRegistryContents:
    def test_builtin_algorithms_registered(self):
        expected = {
            "rt-dbscan", "rt-dbscan-triangles", "fdbscan", "fdbscan-earlyexit",
            "g-dbscan", "cuda-dclust+", "classic", "streaming-rt-dbscan",
        }
        assert expected <= set(list_algorithms())

    def test_builtin_backends_registered(self):
        assert {"rt", "grid", "kdtree", "brute"} <= set(list_backends())

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("RT-DBSCAN").name == "rt-dbscan"
        assert get_backend("KDTree").name == "kdtree"

    def test_entries_carry_capabilities(self):
        assert get_algorithm("rt-dbscan").supports_backend
        assert get_algorithm("streaming-rt-dbscan").supports_partial_fit
        assert not get_algorithm("classic").instrumented


class TestRegistryRoundTrip:
    def test_register_resolve_build(self, blobs):
        @reg.register_algorithm("test-null-clusterer", description="everything is noise")
        class NullClusterer(ClustererMixin):
            def __init__(self, eps, min_pts, device=None):
                self.eps, self.min_pts = eps, min_pts

            def fit(self, points):
                from repro.dbscan.params import DBSCANParams, DBSCANResult

                n = np.atleast_2d(points).shape[0]
                return DBSCANResult(
                    labels=np.full(n, -1, dtype=np.int64),
                    core_mask=np.zeros(n, dtype=bool),
                    params=DBSCANParams(eps=self.eps, min_pts=self.min_pts),
                    algorithm="test-null-clusterer",
                )

        try:
            entry, backend = resolve_algorithm("test-null-clusterer")
            assert backend is None and entry.factory is NullClusterer
            clusterer = make_clusterer(
                ClustererSpec(algo="test-null-clusterer", eps=0.5, min_pts=3)
            )
            assert isinstance(clusterer, Clusterer)
            result = clusterer.fit(blobs)
            assert result.num_noise == len(blobs)
            np.testing.assert_array_equal(clusterer.fit_predict(blobs), result.labels)
        finally:
            reg._ALGORITHMS.pop("test-null-clusterer", None)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            reg.register_algorithm("rt-dbscan")(lambda **kw: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register_backend("grid")(lambda *a, **kw: None)

    def test_unknown_algorithm_lists_available(self):
        with pytest.raises(KeyError, match="rt-dbscan"):
            get_algorithm("hdbscan")

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="kdtree"):
            get_backend("octree")

    def test_at_spelling_resolves_backend(self):
        entry, backend = resolve_algorithm("rt-dbscan@grid")
        assert entry.name == "rt-dbscan"
        assert backend == "grid"

    def test_at_spelling_rejected_for_non_backend_algorithms(self):
        with pytest.raises(ValueError, match="does not accept"):
            resolve_algorithm("fdbscan@grid")

    def test_at_spelling_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            resolve_algorithm("rt-dbscan@octree")


class TestClustererSpec:
    def test_invalid_eps_raises(self):
        with pytest.raises(ValueError):
            ClustererSpec(eps=-1.0)
        with pytest.raises(ValueError):
            ClustererSpec(eps=float("nan"))

    def test_invalid_min_pts_raises(self):
        with pytest.raises(ValueError):
            ClustererSpec(eps=0.5, min_pts=0)

    def test_backend_conflict_raises(self):
        spec = ClustererSpec(algo="rt-dbscan@grid", eps=0.5, backend="kdtree")
        with pytest.raises(ValueError, match="conflicting"):
            spec.resolve()

    def test_consistent_at_and_field_backend_ok(self):
        spec = ClustererSpec(algo="rt-dbscan@grid", eps=0.5, backend="grid")
        _, backend = spec.resolve()
        assert backend == "grid"

    def test_backend_on_non_backend_algorithm_raises(self):
        with pytest.raises(ValueError, match="does not accept"):
            ClustererSpec(algo="fdbscan", eps=0.5, backend="grid").resolve()

    def test_make_clusterer_requires_eps(self):
        with pytest.raises(ValueError, match="eps"):
            make_clusterer(ClustererSpec(algo="rt-dbscan", min_pts=5))

    def test_make_clusterer_rejects_non_spec(self):
        with pytest.raises(TypeError):
            make_clusterer("rt-dbscan")

    def test_params_forwarded_to_factory(self, blobs):
        spec = ClustererSpec(
            algo="rt-dbscan", eps=0.5, min_pts=5, params={"keep_neighbor_counts": False}
        )
        result = make_clusterer(spec).fit(blobs)
        assert result.neighbor_counts is None

    def test_as_dict_round_trip(self):
        spec = ClustererSpec(algo="rt-dbscan", eps=0.5, min_pts=7, backend="grid",
                             params={"builder": "sah"})
        d = spec.as_dict()
        assert ClustererSpec(**d) == spec


class TestProtocols:
    def test_all_registered_algorithms_satisfy_protocol(self):
        for name in list_algorithms():
            entry = get_algorithm(name)
            clusterer = entry.factory(eps=0.5, min_pts=5, device=None)
            assert isinstance(clusterer, Clusterer), name
            if entry.supports_partial_fit:
                assert isinstance(clusterer, StreamingClusterer), name

    def test_streaming_engine_is_streaming_clusterer(self):
        engine = repro.StreamingRTDBSCAN(eps=0.5, min_pts=5)
        assert isinstance(engine, StreamingClusterer)
