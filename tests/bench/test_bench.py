"""Tests for the benchmark harness (runner, experiments, reports) and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS, get_experiment, list_experiments, run_experiment
from repro.bench.report import (
    format_breakdown,
    format_records,
    format_speedup_table,
    format_time_table,
)
from repro.bench.runner import ALGORITHMS, RunRecord, run_single, run_sweep, speedup_series
from repro.cli import build_parser, main
from repro.data.synthetic import make_blobs


@pytest.fixture(scope="module")
def small_blobs():
    pts, _ = make_blobs(400, centers=3, std=0.2, seed=0)
    return pts


class TestRunner:
    def test_run_single_rt(self, small_blobs):
        rec = run_single("rt-dbscan", small_blobs, 0.4, 5, dataset="blobs")
        assert rec.status == "ok"
        assert rec.num_clusters == 3
        assert rec.simulated_seconds > 0
        assert "bvh_build" in rec.breakdown

    def test_run_single_classic(self, small_blobs):
        rec = run_single("classic", small_blobs, 0.4, 5)
        assert rec.status == "ok"
        assert rec.num_clusters == 3

    def test_unknown_algorithm_raises(self, small_blobs):
        with pytest.raises(KeyError):
            run_single("hdbscan", small_blobs, 0.4, 5)

    def test_oom_reported_not_raised(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 10, size=(100_000, 2))
        rec = run_single("g-dbscan", pts, 0.01, 5, dataset="big")
        assert rec.status == "oom"
        assert "memory" in rec.error.lower()

    def test_run_sweep_covers_all_configs(self, small_blobs):
        records = run_sweep(
            ["rt-dbscan", "fdbscan"],
            [("blobs", small_blobs, 0.4, 5), ("blobs", small_blobs, 0.6, 5)],
        )
        assert len(records) == 4
        assert {r.algorithm for r in records} == {"rt-dbscan", "fdbscan"}

    def test_all_registered_algorithms_run(self, small_blobs):
        for name in ALGORITHMS:
            rec = run_single(name, small_blobs, 0.4, 5)
            assert rec.status == "ok", name

    def test_speedup_series(self, small_blobs):
        records = run_sweep(
            ["rt-dbscan", "fdbscan"],
            [("blobs", small_blobs, 0.4, 5), ("blobs", small_blobs, 0.8, 5)],
        )
        series = speedup_series(records, baseline="fdbscan", target="rt-dbscan", key="eps")
        assert len(series) == 2
        assert all(s["speedup"] > 0 for s in series)

    def test_record_as_dict(self, small_blobs):
        rec = run_single("fdbscan", small_blobs, 0.4, 5)
        d = rec.as_dict()
        assert d["algorithm"] == "fdbscan"
        assert isinstance(d["breakdown"], dict)


class TestExperimentRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig4", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7",
            "table1", "table2", "table3", "fig9a", "fig9b", "fig9c", "sec5d", "sec6c",
        }
        # Beyond-paper experiments (e.g. the backend ablation) may extend the
        # registry; every paper artifact must stay present.
        assert expected <= set(list_experiments())

    def test_specs_reference_known_algorithms(self):
        for spec in EXPERIMENTS.values():
            for algo in spec.algorithms:
                assert algo in ALGORITHMS, (spec.id, algo)
            assert spec.baseline in spec.algorithms

    def test_specs_have_paper_metadata(self):
        for spec in EXPERIMENTS.values():
            assert spec.paper_ref
            assert spec.paper_sizes
            assert spec.description

    def test_get_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_build_configs_eps_sweep(self):
        spec = get_experiment("fig5a")
        configs = spec.build_configs(scale=0.02)
        assert len(configs) == len(spec.eps_factors)
        eps_values = [c[2] for c in configs]
        assert eps_values == sorted(eps_values)

    def test_build_configs_size_sweep(self):
        spec = get_experiment("fig6a")
        configs = spec.build_configs(scale=0.05)
        sizes = [len(c[1]) for c in configs]
        assert sizes == sorted(sizes)
        # All sizes share the same eps.
        assert len({c[2] for c in configs}) == 1

    def test_run_experiment_tiny_scale(self):
        records = run_experiment("fig6c", scale=0.02)
        assert all(r.status == "ok" for r in records)
        assert {r.algorithm for r in records} == {"fdbscan", "rt-dbscan"}

    def test_ngsim_experiment_zero_clusters(self):
        records = run_experiment("table2", scale=0.05)
        assert all(r.num_clusters == 0 for r in records if r.status == "ok")


class TestReports:
    @pytest.fixture(scope="class")
    def records(self):
        pts, _ = make_blobs(300, centers=3, std=0.2, seed=1)
        return run_sweep(
            ["fdbscan", "rt-dbscan"],
            [("blobs", pts, 0.4, 5), ("blobs", pts, 0.6, 5)],
        )

    def test_format_records_lists_all_runs(self, records):
        text = format_records(records)
        assert text.count("rt-dbscan") == 2
        assert "dataset" in text

    def test_format_time_table(self, records):
        text = format_time_table(records, algorithms=["fdbscan", "rt-dbscan"], vary="eps")
        assert "fdbscan" in text and "rt-dbscan" in text
        assert len(text.splitlines()) >= 4

    def test_format_speedup_table(self, records):
        text = format_speedup_table(
            records, baseline="fdbscan", targets=["rt-dbscan"], vary="eps"
        )
        assert "x" in text

    def test_format_breakdown(self, records):
        rec = [r for r in records if r.algorithm == "rt-dbscan"][0]
        text = format_breakdown(rec, title="Section V-D")
        assert "bvh_build" in text
        assert "total" in text

    def test_oom_rendered_in_time_table(self):
        rec = RunRecord(
            algorithm="g-dbscan", dataset="x", num_points=10, eps=0.1, min_pts=5, status="oom"
        )
        text = format_time_table([rec], algorithms=["g-dbscan"], vary="num_points")
        assert "OOM" in text


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rt-dbscan" in out
        assert "fig5c" in out

    def test_cluster_command_on_synthetic(self, capsys):
        code = main([
            "cluster", "--dataset", "blobs", "--num-points", "400",
            "--eps", "0.3", "--min-pts", "5", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["algorithm"] == "rt-dbscan"

    def test_cluster_command_csv_input(self, tmp_path, capsys):
        pts, _ = make_blobs(200, centers=2, std=0.1, seed=3)
        csv = tmp_path / "points.csv"
        np.savetxt(csv, pts, delimiter=",")
        out_file = tmp_path / "labels.txt"
        code = main([
            "cluster", "--input", str(csv), "--eps", "0.3", "--min-pts", "5",
            "--algorithm", "fdbscan", "--output", str(out_file),
        ])
        assert code == 0
        labels = np.loadtxt(out_file)
        assert labels.shape == (200,)
        assert set(np.unique(labels)) <= {-1.0, 0.0, 1.0}

    def test_experiment_command_json(self, capsys):
        code = main(["experiment", "sec6c", "--scale", "0.2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {r["algorithm"] for r in payload} == {"rt-dbscan", "rt-dbscan-triangles"}

    def test_experiment_command_table_output(self, capsys):
        code = main(["experiment", "fig6a", "--scale", "0.02"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Speedup over fdbscan" in out
