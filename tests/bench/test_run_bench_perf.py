"""Tests for the benchmark runner script: perf profile and smoke budget."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", ROOT / "scripts" / "run_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPerfProfile:
    @pytest.fixture(scope="class")
    def snapshot(self, run_bench, tmp_path_factory):
        out = tmp_path_factory.mktemp("perf") / "BENCH_perf.json"
        rc = run_bench.main([
            "--profile", "perf", "--perf-sizes", "800", "--out", str(out),
        ])
        assert rc == 0
        return json.loads(out.read_text())

    def test_one_cell_per_backend_and_tier(self, run_bench, snapshot):
        records = snapshot["perf"]["records"]
        numpy_cells = [r["backend"] for r in records if r["kernel_tier"] == "numpy"]
        assert numpy_cells == list(run_bench.PERF["backends"])
        # Native-capable backends add a second cell on the compiled tier when
        # it is available; nothing else may.
        native_cells = [r["backend"] for r in records if r["kernel_tier"] == "native"]
        from repro.native import dispatch

        if dispatch.available():
            assert native_cells == [b for b in run_bench.PERF["backends"]
                                    if b in run_bench.NATIVE_BACKENDS]
        else:
            assert native_cells == []
        assert all(r["n"] == 800 for r in records)

    def test_native_pairs_prove_parity(self, snapshot):
        comparisons = snapshot["perf"]["native_vs_numpy"]
        from repro.native import dispatch

        if not dispatch.available():
            assert comparisons == []
            return
        assert {c["backend"] for c in comparisons} == {"rt", "grid", "kdtree", "brute"}
        for c in comparisons:
            assert c["labels_identical"] is True
            assert c["counts_identical"] is True
            assert c["simulated_seconds_identical"] is True
            assert c["wall_speedup"] > 0

    def test_thread_scaling_cells_hold_parity(self, snapshot):
        from repro.native import dispatch

        if not dispatch.available():
            assert "thread_scaling" not in snapshot["perf"]
            return
        scaling = snapshot["perf"]["thread_scaling"]
        assert scaling["threads_axis"][0] == 1
        assert scaling["cpu_count"] >= 1
        for r in scaling["records"]:
            assert r["labels_identical"] is True
            assert r["counts_identical"] is True
            assert r["simulated_seconds_identical"] is True
            assert r["speedup_vs_1_thread"] > 0
            assert r["resolved_threads"] >= 1

    def test_confirm_kernel_microbench(self, snapshot):
        from repro.native import dispatch

        if not dispatch.available():
            assert "confirm_kernel" not in snapshot["perf"]
            return
        confirm = snapshot["perf"]["confirm_kernel"]
        assert confirm["identical"] is True
        assert confirm["pairs"] > 0
        assert confirm["wall_speedup"] > 0

    def test_records_carry_host_metrics(self, snapshot):
        for rec in snapshot["perf"]["records"]:
            assert rec["wall_seconds"] > 0
            assert rec["ru_maxrss_bytes"] > 0
            assert rec["tracemalloc_peak_bytes"] > 0
            assert rec["counts"]["kernel_launches"] >= 1

    def test_labels_and_simulated_time_identical_across_backends(self, snapshot):
        """The snapshot proves backend equivalence: same labels checksum."""
        records = snapshot["perf"]["records"]
        assert len({r["labels_sha256"] for r in records}) == 1
        assert len({r["num_clusters"] for r in records}) == 1

    def test_baseline_comparison_embedded(self, run_bench, snapshot, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(snapshot, default=float))
        out = tmp_path / "now.json"
        rc = run_bench.main([
            "--profile", "perf", "--perf-sizes", "800",
            "--baseline", str(base), "--out", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        comparisons = payload["perf"]["vs_baseline"]
        assert len(comparisons) == len(payload["perf"]["records"])
        for comp in comparisons:
            assert comp["labels_identical"] is True
            assert comp["simulated_seconds_identical"] is True
            assert comp["counts_identical"] is True
            assert comp["wall_speedup"] > 0
        assert payload["perf"]["overall_wall_speedup"] > 0


class TestSmokeBudget:
    def _run_smoke(self, run_bench, tmp_path, budget: dict | None):
        out = tmp_path / "BENCH_smoke.json"
        args = [
            "--profile", "smoke", "--experiments", "sec6c", "--streaming",
            "--scale", "0.1", "--out", str(out),
        ]
        if budget is not None:
            budget_file = tmp_path / "budget.json"
            budget_file.write_text(json.dumps(budget))
            args += ["--budget-file", str(budget_file)]
        return run_bench.main(args), out

    def test_within_budget_returns_zero(self, run_bench, tmp_path):
        rc, out = self._run_smoke(
            run_bench, tmp_path,
            {"smoke_seconds_seed": 10_000, "smoke_budget_factor": 2.0},
        )
        assert rc == 0
        assert out.exists()

    def test_exceeded_budget_returns_three(self, run_bench, tmp_path):
        rc, out = self._run_smoke(
            run_bench, tmp_path,
            {"smoke_seconds_seed": 0.000001, "smoke_budget_factor": 2.0},
        )
        assert rc == 3
        assert out.exists()  # the snapshot is still written for inspection
