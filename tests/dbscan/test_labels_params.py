"""Tests for label extraction and the shared parameter/result types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbscan.labels import PointClass, classify_points, labels_from_roots
from repro.dbscan.params import (
    NOISE,
    DBSCANParams,
    DBSCANResult,
    canonicalize_labels,
)


class TestDBSCANParams:
    def test_valid(self):
        p = DBSCANParams(eps=0.5, min_pts=3)
        assert p.eps == 0.5 and p.min_pts == 3

    @pytest.mark.parametrize("eps", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_eps(self, eps):
        with pytest.raises(ValueError):
            DBSCANParams(eps=eps, min_pts=3)

    @pytest.mark.parametrize("min_pts", [0, -5, 2.5])
    def test_invalid_min_pts(self, min_pts):
        with pytest.raises(ValueError):
            DBSCANParams(eps=0.5, min_pts=min_pts)


class TestCanonicalizeLabels:
    def test_renumbers_by_first_occurrence(self):
        labels = np.array([5, 5, -1, 2, 2, 5])
        out = canonicalize_labels(labels)
        np.testing.assert_array_equal(out, [0, 0, -1, 1, 1, 0])

    def test_noise_preserved(self):
        labels = np.array([-1, -1, -1])
        np.testing.assert_array_equal(canonicalize_labels(labels), [-1, -1, -1])

    def test_idempotent(self):
        labels = np.array([0, 1, -1, 1, 2])
        once = canonicalize_labels(labels)
        np.testing.assert_array_equal(once, canonicalize_labels(once))


class TestLabelsFromRoots:
    def test_basic_two_clusters(self):
        roots = np.array([0, 0, 0, 3, 3, 5])
        core = np.array([True, True, False, True, True, False])
        # Without an assigned_mask only core points are cluster members; the
        # non-core point sharing root 0 stays noise (it was never attached).
        labels = labels_from_roots(roots, core)
        np.testing.assert_array_equal(labels, [0, 0, -1, 1, 1, -1])
        # With it marked as attached it joins cluster 0.
        assigned = np.array([False, False, True, False, False, False])
        labels = labels_from_roots(roots, core, assigned_mask=assigned)
        np.testing.assert_array_equal(labels, [0, 0, 0, 1, 1, -1])

    def test_set_without_core_is_noise(self):
        roots = np.array([0, 0, 2, 2])
        core = np.array([True, True, False, False])
        labels = labels_from_roots(roots, core)
        np.testing.assert_array_equal(labels, [0, 0, -1, -1])

    def test_assigned_mask_marks_border_points(self):
        roots = np.array([0, 0, 0, 3])
        core = np.array([True, True, False, False])
        assigned = np.array([False, False, True, False])
        labels = labels_from_roots(roots, core, assigned_mask=assigned)
        np.testing.assert_array_equal(labels, [0, 0, 0, -1])

    def test_no_core_points_all_noise(self):
        roots = np.arange(5)
        core = np.zeros(5, dtype=bool)
        assert (labels_from_roots(roots, core) == NOISE).all()

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            labels_from_roots(np.arange(4), np.zeros(3, dtype=bool))


class TestClassifyPoints:
    def test_classes(self):
        core = np.array([True, False, False])
        labels = np.array([0, 0, -1])
        out = classify_points(core, labels)
        assert out.tolist() == [PointClass.CORE, PointClass.BORDER, PointClass.NOISE]


class TestDBSCANResult:
    def _result(self):
        labels = np.array([0, 0, 1, -1, 1, 0])
        core = np.array([True, True, True, False, False, False])
        return DBSCANResult(labels=labels, core_mask=core, params=DBSCANParams(1.0, 2))

    def test_counts(self):
        r = self._result()
        assert r.num_points == 6
        assert r.num_clusters == 2
        assert r.num_noise == 1
        assert r.border_mask.sum() == 2

    def test_cluster_sizes(self):
        np.testing.assert_array_equal(self._result().cluster_sizes(), [3, 2])

    def test_summary(self):
        s = self._result().summary()
        assert s["num_clusters"] == 2
        assert s["num_border"] == 2
        assert s["num_noise"] == 1
