"""form_clusters_csr: CSR-consuming stage 2 is bit-identical to the pair path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adjacency import pairs_to_csr
from repro.dbscan.formation import form_clusters, form_clusters_csr


def _random_adjacency(rng: np.random.Generator, n: int, m: int):
    """A random symmetric pair multiset (both directions, no self pairs)."""
    a = rng.integers(0, n, size=m)
    b = rng.integers(0, n, size=m)
    keep = a != b
    a, b = a[keep], b[keep]
    q = np.concatenate([a, b])
    p = np.concatenate([b, a])
    return q, p


class TestFormClustersCSR:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("min_core_fraction", [0.0, 0.4, 1.0])
    def test_matches_pair_formation(self, seed, min_core_fraction):
        rng = np.random.default_rng(seed)
        n = 300
        q, p = _random_adjacency(rng, n, 900)
        core = rng.random(n) < min_core_fraction
        indptr, indices = pairs_to_csr(q, p, n)

        ref = form_clusters(q, p, core)
        got = form_clusters_csr(indptr, indices, core)
        np.testing.assert_array_equal(got.labels, ref.labels)
        assert got.num_unions == ref.num_unions
        assert got.num_atomics == ref.num_atomics

    def test_empty_adjacency_all_noise(self):
        core = np.zeros(10, dtype=bool)
        res = form_clusters_csr(np.zeros(11, dtype=np.int64), np.empty(0, dtype=np.intp), core)
        assert (res.labels == -1).all()
        assert res.num_unions == 0 and res.num_atomics == 0

    def test_isolated_core_points_form_singletons(self):
        core = np.ones(4, dtype=bool)
        res = form_clusters_csr(np.zeros(5, dtype=np.int64), np.empty(0, dtype=np.intp), core)
        np.testing.assert_array_equal(res.labels, [0, 1, 2, 3])

    def test_border_attaches_to_lowest_core(self):
        # Point 2 is border, within eps of cores 0 and 1 (different clusters):
        # the deterministic rule attaches it to the lowest-indexed core.
        core = np.array([True, True, False])
        q = np.array([0, 1])
        p = np.array([2, 2])
        indptr, indices = pairs_to_csr(q, p, 3)
        res = form_clusters_csr(indptr, indices, core)
        assert res.labels[2] == res.labels[0]

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=80),
        m=st.integers(min_value=0, max_value=400),
        threshold=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_pairs_vs_csr(self, seed, n, m, threshold):
        rng = np.random.default_rng(seed)
        q, p = _random_adjacency(rng, n, m)
        core = rng.random(n) < threshold
        indptr, indices = pairs_to_csr(q, p, n)
        ref = form_clusters(q, p, core)
        got = form_clusters_csr(indptr, indices, core)
        np.testing.assert_array_equal(got.labels, ref.labels)
        assert got.num_unions == ref.num_unions
        assert got.num_atomics == ref.num_atomics
