"""Tests for the union–find structures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbscan.disjoint_set import DisjointSet, ParallelDisjointSet


class TestDisjointSet:
    def test_initially_all_singletons(self):
        ds = DisjointSet(5)
        assert ds.num_sets() == 5
        assert all(ds.find(i) == i for i in range(5))

    def test_union_merges(self):
        ds = DisjointSet(4)
        ds.union(0, 1)
        ds.union(2, 3)
        assert ds.connected(0, 1)
        assert ds.connected(2, 3)
        assert not ds.connected(0, 2)
        assert ds.num_sets() == 2

    def test_union_idempotent(self):
        ds = DisjointSet(3)
        ds.union(0, 1)
        before = ds.num_unions
        ds.union(1, 0)
        assert ds.num_unions == before

    def test_transitivity(self):
        ds = DisjointSet(6)
        ds.union(0, 1)
        ds.union(1, 2)
        ds.union(2, 3)
        assert ds.connected(0, 3)

    def test_roots_consistent(self):
        ds = DisjointSet(10)
        for i in range(9):
            ds.union(i, i + 1)
        roots = ds.roots()
        assert len(set(roots.tolist())) == 1

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)

    @given(edges=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_graph_components(self, edges):
        import networkx as nx

        ds = DisjointSet(20)
        g = nx.Graph()
        g.add_nodes_from(range(20))
        for a, b in edges:
            ds.union(a, b)
            g.add_edge(a, b)
        expected = {frozenset(c) for c in nx.connected_components(g)}
        roots = ds.roots()
        got = {frozenset(np.flatnonzero(roots == r).tolist()) for r in set(roots.tolist())}
        assert got == expected


class TestParallelDisjointSet:
    def test_union_edges_empty(self):
        ds = ParallelDisjointSet(5)
        assert ds.union_edges(np.array([], dtype=int), np.array([], dtype=int)) == 0
        assert ds.num_sets() == 5

    def test_union_edges_chain(self):
        ds = ParallelDisjointSet(100)
        a = np.arange(99)
        ds.union_edges(a, a + 1)
        assert ds.num_sets() == 1

    def test_union_edges_mismatched_shapes(self):
        ds = ParallelDisjointSet(5)
        with pytest.raises(ValueError):
            ds.union_edges(np.array([0]), np.array([1, 2]))

    def test_union_counts_accumulate(self):
        ds = ParallelDisjointSet(10)
        ds.union_edges(np.array([0, 2]), np.array([1, 3]))
        assert ds.num_unions > 0

    def test_attach_border_points(self):
        ds = ParallelDisjointSet(6)
        ds.union_edges(np.array([0]), np.array([1]))  # core cluster {0,1}
        ds.attach(np.array([4, 5]), np.array([0, 1]))
        roots = ds.roots()
        assert roots[4] == roots[0]
        assert roots[5] == roots[0]
        assert ds.num_atomics == 2

    def test_attach_duplicate_children_single_winner(self):
        ds = ParallelDisjointSet(5)
        ds.union_edges(np.array([0]), np.array([1]))
        ds.union_edges(np.array([2]), np.array([3]))
        # Border point 4 is claimed by both clusters; exactly one wins.
        ds.attach(np.array([4, 4]), np.array([0, 2]))
        roots = ds.roots()
        assert roots[4] in (roots[0], roots[2])
        assert ds.num_atomics == 1

    def test_attach_mismatched_shapes(self):
        ds = ParallelDisjointSet(4)
        with pytest.raises(ValueError):
            ds.attach(np.array([0]), np.array([1, 2]))

    def test_find_many_no_mutation(self):
        ds = ParallelDisjointSet(8)
        ds.union_edges(np.array([0, 1]), np.array([1, 2]))
        parent_before = ds.parent.copy()
        ds.find_many(np.arange(8))
        np.testing.assert_array_equal(ds.parent, parent_before)

    @given(edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_sequential_union_find(self, edges):
        seq = DisjointSet(30)
        par = ParallelDisjointSet(30)
        a = np.array([e[0] for e in edges], dtype=int)
        b = np.array([e[1] for e in edges], dtype=int)
        for x, y in edges:
            seq.union(x, y)
        if a.size:
            par.union_edges(a, b)
        seq_roots = seq.roots()
        par_roots = par.roots()
        # Same partition (representatives may differ).
        for i in range(30):
            for j in range(30):
                assert (seq_roots[i] == seq_roots[j]) == (par_roots[i] == par_roots[j])
