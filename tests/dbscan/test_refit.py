"""Tests for DBSCANResult.refit — the Section VI-B minPts shortcut."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.dbscan.rt_dbscan import RTDBSCAN, rt_dbscan


@pytest.fixture(scope="module")
def blobs():
    pts, _ = make_blobs(500, centers=3, std=0.25, seed=21)
    return pts


@pytest.fixture(scope="module")
def fitted(blobs):
    return rt_dbscan(blobs, eps=0.4, min_pts=5)


class TestRefit:
    @pytest.mark.parametrize("new_min_pts", [1, 3, 8, 20, 100])
    def test_matches_fresh_fit(self, blobs, fitted, new_min_pts):
        refit = fitted.refit(new_min_pts)
        fresh = rt_dbscan(blobs, eps=0.4, min_pts=new_min_pts)
        np.testing.assert_array_equal(refit.labels, fresh.labels)
        np.testing.assert_array_equal(refit.core_mask, fresh.core_mask)

    def test_skips_stage_one(self, fitted):
        # The stored counts are reused as-is — no re-count happens.
        refit = fitted.refit(10)
        assert refit.neighbor_counts is fitted.neighbor_counts
        assert refit.report is None

    def test_params_updated_eps_preserved(self, fitted):
        refit = fitted.refit(10)
        assert refit.params.min_pts == 10
        assert refit.params.eps == fitted.params.eps
        assert refit.extra["refit_from_min_pts"] == fitted.params.min_pts

    def test_refit_chains(self, blobs, fitted):
        twice = fitted.refit(10).refit(3)
        fresh = rt_dbscan(blobs, eps=0.4, min_pts=3)
        np.testing.assert_array_equal(twice.labels, fresh.labels)

    def test_invalid_min_pts_raises(self, fitted):
        with pytest.raises(ValueError):
            fitted.refit(0)

    def test_requires_stored_counts(self, blobs):
        result = RTDBSCAN(eps=0.4, min_pts=5, keep_neighbor_counts=False).fit(blobs)
        with pytest.raises(ValueError, match="neighbor_counts"):
            result.refit(10)

    @pytest.mark.parametrize("backend", ["grid", "kdtree", "brute"])
    def test_refit_from_any_backend(self, blobs, backend):
        fitted = RTDBSCAN(eps=0.4, min_pts=5, backend=backend).fit(blobs)
        refit = fitted.refit(12)
        fresh = rt_dbscan(blobs, eps=0.4, min_pts=12)
        np.testing.assert_array_equal(refit.labels, fresh.labels)
