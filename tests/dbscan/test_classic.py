"""Tests for the sequential DBSCAN oracle (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dbscan.classic import classic_dbscan
from repro.dbscan.params import NOISE
from repro.neighbors.brute import brute_force_neighbor_counts


class TestClassicDBSCANBasics:
    def test_two_well_separated_blobs(self, blob_points):
        result = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        assert result.num_clusters == 3
        assert result.num_noise > 0
        assert result.labels.shape == (len(blob_points),)

    def test_all_noise_when_eps_tiny(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, size=(200, 2))
        result = classic_dbscan(pts, eps=1e-6, min_pts=2)
        assert result.num_clusters == 0
        assert result.num_noise == 200
        assert (result.labels == NOISE).all()

    def test_single_cluster_when_eps_huge(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(100, 2))
        result = classic_dbscan(pts, eps=10.0, min_pts=3)
        assert result.num_clusters == 1
        assert result.num_noise == 0

    def test_core_mask_matches_definition(self, blob_points):
        eps, min_pts = 0.5, 5
        result = classic_dbscan(blob_points, eps=eps, min_pts=min_pts)
        counts = brute_force_neighbor_counts(blob_points, eps)
        np.testing.assert_array_equal(result.core_mask, counts >= min_pts)

    def test_neighbor_counts_returned(self, blob_points):
        result = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        np.testing.assert_array_equal(
            result.neighbor_counts, brute_force_neighbor_counts(blob_points, 0.5)
        )

    def test_border_points_labelled_with_cluster(self, blob_points):
        result = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        border = result.border_mask
        assert (result.labels[border] >= 0).all()

    def test_noise_points_never_core(self, blob_points):
        result = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        assert not (result.core_mask & result.noise_mask).any()

    def test_labels_are_canonical(self, blob_points):
        result = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        clustered = result.labels[result.labels >= 0]
        assert set(np.unique(clustered)) == set(range(result.num_clusters))
        # Cluster 0 contains the smallest clustered point index.
        first = np.flatnonzero(result.labels >= 0)[0]
        assert result.labels[first] == 0

    def test_brute_and_kdtree_methods_agree(self, blob_points):
        a = classic_dbscan(blob_points, eps=0.5, min_pts=5, neighbor_method="kdtree")
        b = classic_dbscan(blob_points, eps=0.5, min_pts=5, neighbor_method="brute")
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.core_mask, b.core_mask)

    def test_unknown_method_raises(self, blob_points):
        with pytest.raises(ValueError):
            classic_dbscan(blob_points, eps=0.5, min_pts=5, neighbor_method="magic")

    def test_invalid_eps_raises(self, blob_points):
        with pytest.raises(ValueError):
            classic_dbscan(blob_points, eps=-1.0, min_pts=5)

    def test_invalid_min_pts_raises(self, blob_points):
        with pytest.raises(ValueError):
            classic_dbscan(blob_points, eps=0.5, min_pts=0)

    def test_3d_input(self, blob_points_3d):
        result = classic_dbscan(blob_points_3d, eps=0.6, min_pts=5)
        assert result.num_clusters == 3

    def test_result_summary_fields(self, blob_points):
        s = classic_dbscan(blob_points, eps=0.5, min_pts=5).summary()
        assert s["num_points"] == len(blob_points)
        assert s["num_clusters"] == 3
        assert s["eps"] == 0.5

    def test_cluster_sizes_sum(self, blob_points):
        result = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        assert result.cluster_sizes().sum() == (result.labels >= 0).sum()


class TestDensityConnectivityInvariants:
    """Structural invariants every correct DBSCAN labelling satisfies."""

    @pytest.fixture(scope="class")
    def result_and_points(self, blob_points):
        return classic_dbscan(blob_points, eps=0.5, min_pts=5), blob_points

    def test_core_points_same_cluster_when_close(self, result_and_points):
        result, pts = result_and_points
        core_idx = np.flatnonzero(result.core_mask)
        core_pts = pts[core_idx]
        d2 = ((core_pts[:, None, :] - core_pts[None, :, :]) ** 2).sum(axis=2)
        close = d2 <= 0.5**2
        li = result.labels[core_idx]
        i, j = np.nonzero(close)
        assert (li[i] == li[j]).all()

    def test_noise_points_far_from_all_cores(self, result_and_points):
        result, pts = result_and_points
        core_pts = pts[result.core_mask]
        noise_pts = pts[result.noise_mask]
        if len(noise_pts) and len(core_pts):
            d2 = ((noise_pts[:, None, :] - core_pts[None, :, :]) ** 2).sum(axis=2)
            assert (d2.min(axis=1) > 0.5**2).all()

    def test_border_points_near_core_of_their_cluster(self, result_and_points):
        result, pts = result_and_points
        for b in np.flatnonzero(result.border_mask):
            lab = result.labels[b]
            same_cluster_cores = np.flatnonzero(result.core_mask & (result.labels == lab))
            d2 = ((pts[same_cluster_cores] - pts[b]) ** 2).sum(axis=1)
            assert d2.min() <= 0.5**2 + 1e-12
