"""Tests for RT-DBSCAN (the paper's Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dbscan.classic import classic_dbscan
from repro.dbscan.rt_dbscan import RTDBSCAN, rt_dbscan
from repro.data.synthetic import make_blobs, make_moons, make_rings
from repro.metrics.agreement import compare_results
from repro.rtcore.device import RTDevice

coords = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


class TestRTDBSCANCorrectness:
    def test_equivalent_to_classic_on_blobs(self, blob_points):
        ref = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        got = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        report = compare_results(ref, got, points=blob_points)
        assert report.equivalent, report.as_dict()

    def test_equivalent_to_classic_on_3d(self, blob_points_3d):
        ref = classic_dbscan(blob_points_3d, eps=0.6, min_pts=5)
        got = rt_dbscan(blob_points_3d, eps=0.6, min_pts=5)
        assert compare_results(ref, got, points=blob_points_3d).equivalent

    def test_equivalent_on_rings(self):
        pts, _ = make_rings(1200, radii=(1.0, 3.0), noise=0.05, seed=3)
        ref = classic_dbscan(pts, eps=0.35, min_pts=5)
        got = rt_dbscan(pts, eps=0.35, min_pts=5)
        assert ref.num_clusters == 2
        assert compare_results(ref, got, points=pts).equivalent

    def test_equivalent_on_moons(self):
        pts, _ = make_moons(600, noise=0.04, seed=4)
        ref = classic_dbscan(pts, eps=0.15, min_pts=5)
        got = rt_dbscan(pts, eps=0.15, min_pts=5)
        assert compare_results(ref, got, points=pts).equivalent

    def test_all_noise_case(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1000, size=(300, 2))
        got = rt_dbscan(pts, eps=0.01, min_pts=3)
        assert got.num_clusters == 0
        assert got.num_noise == 300

    def test_single_cluster_case(self):
        pts, _ = make_blobs(200, centers=1, std=0.1, seed=6)
        got = rt_dbscan(pts, eps=0.5, min_pts=5)
        assert got.num_clusters == 1
        assert got.num_noise == 0

    def test_min_pts_one_makes_every_point_core(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 10, size=(100, 2))
        got = rt_dbscan(pts, eps=0.5, min_pts=1)
        # minPts=1 means any point with at least one neighbour is core; a
        # fully isolated point has zero neighbours and stays noise.
        assert got.core_mask.sum() + got.num_noise == 100

    def test_duplicate_points(self):
        pts = np.vstack([np.zeros((50, 2)), np.full((50, 2), 5.0)])
        ref = classic_dbscan(pts, eps=0.1, min_pts=10)
        got = rt_dbscan(pts, eps=0.1, min_pts=10)
        assert compare_results(ref, got, points=pts).equivalent
        assert got.num_clusters == 2

    def test_neighbor_counts_saved_for_reuse(self, blob_points):
        got = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        assert got.neighbor_counts is not None
        # Re-running with a larger minPts must flag exactly the points whose
        # saved counts reach it (Section VI-B use case).
        assert ((got.neighbor_counts >= 20) == rt_dbscan(
            blob_points, eps=0.5, min_pts=20).core_mask).all()

    def test_keep_neighbor_counts_flag(self, blob_points):
        got = RTDBSCAN(eps=0.5, min_pts=5, keep_neighbor_counts=False).fit(blob_points)
        assert got.neighbor_counts is None

    def test_triangle_mode_equivalent(self):
        pts, _ = make_blobs(250, centers=3, std=0.2, seed=8)
        ref = classic_dbscan(pts, eps=0.4, min_pts=5)
        got = RTDBSCAN(eps=0.4, min_pts=5, triangle_mode=True).fit(pts)
        assert compare_results(ref, got, points=pts).equivalent

    def test_sah_builder_equivalent(self, blob_points):
        ref = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        got = RTDBSCAN(eps=0.5, min_pts=5, builder="sah").fit(blob_points)
        assert compare_results(ref, got, points=blob_points).equivalent

    def test_deterministic_across_runs(self, blob_points):
        a = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        b = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_invalid_parameters_raise(self, blob_points):
        with pytest.raises(ValueError):
            rt_dbscan(blob_points, eps=0.0, min_pts=5)
        with pytest.raises(ValueError):
            rt_dbscan(blob_points, eps=0.5, min_pts=-1)
        with pytest.raises(ValueError):
            rt_dbscan(np.zeros((10, 5)), eps=0.5, min_pts=3)

    @given(
        pts=arrays(np.float64, (60, 2), elements=coords),
        eps=st.floats(min_value=0.1, max_value=3.0),
        min_pts=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_equivalent_to_classic(self, pts, eps, min_pts):
        ref = classic_dbscan(pts, eps=eps, min_pts=min_pts, neighbor_method="brute")
        got = rt_dbscan(pts, eps=eps, min_pts=min_pts)
        report = compare_results(ref, got, points=pts)
        assert report.equivalent


class TestRTDBSCANInstrumentation:
    def test_report_has_three_phases(self, blob_points):
        got = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        assert [p.name for p in got.report.phases] == [
            "bvh_build", "core_identification", "cluster_formation",
        ]
        assert got.report.total_simulated_seconds > 0

    def test_bvh_build_time_uses_rt_builder_cost(self, blob_points):
        dev = RTDevice()
        got = RTDBSCAN(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        expected = dev.cost_model.build_time_s(len(blob_points), unit="rt")
        assert got.report.phase("bvh_build").simulated_seconds == pytest.approx(expected)

    def test_device_charged_with_rt_visits(self, blob_points):
        dev = RTDevice()
        RTDBSCAN(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        assert dev.total_counts.rt_node_visits > 0
        assert dev.total_counts.sm_node_visits == 0
        assert dev.total_counts.union_ops > 0

    def test_device_memory_released_after_fit(self, blob_points):
        dev = RTDevice()
        RTDBSCAN(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        assert dev.memory.used_bytes == 0

    def test_metadata_recorded(self, blob_points):
        got = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        meta = got.report.metadata
        assert meta["eps"] == 0.5
        assert meta["min_pts"] == 5
        assert meta["num_points"] == len(blob_points)

    def test_triangle_mode_slower_than_sphere_mode(self):
        pts, _ = make_blobs(300, centers=3, std=0.2, seed=9)
        sphere = rt_dbscan(pts, eps=0.4, min_pts=5)
        tri = RTDBSCAN(eps=0.4, min_pts=5, triangle_mode=True).fit(pts)
        assert (
            tri.report.total_simulated_seconds > sphere.report.total_simulated_seconds
        )
