"""Correctness tests for the GPU baselines (FDBSCAN, G-DBSCAN, CUDA-DClust+)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.cuda_dclust import CUDADClustPlus, cuda_dclust_plus
from repro.baselines.fdbscan import FDBSCAN, fdbscan
from repro.baselines.gdbscan import GDBSCAN, gdbscan
from repro.dbscan.classic import classic_dbscan
from repro.dbscan.rt_dbscan import rt_dbscan
from repro.data.synthetic import make_blobs
from repro.metrics.agreement import compare_results
from repro.perf.cost_model import DeviceCostModel
from repro.perf.memory import DeviceMemoryError
from repro.rtcore.device import RTDevice

coords = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)

ALL_BASELINES = [fdbscan, gdbscan, cuda_dclust_plus]


@pytest.mark.parametrize("algorithm", ALL_BASELINES, ids=["fdbscan", "gdbscan", "dclust"])
class TestBaselineCorrectness:
    def test_equivalent_to_classic_on_blobs(self, algorithm, blob_points):
        ref = classic_dbscan(blob_points, eps=0.5, min_pts=5)
        got = algorithm(blob_points, eps=0.5, min_pts=5)
        assert compare_results(ref, got, points=blob_points).equivalent

    def test_all_noise_case(self, algorithm):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1000, size=(150, 2))
        got = algorithm(pts, eps=0.05, min_pts=3)
        assert got.num_clusters == 0
        assert got.num_noise == 150

    def test_single_cluster_case(self, algorithm):
        pts, _ = make_blobs(150, centers=1, std=0.1, seed=2)
        got = algorithm(pts, eps=0.5, min_pts=5)
        assert got.num_clusters == 1

    def test_report_attached(self, algorithm, blob_points):
        got = algorithm(blob_points, eps=0.5, min_pts=5)
        assert got.report is not None
        assert got.report.total_simulated_seconds > 0

    def test_invalid_params_raise(self, algorithm, blob_points):
        with pytest.raises(ValueError):
            algorithm(blob_points, eps=-1.0, min_pts=5)

    @given(
        pts=arrays(np.float64, (50, 2), elements=coords),
        eps=st.floats(min_value=0.2, max_value=2.0),
        min_pts=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_equivalent_to_classic(self, algorithm, pts, eps, min_pts):
        ref = classic_dbscan(pts, eps=eps, min_pts=min_pts, neighbor_method="brute")
        got = algorithm(pts, eps=eps, min_pts=min_pts)
        assert compare_results(ref, got, points=pts).equivalent


class TestFDBSCANSpecifics:
    def test_early_exit_same_labels(self, blob_points):
        plain = fdbscan(blob_points, eps=0.5, min_pts=5)
        early = fdbscan(blob_points, eps=0.5, min_pts=5, early_exit=True)
        np.testing.assert_array_equal(plain.labels, early.labels)
        np.testing.assert_array_equal(plain.core_mask, early.core_mask)

    def test_early_exit_not_slower(self, blob_points):
        plain = fdbscan(blob_points, eps=0.5, min_pts=5)
        early = fdbscan(blob_points, eps=0.5, min_pts=5, early_exit=True)
        assert (
            early.report.total_simulated_seconds
            <= plain.report.total_simulated_seconds + 1e-12
        )

    def test_early_exit_reduces_stage1_cost_in_dense_data(self):
        pts, _ = make_blobs(1000, centers=2, std=0.2, seed=5)
        plain = fdbscan(pts, eps=0.5, min_pts=5)
        early = fdbscan(pts, eps=0.5, min_pts=5, early_exit=True)
        assert (
            early.report.phase("core_identification").simulated_seconds
            < plain.report.phase("core_identification").simulated_seconds
        )

    def test_uses_shader_core_counters(self, blob_points):
        dev = RTDevice()
        FDBSCAN(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        assert dev.total_counts.sm_node_visits > 0
        assert dev.total_counts.rt_node_visits == 0

    def test_build_cheaper_than_rt_dbscan_build(self, blob_points):
        f = fdbscan(blob_points, eps=0.5, min_pts=5)
        r = rt_dbscan(blob_points, eps=0.5, min_pts=5)
        assert (
            f.report.phase("bvh_build").simulated_seconds
            < r.report.phase("bvh_build").simulated_seconds
        )

    def test_phase_names(self, blob_points):
        got = fdbscan(blob_points, eps=0.5, min_pts=5)
        assert [p.name for p in got.report.phases] == [
            "bvh_build", "core_identification", "cluster_formation",
        ]


class TestGDBSCANSpecifics:
    def test_out_of_memory_on_large_dataset(self):
        # A 100K-point dataset needs a 10 GB pairwise working matrix, which
        # exceeds the 6 GB device (the paper's Section V-B1 observation).
        # The OOM is raised during the device allocation, before any of the
        # expensive host-side work happens.
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, size=(100_000, 2))
        with pytest.raises(DeviceMemoryError):
            GDBSCAN(eps=0.01, min_pts=5).fit(pts)

    def test_fits_at_16k_points(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 10, size=(16_000, 2))
        got = gdbscan(pts, eps=0.05, min_pts=5)
        assert got.report is not None

    def test_phase_names(self, blob_points):
        got = gdbscan(blob_points, eps=0.5, min_pts=5)
        assert [p.name for p in got.report.phases] == [
            "graph_construction", "core_identification", "cluster_identification",
        ]

    def test_quadratic_distance_cost_charged(self, blob_points):
        dev = RTDevice()
        GDBSCAN(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        n = len(blob_points)
        assert dev.total_counts.distance_computations >= n * n

    def test_memory_released_after_run(self, blob_points):
        dev = RTDevice()
        GDBSCAN(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        assert dev.memory.used_bytes == 0


class TestCUDADClustSpecifics:
    def test_out_of_memory_on_large_dataset(self):
        # The per-point neighbour-table buffers exceed 6 GB beyond ~2x10^5
        # points, reproducing the paper's memory issues with this baseline.
        # Memory is validated against the device before the table is built.
        cost = DeviceCostModel()
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, size=(250_000, 2))
        clusterer = CUDADClustPlus(eps=0.01, min_pts=5)
        with pytest.raises(DeviceMemoryError):
            clusterer.fit(pts)
        assert cost.device_memory_bytes == 6 * 1024**3

    def test_phase_names(self, blob_points):
        got = cuda_dclust_plus(blob_points, eps=0.5, min_pts=5)
        assert [p.name for p in got.report.phases] == [
            "index_construction", "chain_expansion", "collision_resolution",
        ]

    def test_memory_released_after_run(self, blob_points):
        dev = RTDevice()
        CUDADClustPlus(eps=0.5, min_pts=5, device=dev).fit(blob_points)
        assert dev.memory.used_bytes == 0

    def test_kernel_launch_rounds_scale_with_chain_length(self, blob_points):
        short = CUDADClustPlus(eps=0.5, min_pts=5, chain_length=8).fit(blob_points)
        long = CUDADClustPlus(eps=0.5, min_pts=5, chain_length=512).fit(blob_points)
        assert (
            short.report.phase("chain_expansion").counts.kernel_launches
            >= long.report.phase("chain_expansion").counts.kernel_launches
        )


class TestCrossAlgorithmAgreement:
    """All five implementations agree pairwise on the same input."""

    def test_all_equivalent(self, blob_points):
        eps, min_pts = 0.5, 5
        results = {
            "classic": classic_dbscan(blob_points, eps, min_pts),
            "rt": rt_dbscan(blob_points, eps, min_pts),
            "fdbscan": fdbscan(blob_points, eps, min_pts),
            "gdbscan": gdbscan(blob_points, eps, min_pts),
            "dclust": cuda_dclust_plus(blob_points, eps, min_pts),
        }
        ref = results["classic"]
        for name, res in results.items():
            assert compare_results(ref, res, points=blob_points).equivalent, name
