"""Session pool: micro-batching, backpressure, LRU/TTL eviction, teardown."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import ClustererSpec
from repro.data.stream import make_stream
from repro.service.session import CapacityError, SessionError, SessionManager
from repro.streaming import StreamingRTDBSCAN


def chunks_for(n: int, size: int = 40, seed: int = 3) -> list[np.ndarray]:
    return list(make_stream("drift-blobs", n, size, seed=seed))


class TestSessionWorker:
    def test_microbatch_coalesces_queued_chunks(self, run, make_config):
        """Chunks queued ahead of the worker land as one update() each batch."""
        config = make_config(max_batch_chunks=4)
        manager = SessionManager(config)

        async def scenario():
            session, created = manager.get_or_create("a")
            assert created
            for chunk in chunks_for(5):
                assert await session.enqueue(chunk)
            worker = asyncio.create_task(session.run())
            await session.drain()
            await session.stop()
            await worker
            return session

        session = run(scenario())
        # 5 chunks under a 4-chunk budget: one batch of 4, one of 1.
        assert session.engine.num_updates == 2
        assert session.metrics.batches == 2
        assert session.metrics.chunks_ingested == 5
        assert session.metrics.max_batch_chunks == 4
        assert session.metrics.points_ingested == 200
        assert session.metrics.latency.count == 2

    def test_batch_points_budget_stops_coalescing(self, run, make_config):
        config = make_config(max_batch_chunks=8, max_batch_points=90)
        manager = SessionManager(config)

        async def scenario():
            session, _ = manager.get_or_create("a")
            for chunk in chunks_for(4, size=40):
                assert await session.enqueue(chunk)
            worker = asyncio.create_task(session.run())
            await session.drain()
            await session.stop()
            await worker
            return session

        session = run(scenario())
        # 40 points/chunk vs a 90-point budget: batches stop at 2 chunks
        # (a third would cross the cap; the budget is never exceeded).
        assert session.engine.num_updates == 2
        assert session.metrics.max_batch_points == 80

    def test_window_caps_batch_coalescing(self, run, make_config):
        """A batch never exceeds the engine's sliding window: an oversized
        update would truncate and skip arrival numbers the serial feed
        assigns, breaking bit-identity."""
        config = make_config(max_batch_chunks=64, max_batch_points=65536)
        manager = SessionManager(config)

        async def scenario():
            session, _ = manager.get_or_create("a")
            for chunk in chunks_for(4, size=137):
                assert await session.enqueue(chunk)
            worker = asyncio.create_task(session.run())
            await session.drain()
            await session.stop()
            await worker
            return session

        session = run(scenario())
        # window=300, 137-point chunks: two chunks fit (274), three don't.
        assert session.metrics.max_batch_points <= 300
        assert session.engine.num_updates == 2
        assert session.engine.summary()["points_ingested"] == 548

    def test_enqueue_backpressure_at_queue_budget(self, run, make_config):
        config = make_config(max_queue_chunks=2)
        manager = SessionManager(config)

        async def scenario():
            session, _ = manager.get_or_create("a")
            chunks = chunks_for(3)
            assert await session.enqueue(chunks[0])
            assert await session.enqueue(chunks[1])
            assert not await session.enqueue(chunks[2])  # full -> rejected
            return session

        session = run(scenario())
        assert session.metrics.chunks_accepted == 2
        assert session.metrics.chunks_rejected == 1
        assert session.queue_depth == 2

    def test_enqueue_rejects_mixed_dimensionality(self, run, make_config):
        """The first chunk pins the session's dimensionality; a mismatched
        chunk raises instead of poisoning a future coalesced vstack."""
        manager = SessionManager(make_config())

        async def scenario():
            session, _ = manager.get_or_create("a")
            assert await session.enqueue(np.zeros((4, 2)))
            with pytest.raises(SessionError, match="2-d"):
                await session.enqueue(np.ones((4, 3)))
            return session

        session = run(scenario())
        assert session.queue_depth == 1  # the bad chunk was never queued

    def test_concurrent_enqueues_respect_queue_bound(self, run, make_config):
        """Many enqueues racing for the condition lock cannot overshoot the
        configured queue cap (the bound is checked under the lock)."""
        manager = SessionManager(make_config(max_queue_chunks=2))

        async def scenario():
            session, _ = manager.get_or_create("a")
            results = await asyncio.gather(
                *(session.enqueue(chunk) for chunk in chunks_for(6))
            )
            return session, results

        session, results = run(scenario())
        assert session.queue_depth == 2
        assert sum(results) == 2
        assert session.metrics.chunks_rejected == 4

    def test_failed_update_fails_session_and_unblocks_drain(self, run, make_config):
        """An update() that raises must not kill the worker: the session is
        marked failed, pending work is dropped, and drain() returns instead
        of hanging every read/evict on the tenant."""
        manager = SessionManager(make_config())

        async def scenario():
            session, _ = manager.get_or_create("a")

            def boom(points):
                raise RuntimeError("engine exploded")

            session.engine.update = boom
            worker = asyncio.create_task(session.run())
            assert await session.enqueue(chunks_for(1)[0])
            await session.drain()  # returns despite the failed batch
            assert session.error is not None
            with pytest.raises(SessionError, match="failed"):
                await session.enqueue(chunks_for(1)[0])
            await session.stop()
            await worker  # worker exits cleanly, not by exception
            return session

        session = run(scenario())
        assert "RuntimeError: engine exploded" in session.error
        assert session.queue_depth == 0
        assert session.metrics.update_failures == 1
        assert session.stats()["error"] == session.error

    def test_labels_match_serial_consume(self, run, make_config):
        config = make_config(max_batch_chunks=3)
        manager = SessionManager(config)
        chunks = chunks_for(7, seed=11)

        async def scenario():
            session, _ = manager.get_or_create("a", first_chunk=chunks[0])
            worker = asyncio.create_task(session.run())
            for chunk in chunks:
                while not await session.enqueue(chunk):
                    await asyncio.sleep(0)
            await session.drain()
            await session.stop()
            await worker
            return session.engine.result()

        got = run(scenario())
        with StreamingRTDBSCAN(eps=0.4, min_pts=5, window=300) as ref:
            ref.consume(chunks)
            want = ref.result()
        assert np.array_equal(got.labels, want.labels)
        assert np.array_equal(got.core_mask, want.core_mask)


class TestSessionManager:
    def test_rejects_batch_only_spec(self, run, make_config):
        with pytest.raises(ValueError, match="partial_fit"):
            SessionManager(make_config(
                spec=ClustererSpec(algo="rt-dbscan", eps=0.3, min_pts=5)
            ))

    def test_presize_uses_for_feed_capacity(self, run, make_config):
        manager = SessionManager(make_config())
        chunk = chunks_for(1, size=400)[0]
        session, _ = manager.get_or_create("a", first_chunk=chunk)
        # for_feed sizes the slot buffer for window + one in-flight chunk;
        # without pre-sizing the default initial capacity is 256.
        assert session.engine.scene.capacity >= 400

    def test_presize_disabled_uses_spec_factory(self, run, make_config):
        manager = SessionManager(make_config(presize=False))
        chunk = chunks_for(1, size=400)[0]
        session, _ = manager.get_or_create("a", first_chunk=chunk)
        assert session.engine.scene.capacity == 256

    def test_lru_capacity_eviction_prefers_idle_lru(self, run, make_config, fake_clock):
        manager = SessionManager(make_config(max_sessions=2), clock=fake_clock)
        first, _ = manager.get_or_create("a")
        manager.get_or_create("b")
        fake_clock.advance(1.0)
        manager.get("b")  # touch b: a becomes the LRU victim
        manager.get_or_create("c")
        assert manager.tenants() == ["b", "c"]
        assert first.closed
        assert first.engine.num_releases == 1
        assert manager.metrics.sessions_evicted == {"lru": 1}

    def test_capacity_error_when_every_session_busy(self, run, make_config):
        manager = SessionManager(make_config(max_sessions=1))

        async def scenario():
            session, _ = manager.get_or_create("a")
            await session.enqueue(chunks_for(1)[0])  # pending work -> not idle
            with pytest.raises(CapacityError):
                manager.get_or_create("b")

        run(scenario())

    def test_ttl_sweep_evicts_only_stale_idle_sessions(self, run, make_config, fake_clock):
        manager = SessionManager(make_config(session_ttl_s=10.0), clock=fake_clock)
        stale, _ = manager.get_or_create("old")
        fake_clock.advance(11.0)
        fresh, _ = manager.get_or_create("new")
        evicted = manager.sweep()
        assert [s.tenant for s in evicted] == ["old"]
        assert stale.engine.num_releases == 1
        assert not fresh.closed
        assert manager.metrics.sessions_evicted == {"ttl": 1}

    def test_ttl_none_disables_sweep(self, run, make_config, fake_clock):
        manager = SessionManager(make_config(session_ttl_s=None), clock=fake_clock)
        manager.get_or_create("a")
        fake_clock.advance(1e6)
        assert manager.sweep() == []

    def test_close_all_releases_each_engine_exactly_once(self, run, make_config):
        manager = SessionManager(make_config())
        sessions = [manager.get_or_create(f"t{i}")[0] for i in range(3)]
        manager.close_all()
        assert len(manager) == 0
        assert [s.engine.num_releases for s in sessions] == [1, 1, 1]
        # A second teardown pass must not double-release.
        for session in sessions:
            session.close()
        assert [s.engine.num_releases for s in sessions] == [1, 1, 1]

    def test_evict_unknown_tenant_returns_none(self, run, make_config):
        manager = SessionManager(make_config())
        assert manager.evict("ghost") is None

    def test_stats_surface(self, run, make_config, fake_clock):
        manager = SessionManager(make_config(), clock=fake_clock)
        manager.get_or_create("a")
        stats = manager.stats()
        assert stats["num_sessions"] == 1
        tenant_stats = stats["tenants"]["a"]
        assert tenant_stats["queue_depth"] == 0
        assert "update_latency" in tenant_stats
        assert {"p50_s", "p99_s"} <= set(tenant_stats["update_latency"])
        assert "engine" in tenant_stats
