"""Checkpoint store: atomic writes, verification, quarantine, fault hooks."""

import os

import numpy as np
import pytest

from repro.service.faults import FaultInjector
from repro.service.store import (
    CheckpointError,
    CorruptCheckpointError,
    SnapshotStore,
    verify_checkpoint_dir,
)
from repro.streaming.engine import StreamingRTDBSCAN


@pytest.fixture
def snapshot():
    engine = StreamingRTDBSCAN(eps=0.4, min_pts=5, window=150, backend="grid")
    rng = np.random.default_rng(0)
    for _ in range(3):
        engine.update(rng.normal(scale=0.5, size=(50, 3)))
    return engine.snapshot()


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path / "state")


class TestRoundTrip:
    def test_save_load_round_trip(self, store, snapshot):
        path = store.save("tenant-a", snapshot)
        assert path.exists()
        record = store.load("tenant-a")
        assert record["tenant"] == "tenant-a"
        assert record["snapshot"]["window_size"] == snapshot["window_size"]
        resumed = StreamingRTDBSCAN.restore(record["snapshot"])
        assert resumed.restored

    def test_missing_tenant_loads_none(self, store):
        assert store.load("nobody") is None

    def test_unicode_tenant_ids_round_trip(self, store, snapshot):
        tenant = "tenant/α β:7 ../sneaky"
        store.save(tenant, snapshot)
        assert store.tenants() == [tenant]
        # percent-encoding keeps every checkpoint inside the state dir
        assert store.path_for(tenant).parent == store.root
        assert store.load(tenant)["tenant"] == tenant

    def test_save_overwrites_atomically(self, store, snapshot):
        store.save("t", snapshot)
        snapshot2 = dict(snapshot, window_size=snapshot["window_size"])
        store.save("t", snapshot2)
        assert len(store.paths()) == 1
        assert store.load("t") is not None
        # no temp files left behind
        assert not list(store.root.glob("*.tmp"))

    def test_delete(self, store, snapshot):
        store.save("t", snapshot)
        assert store.delete("t") is True
        assert store.delete("t") is False
        assert store.load("t") is None


class TestCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "flip", "header"])
    def test_corrupt_file_quarantined_on_load(self, tmp_path, snapshot, mode):
        faults = FaultInjector()
        store = SnapshotStore(tmp_path, faults=faults)
        faults.arm("store.corrupt", corrupt=mode)
        path = store.save("t", snapshot)
        with pytest.raises(CorruptCheckpointError) as excinfo:
            store.load("t")
        assert excinfo.value.quarantined is not None
        assert excinfo.value.quarantined.exists()
        assert not path.exists()
        # quarantined files are out of the way: the tenant reads as fresh
        assert store.load("t") is None

    def test_truncated_payload_detected(self, store, snapshot):
        path = store.save("t", snapshot)
        data = path.read_bytes()
        header_end = data.index(b"\n") + 1
        path.write_bytes(data[: header_end + (len(data) - header_end) // 2])
        with pytest.raises(CorruptCheckpointError, match="length"):
            store.verify(path)

    def test_bit_flip_detected_by_crc(self, store, snapshot):
        path = store.save("t", snapshot)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptCheckpointError, match="crc32"):
            store.verify(path)

    def test_verify_never_moves_files(self, store, snapshot):
        path = store.save("t", snapshot)
        path.write_bytes(b"garbage")
        with pytest.raises(CorruptCheckpointError):
            store.verify(path)
        assert path.exists()

    def test_quarantine_names_never_clobber(self, tmp_path, snapshot):
        faults = FaultInjector()
        store = SnapshotStore(tmp_path, faults=faults)
        for _ in range(3):
            faults.arm("store.corrupt", corrupt="flip")
            store.save("t", snapshot)
            with pytest.raises(CorruptCheckpointError):
                store.load("t")
        assert len(list(store.quarantine_dir.iterdir())) == 3


class TestWriteFaults:
    def test_write_fault_keeps_previous_checkpoint(self, tmp_path, snapshot):
        faults = FaultInjector()
        store = SnapshotStore(tmp_path, faults=faults)
        store.save("t", snapshot)
        faults.arm("store.write", error=OSError(28, "No space left on device"))
        with pytest.raises(CheckpointError, match="No space"):
            store.save("t", snapshot)
        assert store.load("t") is not None
        assert not list(store.root.glob("*.tmp"))

    def test_read_fault_surfaces_as_checkpoint_error(self, tmp_path, snapshot):
        faults = FaultInjector()
        store = SnapshotStore(tmp_path, faults=faults)
        store.save("t", snapshot)
        faults.arm("store.read", error=OSError(5, "Input/output error"))
        with pytest.raises(CheckpointError, match="Input/output"):
            store.load("t")
        # transient read fault: the file itself is untouched
        assert store.load("t") is not None


class TestVerifyDir:
    def test_reports_good_and_bad(self, store, snapshot):
        store.save("good", snapshot)
        bad = store.save("bad", snapshot)
        data = bytearray(bad.read_bytes())
        data[len(data) // 2] ^= 0xFF
        bad.write_bytes(bytes(data))
        reports = {r["tenant"]: r for r in verify_checkpoint_dir(store.root)}
        assert reports["good"]["ok"] is True
        assert reports["good"]["window_points"] == 150
        assert reports["good"]["backend"] == "grid"
        assert reports["bad"]["ok"] is False
        # the offline sweep never moves files
        assert bad.exists()

    def test_deep_validation_catches_schema_damage(self, store, snapshot):
        damaged = dict(snapshot)
        damaged["engine"] = dict(snapshot["engine"], format="not-a-snapshot")
        store.save("t", damaged)
        report = verify_checkpoint_dir(store.root, deep=True)[0]
        assert report["ok"] is False and "format" in report["error"]
        shallow = verify_checkpoint_dir(store.root, deep=False)[0]
        assert shallow["ok"] is True  # CRC fine; only the schema is wrong

    def test_empty_dir(self, tmp_path):
        assert verify_checkpoint_dir(tmp_path / "nothing") == []


class TestHeaderFormat:
    def test_header_is_single_ascii_line(self, store, snapshot):
        path = store.save("t", snapshot)
        header = path.read_bytes().split(b"\n", 1)[0].decode("ascii")
        magic, version, crc, length = header.split()
        assert magic == "rt-dbscan-ckpt"
        assert version == "v1"
        assert crc.startswith("crc32=") and length.startswith("len=")
        assert int(length.removeprefix("len=")) == os.path.getsize(path) - len(header) - 1
