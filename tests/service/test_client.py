"""Retrying client: backoff schedule, busy handling, idempotent resend rules.

The transport-level behaviours are asserted against a scriptable fake server
(a plain threaded socket accepting one behaviour per connection), so drops
and busy replies happen exactly where the test says; one end-to-end test
drives the real TCPFrontend.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.service import (
    AmbiguousRequestError,
    ClusteringService,
    RetriesExhaustedError,
    RetryPolicy,
    ServiceClient,
    TCPFrontend,
)


class ScriptedServer:
    """One scripted behaviour per accepted request, in order.

    Behaviours: ``"ok"`` (echo an ok reply), ``"busy"`` (busy reply with
    retry_after_s=0.2), ``"error"`` (typed error reply),
    ``"drop-before-reply"`` (read the request, close without replying),
    ``"close-on-accept"`` (close immediately).
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []  # decoded request dicts actually received
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        step = 0
        while step < len(self.script):
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            f = conn.makefile("rb")
            try:
                # serve as many script steps as this connection survives
                while step < len(self.script):
                    behaviour = self.script[step]
                    if behaviour == "close-on-accept":
                        step += 1
                        break
                    line = f.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    self.requests.append(request)
                    step += 1
                    if behaviour == "drop-before-reply":
                        break
                    if behaviour == "busy":
                        reply = {"status": "busy", "op": request.get("op", "?"),
                                 "retry_after_s": 0.2}
                    elif behaviour == "error":
                        reply = {"status": "error", "op": request.get("op", "?"),
                                 "error": "unknown tenant 'x'"}
                    else:
                        reply = {"status": "ok", "op": request.get("op", "?"),
                                 "body": {"echo": True}}
                    conn.sendall((json.dumps(reply) + "\n").encode())
            finally:
                # makefile() keeps the fd alive past conn.close(); shut the
                # socket down hard so a "drop" is visible immediately
                f.close()
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def close(self):
        self._sock.close()


def make_client(port, *, sleeps=None, resend_unacked=False, **policy_kw):
    policy_kw.setdefault("seed", 0)
    policy_kw.setdefault("base_backoff_s", 0.001)
    policy_kw.setdefault("timeout_s", 2.0)
    recorded = sleeps if sleeps is not None else []
    return ServiceClient(
        "127.0.0.1", port, policy=RetryPolicy(**policy_kw),
        resend_unacked=resend_unacked, sleep=recorded.append,
    ), recorded


class TestBusyBackpressure:
    def test_busy_retries_until_ok(self):
        server = ScriptedServer(["busy", "busy", "ok"])
        client, sleeps = make_client(server.port)
        with client:
            response = client.stats()
        assert response.ok
        assert client.busy_retries == 2
        assert len(sleeps) == 2
        server.close()

    def test_busy_sleep_floored_by_retry_after_hint(self):
        server = ScriptedServer(["busy", "ok"])
        client, sleeps = make_client(server.port, jitter=0.0)
        with client:
            client.stats()
        # base backoff is 1 ms but the server hinted 200 ms
        assert sleeps[0] >= 0.2
        server.close()

    def test_busy_exhaustion_raises_with_last_response(self):
        server = ScriptedServer(["busy"] * 3)
        client, _ = make_client(server.port, max_attempts=3)
        with client:
            with pytest.raises(RetriesExhaustedError) as excinfo:
                client.stats()
        assert excinfo.value.last_response.busy
        server.close()

    def test_busy_ingest_resend_is_safe(self):
        # busy = refused, nothing ingested, so even the non-idempotent op
        # retries through backpressure without an ambiguity error
        server = ScriptedServer(["busy", "ok"])
        client, _ = make_client(server.port)
        with client:
            response = client.ingest("t", [[0.0, 0.0, 0.0]])
        assert response.ok
        assert [r["op"] for r in server.requests] == ["ingest", "ingest"]
        server.close()


class TestTransportFaults:
    def test_reconnect_and_retry_idempotent_after_drop(self):
        server = ScriptedServer(["drop-before-reply", "ok"])
        client, _ = make_client(server.port)
        with client:
            response = client.query_labels("t")
        assert response.ok
        assert client.retries == 1
        assert client.reconnects == 1
        server.close()

    def test_unacked_ingest_raises_ambiguous(self):
        server = ScriptedServer(["drop-before-reply", "ok"])
        client, _ = make_client(server.port)
        with client:
            with pytest.raises(AmbiguousRequestError, match="resend_unacked"):
                client.ingest("t", [[0.0, 0.0, 0.0]])
        server.close()

    def test_resend_unacked_opts_into_at_least_once(self):
        server = ScriptedServer(["drop-before-reply", "ok"])
        client, _ = make_client(server.port, resend_unacked=True)
        with client:
            response = client.ingest("t", [[0.0, 0.0, 0.0]])
        assert response.ok
        assert len(server.requests) == 2
        server.close()

    def test_exhaustion_after_repeated_drops(self):
        server = ScriptedServer(["drop-before-reply"] * 3)
        client, _ = make_client(server.port, max_attempts=3)
        with client:
            with pytest.raises(RetriesExhaustedError) as excinfo:
                client.stats()
        assert isinstance(excinfo.value.last_error, Exception)
        server.close()

    def test_error_replies_are_returned_not_retried(self):
        # An error reply is the server's answer; resending an invalid
        # request cannot make it valid, so no retry is spent on it.
        server = ScriptedServer(["error"])
        client, sleeps = make_client(server.port)
        with client:
            response = client.query_labels("x")
        assert response.status == "error" and "unknown tenant" in response.error
        assert len(server.requests) == 1
        assert sleeps == []
        server.close()


class TestBackoffSchedule:
    def test_deterministic_with_seed(self):
        import random

        policy = RetryPolicy(seed=42, base_backoff_s=0.1, max_backoff_s=1.0)
        a = [policy.backoff(i, random.Random(42)) for i in range(4)]
        b = [policy.backoff(i, random.Random(42)) for i in range(4)]
        assert a == b

    def test_exponential_growth_capped(self):
        import random

        policy = RetryPolicy(jitter=0.0, base_backoff_s=0.1, max_backoff_s=0.5)
        rng = random.Random(0)
        delays = [policy.backoff(i, rng) for i in range(6)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert max(delays) <= 0.5

    def test_jitter_stays_within_band(self):
        import random

        policy = RetryPolicy(jitter=0.25, base_backoff_s=0.1, max_backoff_s=10.0, seed=1)
        rng = random.Random(1)
        for attempt in range(4):
            nominal = min(10.0, 0.1 * 2.0 ** attempt)
            delay = policy.backoff(attempt, rng)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)


class TestEndToEnd:
    def test_real_server_round_trip(self, make_config, tmp_path):
        import asyncio

        config = make_config(state_dir=str(tmp_path / "state"),
                             checkpoint_interval_s=None)
        ports = []

        async def serve():
            frontend = TCPFrontend(ClusteringService(config), port=0)
            await frontend.start()
            ports.append(frontend.port)
            await frontend.wait_closed()

        thread = threading.Thread(target=lambda: asyncio.run(serve()), daemon=True)
        thread.start()
        while not ports:
            pass
        rng = np.random.default_rng(0)
        client = ServiceClient("127.0.0.1", ports[0],
                               policy=RetryPolicy(seed=0, base_backoff_s=0.01))
        with client:
            assert client.ingest("t", rng.normal(size=(30, 3))).ok
            labels = client.query_labels("t")
            assert labels.ok and len(labels.body["labels"]) == 30
            assert client.checkpoint().body["outcome"]["t"] == "written"
            text = client.metrics_text()
            assert "rtdbscan_checkpoints_written_total 1" in text
            assert client.shutdown().ok
        thread.join(timeout=5)
        assert not thread.is_alive()
