"""TCP/JSON-lines front-end: real-socket round-trips, port file, auto-stop."""

from __future__ import annotations

import asyncio
import json

from repro.data.stream import make_stream
from repro.service import ClusteringService, TCPFrontend, run_server


def chunk_payload(size: int = 40, seed: int = 3) -> list[list[float]]:
    return next(iter(make_stream("drift-blobs", 1, size, seed=seed))).tolist()


async def request_lines(port: int, payloads: list[dict]) -> list[dict]:
    """Open one connection, send each payload as a line, read each reply."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    replies = []
    try:
        for payload in payloads:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            assert line, "server closed the connection early"
            replies.append(json.loads(line))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return replies


class TestTCPFrontend:
    def test_ingest_query_stats_shutdown_round_trip(self, run, make_config):
        async def scenario():
            frontend = TCPFrontend(ClusteringService(make_config()))
            await frontend.start()
            server = asyncio.create_task(frontend.wait_closed())
            replies = await request_lines(frontend.port, [
                {"op": "ingest", "tenant": "a", "points": chunk_payload(),
                 "request_id": 1},
                {"op": "query_labels", "tenant": "a"},
                {"op": "stats"},
                {"op": "not-a-real-op"},
                {"op": "shutdown"},
            ])
            await server
            return replies

        ingest, labels, stats, bad, shutdown = run(scenario())
        assert ingest["status"] == "ok"
        assert ingest["body"]["accepted_points"] == 40
        assert ingest["request_id"] == 1
        assert labels["status"] == "ok"
        assert len(labels["body"]["labels"]) == 40
        assert stats["body"]["service"]["requests"]["ingest"] == 1
        assert bad["status"] == "error" and "unknown op" in bad["error"]
        assert shutdown["status"] == "ok"

    def test_malformed_line_is_an_error_not_a_crash(self, run, make_config):
        async def scenario():
            frontend = TCPFrontend(ClusteringService(make_config()))
            await frontend.start()
            server = asyncio.create_task(frontend.wait_closed())
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           frontend.port)
            writer.write(b"{this is not json\n")
            await writer.drain()
            error = json.loads(await reader.readline())
            # The connection survives the bad line.
            writer.write(json.dumps({"op": "stats"}).encode() + b"\n")
            await writer.drain()
            stats = json.loads(await reader.readline())
            writer.write(json.dumps({"op": "shutdown"}).encode() + b"\n")
            await writer.drain()
            await reader.readline()
            writer.close()
            await server
            return error, stats

        error, stats = run(scenario())
        assert error["status"] == "error"
        assert "malformed JSON" in error["error"]
        assert stats["status"] == "ok"

    def test_large_ingest_line_fits_the_sized_reader_limit(self, run, make_config):
        """A multi-thousand-point ingest line (well past asyncio's 64 KiB
        readline default) round-trips because the server sizes its reader
        limit from max_batch_points."""
        points = [[float(i) * 1e-3, float(i) * 2e-3] for i in range(5000)]

        async def scenario():
            frontend = TCPFrontend(ClusteringService(make_config()))
            await frontend.start()
            server = asyncio.create_task(frontend.wait_closed())
            replies = await request_lines(frontend.port, [
                {"op": "ingest", "tenant": "a", "points": points},
                {"op": "shutdown"},
            ])
            await server
            return replies

        ingest, _ = run(scenario())
        assert ingest["status"] == "ok"
        assert ingest["body"]["accepted_points"] == 5000

    def test_oversized_line_gets_an_error_reply(self, run, make_config):
        """A line beyond the reader limit earns a protocol error response
        before the connection closes, and the server keeps serving."""
        config = make_config(max_batch_points=1)  # floor: 64 KiB limit

        async def scenario():
            frontend = TCPFrontend(ClusteringService(config))
            await frontend.start()
            server = asyncio.create_task(frontend.wait_closed())
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           frontend.port)
            writer.write(b"x" * 70_000 + b"\n")
            await writer.drain()
            error = json.loads(await reader.readline())
            closed = await reader.readline()  # framing lost -> closed
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            # A fresh connection still gets service.
            replies = await request_lines(frontend.port, [
                {"op": "stats"},
                {"op": "shutdown"},
            ])
            await server
            return error, closed, replies

        error, closed, (stats, shutdown) = run(scenario())
        assert error["status"] == "error"
        assert "line limit" in error["error"]
        assert closed == b""
        assert stats["status"] == "ok"
        assert shutdown["status"] == "ok"

    def test_port_file_announces_ephemeral_port(self, run, make_config, tmp_path):
        port_file = tmp_path / "service.port"

        async def scenario():
            frontend = TCPFrontend(ClusteringService(make_config()),
                                   port_file=port_file)
            await frontend.start()
            written = int(port_file.read_text().strip())
            assert written == frontend.port
            await frontend.aclose()
            return written

        assert run(scenario()) > 0

    def test_max_requests_stops_the_server(self, run, make_config):
        async def scenario():
            frontend = TCPFrontend(ClusteringService(make_config()),
                                   max_requests=2)
            await frontend.start()
            server = asyncio.create_task(frontend.wait_closed())
            replies = await request_lines(frontend.port, [
                {"op": "ingest", "tenant": "a", "points": chunk_payload()},
                {"op": "stats"},
            ])
            await server
            return replies, frontend.requests_served

        replies, served = run(scenario())
        assert [r["status"] for r in replies] == ["ok", "ok"]
        assert served == 2


class TestRunServer:
    def test_run_server_announces_and_returns_zero(self, make_config, tmp_path):
        """Drive the synchronous CLI entry point end-to-end on one thread by
        pre-scheduling the client against the announced port file."""
        import socket
        import threading

        port_file = tmp_path / "port"
        announced: list[str] = []
        replies: list[dict] = []

        def client() -> None:
            while not port_file.exists() or not port_file.read_text().strip():
                pass
            port = int(port_file.read_text().strip())
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                for payload in ({"op": "ingest", "tenant": "a",
                                 "points": chunk_payload()},
                                {"op": "shutdown"}):
                    fh.write(json.dumps(payload).encode() + b"\n")
                    fh.flush()
                    replies.append(json.loads(fh.readline()))

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        rc = run_server(make_config(), port=0, port_file=port_file,
                        announce=announced.append)
        thread.join(timeout=10)
        assert rc == 0
        assert not thread.is_alive()
        assert any("listening on" in line for line in announced)
        assert any("stopped after 2 request" in line for line in announced)
        assert [r["status"] for r in replies] == ["ok", "ok"]
