"""FaultInjector semantics: deterministic, counter-driven, site-scoped."""

import time

import pytest

from repro.service.faults import FAULT_SITES, FaultInjector, InjectedFault


class TestArming:
    def test_default_plan_raises_injected_fault(self):
        faults = FaultInjector()
        faults.arm("session.update")
        with pytest.raises(InjectedFault, match="session.update"):
            faults.fire("session.update")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector().arm("not.a.site")

    def test_all_documented_sites_armable(self):
        faults = FaultInjector()
        for site in FAULT_SITES:
            faults.arm(site, delay_s=0.0, corrupt="truncate")

    def test_unarmed_site_is_free(self):
        faults = FaultInjector()
        assert faults.fire("sweep") is None
        assert faults.fired("sweep") == 0


class TestFiringWindow:
    def test_times_limits_firings(self):
        faults = FaultInjector()
        faults.arm("sweep", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.fire("sweep")
        assert faults.fire("sweep") is None  # exhausted
        assert faults.fired("sweep") == 2

    def test_after_skips_initial_passes(self):
        faults = FaultInjector()
        faults.arm("store.write", after=2, times=1)
        assert faults.fire("store.write") is None
        assert faults.fire("store.write") is None
        with pytest.raises(InjectedFault):
            faults.fire("store.write")

    def test_unlimited_firings(self):
        faults = FaultInjector()
        faults.arm("sweep", times=None)
        for _ in range(5):
            with pytest.raises(InjectedFault):
                faults.fire("sweep")
        assert faults.fired("sweep") == 5

    def test_disarm(self):
        faults = FaultInjector()
        faults.arm("sweep")
        faults.disarm("sweep")
        assert faults.fire("sweep") is None

    def test_rearm_replaces_plan(self):
        faults = FaultInjector()
        faults.arm("sweep", times=1)
        with pytest.raises(InjectedFault):
            faults.fire("sweep")
        faults.arm("sweep", times=1)
        with pytest.raises(InjectedFault):
            faults.fire("sweep")


class TestEffects:
    def test_custom_error_raised(self):
        faults = FaultInjector()
        faults.arm("store.write", error=OSError(28, "No space left on device"))
        with pytest.raises(OSError, match="No space"):
            faults.fire("store.write")

    def test_delay_without_error_returns_plan(self):
        faults = FaultInjector()
        faults.arm("session.update", delay_s=0.01)
        t0 = time.perf_counter()
        plan = faults.fire("session.update")
        assert time.perf_counter() - t0 >= 0.01
        assert plan is not None and plan.fired == 1

    def test_corrupt_plan_returns_mode(self):
        faults = FaultInjector()
        faults.arm("store.corrupt", corrupt="flip")
        plan = faults.fire("store.corrupt")
        assert plan.corrupt == "flip"

    def test_log_records_firing_order(self):
        faults = FaultInjector()
        faults.arm("sweep", times=None)
        faults.arm("store.corrupt", corrupt="truncate", times=None)
        with pytest.raises(InjectedFault):
            faults.fire("sweep")
        faults.fire("store.corrupt")
        with pytest.raises(InjectedFault):
            faults.fire("sweep")
        assert faults.log == ["sweep", "store.corrupt", "sweep"]
