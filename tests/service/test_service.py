"""ClusteringService: multi-tenant parity, backpressure, eviction, ops."""

from __future__ import annotations

import asyncio

import numpy as np

from repro.data.stream import interleave_feeds, make_stream, multi_tenant_feeds
from repro.service import ClusteringService, Request
from repro.streaming import StreamingRTDBSCAN


def chunks_for(n: int, size: int = 40, seed: int = 3) -> list[np.ndarray]:
    return list(make_stream("drift-blobs", n, size, seed=seed))


async def ingest_until_accepted(service: ClusteringService, tenant: str,
                                chunk: np.ndarray) -> None:
    """Submit one chunk, retrying through backpressure until it is acked."""
    while True:
        resp = await service.submit(Request.ingest(tenant, chunk))
        if resp.ok:
            return
        assert resp.busy, resp.error
        # Yield so the tenant's worker can drain its queue.
        await asyncio.sleep(0)


class TestMultiTenantParity:
    def test_eight_tenants_bit_identical_to_serial_consume(self, run, make_config):
        """Acceptance: interleaved concurrent ingest across >= 8 tenants with
        micro-batching on yields per-tenant labels bit-identical to a serial
        ``consume()`` of the same feed."""
        feeds = multi_tenant_feeds(8, num_chunks=6, chunk_size=40,
                                   seed=5, skew=1.2)
        config = make_config(max_batch_chunks=4, max_queue_chunks=4)

        async def scenario():
            async with ClusteringService(config) as service:
                for tenant, chunk in interleave_feeds(feeds, seed=1):
                    await ingest_until_accepted(service, tenant, chunk)
                results = {}
                for tenant in feeds:
                    resp = await service.submit(Request.query_labels(tenant))
                    assert resp.ok, resp.error
                    results[tenant] = resp.body
                stats = (await service.submit(Request.stats())).body
                return results, stats

        results, stats = run(scenario())
        assert len(results) == 8
        for tenant, chunks in feeds.items():
            with StreamingRTDBSCAN(eps=0.4, min_pts=5, window=300) as ref:
                ref.consume(chunks)
                want = ref.result()
            got = results[tenant]
            assert got["labels"] == want.labels.tolist(), tenant
            assert got["core_mask"] == want.core_mask.tolist(), tenant
            assert (got["window_arrivals"]
                    == want.extra["window_arrivals"].tolist()), tenant
        # Micro-batching actually engaged: fewer update() calls than chunks.
        total_chunks = sum(len(chunks) for chunks in feeds.values())
        assert stats["service"]["chunks_ingested"] == total_chunks
        assert stats["service"]["batches"] <= total_chunks

    def test_single_tenant_parity_under_forced_batching(self, run, make_config):
        """All chunks queued before the worker runs -> maximal coalescing."""
        chunks = chunks_for(6, seed=9)
        config = make_config(max_batch_chunks=8, max_queue_chunks=8)

        async def scenario():
            async with ClusteringService(config) as service:
                for chunk in chunks:
                    resp = await service.submit(Request.ingest("t", chunk))
                    assert resp.ok
                resp = await service.submit(Request.query_labels("t"))
                session = service.sessions.get("t", touch=False)
                return resp.body, session.engine.num_updates

        body, num_updates = run(scenario())
        with StreamingRTDBSCAN(eps=0.4, min_pts=5, window=300) as ref:
            ref.consume(chunks)
            want = ref.result()
        assert body["labels"] == want.labels.tolist()
        assert num_updates < len(chunks)  # coalescing really happened


class TestBackpressure:
    def test_full_queue_answers_busy_with_retry_hint(self, run, make_config):
        config = make_config(max_queue_chunks=2, retry_after_s=0.125)
        chunks = chunks_for(4)

        async def scenario():
            service = ClusteringService(config)
            # No worker draining between submits on the microtask fast-path:
            # the first ingest creates the session task but submits don't
            # yield, so the queue fills.
            first = await service.submit(Request.ingest("t", chunks[0]))
            assert first.ok and first.body["session_created"]
            second = await service.submit(Request.ingest("t", chunks[1]))
            third = await service.submit(Request.ingest("t", chunks[2]))
            await service.aclose()
            return second, third

        second, third = run(scenario())
        assert second.ok
        assert third.busy
        assert third.retry_after_s == 0.125
        assert "queue full" in third.error

    def test_capacity_backpressure_when_pool_is_busy(self, run, make_config):
        config = make_config(max_sessions=1, max_queue_chunks=8)
        chunks = chunks_for(2)

        async def scenario():
            service = ClusteringService(config)
            await service.submit(Request.ingest("a", chunks[0]))
            # "a" has queued work -> not idle -> no LRU victim for "b".
            resp = await service.submit(Request.ingest("b", chunks[1]))
            await service.aclose()
            return resp

        resp = run(scenario())
        assert resp.busy
        assert "full" in resp.error


class TestEviction:
    def test_ttl_sweep_evicts_and_reaps_worker(self, run, make_config, fake_clock):
        config = make_config(session_ttl_s=10.0, sweep_interval_s=1e9)
        chunk = chunks_for(1)[0]

        async def scenario():
            service = ClusteringService(config, clock=fake_clock)
            await service.start()
            await service.submit(Request.ingest("t", chunk))
            session = service.sessions.get("t", touch=False)
            await session.drain()
            fake_clock.advance(11.0)
            evicted = await service.sweep()
            await service.aclose()
            return evicted, session, dict(service.metrics.sessions_evicted)

        evicted, session, reasons = run(scenario())
        assert evicted == ["t"]
        assert session.closed
        assert session.engine.num_releases == 1  # release() exactly once
        assert reasons == {"ttl": 1}

    def test_lru_capacity_eviction_reaps_stale_worker(self, run, make_config,
                                                      fake_clock):
        config = make_config(max_sessions=2)
        chunks = chunks_for(3)

        async def scenario():
            service = ClusteringService(config, clock=fake_clock)
            await service.submit(Request.ingest("a", chunks[0]))
            await service.submit(Request.ingest("b", chunks[1]))
            for tenant in ("a", "b"):
                await service.sessions.get(tenant, touch=False).drain()
            first = service.sessions.get("a", touch=False)
            fake_clock.advance(1.0)
            service.sessions.get("b")  # touch: "a" becomes the LRU victim
            await service.submit(Request.ingest("c", chunks[2]))
            workers = set(service._workers)
            await service.aclose()
            return first, workers

        first, workers = run(scenario())
        assert first.closed
        assert first.engine.num_releases == 1
        assert workers == {"b", "c"}  # evicted tenant's worker was reaped

    def test_explicit_evict_op(self, run, make_config):
        chunk = chunks_for(1)[0]

        async def scenario():
            async with ClusteringService(make_config()) as service:
                await service.submit(Request.ingest("t", chunk))
                session = service.sessions.get("t", touch=False)
                first = await service.submit(Request.evict("t"))
                second = await service.submit(Request.evict("t"))
                return first, second, session

        first, second, session = run(scenario())
        assert first.ok and first.body == {"evicted": True, "checkpoint_deleted": False}
        assert second.ok and second.body == {"evicted": False, "checkpoint_deleted": False}
        assert session.engine.num_releases == 1


class TestFailureContainment:
    def test_mixed_dim_ingest_is_an_error_not_a_hang(self, run, make_config):
        """A 2-d chunk followed by a 3-d chunk for the same tenant (both
        protocol-valid) is rejected at enqueue; the session keeps serving
        and shutdown still drains cleanly."""
        config = make_config(max_batch_chunks=4, max_queue_chunks=8)

        async def scenario():
            async with ClusteringService(config) as service:
                ok = await service.submit(Request.ingest("t", chunks_for(1)[0]))
                bad = await service.submit(
                    {"op": "ingest", "tenant": "t", "points": [[0.0, 0.0, 0.0]] * 8}
                )
                labels = await service.submit(Request.query_labels("t"))
                again = await service.submit(Request.ingest("t", chunks_for(1, seed=5)[0]))
                return ok, bad, labels, again

        ok, bad, labels, again = run(scenario())
        assert ok.ok
        assert not bad.ok and "2-d" in bad.error
        assert labels.ok and len(labels.body["labels"]) == 40
        assert again.ok  # the session survived the bad chunk

    def test_failed_update_degrades_to_errors_and_evict_resets(self, run, make_config):
        """When the engine raises mid-update the tenant gets error responses
        (not hangs), stats surface the failure, and evicting the tenant
        builds a fresh working session."""
        chunks = chunks_for(3)

        async def scenario():
            async with ClusteringService(make_config()) as service:
                await service.submit(Request.ingest("t", chunks[0]))
                session = service.sessions.get("t", touch=False)
                await session.drain()

                def boom(points):
                    raise RuntimeError("engine exploded")

                session.engine.update = boom
                await service.submit(Request.ingest("t", chunks[1]))
                labels = await service.submit(Request.query_labels("t"))
                rejected = await service.submit(Request.ingest("t", chunks[2]))
                stats = await service.submit(Request.stats())
                evicted = await service.submit(Request.evict("t"))
                fresh = await service.submit(Request.ingest("t", chunks[2]))
                return labels, rejected, stats, evicted, fresh, session

        labels, rejected, stats, evicted, fresh, session = run(scenario())
        assert not labels.ok and "session failed" in labels.error
        assert not rejected.ok and "evict" in rejected.error
        assert stats.body["service"]["update_failures"] == 1
        assert stats.body["sessions"]["tenants"]["t"]["error"] is not None
        assert evicted.ok and evicted.body["evicted"] is True
        assert session.engine.num_releases == 1
        assert fresh.ok and fresh.body["session_created"]

    def test_sweeper_survives_a_failing_sweep_pass(self, run, make_config, fake_clock):
        config = make_config(session_ttl_s=10.0, sweep_interval_s=0.01)

        async def scenario():
            service = ClusteringService(config, clock=fake_clock)
            await service.start()
            calls = []
            original = service.sweep

            async def flaky_sweep():
                calls.append(True)
                if len(calls) == 1:
                    raise RuntimeError("sweep blew up")
                return await original()

            service.sweep = flaky_sweep
            for _ in range(500):  # bounded wait: ~5 s worst case
                if len(calls) >= 3:
                    break
                await asyncio.sleep(0.01)
            alive = not service._sweeper.done()
            await service.aclose()
            return calls, alive

        calls, alive = run(scenario())
        assert len(calls) >= 3  # kept firing after the failure
        assert alive

    def test_reads_degrade_gracefully_without_engine_extras(self, run, make_config):
        """A streaming-capable engine without window_arrivals/snapshot gets
        null arrivals and a clean snapshot error, not KeyError/AttributeError."""
        from types import SimpleNamespace

        class MinimalEngine:
            def update(self, points):
                self.n = int(points.shape[0])

            def result(self):
                n = getattr(self, "n", 0)
                return SimpleNamespace(
                    labels=np.zeros(n, dtype=np.int64),
                    core_mask=np.zeros(n, dtype=bool),
                    extra={},
                    num_clusters=0,
                    num_noise=n,
                )

            def release(self):
                pass

        async def scenario():
            async with ClusteringService(make_config()) as service:
                await service.submit(Request.ingest("t", chunks_for(1)[0]))
                session = service.sessions.get("t", touch=False)
                await session.drain()
                session.engine = MinimalEngine()
                await service.submit(Request.ingest("t", chunks_for(1)[0]))
                labels = await service.submit(Request.query_labels("t"))
                snap = await service.submit(Request.snapshot("t"))
                return labels, snap

        labels, snap = run(scenario())
        assert labels.ok
        assert labels.body["window_arrivals"] is None
        assert labels.body["window_size"] == 40
        assert not snap.ok and "does not support snapshot" in snap.error


class TestOps:
    def test_unknown_tenant_query_is_an_error(self, run, make_config):
        async def scenario():
            async with ClusteringService(make_config()) as service:
                return (await service.submit(Request.query_labels("ghost")),
                        await service.submit(Request.snapshot("ghost")))

        labels, snap = run(scenario())
        assert not labels.ok and "unknown tenant" in labels.error
        assert not snap.ok and "unknown tenant" in snap.error

    def test_snapshot_reflects_drained_window(self, run, make_config):
        chunks = chunks_for(3)

        async def scenario():
            async with ClusteringService(make_config()) as service:
                for chunk in chunks:
                    await service.submit(Request.ingest("t", chunk))
                resp = await service.submit(Request.snapshot("t"))
                return resp

        resp = run(scenario())
        assert resp.ok
        body = resp.body
        assert body["window_size"] == sum(c.shape[0] for c in chunks)
        assert len(body["labels"]) == body["window_size"]
        assert body["released"] is False
        assert "summary" in body

    def test_stats_surface(self, run, make_config):
        chunk = chunks_for(1)[0]

        async def scenario():
            async with ClusteringService(make_config()) as service:
                await service.submit(Request.ingest("t", chunk))
                await service.sessions.get("t", touch=False).drain()
                return await service.submit(Request.stats())

        resp = run(scenario())
        assert resp.ok
        body = resp.body
        assert body["service"]["requests"]["ingest"] == 1
        assert body["service"]["sessions_created"] == 1
        assert body["sessions"]["tenants"]["t"]["points_ingested"] == 40
        assert body["config"]["max_sessions"] == 64

    def test_shutdown_releases_all_sessions(self, run, make_config):
        chunks = chunks_for(2)

        async def scenario():
            service = ClusteringService(make_config())
            await service.submit(Request.ingest("a", chunks[0]))
            await service.submit(Request.ingest("b", chunks[1]))
            sessions = [service.sessions.get(t, touch=False) for t in ("a", "b")]
            resp = await service.submit(Request.shutdown())
            after = await service.submit(Request.stats())
            return resp, after, sessions, service.shutdown_event.is_set()

        resp, after, sessions, event_set = run(scenario())
        assert resp.ok and resp.body["sessions_evicted"] == 2
        assert all(s.engine.num_releases == 1 for s in sessions)
        assert not after.ok and "shut down" in after.error
        assert event_set

    def test_dict_requests_and_protocol_errors(self, run, make_config):
        async def scenario():
            async with ClusteringService(make_config()) as service:
                ok = await service.submit(
                    {"op": "ingest", "tenant": "t", "points": [[0.0, 0.0]] * 8}
                )
                bad = await service.submit({"op": "frobnicate"})
                return ok, bad

        ok, bad = run(scenario())
        assert ok.ok and ok.body["accepted_points"] == 8
        assert not bad.ok and "unknown op" in bad.error
