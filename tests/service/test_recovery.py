"""Durable sessions and chaos paths: spill, restore, checkpoints, faults.

Everything here runs in-process against :class:`ClusteringService` with a
real state dir, so the spill → restore → continue path is exercised through
the same code the TCP server runs — and every injected fault must degrade
gracefully: typed error replies, quarantined files, dropped-not-hung
sessions.
"""

import numpy as np
import pytest

from repro.api import ClustererSpec
from repro.service import (
    ClusteringService,
    FaultInjector,
    InjectedFault,
    Request,
)
from repro.streaming.engine import StreamingRTDBSCAN

EPS, MIN_PTS, WINDOW = 0.4, 5, 250


def make_chunks(seed=17, n_chunks=6, size=50):
    rng = np.random.default_rng(seed)
    return [
        (rng.uniform(-1, 1, size=3) + rng.normal(scale=0.3, size=(size, 3)))
        for _ in range(n_chunks)
    ]


def durable_config(make_config, tmp_path, backend=None, **overrides):
    algo = "streaming-rt-dbscan" if backend is None else f"streaming-rt-dbscan@{backend}"
    spec = ClustererSpec(algo=algo, eps=EPS, min_pts=MIN_PTS, params={"window": WINDOW})
    overrides.setdefault("checkpoint_interval_s", None)
    return make_config(spec=spec, state_dir=str(tmp_path / "state"), **overrides)


def reference_labels(chunks, backend=None):
    engine = StreamingRTDBSCAN(eps=EPS, min_pts=MIN_PTS, window=WINDOW, backend=backend)
    for chunk in chunks:
        engine.update(chunk)
    return engine.result().labels.tolist()


async def ingest_all(service, tenant, chunks):
    for chunk in chunks:
        response = await service.submit(Request.ingest(tenant, chunk))
        assert response.ok, response.error


class TestSpillRestoreParity:
    @pytest.mark.parametrize("backend", ["grid", "kdtree", "brute", None])
    def test_evict_restore_continue_bit_identical(self, run, make_config, tmp_path, backend):
        chunks = make_chunks()
        config = durable_config(make_config, tmp_path, backend=backend)

        async def scenario():
            async with ClusteringService(config) as service:
                await ingest_all(service, "t", chunks[:3])
                session = service.sessions.get("t", touch=False)
                await session.drain()
                await service._stop_worker("t")
                evicted = service.sessions.evict("t", reason="ttl")
                assert evicted.spilled is True and evicted.spill_error is None
                assert "t" not in service.sessions
                # the next request transparently restores and streams on
                await ingest_all(service, "t", chunks[3:])
                response = await service.submit(Request.query_labels("t"))
                assert response.ok
                assert service.sessions.get("t", touch=False).restored is True
                return response.body["labels"]

        assert run(scenario()) == reference_labels(chunks, backend=backend)

    def test_shutdown_spills_and_restart_is_warm(self, run, make_config, tmp_path):
        chunks = make_chunks(seed=29)
        config = durable_config(make_config, tmp_path)

        async def first_life():
            async with ClusteringService(config) as service:
                await ingest_all(service, "t", chunks[:4])
            # context exit = shutdown eviction = spill

        async def second_life():
            async with ClusteringService(config) as service:
                await ingest_all(service, "t", chunks[4:])
                response = await service.submit(Request.query_labels("t"))
                assert response.ok
                return response.body["labels"]

        run(first_life())
        assert run(second_life()) == reference_labels(chunks)

    def test_query_restores_without_ingest(self, run, make_config, tmp_path):
        chunks = make_chunks(seed=41, n_chunks=3)
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config) as service:
                await ingest_all(service, "t", chunks)
                before = await service.submit(Request.query_labels("t"))
            async with ClusteringService(config) as service:
                after = await service.submit(Request.query_labels("t"))
                assert after.ok
                return before.body["labels"], after.body["labels"]

        before, after = run(scenario())
        assert before == after

    def test_ttl_sweep_spills(self, run, make_config, fake_clock, tmp_path):
        config = durable_config(make_config, tmp_path, session_ttl_s=5.0)

        async def scenario():
            service = ClusteringService(config, clock=fake_clock)
            await service.start()
            await ingest_all(service, "t", make_chunks(n_chunks=1))
            session = service.sessions.get("t", touch=False)
            await session.drain()
            fake_clock.advance(10.0)
            evicted = await service.sweep()
            assert evicted == ["t"]
            assert service.metrics.sessions_spilled == 1
            assert service.metrics.sessions_evicted.get("ttl") == 1
            assert service.store.load("t") is not None
            await service.aclose()

        run(scenario())

    def test_explicit_evict_deletes_checkpoint(self, run, make_config, tmp_path):
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config) as service:
                await ingest_all(service, "t", make_chunks(n_chunks=2))
                await service.submit(Request.checkpoint("t"))
                assert service.store.load("t") is not None
                response = await service.submit(Request.evict("t"))
                assert response.body == {"evicted": True, "checkpoint_deleted": True}
                fresh = await service.submit(Request.query_labels("t"))
                assert fresh.status == "error" and "unknown tenant" in fresh.error

        run(scenario())


class TestCheckpointOp:
    def test_checkpoint_op_writes_all_sessions(self, run, make_config, tmp_path):
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config) as service:
                await ingest_all(service, "a", make_chunks(seed=1, n_chunks=1))
                await ingest_all(service, "b", make_chunks(seed=2, n_chunks=1))
                response = await service.submit(Request.checkpoint())
                assert response.ok
                assert response.body["outcome"] == {"a": "written", "b": "written"}
                assert sorted(service.store.tenants()) == ["a", "b"]

        run(scenario())

    def test_checkpoint_without_state_dir_is_typed_error(self, run, make_config):
        async def scenario():
            async with ClusteringService(make_config()) as service:
                response = await service.submit(Request.checkpoint())
                assert response.status == "error"
                assert "state_dir" in response.error

        run(scenario())

    def test_periodic_checkpointer_runs(self, run, make_config, tmp_path):
        config = durable_config(make_config, tmp_path, checkpoint_interval_s=0.05)

        async def scenario():
            import asyncio

            async with ClusteringService(config) as service:
                await ingest_all(service, "t", make_chunks(n_chunks=1))
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if service.metrics.checkpoints_written:
                        break
                assert service.metrics.checkpoints_written >= 1
                assert service.store.load("t") is not None

        run(scenario())


class TestInjectedFaults:
    def test_worker_crash_fails_session_not_service(self, run, make_config, tmp_path):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                await ingest_all(service, "t", make_chunks(n_chunks=1))
                assert (await service.submit(Request.query_labels("t"))).ok
                faults.arm("session.update", times=1)
                assert (await service.submit(
                    Request.ingest("t", make_chunks(seed=9, n_chunks=1)[0])
                )).ok  # ack precedes the failing update
                response = await service.submit(Request.query_labels("t"))
                assert response.status == "error"
                assert "session failed" in response.error
                assert "InjectedFault" in response.error
                # other tenants are unaffected
                assert (await service.submit(
                    Request.ingest("u", make_chunks(seed=10, n_chunks=1)[0])
                )).ok
                # evict resets; the tenant works again
                await service.submit(Request.evict("t"))
                await ingest_all(service, "t", make_chunks(n_chunks=1))
                assert (await service.submit(Request.query_labels("t"))).ok
                assert service.metrics.update_failures == 1

        run(scenario())

    def test_failed_session_never_spills(self, run, make_config, tmp_path):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                faults.arm("session.update", times=1)
                await service.submit(Request.ingest("t", make_chunks(n_chunks=1)[0]))
                session = service.sessions.get("t", touch=False)
                await session.drain()
                assert session.error is not None
                await service._stop_worker("t")
                evicted = service.sessions.evict("t", reason="ttl")
                assert evicted.spilled is False
                assert "session failed" in evicted.spill_error
                assert service.store.load("t") is None
                assert service.metrics.sessions_dropped == 1

        run(scenario())

    def test_disk_full_spill_drops_but_reports(self, run, make_config, tmp_path):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                await ingest_all(service, "t", make_chunks(n_chunks=1))
                session = service.sessions.get("t", touch=False)
                await session.drain()
                await service._stop_worker("t")
                faults.arm("store.write", error=OSError(28, "No space left on device"))
                evicted = service.sessions.evict("t", reason="ttl")
                assert evicted.spilled is False
                assert "No space" in evicted.spill_error
                assert evicted.stats()["spilled"] is False
                assert service.metrics.checkpoint_failures == 1
                assert service.metrics.sessions_dropped == 1

        run(scenario())

    def test_corrupt_checkpoint_quarantined_and_fresh_session(
        self, run, make_config, tmp_path
    ):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)
        chunks = make_chunks(seed=55, n_chunks=2)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                await ingest_all(service, "t", chunks)
                # times=None: the shutdown spill on context exit re-writes the
                # checkpoint, and that write must be torn too
                faults.arm("store.corrupt", corrupt="truncate", times=None)
                await service.submit(Request.checkpoint("t"))
            # restart: the torn checkpoint must be quarantined, not trusted
            async with ClusteringService(config, faults=FaultInjector()) as service:
                response = await service.submit(
                    Request.ingest("t", chunks[0])
                )
                assert response.ok
                session = service.sessions.get("t", touch=False)
                assert session.restored is False  # started fresh
                assert service.metrics.checkpoints_corrupt == 1
                assert service.metrics.restore_failures == 1
                quarantined = list(service.store.quarantine_dir.iterdir())
                assert len(quarantined) == 1

        run(scenario())

    def test_sweeper_survives_sweep_fault(self, run, make_config, fake_clock, tmp_path):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path, session_ttl_s=5.0)

        async def scenario():
            service = ClusteringService(config, clock=fake_clock, faults=faults)
            await service.start()
            await ingest_all(service, "t", make_chunks(n_chunks=1))
            await service.sessions.get("t", touch=False).drain()
            faults.arm("sweep", times=1)
            with pytest.raises(InjectedFault):
                await service.sweep()
            # next pass works: the sweeper path is not poisoned
            fake_clock.advance(10.0)
            assert await service.sweep() == ["t"]
            await service.aclose()

        run(scenario())

    def test_slow_update_shows_in_latency_not_failure(self, run, make_config, tmp_path):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                faults.arm("session.update", delay_s=0.05, times=1)
                await ingest_all(service, "t", make_chunks(n_chunks=1))
                response = await service.submit(Request.query_labels("t"))
                assert response.ok  # slow, not failed
                session = service.sessions.get("t", touch=False)
                assert session.error is None
                assert session.metrics.latency.as_dict()["max_s"] >= 0.05
                assert service.metrics.update_failures == 0

        run(scenario())


class TestMetricsExposition:
    def test_metrics_op_renders_prometheus_text(self, run, make_config, tmp_path):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                await ingest_all(service, "t", make_chunks(n_chunks=2))
                session = service.sessions.get("t", touch=False)
                await session.drain()
                await service._stop_worker("t")
                service.sessions.evict("t", reason="ttl")
                await service.submit(Request.query_labels("t"))  # restore
                response = await service.submit(Request.metrics())
                assert response.ok
                assert response.body["content_type"].startswith("text/plain")
                return response.body["text"]

        text = run(scenario())
        assert "# HELP rtdbscan_requests_total" in text
        assert "# TYPE rtdbscan_requests_total counter" in text
        assert 'rtdbscan_requests_total{op="ingest"} 2' in text
        assert "rtdbscan_sessions_spilled_total 1" in text
        assert 'rtdbscan_tenant_spills_total{tenant="t"} 1' in text
        assert 'rtdbscan_tenant_evictions_total{tenant="t"} 1' in text
        assert "rtdbscan_sessions_restored_total 1" in text
        assert "rtdbscan_restore_seconds_count 1" in text
        assert "rtdbscan_checkpoint_write_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self, run, make_config, tmp_path):
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config) as service:
                tenant = 'ten"ant\\weird'
                await ingest_all(service, tenant, make_chunks(n_chunks=1))
                session = service.sessions.get(tenant, touch=False)
                await session.drain()
                await service._stop_worker(tenant)
                service.sessions.evict(tenant, reason="ttl")
                response = await service.submit(Request.metrics())
                return response.body["text"]

        text = run(scenario())
        assert 'tenant="ten\\"ant\\\\weird"' in text

    def test_stats_include_store_and_spill_outcome(self, run, make_config, tmp_path):
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config) as service:
                await ingest_all(service, "t", make_chunks(n_chunks=1))
                await service.submit(Request.checkpoint())
                response = await service.submit(Request.stats())
                assert response.body["store"]["checkpoints"] == 1
                assert response.body["store"]["quarantined"] == 0
                tenant_stats = response.body["sessions"]["tenants"]["t"]
                assert tenant_stats["restored"] is False
                assert tenant_stats["spilled"] is None  # still live
                assert "sessions_spilled" in response.body["service"]

        run(scenario())


class TestNoLeaks:
    def test_no_hung_drains_or_leaked_sessions_after_fault_storm(
        self, run, make_config, tmp_path
    ):
        faults = FaultInjector()
        config = durable_config(make_config, tmp_path)

        async def scenario():
            async with ClusteringService(config, faults=faults) as service:
                # crash one tenant's worker, disk-fail another's spill,
                # serve a third normally
                faults.arm("session.update", times=1)
                await service.submit(Request.ingest("crash", make_chunks(seed=1, n_chunks=1)[0]))
                await ingest_all(service, "ok", make_chunks(seed=2, n_chunks=2))
                await ingest_all(service, "spillfail", make_chunks(seed=3, n_chunks=1))
                for tenant in ("crash", "ok", "spillfail"):
                    await service.sessions.get(tenant, touch=False).drain()
                faults.arm("store.write", error=OSError(28, "disk full"), times=1)
                await service._stop_worker("spillfail")
                service.sessions.evict("spillfail", reason="ttl")
                assert (await service.submit(Request.query_labels("ok"))).ok
            # aclose drained and tore everything down without hanging
            assert len(service.sessions) == 0
            assert not service._workers

        run(scenario())
