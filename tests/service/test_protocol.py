"""Protocol layer: request/response validation and JSON-lines framing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.protocol import (
    OPS,
    ProtocolError,
    Request,
    Response,
    decode_line,
    encode_line,
)


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            Request(op="frobnicate")

    @pytest.mark.parametrize("op", ["ingest", "query_labels", "snapshot", "evict"])
    def test_tenant_ops_require_tenant(self, op):
        points = [[0.0, 0.0]] if op == "ingest" else None
        with pytest.raises(ProtocolError, match="requires a tenant"):
            Request(op=op, points=points)

    def test_ingest_requires_points(self):
        with pytest.raises(ProtocolError, match="requires points"):
            Request(op="ingest", tenant="a")

    @pytest.mark.parametrize(
        "points",
        [[], [[0.0]], [[0.0, 0.0, 0.0, 0.0]], [[np.nan, 0.0]], [[np.inf, 1.0]]],
    )
    def test_ingest_rejects_bad_points(self, points):
        with pytest.raises(ProtocolError):
            Request(op="ingest", tenant="a", points=points)

    def test_ingest_coerces_points_to_float64_array(self):
        req = Request.ingest("a", [[1, 2], [3, 4]])
        assert isinstance(req.points, np.ndarray)
        assert req.points.dtype == np.float64
        assert req.points.shape == (2, 2)

    @pytest.mark.parametrize("op", ["query_labels", "stats", "shutdown", "evict"])
    def test_non_ingest_ops_reject_points(self, op):
        tenant = "a" if op not in ("stats", "shutdown") else None
        with pytest.raises(ProtocolError, match="does not accept points"):
            Request(op=op, tenant=tenant, points=[[0.0, 0.0]])

    def test_every_op_has_a_constructor(self):
        built = {
            Request.ingest("a", [[0.0, 0.0]]).op,
            Request.query_labels("a").op,
            Request.snapshot("a").op,
            Request.evict("a").op,
            Request.stats().op,
            Request.metrics().op,
            Request.checkpoint().op,
            Request.shutdown().op,
        }
        assert built == set(OPS)


class TestRoundTrips:
    def test_request_dict_round_trip(self):
        req = Request.ingest("tenant-7", [[0.5, 1.5], [2.5, 3.5]], request_id=42)
        clone = Request.from_dict(req.as_dict())
        assert clone.op == "ingest"
        assert clone.tenant == "tenant-7"
        assert clone.request_id == 42
        assert np.array_equal(clone.points, req.points)

    def test_request_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            Request.from_dict({"op": "stats", "bogus": 1})

    def test_request_from_dict_requires_op(self):
        with pytest.raises(ProtocolError, match="missing the 'op'"):
            Request.from_dict({"tenant": "a"})

    def test_response_dict_round_trip(self):
        resp = Response(status="busy", op="ingest", tenant="a",
                        error="queue full", retry_after_s=0.25, request_id="r1")
        clone = Response.from_dict(resp.as_dict())
        assert clone.busy and not clone.ok
        assert clone.retry_after_s == 0.25
        assert clone.error == "queue full"
        assert clone.request_id == "r1"

    def test_line_framing_round_trip(self):
        payload = Request.stats(request_id=9).as_dict()
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert decode_line(line) == payload

    def test_decode_line_rejects_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            decode_line(b"{not json}\n")

    def test_decode_line_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")
