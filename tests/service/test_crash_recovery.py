"""Crash-recovery parity: kill -9 the server, restart warm, labels identical.

The strongest durability claim in the project: a server killed with SIGKILL
mid-stream and restarted from ``--state-dir`` continues every tenant's feed
with labels byte-identical to a monolithic :class:`StreamingRTDBSCAN` run
that never stopped — asserted for every engine-supported backend.  The
server runs as a real subprocess through the real CLI, so the whole stack
(argparse → ServiceConfig → TCP → session → store) is on the hook.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service import RetryPolicy, ServiceClient
from repro.streaming.engine import StreamingRTDBSCAN

REPO_ROOT = Path(__file__).resolve().parents[2]
EPS, MIN_PTS, WINDOW = 0.45, 5, 200


def make_chunks(seed=101, n_chunks=6, size=45):
    rng = np.random.default_rng(seed)
    return [
        (rng.uniform(-1, 1, size=3) + rng.normal(scale=0.3, size=(size, 3)))
        for _ in range(n_chunks)
    ]


def start_server(tmp_path, backend, tag):
    port_file = tmp_path / f"port-{tag}.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--eps", str(EPS), "--min-pts", str(MIN_PTS),
            "--window", str(WINDOW),
            "--algo", f"streaming-rt-dbscan@{backend}" if backend != "rt"
            else "streaming-rt-dbscan",
            "--port", "0", "--port-file", str(port_file),
            "--state-dir", str(tmp_path / "state"),
            "--checkpoint-interval", "0",  # the test checkpoints explicitly
        ],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with {proc.returncode}")
        if time.monotonic() > deadline:
            proc.kill()
            raise TimeoutError("server did not write its port file")
        time.sleep(0.02)
    return proc, int(port_file.read_text().strip())


def reference_labels(chunks, backend):
    engine = StreamingRTDBSCAN(
        eps=EPS, min_pts=MIN_PTS, window=WINDOW,
        backend=None if backend == "rt" else backend,
    )
    for chunk in chunks:
        engine.update(chunk)
    return engine.result().labels.tolist()


@pytest.mark.parametrize("backend", ["grid", "kdtree", "brute", "rt"])
def test_sigkill_restart_replay_is_bit_identical(tmp_path, backend):
    chunks = make_chunks()
    policy = RetryPolicy(seed=0, base_backoff_s=0.05, timeout_s=20.0)

    proc, port = start_server(tmp_path, backend, "first")
    try:
        with ServiceClient("127.0.0.1", port, policy=policy) as client:
            for chunk in chunks[:3]:
                assert client.ingest("feed", chunk).ok
            # drain + spill everything, then die without any chance to clean up
            outcome = client.checkpoint()
            assert outcome.ok and outcome.body["outcome"]["feed"] == "written"
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=10)

    proc, port = start_server(tmp_path, backend, "second")
    try:
        with ServiceClient("127.0.0.1", port, policy=policy) as client:
            for chunk in chunks[3:]:
                assert client.ingest("feed", chunk).ok
            response = client.query_labels("feed")
            assert response.ok
            labels = response.body["labels"]
            stats = client.stats()
            tenant_stats = stats.body["sessions"]["tenants"]["feed"]
            assert tenant_stats["restored"] is True
            text = client.metrics_text()
            assert "rtdbscan_sessions_restored_total 1" in text
            client.shutdown()
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    assert labels == reference_labels(chunks, backend)
