"""Smoke tests for the top-level public API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_quickstart_flow(self):
        from repro.data import make_blobs

        points, _ = make_blobs(500, centers=3, std=0.2, seed=1)
        result = repro.rt_dbscan(points, eps=0.4, min_pts=5)
        assert result.num_clusters == 3
        reference = repro.classic_dbscan(points, eps=0.4, min_pts=5)
        np.testing.assert_array_equal(result.core_mask, reference.core_mask)

    def test_clusterer_classes_share_result_type(self):
        from repro.data import make_blobs

        points, _ = make_blobs(300, centers=2, std=0.2, seed=2)
        for cls in (repro.RTDBSCAN, repro.FDBSCAN, repro.GDBSCAN, repro.CUDADClustPlus):
            result = cls(eps=0.4, min_pts=5).fit(points)
            assert isinstance(result, repro.DBSCANResult)
            assert result.num_clusters == 2

    def test_device_is_shareable_between_algorithms(self):
        from repro.data import make_blobs

        points, _ = make_blobs(300, centers=2, std=0.2, seed=3)
        device = repro.RTDevice()
        repro.RTDBSCAN(eps=0.4, min_pts=5, device=device).fit(points)
        repro.FDBSCAN(eps=0.4, min_pts=5, device=device).fit(points)
        counts = device.total_counts
        assert counts.rt_node_visits > 0 and counts.sm_node_visits > 0

    def test_default_cost_model_exported(self):
        assert repro.DEFAULT_COST_MODEL.device_memory_bytes == 6 * 1024**3

    def test_examples_are_importable(self):
        # The example scripts must at least parse and expose a main().
        import importlib.util
        import pathlib

        examples = pathlib.Path(__file__).resolve().parents[1] / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            spec = importlib.util.spec_from_file_location(script.stem, script)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)  # executes imports + defs only
            assert hasattr(module, "main"), script.name


class TestParamValidationAcrossAlgorithms:
    @pytest.mark.parametrize("factory", [
        lambda: repro.RTDBSCAN(eps=-1, min_pts=5),
        lambda: repro.FDBSCAN(eps=0.5, min_pts=0),
        lambda: repro.GDBSCAN(eps=float("nan"), min_pts=5),
        lambda: repro.CUDADClustPlus(eps=0.0, min_pts=5),
    ])
    def test_invalid_construction_raises(self, factory):
        with pytest.raises(ValueError):
            factory()
