"""Tests for the simulated RT device and the OptiX-style pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.sphere import SphereGeometry
from repro.perf.cost_model import DeviceCostModel, OpCounts
from repro.perf.memory import DeviceMemoryError
from repro.rtcore.device import RTDevice
from repro.rtcore.pipeline import ScenePipeline
from repro.rtcore.programs import ProgramGroup, sphere_intersection_program


def _sphere_scene(n=200, radius=0.5, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.column_stack([rng.uniform(-5, 5, (n, 2)), np.zeros(n)])
    return centers, SphereGeometry(centers, radius)


class TestRTDevice:
    def test_default_memory_capacity_is_6gb(self):
        dev = RTDevice()
        assert dev.memory.capacity_bytes == 6 * 1024**3

    def test_charge_accumulates_counts(self):
        dev = RTDevice()
        dev.charge(OpCounts(rt_node_visits=100))
        dev.charge(OpCounts(rt_node_visits=50, intersection_calls=10))
        assert dev.total_counts.rt_node_visits == 150
        assert dev.total_counts.intersection_calls == 10

    def test_charge_returns_simulated_seconds(self):
        dev = RTDevice()
        t = dev.charge(OpCounts(rt_node_visits=1_000_000))
        assert t == pytest.approx(1_000_000 * dev.cost_model.rt_node_visit_ns * 1e-9)

    def test_accel_build_unit_depends_on_rt_cores(self):
        with_rt = RTDevice(has_rt_cores=True)
        without = RTDevice(has_rt_cores=False)
        assert with_rt.accel_build_seconds(100_000) > without.accel_build_seconds(100_000)

    def test_node_visit_field(self):
        assert RTDevice(has_rt_cores=True).node_visit_field() == "rt_node_visits"
        assert RTDevice(has_rt_cores=False).node_visit_field() == "sm_node_visits"

    def test_reset_clears_state(self):
        dev = RTDevice()
        dev.charge(OpCounts(union_ops=5))
        dev.memory.allocate("x", 100)
        dev.reset()
        assert dev.total_counts.union_ops == 0
        assert dev.memory.used_bytes == 0

    def test_summary_keys(self):
        s = RTDevice().summary()
        assert {"name", "has_rt_cores", "memory_used_bytes", "counts"} <= set(s)


class TestScenePipeline:
    def test_build_accel_charges_memory(self):
        centers, geom = _sphere_scene()
        dev = RTDevice()
        pipe = ScenePipeline(device=dev, geometry=geom)
        t = pipe.build_accel()
        assert t > 0
        assert dev.memory.used_bytes > 0
        pipe.release()
        assert dev.memory.used_bytes == 0

    def test_launch_before_build_raises(self):
        centers, geom = _sphere_scene()
        pipe = ScenePipeline(device=RTDevice(), geometry=geom)
        programs = ProgramGroup(intersection=sphere_intersection_program(centers, 0.5))
        with pytest.raises(RuntimeError, match="build_accel"):
            pipe.launch_hit_queries(centers, programs)

    def test_unknown_builder_raises(self):
        centers, geom = _sphere_scene()
        pipe = ScenePipeline(device=RTDevice(), geometry=geom, builder="bad")
        with pytest.raises(ValueError, match="builder"):
            pipe.build_accel()

    def test_hit_queries_match_brute_force(self):
        centers, geom = _sphere_scene(150, radius=0.8)
        dev = RTDevice()
        pipe = ScenePipeline(device=dev, geometry=geom)
        pipe.build_accel()
        programs = ProgramGroup(
            intersection=sphere_intersection_program(centers, 0.8, exclude_self=True)
        )
        qi, pi, stats = pipe.launch_hit_queries(centers, programs)
        got = set(zip(qi.tolist(), pi.tolist()))
        d2 = ((centers[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        exp_q, exp_p = np.nonzero((d2 <= 0.8**2) & ~np.eye(len(centers), dtype=bool))
        assert got == set(zip(exp_q.tolist(), exp_p.tolist()))
        assert stats.confirmed_hits == len(got)
        assert stats.simulated_seconds > 0

    def test_count_queries_match_hit_queries(self):
        centers, geom = _sphere_scene(120, radius=0.6)
        pipe = ScenePipeline(device=RTDevice(), geometry=geom)
        pipe.build_accel()
        programs = ProgramGroup(
            intersection=sphere_intersection_program(centers, 0.6, exclude_self=True)
        )
        counts, _ = pipe.launch_count_queries(centers, programs)
        qi, _, _ = pipe.launch_hit_queries(centers, programs)
        np.testing.assert_array_equal(counts, np.bincount(qi, minlength=len(centers)))

    def test_anyhit_program_invoked_and_charged(self):
        centers, geom = _sphere_scene(60, radius=0.7)
        dev = RTDevice()
        pipe = ScenePipeline(device=dev, geometry=geom)
        pipe.build_accel()
        seen = []
        programs = ProgramGroup(
            intersection=sphere_intersection_program(centers, 0.7, exclude_self=True),
            anyhit=lambda q, p: seen.append(q.size),
        )
        _, _, stats = pipe.launch_hit_queries(centers, programs)
        assert sum(seen) == stats.confirmed_hits
        assert stats.anyhit_calls == stats.confirmed_hits
        assert dev.total_counts.anyhit_calls == stats.confirmed_hits

    def test_miss_program_sees_isolated_queries(self):
        centers = np.array([[0.0, 0.0, 0.0], [100.0, 0.0, 0.0]])
        geom = SphereGeometry(centers, 0.5)
        pipe = ScenePipeline(device=RTDevice(), geometry=geom)
        pipe.build_accel()
        missed = []
        programs = ProgramGroup(
            intersection=sphere_intersection_program(centers, 0.5, exclude_self=True),
            miss=lambda idx: missed.extend(idx.tolist()),
        )
        pipe.launch_hit_queries(centers, programs)
        assert set(missed) == {0, 1}

    def test_no_rt_cores_charges_sm_visits(self):
        centers, geom = _sphere_scene(80)
        dev = RTDevice(has_rt_cores=False)
        pipe = ScenePipeline(device=dev, geometry=geom)
        pipe.build_accel()
        programs = ProgramGroup(intersection=sphere_intersection_program(centers, 0.5))
        pipe.launch_hit_queries(centers, programs)
        assert dev.total_counts.sm_node_visits > 0
        assert dev.total_counts.rt_node_visits == 0

    def test_memory_exhaustion_raises(self):
        centers, geom = _sphere_scene(1000)
        small = DeviceCostModel(device_memory_bytes=1000)
        dev = RTDevice(cost_model=small)
        pipe = ScenePipeline(device=dev, geometry=geom)
        with pytest.raises(DeviceMemoryError):
            pipe.build_accel()


class TestIntersectionProgram:
    def test_exclude_self_flag(self):
        centers = np.zeros((3, 3))
        with_self = sphere_intersection_program(centers, 1.0, exclude_self=False)
        without = sphere_intersection_program(centers, 1.0, exclude_self=True)
        q = np.array([0, 1])
        p = np.array([0, 2])
        assert with_self(q, p).tolist() == [True, True]
        assert without(q, p).tolist() == [False, True]

    def test_distance_filtering(self):
        centers = np.array([[0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        prog = sphere_intersection_program(centers, 1.0)
        assert prog(np.array([0]), np.array([1])).tolist() == [False]
