"""Tests for the OWL-style wrapper facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtcore.device import RTDevice
from repro.rtcore.owl import OWLGeomType, owl_context_create


def _points(n=150, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-3, 3, size=(n, 2))


class TestOWLContext:
    def test_context_uses_default_device(self):
        ctx = owl_context_create()
        assert isinstance(ctx.device, RTDevice)

    def test_invalid_geom_kind_raises(self):
        with pytest.raises(ValueError):
            OWLGeomType(kind="boxes")

    def test_sphere_geom_roundtrip(self):
        pts = _points()
        ctx = owl_context_create()
        geom_type, geom = ctx.create_sphere_geom_type(
            np.column_stack([pts, np.zeros(len(pts))]), 0.4
        )
        assert geom_type.kind == "spheres"
        assert geom.num_primitives == len(pts)
        group = ctx.build_group(geom)
        assert group.build_seconds > 0
        qi, pi, stats = group.launch_hits(np.column_stack([pts, np.zeros(len(pts))]))
        assert stats.num_rays == len(pts)
        # Self hits are excluded by default.
        assert not np.any(qi == pi)
        ctx.destroy()
        assert ctx.device.memory.used_bytes == 0

    def test_launch_counts_equals_launch_hits(self):
        pts = np.column_stack([_points(100, seed=2), np.zeros(100)])
        ctx = owl_context_create()
        _, geom = ctx.create_sphere_geom_type(pts, 0.5)
        group = ctx.build_group(geom)
        counts, _ = group.launch_counts(pts)
        qi, _, _ = group.launch_hits(pts)
        np.testing.assert_array_equal(counts, np.bincount(qi, minlength=100))

    def test_triangle_geom_type(self):
        pts = np.column_stack([_points(40, seed=3), np.zeros(40)])
        ctx = owl_context_create()
        geom_type, geom = ctx.create_triangle_geom_type(pts, 0.5, subdivisions=0)
        assert geom_type.kind == "triangles"
        assert geom.num_primitives == 40 * 20
        group = ctx.build_group(geom)
        qi, pi, stats = group.launch_hits(pts)
        # Triangle-mode hits are mapped back to owner data points.
        assert pi.max(initial=-1) < 40
        assert stats.anyhit_calls >= stats.confirmed_hits

    def test_triangle_hits_match_sphere_hits(self):
        pts = np.column_stack([_points(60, seed=4), np.zeros(60)])
        ctx = owl_context_create()
        _, sphere_geom = ctx.create_sphere_geom_type(pts, 0.6)
        _, tri_geom = ctx.create_triangle_geom_type(pts, 0.6, subdivisions=0)
        sphere_group = ctx.build_group(sphere_geom)
        tri_group = ctx.build_group(tri_geom)
        qs, ps, _ = sphere_group.launch_hits(pts)
        qt, pt, _ = tri_group.launch_hits(pts)
        assert set(zip(qs.tolist(), ps.tolist())) == set(zip(qt.tolist(), pt.tolist()))

    def test_group_without_programs_raises(self):
        pts = np.column_stack([_points(10), np.zeros(10)])
        ctx = owl_context_create()
        _, geom = ctx.create_sphere_geom_type(pts, 0.3)
        geom.geom_type.programs = None
        group = ctx.build_group(geom)
        with pytest.raises(ValueError, match="program group"):
            group.launch_hits(pts)
