"""Structural tests for the LBVH and SAH builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bvh import build_lbvh, build_sah, leaf_occupancy, refit, sah_cost
from repro.geometry.aabb import AABB

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


def _sphere_bounds(n, seed=0, radius=0.5):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(n, 3))
    return AABB.from_spheres(centers, radius), centers


@pytest.mark.parametrize("builder", [build_lbvh, build_sah])
class TestBuilderInvariants:
    def test_validate_passes(self, builder):
        bounds, _ = _sphere_bounds(300)
        bvh = builder(bounds, leaf_size=4)
        bvh.validate()

    def test_every_primitive_in_exactly_one_leaf(self, builder):
        bounds, _ = _sphere_bounds(257)
        bvh = builder(bounds, leaf_size=4)
        leaves = np.flatnonzero(bvh.leaf_mask)
        all_prims = np.concatenate([bvh.leaf_primitives(int(i)) for i in leaves])
        assert sorted(all_prims.tolist()) == list(range(257))

    def test_leaf_size_respected(self, builder):
        bounds, _ = _sphere_bounds(500)
        bvh = builder(bounds, leaf_size=8)
        assert bvh.prim_count[bvh.leaf_mask].max() <= 8

    def test_root_bounds_enclose_everything(self, builder):
        bounds, _ = _sphere_bounds(200)
        bvh = builder(bounds, leaf_size=4)
        assert (bvh.node_lower[0] <= bounds.lower.min(axis=0) + 1e-12).all()
        assert (bvh.node_upper[0] >= bounds.upper.max(axis=0) - 1e-12).all()

    def test_single_primitive(self, builder):
        bounds = AABB([[0, 0, 0]], [[1, 1, 1]])
        bvh = builder(bounds, leaf_size=4)
        bvh.validate()
        assert bvh.num_nodes == 1
        assert bvh.is_leaf(0)

    def test_duplicate_points(self, builder):
        centers = np.zeros((64, 3))
        bounds = AABB.from_spheres(centers, 0.1)
        bvh = builder(bounds, leaf_size=4)
        bvh.validate()
        assert bvh.prim_count[bvh.leaf_mask].max() <= 4

    def test_empty_raises(self, builder):
        with pytest.raises(ValueError):
            builder(AABB(np.empty((0, 3)), np.empty((0, 3))))

    def test_bad_leaf_size_raises(self, builder):
        bounds, _ = _sphere_bounds(10)
        with pytest.raises(ValueError):
            builder(bounds, leaf_size=0)

    def test_memory_bytes_positive(self, builder):
        bounds, _ = _sphere_bounds(100)
        assert builder(bounds).memory_bytes() > 0

    @given(pts=arrays(np.float64, (40, 3), elements=coords),
           radius=st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_property_validate_random(self, builder, pts, radius):
        bvh = builder(AABB.from_spheres(pts, radius), leaf_size=3)
        bvh.validate()


class TestLBVHSpecifics:
    def test_balanced_depth(self):
        bounds, _ = _sphere_bounds(1024)
        bvh = build_lbvh(bounds, leaf_size=1)
        # A median-split tree over 1024 primitives has depth ~11.
        assert bvh.depth <= 12

    def test_build_stats_recorded(self):
        bounds, _ = _sphere_bounds(128)
        bvh = build_lbvh(bounds, leaf_size=4)
        assert bvh.build_stats["num_leaves"] == int(bvh.leaf_mask.sum())
        assert bvh.builder == "lbvh"

    def test_morton_63_bits(self):
        bounds, _ = _sphere_bounds(128)
        bvh = build_lbvh(bounds, leaf_size=4, morton_bits=63)
        bvh.validate()


class TestSAHSpecifics:
    def test_sah_cost_positive(self):
        bounds, _ = _sphere_bounds(256)
        assert sah_cost(build_sah(bounds)) > 0

    def test_sah_quality_not_worse_than_lbvh_by_much(self):
        bounds, _ = _sphere_bounds(2000, seed=3)
        c_sah = sah_cost(build_sah(bounds, leaf_size=4))
        c_lbvh = sah_cost(build_lbvh(bounds, leaf_size=4))
        assert c_sah <= c_lbvh * 1.5

    def test_leaf_occupancy_report(self):
        bounds, _ = _sphere_bounds(300)
        occ = leaf_occupancy(build_sah(bounds, leaf_size=4))
        assert occ["num_leaves"] > 0
        assert occ["max"] <= 4
        assert 0 < occ["mean"] <= 4


class TestRefit:
    def test_refit_after_eps_change(self):
        bounds, centers = _sphere_bounds(200, radius=0.2)
        bvh = build_lbvh(bounds, leaf_size=4)
        grown = AABB.from_spheres(centers, 0.8)
        refitted = refit(bvh, grown)
        refitted.validate()
        # The root must have grown accordingly.
        assert (refitted.node_upper[0] >= bvh.node_upper[0]).all()

    def test_refit_preserves_topology(self):
        bounds, centers = _sphere_bounds(100)
        bvh = build_lbvh(bounds, leaf_size=4)
        refitted = refit(bvh, AABB.from_spheres(centers, 1.0))
        np.testing.assert_array_equal(refitted.left, bvh.left)
        np.testing.assert_array_equal(refitted.prim_indices, bvh.prim_indices)

    def test_refit_wrong_count_raises(self):
        bounds, _ = _sphere_bounds(50)
        bvh = build_lbvh(bounds)
        with pytest.raises(ValueError):
            refit(bvh, AABB(np.zeros((10, 3)), np.ones((10, 3))))
