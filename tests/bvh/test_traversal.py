"""Tests for the batched BVH traversal kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bvh import build_lbvh, build_sah, point_query_counts_early_exit, point_query_pairs, ray_query_pairs
from repro.geometry.aabb import AABB, aabb_contains_points

coords = st.floats(min_value=-20, max_value=20, allow_nan=False, allow_infinity=False)


def _scene(n=300, radius=0.6, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(n, 3))
    bounds = AABB.from_spheres(centers, radius)
    return centers, bounds


def _brute_candidates(bounds: AABB, queries: np.ndarray) -> set[tuple[int, int]]:
    inside = aabb_contains_points(bounds.lower, bounds.upper, queries)
    prim, q = np.nonzero(inside)
    return set(zip(q.tolist(), prim.tolist()))


@pytest.mark.parametrize("builder", [build_lbvh, build_sah])
class TestPointQueryPairs:
    def test_candidates_complete_and_exact_after_filtering(self, builder):
        centers, bounds = _scene(200)
        bvh = builder(bounds, leaf_size=4)
        queries = centers[:50]
        qi, pi, stats = point_query_pairs(bvh, queries)
        got = set(zip(qi.tolist(), pi.tolist()))
        expected = _brute_candidates(bounds, queries)
        # Completeness: every true box containment must appear as a candidate
        # (a leaf may contribute extra candidates, which the Intersection
        # program filters out afterwards).
        assert expected.issubset(got)
        # Exactness after the per-primitive box filter.
        inside = aabb_contains_points(bounds.lower[pi], bounds.upper[pi], queries)[
            np.arange(pi.size), qi
        ] if pi.size else np.zeros(0, dtype=bool)
        filtered = set(zip(qi[inside].tolist(), pi[inside].tolist()))
        assert filtered == expected

    def test_no_duplicate_pairs(self, builder):
        centers, bounds = _scene(150)
        bvh = builder(bounds, leaf_size=4)
        qi, pi, _ = point_query_pairs(bvh, centers)
        pairs = list(zip(qi.tolist(), pi.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_self_candidate_always_present(self, builder):
        centers, bounds = _scene(100)
        bvh = builder(bounds, leaf_size=4)
        qi, pi, _ = point_query_pairs(bvh, centers)
        self_pairs = set(zip(range(100), range(100)))
        assert self_pairs.issubset(set(zip(qi.tolist(), pi.tolist())))

    def test_far_query_has_no_candidates(self, builder):
        centers, bounds = _scene(100)
        bvh = builder(bounds, leaf_size=4)
        qi, pi, _ = point_query_pairs(bvh, np.array([[1000.0, 1000.0, 1000.0]]))
        assert qi.size == 0 and pi.size == 0

    def test_chunking_gives_identical_results(self, builder):
        centers, bounds = _scene(200)
        bvh = builder(bounds, leaf_size=4)
        qi1, pi1, _ = point_query_pairs(bvh, centers, chunk_size=7)
        qi2, pi2, _ = point_query_pairs(bvh, centers, chunk_size=100000)
        assert set(zip(qi1.tolist(), pi1.tolist())) == set(zip(qi2.tolist(), pi2.tolist()))

    def test_stats_counters_consistent(self, builder):
        centers, bounds = _scene(100)
        bvh = builder(bounds, leaf_size=4)
        qi, _, stats = point_query_pairs(bvh, centers)
        assert stats.queries == 100
        assert stats.candidates == qi.size
        assert stats.node_visits >= 100  # at least the root per query
        assert stats.leaf_visits >= 1
        assert stats.levels >= 1

    @given(pts=arrays(np.float64, (30, 3), elements=coords),
           radius=st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=25, deadline=None)
    def test_property_candidate_completeness(self, builder, pts, radius):
        bounds = AABB.from_spheres(pts, radius)
        bvh = builder(bounds, leaf_size=3)
        qi, pi, _ = point_query_pairs(bvh, pts)
        got = set(zip(qi.tolist(), pi.tolist()))
        assert _brute_candidates(bounds, pts).issubset(got)


class TestEarlyExitCounts:
    def _confirm(self, centers, radius):
        def fn(q, p):
            d = centers[q] - centers[p]
            return np.einsum("ij,ij->i", d, d) <= radius * radius
        return fn

    def test_counts_match_brute_force_without_min_count(self):
        centers, bounds = _scene(150, radius=1.5)
        bvh = build_lbvh(bounds, leaf_size=4)
        counts, _ = point_query_counts_early_exit(bvh, centers, self._confirm(centers, 1.5))
        d2 = ((centers[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        expected = (d2 <= 1.5**2).sum(axis=1)
        np.testing.assert_array_equal(counts, expected)

    def test_min_count_saturates(self):
        centers, bounds = _scene(200, radius=3.0)
        bvh = build_lbvh(bounds, leaf_size=4)
        counts, stats = point_query_counts_early_exit(
            bvh, centers, self._confirm(centers, 3.0), min_count=3
        )
        full, full_stats = point_query_counts_early_exit(
            bvh, centers, self._confirm(centers, 3.0), min_count=None
        )
        # Early exit may undercount but never below min_count when the true
        # count reaches it, and never overcounts the true value.
        assert (counts <= full).all()
        assert (counts[full >= 3] >= 3).all()
        assert stats.node_visits <= full_stats.node_visits

    def test_zero_radius_counts_only_self(self):
        centers, bounds = _scene(80, radius=1e-9)
        bvh = build_lbvh(bounds, leaf_size=2)
        counts, _ = point_query_counts_early_exit(bvh, centers, self._confirm(centers, 1e-9))
        assert (counts == 1).all()  # each point confirms only itself


class TestRayQueryPairs:
    def test_axis_ray_hits_expected_boxes(self):
        centers = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 5.0], [10.0, 0.0, 0.0]])
        bounds = AABB.from_spheres(centers, 0.5)
        bvh = build_lbvh(bounds, leaf_size=1)
        qi, pi, _ = ray_query_pairs(
            bvh,
            origins=np.array([[0.0, 0.0, -10.0]]),
            directions=np.array([[0.0, 0.0, 1.0]]),
            tmin=np.array([0.0]),
            tmax=np.array([100.0]),
        )
        assert set(pi.tolist()) == {0, 1}

    def test_infinitesimal_ray_equals_point_query(self):
        centers, bounds = _scene(120, radius=1.0)
        bvh = build_lbvh(bounds, leaf_size=4)
        qi_p, pi_p, _ = point_query_pairs(bvh, centers)
        qi_r, pi_r, _ = ray_query_pairs(
            bvh,
            origins=centers,
            directions=np.broadcast_to([0.0, 0.0, 1.0], centers.shape).copy(),
            tmin=np.zeros(len(centers)),
            tmax=np.full(len(centers), 1e-16),
        )
        assert set(zip(qi_p.tolist(), pi_p.tolist())) == set(zip(qi_r.tolist(), pi_r.tolist()))
