"""The CSR adjacency contract: every backend, same canonical bytes.

Property suite for the zero-materialisation pair pipeline:

* the CSR each backend emits is permutation-identical to the legacy pair
  arrays (oracle: a naive all-pairs sweep computed independently here);
* the CSR is canonical — query-ordered rows, ascending indices — so all
  four backends produce *byte-identical* arrays;
* ``form_clusters`` output is bit-identical whether stage 2 consumes pairs
  or CSR (including the charged union/atomic counts);
* no backend materialises a full ε-pair (or candidate-pair) intermediate:
  the tracemalloc peak of a ``neighbor_csr`` sweep stays within a block-sized
  budget that the legacy pipeline exceeded by an order of magnitude.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.adjacency import concat_csr, csr_row_ids, csr_to_pairs, expand_ranges, pairs_to_csr
from repro.api.registry import make_backend
from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate
from repro.data.synthetic import make_blobs
from repro.dbscan.formation import form_clusters, form_clusters_csr

BACKENDS = ["rt", "grid", "kdtree", "brute"]


def _naive_pairs(qpts: np.ndarray, data: np.ndarray, eps: float, *, self_query: bool):
    """Independent oracle: the legacy pair arrays, computed the naive way."""
    d2 = ((qpts[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
    q, p = np.nonzero(d2 <= eps * eps)
    if self_query:
        keep = q != p
        q, p = q[keep], p[keep]
    return q, p


def _lift(pts: np.ndarray) -> np.ndarray:
    if pts.shape[1] == 3:
        return pts
    return np.hstack([pts, np.zeros((pts.shape[0], 1))])


@pytest.fixture(scope="module")
def blobs():
    pts, _ = make_blobs(420, centers=4, std=0.25, seed=11)
    return pts, 0.3


@pytest.fixture(scope="module")
def ngsim():
    pts = generate("ngsim", 500, seed=29)
    return pts, calibrate_eps(pts, 10, 0.5)


class TestCSRMatchesLegacyPairs:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("data", ["blobs", "ngsim"])
    def test_permutation_identical_to_pair_arrays(self, request, name, data):
        pts, eps = request.getfixturevalue(data)
        q_ref, p_ref = _naive_pairs(_lift(pts), _lift(pts), eps, self_query=True)
        backend = make_backend(name, pts, eps)
        try:
            indptr, indices, _ = backend.neighbor_csr()
        finally:
            backend.release()
        q, p = csr_to_pairs(indptr, indices)
        assert set(zip(q.tolist(), p.tolist())) == set(zip(q_ref.tolist(), p_ref.tolist()))
        assert q.size == q_ref.size  # multiset, not just set

    @pytest.mark.parametrize("name", BACKENDS)
    def test_csr_is_canonical(self, blobs, name):
        pts, eps = blobs
        backend = make_backend(name, pts, eps)
        try:
            indptr, indices, _ = backend.neighbor_csr()
            counts, _ = backend.neighbor_counts()
        finally:
            backend.release()
        assert indptr.shape == (len(pts) + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.size
        np.testing.assert_array_equal(np.diff(indptr), counts)
        rows = csr_row_ids(indptr)
        # ascending indices within every row <=> (row, index) lexicographic
        order = np.lexsort((indices, rows))
        np.testing.assert_array_equal(order, np.arange(indices.size))

    @pytest.mark.parametrize("data", ["blobs", "ngsim"])
    def test_all_backends_byte_identical(self, request, data):
        pts, eps = request.getfixturevalue(data)
        results = {}
        for name in BACKENDS:
            backend = make_backend(name, pts, eps)
            try:
                results[name] = backend.neighbor_csr()[:2]
            finally:
                backend.release()
        ref_ptr, ref_idx = results["brute"]
        for name, (indptr, indices) in results.items():
            np.testing.assert_array_equal(indptr, ref_ptr, err_msg=name)
            np.testing.assert_array_equal(indices, ref_idx, err_msg=name)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_external_queries(self, blobs, name):
        pts, eps = blobs
        rng = np.random.default_rng(5)
        queries = rng.uniform(pts.min(), pts.max(), size=(40, pts.shape[1]))
        q_ref, p_ref = _naive_pairs(_lift(queries), _lift(pts), eps, self_query=False)
        backend = make_backend(name, pts, eps)
        try:
            indptr, indices, _ = backend.neighbor_csr(queries)
        finally:
            backend.release()
        q, p = csr_to_pairs(indptr, indices)
        assert set(zip(q.tolist(), p.tolist())) == set(zip(q_ref.tolist(), p_ref.tolist()))
        assert q.size == q_ref.size


class TestFormationEquivalence:
    @pytest.mark.parametrize("data", ["blobs", "ngsim"])
    @pytest.mark.parametrize("min_pts", [2, 5, 12])
    def test_form_clusters_bit_identical_pairs_vs_csr(self, request, data, min_pts):
        pts, eps = request.getfixturevalue(data)
        backend = make_backend("kdtree", pts, eps)
        try:
            counts, _ = backend.neighbor_counts()
            indptr, indices, _ = backend.neighbor_csr()
        finally:
            backend.release()
        core = counts >= min_pts
        q, p = csr_to_pairs(indptr, indices)
        by_pairs = form_clusters(q, p, core)
        by_csr = form_clusters_csr(indptr, indices, core)
        np.testing.assert_array_equal(by_pairs.labels, by_csr.labels)
        assert by_pairs.num_unions == by_csr.num_unions
        assert by_pairs.num_atomics == by_csr.num_atomics

    def test_segmented_rows_match_dense_rows(self, blobs):
        """The tiled merge's segmented CSR (shuffled row blocks) is equivalent."""
        pts, eps = blobs
        backend = make_backend("brute", pts, eps)
        try:
            counts, _ = backend.neighbor_counts()
            indptr, indices, _ = backend.neighbor_csr()
        finally:
            backend.release()
        core = counts >= 5
        dense = form_clusters_csr(indptr, indices, core)

        # Split the rows into four contiguous shards, reassemble out of order.
        n = len(pts)
        cuts = [0, n // 4, n // 2, 3 * n // 4, n]
        shard_order = [2, 0, 3, 1]
        parts, rows = [], []
        row_counts = np.diff(indptr)
        for s in shard_order:
            lo, hi = cuts[s], cuts[s + 1]
            shard_counts = row_counts[lo:hi]
            shard_ptr = np.zeros(hi - lo + 1, dtype=np.int64)
            np.cumsum(shard_counts, out=shard_ptr[1:])
            shard_idx = indices[expand_ranges(indptr[lo:hi], shard_counts)]
            parts.append((shard_ptr, shard_idx))
            rows.append(np.arange(lo, hi))
        seg_ptr, seg_idx = concat_csr(parts)
        segmented = form_clusters_csr(seg_ptr, seg_idx, core, rows=np.concatenate(rows))

        np.testing.assert_array_equal(segmented.labels, dense.labels)
        assert segmented.num_unions == dense.num_unions
        assert segmented.num_atomics == dense.num_atomics

    def test_pairs_to_csr_round_trip(self, blobs):
        pts, eps = blobs
        q_ref, p_ref = _naive_pairs(_lift(pts), _lift(pts), eps, self_query=True)
        rng = np.random.default_rng(0)
        perm = rng.permutation(q_ref.size)
        indptr, indices = pairs_to_csr(q_ref[perm], p_ref[perm], len(pts))
        q, p = csr_to_pairs(indptr, indices)
        np.testing.assert_array_equal(q, q_ref)
        np.testing.assert_array_equal(p, p_ref)


class TestNoFullPairMaterialisation:
    """The peak-intermediate assertion of the acceptance criteria.

    At 20 K points the legacy pipeline's smallest intermediate was the brute
    backend's ``(2048, n, 3)`` broadcast temporary (~1 GiB) and the RT
    backend's full candidate pair arrays; the CSR pipeline's peak must stay
    within a block-sized budget far below that.
    """

    N = 20_000
    #: generous per-backend peaks (bytes) — each at least 3x below the
    #: smallest legacy intermediate for that backend at this size.
    BUDGETS = {
        "brute": 300 * 2**20,  # one 512-row prescreen block ~80 MiB
        "rt": 150 * 2**20,
        "grid": 150 * 2**20,
        "kdtree": 150 * 2**20,
    }

    @pytest.fixture(scope="class")
    def dense_blobs(self):
        pts, _ = make_blobs(self.N, centers=8, std=0.15, box=10.0, seed=3)
        eps = calibrate_eps(pts, 10, 0.3, sample=4096, seed=0)
        return pts, eps

    @pytest.mark.parametrize("name", BACKENDS)
    def test_csr_peak_memory_bounded(self, dense_blobs, name):
        pts, eps = dense_blobs
        backend = make_backend(name, pts, eps)
        try:
            tracemalloc.start()
            tracemalloc.reset_peak()
            indptr, indices, _ = backend.neighbor_csr()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        finally:
            backend.release()
        assert indices.size > 10 * self.N  # the sweep actually found work
        assert peak < self.BUDGETS[name], (
            f"{name}: peak {peak / 2**20:.0f} MiB exceeds the "
            f"{self.BUDGETS[name] / 2**20:.0f} MiB zero-materialisation budget"
        )
