"""Tests for the fixed-radius neighbour searches (RT, brute force, grid, kNN)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.neighbors.brute import (
    brute_force_neighbor_counts,
    brute_force_neighbors,
    pairwise_within,
)
from repro.neighbors.grid import UniformGrid
from repro.neighbors.knn import knn_brute_force, kth_neighbor_distances, suggest_eps
from repro.neighbors.rt_find import RTNeighborFinder, rt_find_neighbors

coords2d = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)


def _points(n=200, seed=0, dim=2):
    rng = np.random.default_rng(seed)
    return rng.uniform(-5, 5, size=(n, dim))


class TestBruteForce:
    def test_pairwise_within_includes_self(self):
        pts = _points(50)
        q, d = pairwise_within(pts, pts, 0.5)
        assert set(zip(range(50), range(50))) <= set(zip(q.tolist(), d.tolist()))

    def test_pairwise_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_within(np.zeros((3, 2)), np.zeros((3, 3)), 1.0)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            pairwise_within(np.zeros((3, 2)), np.zeros((3, 2)), -0.1)

    def test_neighbors_exclude_self_by_default(self):
        pts = _points(80)
        lists = brute_force_neighbors(pts, 1.0)
        assert all(i not in lst for i, lst in enumerate(lists))

    def test_include_self_flag(self):
        pts = _points(30)
        lists = brute_force_neighbors(pts, 1.0, include_self=True)
        assert all(i in lst for i, lst in enumerate(lists))

    def test_counts_match_lists(self):
        pts = _points(60)
        lists = brute_force_neighbors(pts, 1.2)
        counts = brute_force_neighbor_counts(pts, 1.2)
        np.testing.assert_array_equal(counts, [len(lst) for lst in lists])

    def test_chunking_invariance(self):
        pts = _points(70)
        a = brute_force_neighbor_counts(pts, 0.8, chunk_size=7)
        b = brute_force_neighbor_counts(pts, 0.8, chunk_size=10_000)
        np.testing.assert_array_equal(a, b)


class TestRTNeighborFinder:
    def test_matches_brute_force_2d(self):
        pts = _points(150, seed=1)
        finder = RTNeighborFinder(pts, 0.9)
        lists, _ = rt_find_neighbors(pts, 0.9)
        expected = brute_force_neighbors(pts, 0.9)
        for got, exp in zip(lists, expected):
            assert set(got.tolist()) == set(exp.tolist())
        finder.release()

    def test_matches_brute_force_3d(self):
        pts = _points(120, seed=2, dim=3)
        lists, _ = rt_find_neighbors(pts, 1.1)
        expected = brute_force_neighbors(pts, 1.1)
        for got, exp in zip(lists, expected):
            assert set(got.tolist()) == set(exp.tolist())

    def test_counts_match_brute_force(self):
        pts = _points(100, seed=3)
        finder = RTNeighborFinder(pts, 0.7)
        counts, stats = finder.neighbor_counts()
        np.testing.assert_array_equal(counts, brute_force_neighbor_counts(pts, 0.7))
        assert stats.num_rays == 100
        finder.release()

    def test_external_query_points(self):
        pts = _points(100, seed=4)
        queries = _points(20, seed=5)
        finder = RTNeighborFinder(pts, 1.0)
        qi, pi, _ = finder.neighbor_pairs(queries)
        d2 = ((queries[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        exp_q, exp_p = np.nonzero(d2 <= 1.0)
        got = set(zip(qi.tolist(), pi.tolist()))
        # External queries never coincide with data points here, so the only
        # difference from the raw distance test is the self-exclusion filter,
        # which does not apply.
        assert got == set(zip(exp_q.tolist(), exp_p.tolist()))
        finder.release()

    def test_invalid_radius_raises(self):
        with pytest.raises(ValueError):
            RTNeighborFinder(_points(10), 0.0)

    def test_invalid_points_raise(self):
        with pytest.raises(ValueError):
            RTNeighborFinder(np.zeros((5, 4)), 1.0)

    def test_triangle_mode_matches_sphere_mode(self):
        pts = _points(60, seed=6)
        sphere_lists, _ = rt_find_neighbors(pts, 0.8)
        tri_lists, _ = rt_find_neighbors(pts, 0.8, triangle_mode=True)
        for a, b in zip(sphere_lists, tri_lists):
            assert set(a.tolist()) == set(b.tolist())

    @given(pts=arrays(np.float64, (25, 2), elements=coords2d),
           eps=st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_brute_force(self, pts, eps):
        lists, _ = rt_find_neighbors(pts, eps)
        expected = brute_force_neighbors(pts, eps)
        for got, exp in zip(lists, expected):
            assert set(got.tolist()) == set(exp.tolist())


class TestUniformGrid:
    def test_query_radius_matches_brute_force(self):
        pts = _points(200, seed=7)
        grid = UniformGrid(pts, 0.8)
        expected = brute_force_neighbors(pts, 0.8)
        for i in range(len(pts)):
            got = grid.query_radius(pts[i], exclude_index=i)
            assert set(got.tolist()) == set(expected[i].tolist())

    def test_radius_larger_than_cell_raises(self):
        grid = UniformGrid(_points(20), 0.5)
        with pytest.raises(ValueError):
            grid.query_radius(np.zeros(2), radius=1.0)

    def test_invalid_cell_size_raises(self):
        with pytest.raises(ValueError):
            UniformGrid(_points(10), 0.0)

    def test_points_in_cell_partition(self):
        pts = _points(150, seed=8)
        grid = UniformGrid(pts, 1.0)
        all_points = np.concatenate(
            [grid.points_in_cell(cid) for cid in grid.cell_table]
        )
        assert sorted(all_points.tolist()) == list(range(150))

    def test_candidate_stats(self):
        grid = UniformGrid(_points(100, seed=9), 0.5)
        stats = grid.candidate_stats()
        assert stats["occupied_cells"] == grid.num_occupied_cells
        assert stats["max_per_cell"] >= 1

    def test_memory_bytes_positive(self):
        assert UniformGrid(_points(50), 1.0).memory_bytes() > 0

    def test_3d_grid(self):
        pts = _points(100, seed=10, dim=3)
        grid = UniformGrid(pts, 0.9)
        expected = brute_force_neighbors(pts, 0.9)
        for i in (0, 10, 50, 99):
            got = grid.query_radius(pts[i], exclude_index=i)
            assert set(got.tolist()) == set(expected[i].tolist())


class TestKNN:
    def test_kth_distances_match_brute_force(self):
        pts = _points(80, seed=11)
        d3 = kth_neighbor_distances(pts, 3)
        nn = knn_brute_force(pts, 3)
        expected = np.linalg.norm(pts - pts[nn[:, 2]], axis=1)
        np.testing.assert_allclose(d3, expected, atol=1e-9)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            kth_neighbor_distances(_points(10), 0)
        with pytest.raises(ValueError):
            kth_neighbor_distances(_points(10), 10)

    def test_suggest_eps_gives_enough_core_points(self):
        pts = _points(300, seed=12)
        eps = suggest_eps(pts, min_pts=5, quantile=0.9)
        counts = brute_force_neighbor_counts(pts, eps)
        assert (counts >= 5).mean() >= 0.5

    def test_suggest_eps_invalid_quantile(self):
        with pytest.raises(ValueError):
            suggest_eps(_points(20), 3, quantile=1.5)
