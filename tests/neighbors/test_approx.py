"""Unit tests for the approximate neighbour tier (lsh / sampled).

The exact backends promise bit-identity and are covered by
tests/test_equivalence_matrix.py; the approximate backends promise
*quantified agreement* instead.  This file pins down the pieces of that
contract that are unit-testable without a full clustering run: registry
metadata, knob validation and routing, perfect precision, recall loss at
weak knob settings, the probe-budget maths, and the agreement report
plumbed through the facade / bench layers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import cluster
from repro.adjacency import csr_row_ids
from repro.api.facade import DEFAULT_REFERENCE
from repro.api.registry import get_backend, list_backends, make_backend, make_clusterer
from repro.api.spec import ClustererSpec
from repro.data.synthetic import make_blobs
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.metrics.agreement import agreement_summary
from repro.neighbors.approx import (
    LSHNeighborBackend,
    SampledNeighborBackend,
    probes_for_recall,
)
from repro.partition.tiled import TiledRTDBSCAN

EPS = 0.3
MIN_PTS = 8


@pytest.fixture(scope="module")
def pts() -> np.ndarray:
    data, _ = make_blobs(600, centers=4, std=0.3, seed=21)
    return np.asarray(data, dtype=np.float64)


class TestRegistryMetadata:
    def test_approximate_backends_are_registered(self):
        names = set(list_backends())
        assert {"lsh", "sampled"} <= names

    @pytest.mark.parametrize("name", ["lsh", "sampled"])
    def test_marked_inexact(self, name):
        assert get_backend(name).exact is False

    @pytest.mark.parametrize("name", ["rt", "grid", "kdtree", "brute"])
    def test_exact_backends_stay_exact(self, name):
        entry = get_backend(name)
        assert entry.exact is True
        assert entry.knobs == ()

    def test_declared_knobs(self):
        assert "recall_target" in get_backend("lsh").knobs
        assert "num_probes" in get_backend("lsh").knobs
        assert "sample_rate" in get_backend("sampled").knobs


class TestKnobValidation:
    def test_spec_rejects_unknown_knob(self):
        spec = ClustererSpec(
            algo="rt-dbscan@lsh", eps=EPS, min_pts=MIN_PTS,
            params={"backend_kwargs": {"bogus": 1}},
        )
        with pytest.raises(ValueError, match="bogus"):
            spec.resolve()

    def test_spec_rejects_knobs_on_exact_backend(self):
        spec = ClustererSpec(
            algo="rt-dbscan@grid", eps=EPS, min_pts=MIN_PTS,
            params={"backend_kwargs": {"recall_target": 0.9}},
        )
        with pytest.raises(ValueError, match="recall_target"):
            spec.resolve()

    def test_make_clusterer_routes_top_level_knobs(self, pts):
        spec = ClustererSpec(
            algo="rt-dbscan@lsh", eps=EPS, min_pts=MIN_PTS,
            params={"recall_target": 0.7},
        )
        clusterer = make_clusterer(spec)
        assert clusterer.backend_kwargs == {"recall_target": 0.7}
        result = clusterer.fit(pts)
        assert result.extra["backend_kwargs"] == {"recall_target": 0.7}

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"num_probes": 0}, "num_probes"),
            ({"width_factor": 0.0}, "width_factor"),
            ({"recall_target": 0.0}, "recall_target"),
            ({"recall_target": 1.5}, "recall_target"),
        ],
    )
    def test_lsh_constructor_validation(self, pts, kwargs, match):
        with pytest.raises(ValueError, match=match):
            make_backend("lsh", pts, EPS, **kwargs)

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_sampled_rate_validation(self, pts, rate):
        with pytest.raises(ValueError, match="sample_rate"):
            make_backend("sampled", pts, EPS, sample_rate=rate)


class TestProbeBudget:
    def test_more_recall_needs_more_probes(self):
        probes = [
            probes_for_recall(r, radius=EPS, width=4 * EPS)
            for r in (0.5, 0.8, 0.95, 0.99)
        ]
        assert probes == sorted(probes)
        assert probes[0] >= 1

    def test_full_recall_requests_exhaustive_fallback(self):
        assert probes_for_recall(1.0, radius=EPS, width=4 * EPS) is None

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.01])
    def test_out_of_range_targets_rejected(self, bad):
        with pytest.raises(ValueError):
            probes_for_recall(bad, radius=EPS, width=4 * EPS)

    def test_budget_is_capped(self):
        assert probes_for_recall(
            0.999999, radius=EPS, width=1.01 * EPS, max_probes=16
        ) == 16


class TestPrecisionAndRecall:
    def _pairs(self, backend) -> set[tuple[int, int]]:
        indptr, indices, _ = backend.neighbor_csr()
        return set(zip(csr_row_ids(indptr).tolist(), indices.tolist()))

    @pytest.mark.parametrize("name,kwargs", [
        ("lsh", {"num_probes": 1, "width_factor": 1.5}),
        ("sampled", {"sample_rate": 0.4}),
    ])
    def test_perfect_precision_imperfect_recall(self, pts, name, kwargs):
        oracle = make_backend("brute", pts, EPS)
        backend = make_backend(name, pts, EPS, **kwargs)
        try:
            truth = self._pairs(oracle)
            found = self._pairs(backend)
        finally:
            backend.release()
            oracle.release()
        assert found <= truth  # never a false positive
        assert len(found) < len(truth)  # weak knobs genuinely drop edges

    @pytest.mark.parametrize("name,kwargs", [
        ("lsh", {"recall_target": 1.0}),
        ("sampled", {"sample_rate": 1.0}),
    ])
    def test_max_knob_matches_brute_csr(self, pts, name, kwargs):
        oracle = make_backend("brute", pts, EPS)
        backend = make_backend(name, pts, EPS, **kwargs)
        try:
            o_indptr, o_indices, _ = oracle.neighbor_csr()
            b_indptr, b_indices, _ = backend.neighbor_csr()
        finally:
            backend.release()
            oracle.release()
        np.testing.assert_array_equal(b_indptr, o_indptr)
        np.testing.assert_array_equal(b_indices, o_indices)

    def test_csr_rows_are_sorted(self, pts):
        backend = make_backend("lsh", pts, EPS, recall_target=0.8)
        try:
            indptr, indices, _ = backend.neighbor_csr()
            for lo, hi in zip(indptr[:-1], indptr[1:]):
                row = indices[lo:hi]
                assert np.all(np.diff(row) > 0)
        finally:
            backend.release()

    def test_lsh_reports_its_probe_budget(self, pts):
        backend = make_backend("lsh", pts, EPS, num_probes=3)
        try:
            assert backend.effective_probes == 3
        finally:
            backend.release()

    def test_sampled_counts_candidates_against_pool(self, pts):
        backend = make_backend("sampled", pts, EPS, sample_rate=0.5)
        try:
            assert backend.sample_size == int(np.ceil(0.5 * pts.shape[0]))
            _, stats = backend.neighbor_counts()
            assert stats.intersection_calls <= pts.shape[0] * backend.sample_size
        finally:
            backend.release()


class TestAgreementPlumbing:
    def test_facade_reference_attaches_agreement(self, pts):
        result = cluster(
            pts, eps=EPS, min_pts=MIN_PTS, backend="lsh", reference=True
        )
        agreement = result.extra["agreement"]
        assert agreement["reference_algorithm"] == DEFAULT_REFERENCE.split("@")[0]
        assert agreement["reference_backend"] == DEFAULT_REFERENCE.split("@")[1]
        assert 0.0 <= agreement["ari"] <= 1.0
        assert 0.0 <= agreement["core_agreement"] <= 1.0

    def test_facade_reference_accepts_explicit_algo(self, pts):
        result = cluster(
            pts, eps=EPS, min_pts=MIN_PTS, backend="sampled",
            reference="rt-dbscan@brute",
        )
        assert result.extra["agreement"]["reference_backend"] == "brute"

    def test_agreement_summary_reports_full_match_at_max_knob(self, pts):
        exact = RTDBSCAN(eps=EPS, min_pts=MIN_PTS, backend="brute").fit(pts)
        approx = RTDBSCAN(
            eps=EPS, min_pts=MIN_PTS, backend="lsh",
            backend_kwargs={"recall_target": 1.0},
        ).fit(pts)
        summary = agreement_summary(approx, exact, points=pts)
        assert summary["equivalent"] is True
        assert summary["ari"] == 1.0
        assert summary["core_agreement"] == 1.0
        assert summary["noise_agreement"] == 1.0
        assert summary["simulated_speedup"] > 0.0


class TestLayerGuards:
    def test_tiled_rejects_approximate_backends(self):
        with pytest.raises(ValueError, match="exact neighbour backend"):
            TiledRTDBSCAN(eps=EPS, min_pts=MIN_PTS, backend="sampled", tiles=4)

    def test_tiled_accepts_exact_backend_kwargs_channel(self, pts):
        result = TiledRTDBSCAN(
            eps=EPS, min_pts=MIN_PTS, backend="kdtree", tiles=4
        ).fit(pts)
        assert result.num_clusters >= 1


class TestStandaloneBackendsClasses:
    """The dataclasses are importable and usable outside the registry."""

    def test_lsh_direct_construction(self, pts):
        backend = LSHNeighborBackend(
            points=pts, radius=EPS, recall_target=0.9, seed=3
        )
        try:
            counts, _ = backend.neighbor_counts()
            assert counts.shape == (pts.shape[0],)
        finally:
            backend.release()

    def test_sampled_direct_construction(self, pts):
        backend = SampledNeighborBackend(points=pts, radius=EPS, sample_rate=0.3)
        try:
            counts, _ = backend.neighbor_counts()
            brute = make_backend("brute", pts, EPS)
            try:
                exact_counts, _ = brute.neighbor_counts()
            finally:
                brute.release()
            assert np.all(counts <= exact_counts)
        finally:
            backend.release()
