"""Backend-protocol suite: rt / grid / kdtree / brute must agree exactly.

Covers the NeighborBackend protocol itself (counts and pair sets against the
brute-force oracle) plus per-backend plumbing: result metadata, report
phases, and error paths.  The end-to-end "identical labels on every
substrate x every execution layer" acceptance criterion lives in
tests/test_equivalence_matrix.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import make_backend
from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate
from repro.data.synthetic import make_blobs
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.neighbors.backend import NeighborBackend
from repro.rtcore.device import RTDevice

BACKENDS = ["rt", "grid", "kdtree", "brute"]


@pytest.fixture(scope="module")
def blobs():
    pts, _ = make_blobs(350, centers=3, std=0.25, seed=5)
    return pts, 0.4


@pytest.fixture(scope="module")
def ngsim():
    pts = generate("ngsim", 600, seed=13)
    # The paper's absolute ε leaves NGSIM clusterless; calibrate one that
    # actually forms corridor clusters so the equivalence check is non-trivial.
    return pts, calibrate_eps(pts, 10, 0.5)


def _pair_set(q: np.ndarray, p: np.ndarray) -> set[tuple[int, int]]:
    return set(zip(q.tolist(), p.tolist()))


class TestBackendProtocol:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_satisfies_protocol(self, blobs, name):
        pts, eps = blobs
        backend = make_backend(name, pts, eps)
        try:
            assert isinstance(backend, NeighborBackend)
            assert backend.num_points == len(pts)
            assert backend.num_prims >= len(pts)
        finally:
            backend.release()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_invalid_radius_raises(self, blobs, name):
        pts, _ = blobs
        with pytest.raises(ValueError):
            make_backend(name, pts, 0.0)

    def test_unknown_backend_raises(self, blobs):
        pts, eps = blobs
        with pytest.raises(KeyError, match="available"):
            make_backend("octree", pts, eps)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_device_memory_released(self, blobs, name):
        pts, eps = blobs
        device = RTDevice()
        backend = make_backend(name, pts, eps, device=device)
        backend.release()
        assert device.memory.used_bytes == 0

    @pytest.mark.parametrize("name", ["grid", "kdtree", "brute"])
    def test_host_backends_charge_shader_cores(self, blobs, name):
        pts, eps = blobs
        device = RTDevice()
        backend = make_backend(name, pts, eps, device=device)
        try:
            backend.neighbor_counts()
        finally:
            backend.release()
        assert device.total_counts.distance_computations > 0
        assert device.total_counts.rt_node_visits == 0


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("data", ["blobs", "ngsim"])
    def test_counts_match_oracle(self, request, name, data):
        pts, eps = request.getfixturevalue(data)
        oracle = make_backend("brute", pts, eps)
        backend = make_backend(name, pts, eps)
        try:
            expected, _ = oracle.neighbor_counts()
            got, stats = backend.neighbor_counts()
            np.testing.assert_array_equal(got, expected)
            assert stats.counts.kernel_launches >= 1
        finally:
            backend.release()
            oracle.release()

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("data", ["blobs", "ngsim"])
    def test_pair_sets_match_oracle(self, request, name, data):
        pts, eps = request.getfixturevalue(data)
        oracle = make_backend("brute", pts, eps)
        backend = make_backend(name, pts, eps)
        try:
            eq, ep_, _ = oracle.neighbor_pairs()
            gq, gp, _ = backend.neighbor_pairs()
            assert _pair_set(gq, gp) == _pair_set(eq, ep_)
        finally:
            backend.release()
            oracle.release()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_external_queries_supported(self, blobs, name):
        pts, eps = blobs
        rng = np.random.default_rng(3)
        queries = rng.uniform(pts.min(), pts.max(), size=(25, pts.shape[1]))
        oracle = make_backend("brute", pts, eps)
        backend = make_backend(name, pts, eps)
        try:
            expected, _ = oracle.neighbor_counts(queries)
            got, _ = backend.neighbor_counts(queries)
            np.testing.assert_array_equal(got, expected)
        finally:
            backend.release()
            oracle.release()


class TestRTDBSCANBackendEquivalence:
    """Per-backend fit plumbing (labels equivalence: see the matrix suite)."""

    def test_backend_recorded_in_result(self, blobs):
        pts, eps = blobs
        result = RTDBSCAN(eps=eps, min_pts=5, backend="kdtree").fit(pts)
        assert result.extra["backend"] == "kdtree"
        assert result.report.metadata["backend"] == "kdtree"

    def test_report_phases_preserved_on_host_backends(self, blobs):
        pts, eps = blobs
        result = RTDBSCAN(eps=eps, min_pts=5, backend="grid").fit(pts)
        assert [p.name for p in result.report.phases] == [
            "bvh_build", "core_identification", "cluster_formation",
        ]

    def test_triangle_mode_requires_rt_backend(self):
        with pytest.raises(ValueError, match="triangle_mode"):
            RTDBSCAN(eps=0.5, min_pts=5, backend="grid", triangle_mode=True)

    def test_unknown_backend_raises_at_fit(self, blobs):
        pts, eps = blobs
        with pytest.raises(KeyError, match="available"):
            RTDBSCAN(eps=eps, min_pts=5, backend="octree").fit(pts)
