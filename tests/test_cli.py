"""Tests for the ``rt-dbscan`` command-line interface.

Every subcommand is exercised through :func:`repro.cli.main` — the same code
path the console script runs — with outputs captured via capsys and files
written into a pytest temp directory.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main

CLUSTER_SMALL = [
    "cluster", "--dataset", "blobs", "--num-points", "500",
    "--eps", "0.3", "--min-pts", "10",
]


class TestClusterCommand:
    def test_synthetic_dataset_human_output(self, capsys):
        assert main(CLUSTER_SMALL) == 0
        out = capsys.readouterr().out
        assert "rt-dbscan" in out
        assert "bvh_build" in out  # breakdown table follows the record line

    def test_json_output(self, capsys):
        assert main(CLUSTER_SMALL + ["--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["status"] == "ok"
        assert record["algorithm"] == "rt-dbscan"
        assert record["num_points"] == 500
        assert record["num_clusters"] >= 1

    def test_csv_input_and_label_output(self, tmp_path, capsys):
        rng = np.random.default_rng(5)
        pts = np.vstack([rng.normal(0, 0.1, (40, 2)), rng.normal(3, 0.1, (40, 2))])
        csv = tmp_path / "points.csv"
        np.savetxt(csv, pts, delimiter=",")
        labels_file = tmp_path / "labels.txt"
        rc = main([
            "cluster", "--input", str(csv), "--eps", "0.4", "--min-pts", "5",
            "--output", str(labels_file),
        ])
        assert rc == 0
        assert "labels written" in capsys.readouterr().out
        labels = np.loadtxt(labels_file, dtype=int)
        assert labels.shape == (80,)
        assert set(np.unique(labels)) == {0, 1}

    def test_backend_selection(self, capsys):
        assert main(CLUSTER_SMALL + ["--backend", "kdtree", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["status"] == "ok"

    def test_tiles_flag_upgrades_to_tiled_algorithm(self, capsys):
        assert main(CLUSTER_SMALL + ["--tiles", "4", "--workers", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["algorithm"] == "rt-dbscan-tiled"
        assert record["status"] == "ok"

    def test_tiled_labels_match_untiled(self, tmp_path, capsys):
        plain = tmp_path / "plain.txt"
        tiled = tmp_path / "tiled.txt"
        assert main(CLUSTER_SMALL + ["--output", str(plain)]) == 0
        assert main(CLUSTER_SMALL + ["--tiles", "4", "--output", str(tiled)]) == 0
        capsys.readouterr()
        np.testing.assert_array_equal(
            np.loadtxt(plain, dtype=int), np.loadtxt(tiled, dtype=int)
        )

    def test_tiles_with_unsupported_algorithm_errors(self, capsys):
        rc = main(CLUSTER_SMALL + ["--algo", "fdbscan", "--tiles", "4"])
        assert rc == 2
        assert "tiles" in capsys.readouterr().err

    def test_unknown_backend_combination_errors(self, capsys):
        rc = main(CLUSTER_SMALL + ["--algo", "classic", "--backend", "kdtree"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestApproximateCluster:
    def test_lsh_reports_agreement_by_default(self, capsys):
        assert main(CLUSTER_SMALL + ["--backend", "lsh", "--recall-target", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "Agreement vs exact reference" in out
        assert "rt-dbscan@kdtree" in out  # the default reference

    def test_reference_none_disables_agreement(self, capsys):
        rc = main(CLUSTER_SMALL + ["--backend", "lsh", "--reference", "none"])
        assert rc == 0
        assert "Agreement" not in capsys.readouterr().out

    def test_json_carries_agreement_block(self, capsys):
        rc = main(CLUSTER_SMALL + [
            "--backend", "sampled", "--sample-rate", "0.6",
            "--reference", "rt-dbscan@brute", "--json",
        ])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        agreement = record["extra"]["agreement"]
        assert agreement["reference_backend"] == "brute"
        assert 0.0 <= agreement["ari"] <= 1.0
        assert record["extra"]["backend_kwargs"] == {"sample_rate": 0.6}

    def test_exact_backend_skips_reference_run(self, capsys):
        assert main(CLUSTER_SMALL + ["--backend", "kdtree"]) == 0
        assert "Agreement" not in capsys.readouterr().out

    def test_knob_on_exact_backend_errors(self, capsys):
        rc = main(CLUSTER_SMALL + ["--backend", "grid", "--recall-target", "0.8"])
        assert rc == 2
        assert "recall_target" in capsys.readouterr().err


class TestStreamCommand:
    ARGS = [
        "stream", "--stream", "drift-blobs", "--chunks", "3",
        "--chunk-size", "60", "--window", "150", "--min-pts", "5",
    ]

    def test_human_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "streaming rt-dbscan" in out
        assert "throughput" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["min_pts"] == 5
        assert len(payload["updates"]) == 3
        assert payload["summary"]["points_ingested"] == 180

    def test_unbounded_window_never_grows_the_scene(self, capsys):
        """plan_stream_capacity pre-sizes the slot buffer: exactly one build."""
        args = ["stream", "--stream", "drift-blobs", "--chunks", "4",
                "--chunk-size", "80", "--min-pts", "5", "--mode", "refit", "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["scene"]["num_builds"] == 1


class TestExperimentCommand:
    def test_scaling_experiment_end_to_end(self, capsys):
        assert main(["experiment", "scaling", "--scale", "0.13"]) == 0
        out = capsys.readouterr().out
        assert "Tiled scale-out" in out
        assert "rt-dbscan-tiled" in out
        assert "Speedup over rt-dbscan" in out

    def test_scaling_experiment_json_with_workers(self, capsys):
        assert main(["experiment", "scaling", "--scale", "0.13", "--workers", "2"]) == 0
        # Re-run in JSON mode and check the records are complete and ok.
        capsys.readouterr()
        assert main(["experiment", "scaling", "--scale", "0.13", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert {r["algorithm"] for r in records} == {"rt-dbscan", "rt-dbscan-tiled"}
        assert all(r["status"] == "ok" for r in records)

    def test_backends_experiment_small_scale(self, capsys):
        assert main(["experiment", "backends", "--scale", "0.13", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert all(r["status"] == "ok" for r in records)
        assert {r["algorithm"] for r in records} == {
            "rt-dbscan@brute", "rt-dbscan@grid", "rt-dbscan@kdtree", "rt-dbscan",
        }

    def test_approx_experiment_prints_agreement_table(self, capsys):
        assert main(["experiment", "approx", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "Speedup vs agreement" in out
        assert "rt-dbscan@lsh" in out
        assert "recall_target=1" in out

    def test_approx_experiment_json_records_agreement(self, capsys):
        assert main(["experiment", "approx", "--scale", "0.25", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert all(r["status"] == "ok" for r in records)
        with_agreement = [r for r in records if r["extra"].get("agreement")]
        assert len(with_agreement) == 8  # 4 lsh knobs + 4 sampled knobs
        full = [r for r in with_agreement
                if r["extra"].get("backend_kwargs", {}).get("recall_target") == 1.0]
        assert full and all(r["extra"]["agreement"]["ari"] == 1.0 for r in full)


class TestListCommand:
    def test_lists_every_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for heading in ("datasets:", "streams:", "algorithms:",
                        "neighbour backends", "experiments:", "streaming experiments:"):
            assert heading in out
        assert "rt-dbscan-tiled" in out
        assert "[backends, tiles, native]" in out
        assert "scaling" in out

    def test_approximate_backends_are_tagged(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lsh" in out and "sampled" in out
        # The approx tier is also native-capable since the parallel-tier PR.
        assert "[approximate, native]" in out

    def test_native_capable_entries_are_tagged(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "[backends, native]" in out   # rt-dbscan
        assert "[native]" in out             # rt / grid / brute backends


class TestNativeCommand:
    def test_reports_status(self, capsys):
        rc = main(["native"])
        out = capsys.readouterr().out
        assert "native kernel tier" in out
        assert "REPRO_NATIVE" in out
        assert rc in (0, 1)  # 0 when active (or off); 1 when wanted but unbuildable

    def test_json_status(self, capsys):
        main(["native", "--json"])
        status = json.loads(capsys.readouterr().out)
        assert {"mode", "active", "built", "attempted"} <= status.keys()

    def test_off_mode_is_a_clean_zero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert main(["native", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["mode"] == "off"
        assert status["active"] is False

    def test_cluster_native_flag_roundtrips_tier(self, capsys):
        from repro.native import dispatch

        assert main(CLUSTER_SMALL + ["--json", "--native", "off"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kernel_tier"] == "numpy"
        if dispatch.available():
            assert main(CLUSTER_SMALL + ["--json", "--native", "on"]) == 0
            record = json.loads(capsys.readouterr().out)
            assert record["kernel_tier"] == "native"


class TestParser:
    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--eps", "0.3", "--min-pts", "5"])


class TestServeCommand:
    def test_serve_end_to_end_over_a_socket(self, tmp_path, capsys):
        """Start the server on an ephemeral port, drive the wire protocol
        from a client thread, and let `shutdown` stop it (rc 0)."""
        import socket
        import threading

        port_file = tmp_path / "service.port"
        replies: list[dict] = []

        def client() -> None:
            while not port_file.exists() or not port_file.read_text().strip():
                pass
            port = int(port_file.read_text().strip())
            chunk = np.random.default_rng(0).uniform(0, 2, (40, 2)).tolist()
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                for payload in (
                    {"op": "ingest", "tenant": "a", "points": chunk},
                    {"op": "query_labels", "tenant": "a"},
                    {"op": "stats"},
                    {"op": "shutdown"},
                ):
                    fh.write(json.dumps(payload).encode() + b"\n")
                    fh.flush()
                    replies.append(json.loads(fh.readline()))

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        rc = main([
            "serve", "--port", "0", "--port-file", str(port_file),
            "--eps", "0.4", "--min-pts", "5", "--window", "300",
        ])
        thread.join(timeout=10)
        assert rc == 0
        assert not thread.is_alive()
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out
        assert "stopped after 4 request(s)" in out
        assert [r["status"] for r in replies] == ["ok", "ok", "ok", "ok"]
        assert len(replies[1]["body"]["labels"]) == 40
        assert replies[2]["body"]["config"]["spec"]["eps"] == 0.4

    def test_serve_max_requests_auto_stops(self, tmp_path, capsys):
        import socket
        import threading

        port_file = tmp_path / "service.port"

        def client() -> None:
            while not port_file.exists() or not port_file.read_text().strip():
                pass
            port = int(port_file.read_text().strip())
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                fh.write(json.dumps({"op": "stats"}).encode() + b"\n")
                fh.flush()
                fh.readline()

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        rc = main([
            "serve", "--port", "0", "--port-file", str(port_file),
            "--max-requests", "1", "--eps", "0.3", "--min-pts", "5",
        ])
        thread.join(timeout=10)
        assert rc == 0
        assert "stopped after 1 request(s)" in capsys.readouterr().out

    def test_serve_rejects_batch_only_algorithm(self, capsys):
        rc = main([
            "serve", "--port", "0", "--algo", "rt-dbscan",
            "--eps", "0.3", "--min-pts", "5",
        ])
        assert rc == 2
        assert "partial_fit" in capsys.readouterr().err

    def test_serve_requires_eps_and_min_pts(self, capsys):
        # optional at the parser level so --restore-check can run alone,
        # but still mandatory to actually start a server
        rc = main(["serve", "--port", "0"])
        assert rc == 2
        assert "--eps and --min-pts are required" in capsys.readouterr().err


class TestRestoreCheck:
    def _state_dir(self, tmp_path):
        from repro.service import SnapshotStore
        from repro.streaming.engine import StreamingRTDBSCAN

        engine = StreamingRTDBSCAN(eps=0.4, min_pts=5, window=120, backend="grid")
        engine.update(np.random.default_rng(0).normal(size=(80, 3)))
        store = SnapshotStore(tmp_path / "state")
        store.save("alpha", engine.snapshot())
        store.save("beta", engine.snapshot())
        return store

    def test_all_good_exits_zero(self, tmp_path, capsys):
        self._state_dir(tmp_path)
        rc = main(["serve", "--restore-check", str(tmp_path / "state")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2/2 checkpoint(s) verified" in out
        assert "ok" in out and "alpha" in out and "backend=grid" in out

    def test_corrupt_checkpoint_exits_nonzero(self, tmp_path, capsys):
        store = self._state_dir(tmp_path)
        path = store.path_for("beta")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        rc = main(["serve", "--restore-check", str(tmp_path / "state")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "CORRUPT" in out and "beta" in out
        assert "1/2 checkpoint(s) verified" in out
        # the diagnostic never moves files; recovery decisions stay manual
        assert path.exists()

    def test_empty_dir_reports_nothing_to_verify(self, tmp_path, capsys):
        rc = main(["serve", "--restore-check", str(tmp_path / "empty")])
        assert rc == 0
        assert "no checkpoints found" in capsys.readouterr().out
