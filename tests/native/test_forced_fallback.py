"""Forced-fallback behaviour: REPRO_NATIVE=0 must be a pure-numpy world.

Two guarantees are pinned here.  First, results are *identical* with the
native tier disabled — same labels, same core mask, same charged op counts —
because the native kernels are byte-exact re-implementations, not
approximations.  Second, disabling the tier really disables it: no compile is
attempted, no extension module is imported, and the tier reports ``numpy``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.native import dispatch

from test_parity import assert_results_identical

MIN_PTS = 8


@pytest.mark.skipif(not dispatch.available(), reason="native kernel tier unavailable")
class TestFallbackIsExact:
    @pytest.mark.parametrize(
        "backend", ("grid", "brute", "rt", "kdtree", "lsh", "sampled")
    )
    def test_env_disabled_matches_native(self, monkeypatch, backend):
        pts = generate("blobs", 700, seed=11)
        eps = calibrate_eps(pts, MIN_PTS, 0.30)
        native_r = RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend).fit(pts)

        monkeypatch.setenv("REPRO_NATIVE", "0")
        fallback_r = RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend).fit(pts)

        assert native_r.extra["kernel_tier"] == "native"
        assert fallback_r.extra["kernel_tier"] == "numpy"
        assert_results_identical(native_r, fallback_r)

    def test_fallback_labels_are_sane(self, monkeypatch):
        """The numpy path still produces a real clustering, not a degenerate one."""
        monkeypatch.setenv("REPRO_NATIVE", "0")
        pts = generate("blobs", 700, seed=11)
        eps = calibrate_eps(pts, MIN_PTS, 0.30)
        result = RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend="grid").fit(pts)
        labels = result.labels
        assert labels.shape == (700,)
        assert labels.max() >= 0  # found at least one cluster
        assert np.all(labels[result.core_mask] >= 0)


class TestDisabledMeansDisabled:
    def test_no_build_attempt_in_subprocess(self, tmp_path):
        """A full fit under REPRO_NATIVE=0 must never touch the build machinery.

        Run in a subprocess so the check starts from a genuinely cold
        dispatcher (this test process may already have loaded the extension).
        """
        code = """
import sys
from repro.data.registry import generate
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.native import dispatch

pts = generate("blobs", 300, seed=3)
result = RTDBSCAN(eps=0.05, min_pts=5, backend="grid").fit(pts)
assert result.extra["kernel_tier"] == "numpy", result.extra
assert dispatch._state["attempted"] is False, dispatch._state
assert not any(m.startswith("_repro_kernels_") for m in sys.modules), "extension imported"
print("OK")
"""
        env = dict(os.environ, REPRO_NATIVE="0", PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


class TestNoOpenMPFallback:
    def test_serial_variant_builds_and_matches(self):
        """REPRO_NATIVE_NO_OPENMP=1 must select the serial C build — still the
        native tier, still byte-identical — not collapse to numpy.

        Run in a subprocess: the variant is chosen at first kernel load, so
        this process (which may hold the OpenMP build) cannot flip it.
        """
        code = """
import numpy as np
from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.native import dispatch

nk = dispatch.kernels()
assert nk is not None, dispatch.status()
status = dispatch.status()
assert status["variant"] == "serial", status
assert status["openmp"] is False, status
assert not nk.has_openmp
assert nk.resolve_threads() == 1
# A serial build honours thread requests by clamping them to 1.
with dispatch.thread_override(6):
    assert nk.resolve_threads() == 1

pts = generate("blobs", 700, seed=11)
eps = calibrate_eps(pts, 8, 0.30)
native_r = RTDBSCAN(eps=eps, min_pts=8, backend="grid", native=True).fit(pts)
numpy_r = RTDBSCAN(eps=eps, min_pts=8, backend="grid", native=False).fit(pts)
assert native_r.extra["kernel_tier"] == "native"
assert np.array_equal(native_r.labels, numpy_r.labels)
for pa, pb in zip(native_r.report.phases, numpy_r.report.phases):
    assert pa.counts.as_dict() == pb.counts.as_dict(), pa.name
print("OK")
"""
        env = dict(os.environ, REPRO_NATIVE_NO_OPENMP="1", PYTHONPATH="src")
        env.pop("REPRO_NATIVE", None)
        env.pop("REPRO_NATIVE_THREADS", None)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
