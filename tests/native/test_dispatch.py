"""Unit tests for the native-tier dispatcher.

The dispatcher is the single decision point between the numpy and compiled
kernel tiers: these tests pin its contract — the ``REPRO_NATIVE`` knob, the
``override`` context manager, the guarantee that ``off`` never invokes a
build, and the log-once / never-raise behaviour of a failed build.
"""

from __future__ import annotations

import logging

import pytest

from repro.api.registry import get_algorithm, get_backend
from repro.native import build, dispatch


@pytest.fixture()
def fresh_dispatch():
    """Run a test against pristine dispatcher state, then restore it."""
    dispatch._reset_for_testing()
    yield dispatch
    dispatch._reset_for_testing()


class TestModeResolution:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("0", "off"), ("false", "off"), ("OFF", "off"), ("no", "off"),
            ("1", "on"), ("true", "on"), ("ON", "on"), ("yes", "on"),
            ("auto", "auto"), ("", "auto"), ("weird", "auto"),
        ],
    )
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_NATIVE", value)
        assert dispatch.mode() == expected

    def test_unset_env_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        assert dispatch.mode() == "auto"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert dispatch.mode() == "off"
        with dispatch.override(True):
            assert dispatch.mode() == "on"
            with dispatch.override(False):
                assert dispatch.mode() == "off"
            assert dispatch.mode() == "on"
        assert dispatch.mode() == "off"


class TestOffNeverBuilds:
    def test_no_build_attempt_when_off(self, monkeypatch, fresh_dispatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")

        def boom():  # pragma: no cover - must never run
            raise AssertionError("build attempted despite REPRO_NATIVE=0")

        monkeypatch.setattr(build, "load_kernels", boom)
        assert fresh_dispatch.kernels() is None
        assert fresh_dispatch.available() is False
        assert fresh_dispatch.active_tier() == "numpy"
        assert fresh_dispatch._state["attempted"] is False

    def test_override_false_never_builds(self, monkeypatch, fresh_dispatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)

        def boom():  # pragma: no cover - must never run
            raise AssertionError("build attempted despite override(False)")

        monkeypatch.setattr(build, "load_kernels", boom)
        with fresh_dispatch.override(False):
            assert fresh_dispatch.kernels() is None
            assert fresh_dispatch._state["attempted"] is False


class TestFailedBuildFallsBack:
    def test_failure_is_recorded_and_logged_once(
        self, monkeypatch, caplog, fresh_dispatch
    ):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)

        def broken():
            raise RuntimeError("cc: command not found")

        monkeypatch.setattr(build, "load_kernels", broken)
        with caplog.at_level(logging.WARNING, logger="repro.native"):
            assert fresh_dispatch.kernels() is None
            assert fresh_dispatch.kernels() is None  # second call: cached, silent
        warnings = [r for r in caplog.records if "unavailable" in r.getMessage()]
        assert len(warnings) == 1
        assert "cc: command not found" in warnings[0].getMessage()

        status = fresh_dispatch.status()
        assert status["built"] is False
        assert status["attempted"] is True
        assert "cc: command not found" in status["fallback_reason"]

    def test_status_reports_off_reason(self, monkeypatch, fresh_dispatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        status = fresh_dispatch.status()
        assert status["mode"] == "off"
        assert status["active"] is False
        assert "REPRO_NATIVE=0" in status["fallback_reason"]


class TestRegistryMetadata:
    def test_native_capable_backends_are_tagged(self):
        # Since the parallel-tier PR every registered backend has a compiled
        # implementation of its hot loop (kdtree via the shared BVH DFS, lsh
        # via the pair-confirm kernel, sampled via the brute block sweep).
        for name in ("rt", "grid", "brute", "kdtree", "lsh", "sampled"):
            assert get_backend(name).native, name

    def test_native_capable_algorithms_are_tagged(self):
        for name in ("rt-dbscan", "rt-dbscan-tiled", "streaming-rt-dbscan"):
            assert get_algorithm(name).supports_native, name
        assert not get_algorithm("classic").supports_native

    def test_spec_rejects_native_on_unsupporting_algorithm(self):
        from repro.api.spec import ClustererSpec

        with pytest.raises(ValueError, match="native"):
            ClustererSpec(algo="classic", eps=0.3, min_pts=5, native=True).resolve()

    def test_spec_routes_native_into_as_dict(self):
        from repro.api.spec import ClustererSpec

        spec = ClustererSpec(algo="rt-dbscan", eps=0.3, min_pts=5, native=False)
        assert spec.as_dict()["native"] is False
        assert ClustererSpec(algo="rt-dbscan", eps=0.3, min_pts=5).as_dict()["native"] is None


class TestModuleNaming:
    def test_module_name_is_content_addressed(self):
        name = build.module_name()
        assert name.startswith("_repro_kernels_")
        # Stable across calls: the name is a hash of the cdef + C source.
        assert build.module_name() == name

    def test_variants_get_distinct_names(self):
        omp = build.module_name(variant="omp")
        serial = build.module_name(variant="serial")
        assert omp != serial
        assert "_omp_" in omp and "_serial_" in serial
        # The default variant is the OpenMP build.
        assert build.module_name() == omp


class TestThreadResolution:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("auto", None), ("AUTO", None), ("", None),
            ("4", 4), ("1", 1), ("16", 16),
            # Zero, negatives and garbage collapse to auto, never raise.
            ("0", None), ("-3", None), ("garbage", None), ("2.5", None),
        ],
    )
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", value)
        assert dispatch.requested_threads() == expected

    def test_unset_env_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
        assert dispatch.requested_threads() is None

    def test_thread_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "8")
        assert dispatch.requested_threads() == 8
        with dispatch.thread_override(2):
            assert dispatch.requested_threads() == 2
            with dispatch.thread_override(None):
                assert dispatch.requested_threads() is None
            assert dispatch.requested_threads() == 2
        assert dispatch.requested_threads() == 8

    def test_resolve_is_one_when_tier_off(self, monkeypatch, fresh_dispatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "8")
        assert fresh_dispatch.resolve_threads() == 1

    def test_resolve_matches_requested_when_openmp(self, monkeypatch, fresh_dispatch):
        nk = fresh_dispatch.kernels()
        if nk is None:
            pytest.skip("native tier unavailable")
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
        expected = 3 if nk.has_openmp else 1
        assert fresh_dispatch.resolve_threads() == expected
        with fresh_dispatch.thread_override(None):
            auto = fresh_dispatch.resolve_threads()
            assert auto == (nk.openmp_max_threads() if nk.has_openmp else 1)
            assert auto >= 1

    def test_status_reports_thread_fields(self, monkeypatch, fresh_dispatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "5")
        status = fresh_dispatch.status()
        assert status["threads_env"] == "5"
        assert status["requested_threads"] == 5
        assert status["resolved_threads"] >= 1
        assert set(status["kernels"]) == {
            "grid_scan", "brute_block", "bvh_sphere", "confirm_pairs",
            "uf_union_edges",
        }
        if status["active"]:
            assert status["variant"] in ("omp", "serial")
            assert status["openmp"] is (status["variant"] == "omp")

    def test_spec_validates_native_threads(self):
        from repro.api.spec import ClustererSpec

        spec = ClustererSpec(algo="rt-dbscan", eps=0.3, min_pts=5, native_threads=2)
        spec.resolve()
        assert spec.as_dict()["native_threads"] == 2
        with pytest.raises(ValueError, match="native_threads"):
            ClustererSpec(algo="rt-dbscan", eps=0.3, min_pts=5, native_threads=0)
        with pytest.raises(ValueError, match="native_threads"):
            ClustererSpec(
                algo="classic", eps=0.3, min_pts=5, native_threads=2
            ).resolve()
