"""Native-vs-numpy parity matrix.

The native tier's whole contract is *byte identity*: same CSR adjacency,
same labels, same charged operation counts — only wall-clock changes.  This
module pins that contract across backends (grid / brute / rt), datasets
(Gaussian blobs and the paper's NGSIM trajectory distribution) and pipelines
(monolithic, tiled, streaming), plus the raw CSR surface of every native
backend.

Everything here skips when the compiled tier is unavailable (e.g. the CI
no-compiler job): without a native tier there is nothing to compare, and the
pure-numpy suite already covers the fallback behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import make_backend
from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.native import dispatch
from repro.partition.tiled import TiledRTDBSCAN
from repro.streaming.engine import StreamingRTDBSCAN

#: Exact native-capable backends: valid in every pipeline (incl. tiled).
NATIVE_BACKENDS = ("grid", "brute", "rt", "kdtree")
#: The approximate tier is native-capable too, but the tiled pipeline
#: refuses inexact backends, so it only joins the monolithic/CSR matrices.
ALL_NATIVE_BACKENDS = NATIVE_BACKENDS + ("lsh", "sampled")
MIN_PTS = 8

pytestmark = pytest.mark.skipif(
    not dispatch.available(), reason="native kernel tier unavailable"
)


@pytest.fixture(scope="module", params=("blobs", "ngsim"))
def dataset(request):
    pts = generate(request.param, 900, seed=31)
    eps = calibrate_eps(pts, MIN_PTS, 0.30)
    return request.param, pts, eps


def assert_counts_equal(report_a, report_b):
    """Charged op counts must match phase-for-phase, field-for-field."""
    assert len(report_a.phases) == len(report_b.phases)
    for pa, pb in zip(report_a.phases, report_b.phases):
        assert pa.name == pb.name
        assert pa.counts.as_dict() == pb.counts.as_dict(), pa.name


def assert_results_identical(a, b):
    assert a.labels.dtype == b.labels.dtype
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.core_mask, b.core_mask)
    assert_counts_equal(a.report, b.report)
    # Identical counts through an identical cost model ⇒ identical simulated
    # time; assert it anyway so a cost-model bypass cannot slip through.
    assert a.report.total_simulated_seconds == b.report.total_simulated_seconds


class TestMonolithicParity:
    @pytest.mark.parametrize("backend", ALL_NATIVE_BACKENDS)
    def test_labels_and_counts_identical(self, dataset, backend):
        _, pts, eps = dataset
        numpy_r = RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend, native=False).fit(pts)
        native_r = RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend, native=True).fit(pts)
        assert numpy_r.extra["kernel_tier"] == "numpy"
        assert native_r.extra["kernel_tier"] == "native"
        assert_results_identical(numpy_r, native_r)


class TestTiledParity:
    @pytest.mark.parametrize("backend", NATIVE_BACKENDS)
    def test_labels_and_counts_identical(self, dataset, backend):
        _, pts, eps = dataset
        fits = {}
        for native in (False, True):
            fits[native] = TiledRTDBSCAN(
                eps=eps, min_pts=MIN_PTS, backend=backend, tiles=4, native=native
            ).fit(pts)
        assert fits[True].extra["kernel_tier"] == "native"
        assert_results_identical(fits[False], fits[True])

    def test_process_executor_carries_override(self, dataset):
        """TileJob.native must reach process-pool workers (fresh interpreters)."""
        _, pts, eps = dataset
        fits = {}
        for native in (False, True):
            fits[native] = TiledRTDBSCAN(
                eps=eps, min_pts=MIN_PTS, backend="grid", tiles=4,
                workers=2, executor_mode="process", native=native,
            ).fit(pts)
        assert_results_identical(fits[False], fits[True])


class TestStreamingParity:
    def test_chunked_ingest_identical(self, dataset):
        _, pts, eps = dataset
        results = {}
        for native in (False, True):
            engine = StreamingRTDBSCAN(
                eps=eps, min_pts=MIN_PTS, window=600, native=native
            )
            updates = [
                engine.update(pts[lo : lo + 300]) for lo in range(0, pts.shape[0], 300)
            ]
            results[native] = (updates, engine.result())
        for ua, ub in zip(results[False][0], results[True][0]):
            assert np.array_equal(ua.labels, ub.labels)
            assert np.array_equal(ua.core_mask, ub.core_mask)
            assert_counts_equal(ua.report, ub.report)
        ra, rb = results[False][1], results[True][1]
        assert np.array_equal(ra.labels, rb.labels)
        assert ra.extra["kernel_tier"] == "numpy"
        assert rb.extra["kernel_tier"] == "native"


class TestBackendCsrParity:
    """The raw neighbour surface: byte-identical canonical CSR per backend."""

    @pytest.mark.parametrize("backend", ALL_NATIVE_BACKENDS)
    def test_self_query_csr(self, dataset, backend):
        _, pts, eps = dataset
        per_tier = {}
        for native in (False, True):
            with dispatch.override(native):
                finder = make_backend(backend, pts, eps)
                try:
                    counts, cstats = finder.neighbor_counts()
                    indptr, indices, qstats = finder.neighbor_csr()
                finally:
                    finder.release()
            per_tier[native] = (counts, cstats, indptr, indices, qstats)
        c0, cs0, ip0, ix0, qs0 = per_tier[False]
        c1, cs1, ip1, ix1, qs1 = per_tier[True]
        assert np.array_equal(c0, c1)
        assert ip0.dtype == ip1.dtype and ip0.tobytes() == ip1.tobytes()
        assert ix0.dtype == ix1.dtype and ix0.tobytes() == ix1.tobytes()
        assert cs0.counts.as_dict() == cs1.counts.as_dict()
        assert qs0.counts.as_dict() == qs1.counts.as_dict()

    @pytest.mark.parametrize("backend", ALL_NATIVE_BACKENDS)
    def test_external_query_csr(self, dataset, backend):
        _, pts, eps = dataset
        queries = pts[::3] + eps / 7.0  # off-lattice external query points
        per_tier = {}
        for native in (False, True):
            with dispatch.override(native):
                finder = make_backend(backend, pts, eps)
                try:
                    indptr, indices, stats = finder.neighbor_csr(queries)
                finally:
                    finder.release()
            per_tier[native] = (indptr, indices, stats)
        ip0, ix0, st0 = per_tier[False]
        ip1, ix1, st1 = per_tier[True]
        assert ip0.tobytes() == ip1.tobytes()
        assert ix0.tobytes() == ix1.tobytes()
        assert st0.counts.as_dict() == st1.counts.as_dict()
