"""Hypothesis property: the kernel tier is invisible in the output.

For any dataset the strategies can produce, any native-capable backend, and
any eps drawn from the realised distance distribution, running with the
compiled tier forced on must give byte-identical labels, core mask, and
charged op counts to the pure-numpy path.  Unlike the fixed-dataset parity
matrix, this sweeps the awkward corners — tiny n, eps below any pairwise
distance (all noise), eps above all of them (one cluster), duplicate points —
where an off-by-one in a C loop would first show up.

Strategies draw small integers and build datasets deterministically from
them (the repo-wide idiom) so examples shrink well and replay exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import make_blobs
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.native import dispatch

from test_parity import assert_results_identical

pytestmark = pytest.mark.skipif(
    not dispatch.available(), reason="native kernel tier unavailable"
)

backends = st.sampled_from(("grid", "brute", "rt", "kdtree"))
seeds = st.integers(min_value=0, max_value=2**16)
sizes = st.integers(min_value=2, max_value=160)
# eps as a quantile of realised pairwise distances: 0 undershoots every
# distance (all noise), 100 overshoots them all (single cluster).
eps_quantiles = st.integers(min_value=0, max_value=100)
min_pts_values = st.integers(min_value=1, max_value=10)


def _dataset(seed: int, n: int) -> np.ndarray:
    pts, _ = make_blobs(n, centers=3, std=0.3, seed=seed)
    pts = np.asarray(pts, dtype=np.float64)
    if seed % 4 == 0 and n >= 4:  # exercise exact duplicates
        pts[n // 2] = pts[0]
    return pts


def _eps_at_quantile(pts: np.ndarray, q: int) -> float:
    diffs = pts[:, None, :] - pts[None, :, :]
    d = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    d = d[np.triu_indices(pts.shape[0], k=1)]
    if d.size == 0:
        return 1.0
    lo, hi = float(d.min()), float(d.max())
    return max(1e-9, lo * 0.5 + (hi * 1.25 - lo * 0.5) * (q / 100.0))


@settings(max_examples=30, deadline=None)
@given(backend=backends, seed=seeds, n=sizes, q=eps_quantiles, min_pts=min_pts_values)
def test_native_tier_is_invisible(backend, seed, n, q, min_pts):
    pts = _dataset(seed, n)
    eps = _eps_at_quantile(pts, q)
    numpy_r = RTDBSCAN(eps=eps, min_pts=min_pts, backend=backend, native=False).fit(pts)
    native_r = RTDBSCAN(eps=eps, min_pts=min_pts, backend=backend, native=True).fit(pts)
    assert native_r.extra["kernel_tier"] == "native"
    assert_results_identical(numpy_r, native_r)


@settings(max_examples=20, deadline=None)
@given(
    backend=backends,
    seed=seeds,
    n=sizes,
    q=eps_quantiles,
    min_pts=min_pts_values,
    nthreads=st.sampled_from((1, 2, 3, 5)),
)
def test_thread_count_is_invisible(backend, seed, n, q, min_pts, nthreads):
    """Per-thread CSR fragments merge in query order: any thread count must
    reproduce the single-thread bytes exactly.  On a serial build (or a
    1-core box) every request resolves to 1 thread, which still pins the
    resolution path; multi-core CI exercises the real fan-out."""
    pts = _dataset(seed, n)
    eps = _eps_at_quantile(pts, q)
    one = RTDBSCAN(
        eps=eps, min_pts=min_pts, backend=backend, native=True, native_threads=1
    ).fit(pts)
    many = RTDBSCAN(
        eps=eps, min_pts=min_pts, backend=backend, native=True, native_threads=nthreads
    ).fit(pts)
    assert one.extra["kernel_tier"] == "native"
    assert many.extra["kernel_tier"] == "native"
    assert_results_identical(one, many)


def test_thread_env_matches_override():
    """REPRO_NATIVE_THREADS and the native_threads= override resolve through
    the same path and must agree byte-for-byte."""
    import os

    pts = _dataset(9, 120)
    eps = _eps_at_quantile(pts, 55)
    via_param = RTDBSCAN(
        eps=eps, min_pts=4, backend="grid", native=True, native_threads=3
    ).fit(pts)
    old = os.environ.get("REPRO_NATIVE_THREADS")
    os.environ["REPRO_NATIVE_THREADS"] = "3"
    try:
        via_env = RTDBSCAN(eps=eps, min_pts=4, backend="grid", native=True).fit(pts)
    finally:
        if old is None:
            os.environ.pop("REPRO_NATIVE_THREADS", None)
        else:
            os.environ["REPRO_NATIVE_THREADS"] = old
    assert_results_identical(via_param, via_env)
