"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.iono3d import IONO3D_DEFAULTS, generate_iono3d
from repro.data.ngsim import NGSIM_DEFAULTS, generate_ngsim
from repro.data.porto import PORTO_DEFAULTS, generate_porto
from repro.data.registry import DATASETS, generate, get_dataset, list_datasets
from repro.data.road3d import ROAD3D_DEFAULTS, generate_road3d
from repro.data.synthetic import (
    combine,
    make_blobs,
    make_moons,
    make_rings,
    make_trajectory,
    make_uniform_noise,
)
from repro.neighbors.brute import brute_force_neighbor_counts

GENERATORS = {
    "3droad": (generate_road3d, 2),
    "porto": (generate_porto, 2),
    "ngsim": (generate_ngsim, 2),
    "3diono": (generate_iono3d, 3),
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestPaperDatasetGenerators:
    def test_shape_and_finiteness(self, name):
        gen, dim = GENERATORS[name]
        pts = gen(5000, seed=1)
        assert pts.shape == (5000, dim)
        assert np.isfinite(pts).all()

    def test_deterministic_by_seed(self, name):
        gen, _ = GENERATORS[name]
        np.testing.assert_array_equal(gen(2000, seed=42), gen(2000, seed=42))

    def test_different_seeds_differ(self, name):
        gen, _ = GENERATORS[name]
        assert not np.array_equal(gen(2000, seed=1), gen(2000, seed=2))

    def test_exact_count_for_odd_sizes(self, name):
        gen, dim = GENERATORS[name]
        pts = gen(1237, seed=3)
        assert pts.shape == (1237, dim)

    def test_invalid_count_raises(self, name):
        gen, _ = GENERATORS[name]
        with pytest.raises(ValueError):
            gen(0)


class TestDatasetCharacter:
    """The generators must reproduce the density regimes the paper exploits."""

    def test_road3d_within_extent(self):
        pts = generate_road3d(5000, seed=0)
        (lat_lo, lat_hi), (lon_lo, lon_hi) = ROAD3D_DEFAULTS["extent"]
        margin = 0.3
        assert pts[:, 0].min() > lat_lo - margin and pts[:, 0].max() < lat_hi + margin
        assert pts[:, 1].min() > lon_lo - margin and pts[:, 1].max() < lon_hi + margin

    def test_porto_has_heavy_density_contrast(self):
        pts = generate_porto(20_000, seed=0)
        counts = brute_force_neighbor_counts(pts[:4000], 0.01)
        # Hotspots are far denser than the typical (median) neighbourhood and
        # a visible fraction of points sit in near-empty suburbs.
        assert counts.max() > 5 * max(np.median(counts), 1)
        assert (counts < np.median(counts) / 5).mean() > 0.05

    def test_ngsim_is_dense_but_forms_no_clusters_at_paper_eps(self):
        pts = generate_ngsim(20_000, seed=0)
        eps = NGSIM_DEFAULTS["fixed_eps"]
        counts = brute_force_neighbor_counts(pts[:5000], eps)
        assert counts.max() < NGSIM_DEFAULTS["min_pts"]

    def test_ngsim_corridor_shape(self):
        pts = generate_ngsim(10_000, seed=1)
        extent = pts.max(axis=0) - pts.min(axis=0)
        # Quasi-1D: the longitudinal extent dwarfs the lateral one.
        assert extent[1] > 5 * extent[0]

    def test_iono3d_is_three_dimensional_with_structure(self):
        pts = generate_iono3d(10_000, seed=0)
        assert pts.shape[1] == 3
        # Latitude bounded, TEC positive and latitude-dependent.
        assert np.abs(pts[:, 0]).max() <= 60.0 + 1e-9
        assert pts[:, 2].min() > 0

    def test_porto_defaults_match_paper(self):
        assert PORTO_DEFAULTS["min_pts"] == 1000
        assert IONO3D_DEFAULTS["dimensions"] == 3


class TestSyntheticBuildingBlocks:
    def test_make_blobs_labels(self):
        pts, labels = make_blobs(100, centers=4, seed=0)
        assert pts.shape == (100, 2)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_make_blobs_explicit_centers(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts, labels = make_blobs(50, centers=centers, std=0.01, seed=1)
        assert np.abs(pts[labels == 0] - centers[0]).max() < 1.0

    def test_make_uniform_noise_bounds(self):
        pts = make_uniform_noise(200, low=-1, high=2, dim=3, seed=2)
        assert pts.shape == (200, 3)
        assert pts.min() >= -1 and pts.max() <= 2

    def test_make_rings_radii(self):
        pts, labels = make_rings(400, radii=(1.0, 2.0), noise=0.0, seed=3)
        r = np.linalg.norm(pts[labels == 1], axis=1)
        np.testing.assert_allclose(r, 2.0, atol=1e-9)

    def test_make_moons_two_labels(self):
        pts, labels = make_moons(300, seed=4)
        assert pts.shape == (300, 2)
        assert set(labels.tolist()) == {0, 1}

    def test_make_trajectory_follows_waypoints(self):
        waypoints = np.array([[0.0, 0.0], [1.0, 0.0]])
        pts = make_trajectory(500, waypoints, jitter=0.0, seed=5)
        assert (pts[:, 1] == 0).all()
        assert pts[:, 0].min() >= 0 and pts[:, 0].max() <= 1

    def test_make_trajectory_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            make_trajectory(10, np.array([[0.0, 0.0]]))

    def test_make_trajectory_rejects_degenerate(self):
        with pytest.raises(ValueError):
            make_trajectory(10, np.zeros((3, 2)))

    def test_combine_shuffles_deterministically(self):
        a = np.zeros((10, 2))
        b = np.ones((10, 2))
        out1 = combine(a, b, seed=1)
        out2 = combine(a, b, seed=1)
        np.testing.assert_array_equal(out1, out2)
        assert out1.shape == (20, 2)


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        assert {"3droad", "porto", "ngsim", "3diono"} <= set(list_datasets())

    def test_get_dataset_case_insensitive(self):
        assert get_dataset("PORTO").name == "porto"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("mnist")

    def test_generate_helper(self):
        pts = generate("blobs", 500, seed=0)
        assert pts.shape[0] == 500

    def test_spec_descriptions_present(self):
        for name, spec in DATASETS.items():
            assert spec.description
            assert spec.name == name
