"""Cross-layer equivalence matrix.

THE correctness table of the exact tier, in one place: every exact neighbour
backend (rt / grid / kdtree / brute) x every execution layer (monolithic,
tiled with eps-halo merge, streaming eviction-free) must produce labels
bit-identical to the brute-force oracle on both a clustered synthetic
dataset and an NGSIM sample.  This table-driven suite replaces the scattered
per-module copies of the same assertion (previously duplicated in
tests/neighbors/test_backends.py and tests/partition/test_tiled.py).

The approximate tier (lsh / sampled) is deliberately absent: its contract is
quantified agreement, not bit-identity — see tests/neighbors/test_approx.py
and tests/properties/test_approx_monotonic.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import get_backend, list_backends
from repro.bench.experiments import calibrate_eps
from repro.data.registry import generate
from repro.data.synthetic import make_blobs, make_uniform_noise
from repro.dbscan.rt_dbscan import RTDBSCAN
from repro.metrics.agreement import compare_results
from repro.partition.tiled import TiledRTDBSCAN
from repro.streaming import StreamingRTDBSCAN

EXACT_BACKENDS = ("rt", "grid", "kdtree", "brute")
MIN_PTS = 8

#: every (layer, backend) cell of the matrix; the streaming engine is
#: hard-wired to the rt scene, so it contributes a single cell.
CELLS = (
    [("monolithic", b) for b in EXACT_BACKENDS]
    + [("tiled", b) for b in EXACT_BACKENDS]
    + [("streaming", "rt")]
)


@pytest.fixture(scope="module")
def datasets():
    pts, _ = make_blobs(
        700, centers=np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 4.0]]), std=0.25, seed=7
    )
    noise = make_uniform_noise(70, low=-2.0, high=6.0, dim=2, seed=8)
    blobs = np.vstack([pts, noise])
    ngsim = generate("ngsim", 1000, seed=2023)
    return {
        "blobs": (blobs, 0.3),
        "ngsim": (ngsim, calibrate_eps(ngsim, MIN_PTS, 0.30)),
    }


@pytest.fixture(scope="module")
def references(datasets):
    """The exact oracle labelling per dataset (index-free brute force)."""
    return {
        name: RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend="brute").fit(pts)
        for name, (pts, eps) in datasets.items()
    }


def _fit(layer: str, backend: str, pts: np.ndarray, eps: float):
    if layer == "monolithic":
        return RTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend).fit(pts)
    if layer == "tiled":
        return TiledRTDBSCAN(eps=eps, min_pts=MIN_PTS, backend=backend, tiles=5).fit(pts)
    assert layer == "streaming"
    # Eviction-free feed: no window, so the final state covers every point
    # and must equal the batch labelling exactly.
    engine = StreamingRTDBSCAN(eps=eps, min_pts=MIN_PTS)
    for lo in range(0, pts.shape[0], 250):
        engine.update(pts[lo : lo + 250])
    return engine.result()


class TestEquivalenceMatrix:
    def test_references_are_non_trivial(self, references):
        assert references["blobs"].num_clusters >= 3
        assert references["blobs"].num_noise > 0

    @pytest.mark.parametrize("data", ["blobs", "ngsim"])
    @pytest.mark.parametrize(
        "layer,backend", CELLS, ids=[f"{layer}-{backend}" for layer, backend in CELLS]
    )
    def test_cell_is_bit_identical_to_oracle(self, datasets, references, data, layer, backend):
        pts, eps = datasets[data]
        ref = references[data]
        result = _fit(layer, backend, pts, eps)
        np.testing.assert_array_equal(result.labels, ref.labels)
        np.testing.assert_array_equal(result.core_mask, ref.core_mask)
        if result.neighbor_counts is not None and ref.neighbor_counts is not None:
            np.testing.assert_array_equal(result.neighbor_counts, ref.neighbor_counts)
        report = compare_results(ref, result, points=pts)
        assert report.equivalent, report.as_dict()
        assert report.ari == 1.0

    def test_matrix_covers_every_registered_exact_backend(self):
        """New exact backends must be added to this table."""
        exact = {b for b in list_backends() if get_backend(b).exact}
        assert exact == set(EXACT_BACKENDS)
