"""Spatial tiling with ε-halo ghost regions.

The scale-out decomposition for density clustering: split the bounding box of
the dataset into an axis-aligned grid of tiles, give every tile *ownership*
of the points that fall inside its box, and extend each tile with a **halo**
(ghost zone) of the points owned by neighbouring tiles that lie within ε of
the box.  Because a DBSCAN ε-query launched from an owned point can only ever
reach points within ε of the tile box, the owned ∪ halo set contains the
complete ε-neighbourhood of every owned point — which is what lets
:class:`~repro.partition.tiled.TiledRTDBSCAN` run the paper's Algorithm 3
independently per tile and still produce exact global results after the
boundary merge.

Ownership is a partition: every point belongs to exactly one tile
(half-open boxes, with the last tile along each axis closed), so per-tile ray
counts sum to exactly one ray per dataset point — the same stage-1/stage-2
launch totals as an untiled run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.transforms import lift_to_3d, validate_points

__all__ = ["Tile", "Tiler", "plan_stream_capacity"]


@dataclass
class Tile:
    """One spatial shard: an owned box plus its ε-halo ghost points.

    Attributes
    ----------
    tile_id:
        Dense tile index (row-major over the grid).
    grid_pos:
        ``(i, j, k)`` position of the tile in the grid.
    lo, hi:
        Corners of the owned box in the lifted 3D space.
    owned:
        Global indices of the points this tile owns (ascending).
    halo:
        Global indices of ghost points: owned by other tiles but within the
        halo width of this tile's box (ascending).
    """

    tile_id: int
    grid_pos: tuple[int, int, int]
    lo: np.ndarray
    hi: np.ndarray
    owned: np.ndarray
    halo: np.ndarray

    @property
    def num_owned(self) -> int:
        return int(self.owned.size)

    @property
    def num_halo(self) -> int:
        return int(self.halo.size)

    @property
    def num_points(self) -> int:
        """Local working-set size (owned + halo)."""
        return self.num_owned + self.num_halo

    @property
    def indices(self) -> np.ndarray:
        """Global indices of the local working set, owned points first."""
        return np.concatenate([self.owned, self.halo])

    def summary(self) -> dict:
        return {
            "tile_id": self.tile_id,
            "grid_pos": tuple(self.grid_pos),
            "num_owned": self.num_owned,
            "num_halo": self.num_halo,
        }


@dataclass
class Tiler:
    """Splits a dataset into spatial tiles with ε-halo ghost regions.

    Parameters
    ----------
    eps:
        The DBSCAN ε the tiling must preserve; the halo width defaults to it.
    tiles:
        Target number of tiles.  The grid is factored over the data's axes
        greedily by extent (the longest axis is split first), so the actual
        tile count may slightly exceed the target; degenerate (zero-extent)
        axes are never split.
    grid:
        Explicit ``(nx, ny, nz)`` grid shape; overrides ``tiles``.
    halo:
        Ghost-zone width.  Must be ≥ ``eps`` — anything smaller would drop
        cross-boundary neighbours and break the exactness guarantee.
    """

    eps: float
    tiles: int = 4
    grid: tuple[int, int, int] | None = None
    halo: float | None = None

    def __post_init__(self) -> None:
        if not np.isfinite(self.eps) or self.eps <= 0:
            raise ValueError(f"eps must be a positive finite number, got {self.eps}")
        if self.grid is None and self.tiles < 1:
            raise ValueError(f"tiles must be a positive integer, got {self.tiles}")
        if self.grid is not None:
            grid = tuple(int(g) for g in self.grid)
            if len(grid) != 3 or any(g < 1 for g in grid):
                raise ValueError(f"grid must be three positive integers, got {self.grid}")
            self.grid = grid
        self.halo = float(self.halo) if self.halo is not None else float(self.eps)
        if self.halo < self.eps:
            raise ValueError(
                f"halo width {self.halo} is smaller than eps {self.eps}; "
                "the ghost zone must cover a full eps-neighbourhood"
            )

    # ------------------------------------------------------------------ #
    def grid_shape(self, points: np.ndarray) -> tuple[int, int, int]:
        """Grid dimensions for the given data (explicit ``grid`` wins).

        The target tile count is factored over the axes greedily: repeatedly
        split the axis whose per-tile extent is currently largest.  Axes with
        zero extent (constant coordinates, e.g. the lifted z of 2D data) are
        never split.
        """
        if self.grid is not None:
            return self.grid
        pts = lift_to_3d(validate_points(points))
        extent = pts.max(axis=0) - pts.min(axis=0)
        dims = [1, 1, 1]
        while int(np.prod(dims)) < self.tiles:
            per_tile = [e / d for e, d in zip(extent, dims)]
            axis = int(np.argmax(per_tile))
            if per_tile[axis] <= 0.0:
                break  # all remaining axes are degenerate
            dims[axis] += 1
        return (dims[0], dims[1], dims[2])

    def split(self, points: np.ndarray) -> list[Tile]:
        """Partition ``points`` into tiles with ε-halo ghost regions.

        Tiles that own no points are dropped; every point is owned by exactly
        one of the returned tiles.
        """
        pts = lift_to_3d(validate_points(points))
        n = pts.shape[0]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        dims = np.asarray(self.grid_shape(pts), dtype=np.intp)
        # A zero-extent axis cannot be split even if an explicit grid asks
        # for it: every point shares one coordinate there, so all ownership
        # collapses into the first slab (the surplus tiles own nothing and
        # are dropped below).  Infinite width encodes "unsplit" uniformly.
        extent = hi - lo
        width = np.where((dims > 1) & (extent > 0), extent / np.maximum(dims, 1), np.inf)

        # Ownership: half-open boxes along each axis, last box closed.
        cell = np.zeros((n, 3), dtype=np.intp)
        for d in range(3):
            if np.isfinite(width[d]):
                cell[:, d] = np.clip(
                    np.floor((pts[:, d] - lo[d]) / width[d]).astype(np.intp), 0, dims[d] - 1
                )
        flat = (cell[:, 0] * dims[1] + cell[:, 1]) * dims[2] + cell[:, 2]

        halo2 = self.halo * self.halo
        tiles: list[Tile] = []
        occupied = np.unique(flat)
        for tile_id, flat_id in enumerate(occupied):
            i, rem = divmod(int(flat_id), int(dims[1] * dims[2]))
            j, k = divmod(rem, int(dims[2]))
            pos = np.asarray([i, j, k], dtype=np.float64)
            finite_w = np.where(np.isfinite(width), width, 0.0)
            box_lo = lo + pos * finite_w
            box_hi = np.where(np.isfinite(width), box_lo + width, hi)
            owned = np.flatnonzero(flat == flat_id)
            # Point-to-box distance: componentwise clamp, then Euclidean.
            gap = np.maximum(np.maximum(box_lo - pts, pts - box_hi), 0.0)
            near = np.einsum("ij,ij->i", gap, gap) <= halo2
            halo = np.flatnonzero(near & (flat != flat_id))
            tiles.append(
                Tile(
                    tile_id=tile_id,
                    grid_pos=(i, j, k),
                    lo=box_lo,
                    hi=box_hi,
                    owned=owned,
                    halo=halo,
                )
            )
        return tiles

    # ------------------------------------------------------------------ #
    def occupancy(self, points: np.ndarray) -> np.ndarray:
        """Working-set size (owned + halo) of every non-empty tile."""
        return np.asarray([t.num_points for t in self.split(points)], dtype=np.int64)

    def capacity_bound(self, points: np.ndarray) -> int:
        """Largest per-tile working set — the scene size a shard must hold.

        This is the slot-buffer bound a sharded deployment sizes each
        device's scene by: no shard ever needs more ε-sphere slots than the
        biggest tile's owned + halo occupancy.
        """
        occ = self.occupancy(points)
        return int(occ.max()) if occ.size else 0


def plan_stream_capacity(
    points: np.ndarray,
    eps: float,
    *,
    window: int | None,
    chunk_size: int,
    tiles: int = 1,
) -> int:
    """Slot-buffer capacity for a streaming run over a known feed.

    The streaming scene grows geometrically when its slot buffer fills, and
    every growth invalidates the BVH topology and forces a rebuild.  When the
    feed is materialised up front (as :func:`repro.bench.experiments.run_streaming`
    does), the :class:`Tiler` occupancy bound gives the exact number of slots
    a window — or a spatial shard of it, for ``tiles > 1`` — can ever occupy,
    so the scene can be pre-sized once and never grow:

    * windowed runs hold at most ``window`` live points plus one in-flight
      chunk before eviction recycles slots;
    * unbounded runs hold at most the shard's total occupancy (owned + halo
      of the largest tile; the whole feed when ``tiles == 1``).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be a positive integer")
    bound = Tiler(eps, tiles=tiles).capacity_bound(points)
    if window is None:
        return max(1, bound)
    return max(1, min(int(window) + int(chunk_size), bound + int(chunk_size)))
