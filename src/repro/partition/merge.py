"""Halo-based boundary merge for tiled clustering.

Each tile of a :class:`~repro.partition.tiled.TiledRTDBSCAN` run produces

* exact ε-neighbour counts (and hence exact core flags) for its *owned*
  points — exact because the tile's halo contains every point within ε of an
  owned point, and
* the complete set of confirmed ``(query, neighbour)`` pairs whose query is
  an owned point, mapped back to global indices.

Because ownership is a partition, concatenating the per-tile pair lists
reconstructs **exactly** the global pair set an untiled run discovers: a
global pair ``(q, p)`` appears once, contributed by the unique tile that owns
``q`` (its partner ``p`` is locally visible there, owned or halo).  Likewise
the per-tile core flags assemble the exact global core mask.  The merge then
feeds both through the same :func:`repro.dbscan.formation.form_clusters`
stage-2 pass every backend uses: core–core edges — including the cross-halo
boundary edges — are unioned in one batched
:class:`~repro.dbscan.disjoint_set.ParallelDisjointSet` pass, border points
attach to their lowest-indexed core neighbour, and labels are canonicalised
to the smallest-member numbering.

**Equivalence argument.**  ``form_clusters`` is a deterministic function of
the pair *multiset* and the core mask: the batched min-hooking union is
order-independent (each iteration hooks every still-spanning edge's larger
root onto the smaller simultaneously), border attachment sorts candidates
before deduplicating, and the final numbering depends only on cluster
membership.  Since the tiled run hands it the identical pair multiset and the
identical core mask as an untiled run, the labels are **bit-identical** —
not merely equivalent up to renumbering.  The union/atomic operation counts
charged to the cost model are identical too, for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dbscan.formation import form_clusters

__all__ = ["MergeResult", "merge_tiles"]


@dataclass
class MergeResult:
    """Outcome of the boundary merge across all tiles."""

    #: canonical global labels (identical to an untiled run).
    labels: np.ndarray
    #: exact global core mask assembled from per-tile owned flags.
    core_mask: np.ndarray
    #: exact global ε-neighbour counts (self excluded).
    neighbor_counts: np.ndarray
    #: union (hook) operations performed — for the device cost model.
    num_unions: int
    #: atomic border attachments performed — for the device cost model.
    num_atomics: int
    #: confirmed pairs whose endpoints live in different tiles.
    num_boundary_pairs: int


def merge_tiles(num_points: int, tile_results) -> MergeResult:
    """Stitch per-tile shard results into the exact global labelling.

    Parameters
    ----------
    num_points:
        Total number of dataset points.
    tile_results:
        Iterables with the per-tile fields produced by the tile worker:
        ``owned`` (global indices), ``neighbor_counts`` / ``core_mask``
        (aligned with ``owned``), ``q`` / ``p`` (global pair endpoints) and
        ``num_boundary_pairs``.
    """
    core_mask = np.zeros(num_points, dtype=bool)
    neighbor_counts = np.zeros(num_points, dtype=np.int64)
    qs: list[np.ndarray] = []
    ps: list[np.ndarray] = []
    boundary = 0
    for res in tile_results:
        core_mask[res.owned] = res.core_mask
        neighbor_counts[res.owned] = res.neighbor_counts
        qs.append(res.q)
        ps.append(res.p)
        boundary += int(res.num_boundary_pairs)
    q = np.concatenate(qs) if qs else np.empty(0, dtype=np.intp)
    p = np.concatenate(ps) if ps else np.empty(0, dtype=np.intp)

    formation = form_clusters(q, p, core_mask)
    return MergeResult(
        labels=formation.labels,
        core_mask=core_mask,
        neighbor_counts=neighbor_counts,
        num_unions=formation.num_unions,
        num_atomics=formation.num_atomics,
        num_boundary_pairs=boundary,
    )
