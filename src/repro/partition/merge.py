"""Halo-based boundary merge for tiled clustering.

Each tile of a :class:`~repro.partition.tiled.TiledRTDBSCAN` run produces

* exact ε-neighbour counts (and hence exact core flags) for its *owned*
  points — exact because the tile's halo contains every point within ε of an
  owned point, and
* the complete confirmed ε-adjacency of its owned points as a **shard CSR**
  (``indptr``/``indices``): row ``i`` holds the neighbours of ``owned[i]``,
  mapped back to global indices.

Because ownership is a partition, the shard CSRs concatenate into a
*segmented* CSR over the whole dataset that reconstructs **exactly** the
global adjacency an untiled run discovers: a global pair ``(q, p)`` appears
once, in the row contributed by the unique tile that owns ``q`` (its partner
``p`` is locally visible there, owned or halo).  Likewise the per-tile core
flags assemble the exact global core mask.  The merge hands the segmented
CSR — rows annotated with their global ids, no per-pair expansion, no
reshuffling — straight to the same
:func:`repro.dbscan.formation.form_clusters_csr` stage-2 pass every backend
uses: core–core edges — including the cross-halo boundary edges — are
unioned in one batched :class:`~repro.dbscan.disjoint_set.ParallelDisjointSet`
pass, border points attach to their lowest-indexed core neighbour, and
labels are canonicalised to the smallest-member numbering.

**Equivalence argument.**  ``form_clusters_csr`` is a deterministic function
of the pair *multiset* and the core mask: the batched min-hooking union is
order-independent (each iteration hooks every still-spanning edge's larger
root onto the smaller simultaneously), border attachment sorts candidates
before deduplicating, and the final numbering depends only on cluster
membership.  Since the tiled run hands it the identical pair multiset and the
identical core mask as an untiled run, the labels are **bit-identical** —
not merely equivalent up to renumbering.  The union/atomic operation counts
charged to the cost model are identical too, for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adjacency import concat_csr
from ..dbscan.formation import form_clusters_csr

__all__ = ["MergeResult", "merge_tiles"]


@dataclass
class MergeResult:
    """Outcome of the boundary merge across all tiles."""

    #: canonical global labels (identical to an untiled run).
    labels: np.ndarray
    #: exact global core mask assembled from per-tile owned flags.
    core_mask: np.ndarray
    #: exact global ε-neighbour counts (self excluded).
    neighbor_counts: np.ndarray
    #: union (hook) operations performed — for the device cost model.
    num_unions: int
    #: atomic border attachments performed — for the device cost model.
    num_atomics: int
    #: confirmed pairs whose endpoints live in different tiles.
    num_boundary_pairs: int


def merge_tiles(num_points: int, tile_results) -> MergeResult:
    """Stitch per-tile shard CSRs into the exact global labelling.

    Parameters
    ----------
    num_points:
        Total number of dataset points.
    tile_results:
        Iterables with the per-tile fields produced by the tile worker:
        ``owned`` (global indices), ``neighbor_counts`` / ``core_mask``
        (aligned with ``owned``), ``indptr`` / ``indices`` (the shard CSR
        with global neighbour ids) and ``num_boundary_pairs``.
    """
    core_mask = np.zeros(num_points, dtype=bool)
    neighbor_counts = np.zeros(num_points, dtype=np.int64)
    rows_parts: list[np.ndarray] = []
    csr_parts: list[tuple[np.ndarray, np.ndarray]] = []
    boundary = 0
    for res in tile_results:
        core_mask[res.owned] = res.core_mask
        neighbor_counts[res.owned] = res.neighbor_counts
        rows_parts.append(np.asarray(res.owned, dtype=np.intp))
        csr_parts.append((res.indptr, res.indices))
        boundary += int(res.num_boundary_pairs)

    indptr, indices = concat_csr(csr_parts)
    rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=np.intp)

    formation = form_clusters_csr(indptr, indices, core_mask, rows=rows)
    return MergeResult(
        labels=formation.labels,
        core_mask=core_mask,
        neighbor_counts=neighbor_counts,
        num_unions=formation.num_unions,
        num_atomics=formation.num_atomics,
        num_boundary_pairs=boundary,
    )
