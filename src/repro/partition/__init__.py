"""Tiled partition layer: spatial shards, halo merge, parallel executor.

The scale-out decomposition for the RT-DBSCAN pipeline:

* :mod:`repro.partition.executor` — :class:`ParallelMap`, the shared
  serial/thread/process ordered-map executor used by tile fits and by the
  benchmark sweep runner;
* :mod:`repro.partition.tiler` — :class:`Tiler` splits a dataset into
  spatial tiles with ε-halo ghost regions (plus the streaming slot-capacity
  planner built on its occupancy bound);
* :mod:`repro.partition.tiled` — :class:`TiledRTDBSCAN` runs Algorithm 3
  independently per tile on any registered neighbour backend;
* :mod:`repro.partition.merge` — the halo boundary merge that stitches the
  shard results into labels bit-identical to an untiled run.
"""

from .executor import ParallelMap, as_parallel_map
from .merge import MergeResult, merge_tiles
from .tiled import TiledRTDBSCAN, TileJob, TileRunResult, run_tile, tiled_rt_dbscan
from .tiler import Tile, Tiler, plan_stream_capacity

__all__ = [
    "ParallelMap",
    "as_parallel_map",
    "MergeResult",
    "merge_tiles",
    "TiledRTDBSCAN",
    "TileJob",
    "TileRunResult",
    "run_tile",
    "tiled_rt_dbscan",
    "Tile",
    "Tiler",
    "plan_stream_capacity",
]
