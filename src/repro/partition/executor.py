"""Shared parallel-map executor.

Every scale-out seam in this package — tile fits in
:class:`~repro.partition.tiled.TiledRTDBSCAN`, benchmark configurations in
:func:`repro.bench.runner.run_sweep` — reduces to "map a pure function over
independent items and keep the results in input order".  :class:`ParallelMap`
is that one abstraction with three interchangeable strategies:

* ``"serial"``  — a plain loop in the calling thread.  The default
  everywhere, because it keeps wall-clock timings deterministic and adds
  zero overhead for the common single-worker case.
* ``"thread"``  — a ``ThreadPoolExecutor``.  The right choice for the
  NumPy-heavy workloads here (the big array kernels release the GIL) and the
  only concurrent mode that works with closures.
* ``"process"`` — a ``ProcessPoolExecutor`` for truly CPU-bound Python.
  The mapped function and its items must be picklable (module-level
  functions over plain data), which the tile worker in
  :mod:`repro.partition.tiled` is designed to satisfy.

Results are always returned as a list in the order of the input items,
regardless of completion order, so callers' outputs are independent of the
execution strategy.  Exceptions raised by the mapped function propagate to
the caller in all modes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

import numpy as np

__all__ = ["ParallelMap", "as_parallel_map", "SharedNDArray", "SharedArrayPool", "as_ndarray"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_MODES = ("serial", "thread", "process")


class _StarCall:
    """Picklable argument-unpacking wrapper (a lambda would break processes)."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)


class ParallelMap:
    """Ordered map over independent items: serial, thread or process backed.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``None``, ``0`` and ``1`` all mean "no
        concurrency" and force serial execution regardless of ``mode``.
    mode:
        ``"serial"``, ``"thread"`` or ``"process"``.  With ``workers > 1``
        and the default ``mode=None`` the thread strategy is used.

    Examples
    --------
    >>> ParallelMap(workers=4).map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    >>> ParallelMap().map(str, range(3))   # serial by default
    ['0', '1', '2']
    """

    def __init__(self, workers: int | None = None, mode: str | None = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if mode is not None and mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.workers = int(workers) if workers else 1
        if self.workers <= 1:
            self.mode = "serial"
        else:
            self.mode = mode or "thread"
        if self.mode == "serial":
            self.workers = 1

    # ------------------------------------------------------------------ #
    @property
    def is_serial(self) -> bool:
        return self.mode == "serial"

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        if self.is_serial or len(items) <= 1:
            return [fn(item) for item in items]
        if self.mode == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(fn, items))
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., _R], items: Iterable[Sequence[Any]]) -> list[_R]:
        """Like :meth:`map` but unpacks each item as positional arguments.

        Works in every mode: the unpacking wrapper is a picklable object,
        so process pools accept it whenever ``fn`` itself is picklable.
        """
        return self.map(_StarCall(fn), items)

    def __repr__(self) -> str:
        return f"ParallelMap(workers={self.workers}, mode={self.mode!r})"


class SharedNDArray:
    """A picklable handle to an ndarray stored in POSIX shared memory.

    Pickling a :class:`SharedNDArray` serialises only the segment name,
    dtype, shape and byte offset — a few dozen bytes — instead of the array
    payload, so process pools receive big inputs (tile point sets) without
    copying them through the pickle pipe.  Workers attach lazily on first
    :meth:`asarray` call; the returned view is marked read-only because the
    memory is shared between processes.

    Instances are created by :class:`SharedArrayPool`, which owns the backing
    segment and unlinks it when the fan-out completes.
    """

    def __init__(self, shm_name: str, dtype: str, shape: tuple, offset: int) -> None:
        self.shm_name = shm_name
        self.dtype = dtype
        self.shape = tuple(shape)
        self.offset = int(offset)
        self._shm = None
        self._view: np.ndarray | None = None

    def __getstate__(self) -> dict:
        return {
            "shm_name": self.shm_name, "dtype": self.dtype,
            "shape": self.shape, "offset": self.offset,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._shm = None
        self._view = None

    def asarray(self) -> np.ndarray:
        """Attach (once) and return the read-only ndarray view."""
        if self._view is None:
            import multiprocessing as mp
            from multiprocessing import shared_memory

            # The creator owns the segment's lifetime, so this attach must
            # not enrol it with a resource tracker that would try to clean
            # it up.  Python 3.13+ supports that directly; older versions
            # need care per start method: under *fork* the worker shares the
            # creator's tracker (whose registry is a set, so the attach is
            # deduplicated and nothing must be unregistered — doing so would
            # strip the creator's own entry); under *spawn* the worker has
            # its own tracker and the attach must be unregistered there.
            try:
                self._shm = shared_memory.SharedMemory(
                    name=self.shm_name, create=False, track=False
                )
            except TypeError:  # pragma: no cover - Python < 3.13
                self._shm = shared_memory.SharedMemory(name=self.shm_name, create=False)
                if (
                    mp.parent_process() is not None
                    and mp.get_start_method(allow_none=True) != "fork"
                ):
                    try:
                        from multiprocessing import resource_tracker

                        resource_tracker.unregister(self._shm._name, "shared_memory")
                    except Exception:
                        pass
            view = np.ndarray(
                self.shape, dtype=np.dtype(self.dtype),
                buffer=self._shm.buf, offset=self.offset,
            )
            view.flags.writeable = False
            self._view = view
        return self._view


class SharedArrayPool:
    """One shared-memory segment holding many arrays, for process fan-outs.

    ``share()`` copies an array into the segment once and returns the
    zero-pickle-cost :class:`SharedNDArray` handle; ``close()`` unlinks the
    segment after the parallel map has consumed the results.  Use as a
    context manager around the fan-out.
    """

    def __init__(self, total_bytes: int) -> None:
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(create=True, size=max(1, int(total_bytes)))
        self._cursor = 0

    @classmethod
    def for_arrays(cls, arrays: Iterable[np.ndarray]) -> "SharedArrayPool":
        """A pool sized (with alignment slack) for the given arrays."""
        total = sum(int(a.nbytes) + 64 for a in arrays)
        return cls(total)

    def share(self, array: np.ndarray) -> SharedNDArray:
        """Copy ``array`` into the segment; returns the picklable handle."""
        array = np.ascontiguousarray(array)
        offset = (self._cursor + 63) & ~63  # 64-byte alignment
        end = offset + array.nbytes
        if end > self._shm.size:
            raise ValueError("SharedArrayPool capacity exceeded")
        dest = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf, offset=offset)
        dest[...] = array
        self._cursor = end
        return SharedNDArray(self._shm.name, array.dtype.str, array.shape, offset)

    def close(self) -> None:
        """Release and unlink the backing segment."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def as_ndarray(value: np.ndarray | SharedNDArray) -> np.ndarray:
    """Unwrap a :class:`SharedNDArray` handle; plain arrays pass through."""
    if isinstance(value, SharedNDArray):
        return value.asarray()
    return value


def as_parallel_map(value: ParallelMap | int | None, *, mode: str | None = None) -> ParallelMap:
    """Coerce a ``workers`` count or an existing executor into a ParallelMap.

    Accepts ``None`` (serial), an integer worker count, or a ready-made
    :class:`ParallelMap` (returned unchanged — ``mode`` is ignored then).
    This is the argument convention used by every API that takes a
    ``workers=`` parameter.
    """
    if isinstance(value, ParallelMap):
        return value
    if value is None or isinstance(value, int):
        return ParallelMap(workers=value, mode=mode)
    raise TypeError(
        f"expected a ParallelMap, an int worker count or None, got {type(value).__name__}"
    )
