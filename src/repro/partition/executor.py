"""Shared parallel-map executor.

Every scale-out seam in this package — tile fits in
:class:`~repro.partition.tiled.TiledRTDBSCAN`, benchmark configurations in
:func:`repro.bench.runner.run_sweep` — reduces to "map a pure function over
independent items and keep the results in input order".  :class:`ParallelMap`
is that one abstraction with three interchangeable strategies:

* ``"serial"``  — a plain loop in the calling thread.  The default
  everywhere, because it keeps wall-clock timings deterministic and adds
  zero overhead for the common single-worker case.
* ``"thread"``  — a ``ThreadPoolExecutor``.  The right choice for the
  NumPy-heavy workloads here (the big array kernels release the GIL) and the
  only concurrent mode that works with closures.
* ``"process"`` — a ``ProcessPoolExecutor`` for truly CPU-bound Python.
  The mapped function and its items must be picklable (module-level
  functions over plain data), which the tile worker in
  :mod:`repro.partition.tiled` is designed to satisfy.

Results are always returned as a list in the order of the input items,
regardless of completion order, so callers' outputs are independent of the
execution strategy.  Exceptions raised by the mapped function propagate to
the caller in all modes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

__all__ = ["ParallelMap", "as_parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_MODES = ("serial", "thread", "process")


class _StarCall:
    """Picklable argument-unpacking wrapper (a lambda would break processes)."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)


class ParallelMap:
    """Ordered map over independent items: serial, thread or process backed.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``None``, ``0`` and ``1`` all mean "no
        concurrency" and force serial execution regardless of ``mode``.
    mode:
        ``"serial"``, ``"thread"`` or ``"process"``.  With ``workers > 1``
        and the default ``mode=None`` the thread strategy is used.

    Examples
    --------
    >>> ParallelMap(workers=4).map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    >>> ParallelMap().map(str, range(3))   # serial by default
    ['0', '1', '2']
    """

    def __init__(self, workers: int | None = None, mode: str | None = None) -> None:
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be non-negative, got {workers}")
        if mode is not None and mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.workers = int(workers) if workers else 1
        if self.workers <= 1:
            self.mode = "serial"
        else:
            self.mode = mode or "thread"
        if self.mode == "serial":
            self.workers = 1

    # ------------------------------------------------------------------ #
    @property
    def is_serial(self) -> bool:
        return self.mode == "serial"

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        if self.is_serial or len(items) <= 1:
            return [fn(item) for item in items]
        if self.mode == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(fn, items))
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., _R], items: Iterable[Sequence[Any]]) -> list[_R]:
        """Like :meth:`map` but unpacks each item as positional arguments.

        Works in every mode: the unpacking wrapper is a picklable object,
        so process pools accept it whenever ``fn`` itself is picklable.
        """
        return self.map(_StarCall(fn), items)

    def __repr__(self) -> str:
        return f"ParallelMap(workers={self.workers}, mode={self.mode!r})"


def as_parallel_map(value: ParallelMap | int | None, *, mode: str | None = None) -> ParallelMap:
    """Coerce a ``workers`` count or an existing executor into a ParallelMap.

    Accepts ``None`` (serial), an integer worker count, or a ready-made
    :class:`ParallelMap` (returned unchanged — ``mode`` is ignored then).
    This is the argument convention used by every API that takes a
    ``workers=`` parameter.
    """
    if isinstance(value, ParallelMap):
        return value
    if value is None or isinstance(value, int):
        return ParallelMap(workers=value, mode=mode)
    raise TypeError(
        f"expected a ParallelMap, an int worker count or None, got {type(value).__name__}"
    )
