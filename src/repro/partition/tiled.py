"""Tiled RT-DBSCAN: shard-local Algorithm 3 plus halo boundary merge.

:class:`TiledRTDBSCAN` is the scale-out variant of
:class:`~repro.dbscan.rt_dbscan.RTDBSCAN`: the dataset is split by a
:class:`~repro.partition.tiler.Tiler` into spatial tiles with ε-halo ghost
regions, each tile runs the paper's two query stages independently — on its
own simulated device shard, through **any** registered neighbour backend
(``rt`` / ``grid`` / ``kdtree`` / ``brute``) — and the per-tile results are
stitched by :func:`~repro.partition.merge.merge_tiles` into labels that are
bit-identical to an untiled run (see the equivalence argument in
:mod:`repro.partition.merge`).

Per tile, ε-queries are launched **only from owned points**, so the stage-1
and stage-2 ray totals across tiles equal the untiled run's exactly (one ray
per dataset point per stage); the candidate work (distance computations,
node visits) *shrinks*, because each shard's index covers only its local
working set — that reduction is the tiling speedup.  What tiling adds is a
fixed per-tile cost (pipeline setup + kernel launches) and the redundant
indexing of halo points, both visible in the aggregated report.

Tile fits run through the shared :class:`~repro.partition.executor.ParallelMap`
executor — serial by default (deterministic wall-clock), threads or
processes on request.  The tile worker is a module-level function over plain
arrays, so process-based execution works out of the box.  Simulated-time
aggregation is strategy-independent: per-phase simulated seconds are the
*sum* of the per-tile device times (total device work), while the report
metadata records the critical path (the slowest tile chain) — the wall-clock
bound an actual multi-GPU deployment would see.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..adjacency import csr_row_ids
from ..api.protocol import ClustererMixin
from ..api.registry import make_backend, register_algorithm
from ..native import dispatch as native_dispatch
from ..dbscan.params import DBSCANParams, DBSCANResult
from ..geometry.transforms import ensure_points3d
from ..perf.cost_model import DeviceCostModel, OpCounts
from ..perf.timing import PhaseTimer
from ..rtcore.device import RTDevice
from .executor import ParallelMap, SharedArrayPool, as_ndarray, as_parallel_map
from .merge import merge_tiles
from .tiler import Tiler

__all__ = ["TiledRTDBSCAN", "TileJob", "TileRunResult", "run_tile", "tiled_rt_dbscan"]


@dataclass
class TileJob:
    """Everything one tile fit needs — plain data, picklable for processes.

    For process executors the two array payloads are shipped as
    :class:`~repro.partition.executor.SharedNDArray` handles backed by one
    shared-memory segment, so pickling a job serialises only segment
    metadata — no point bytes ever cross the pickle pipe.
    """

    tile_id: int
    #: local working set, owned points first (``(m, 3)`` lifted coordinates);
    #: an ndarray, or a SharedNDArray handle under a process executor.
    points: np.ndarray
    #: number of leading rows of ``points`` that are owned.
    num_owned: int
    #: global index of every local point (owned first, then halo).
    local_to_global: np.ndarray
    eps: float
    min_pts: int
    backend: str
    backend_kwargs: dict
    cost_model: DeviceCostModel
    has_rt_cores: bool = True
    #: kernel-tier override for the tile fit.  Carried in the job (not read
    #: from the parent's dispatcher) so process-pool workers — fresh
    #: interpreters with their own dispatch state — honour it too.
    native: bool | None = None
    #: OpenMP worker-count override, carried for the same reason.
    native_threads: int | None = None


@dataclass
class TileRunResult:
    """Shard-local outcome of one tile fit, mapped to global indices."""

    tile_id: int
    num_owned: int
    num_halo: int
    #: global indices of the owned points.
    owned: np.ndarray
    #: exact ε-neighbour counts of the owned points (self excluded).
    neighbor_counts: np.ndarray
    #: exact core flags of the owned points.
    core_mask: np.ndarray
    #: confirmed ε-adjacency of the owned points as a shard CSR: row ``i``
    #: holds the neighbours of ``owned[i]`` in *global* indices.
    indptr: np.ndarray
    indices: np.ndarray
    #: pairs whose neighbour lives in the halo (owned by another tile).
    num_boundary_pairs: int
    build_seconds: float
    build_prims: int
    stage1_seconds: float
    stage2_seconds: float
    stage1_counts: OpCounts = field(default_factory=OpCounts)
    stage2_counts: OpCounts = field(default_factory=OpCounts)

    @property
    def total_seconds(self) -> float:
        """Simulated critical-path time of this tile's chain."""
        return self.build_seconds + self.stage1_seconds + self.stage2_seconds

    def summary(self) -> dict:
        counts = OpCounts.sum((self.stage1_counts, self.stage2_counts))
        return {
            "tile_id": self.tile_id,
            "num_owned": self.num_owned,
            "num_halo": self.num_halo,
            "num_pairs": int(self.indices.size),
            "num_boundary_pairs": self.num_boundary_pairs,
            "build_seconds": self.build_seconds,
            "build_prims": self.build_prims,
            "stage1_seconds": self.stage1_seconds,
            "stage2_seconds": self.stage2_seconds,
            "total_seconds": self.total_seconds,
            "counts": counts.as_dict(),
        }


def run_tile(job: TileJob) -> TileRunResult:
    """Run both Algorithm 3 query stages for one tile on its own device shard.

    Queries are the tile's owned points, launched as *external* queries
    against the local (owned + halo) index so that no halo point ever spends
    a ray.  External queries carry no self filter, so the self hit (distance
    zero) is removed here: one count per query, and the self row entries of
    the shard CSR — exactly the paper's ``q != s`` index comparison.

    Module-level on purpose: :class:`~repro.partition.executor.ParallelMap`
    in process mode needs a picklable callable over plain data.
    """
    points = as_ndarray(job.points)
    local_to_global = as_ndarray(job.local_to_global)
    device = RTDevice(
        cost_model=job.cost_model,
        has_rt_cores=job.has_rt_cores,
        name=f"sim-shard-{job.tile_id}",
    )
    ctx = (
        native_dispatch.override(job.native)
        if job.native is not None
        else contextlib.nullcontext()
    )
    tctx = (
        native_dispatch.thread_override(job.native_threads)
        if job.native_threads is not None
        else contextlib.nullcontext()
    )
    with ctx, tctx:
        finder = make_backend(
            job.backend, points, job.eps, device=device, **job.backend_kwargs
        )
        try:
            owned_pts = points[: job.num_owned]

            counts_with_self, stats1 = finder.neighbor_counts(owned_pts)
            neighbor_counts = counts_with_self.astype(np.int64) - 1
            core_mask = neighbor_counts >= job.min_pts

            indptr, ind_loc, stats2 = finder.neighbor_csr(owned_pts)
            build_seconds = finder.build_seconds
            build_prims = finder.num_prims
        finally:
            finder.release()

    # Strip the self hit: row i of the shard CSR belongs to local point i
    # (owned points lead the local ordering), so the self entry is the one
    # whose index equals its own row id.
    rows_loc = csr_row_ids(indptr)
    keep = ind_loc != rows_loc
    dropped = np.bincount(rows_loc[~keep], minlength=job.num_owned)
    row_counts = np.diff(indptr) - dropped
    indptr = np.zeros(job.num_owned + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    ind_loc = ind_loc[keep]
    num_boundary = int((ind_loc >= job.num_owned).sum())

    return TileRunResult(
        tile_id=job.tile_id,
        num_owned=job.num_owned,
        num_halo=int(points.shape[0] - job.num_owned),
        owned=local_to_global[: job.num_owned],
        neighbor_counts=neighbor_counts,
        core_mask=core_mask,
        indptr=indptr,
        indices=local_to_global[ind_loc],
        num_boundary_pairs=num_boundary,
        build_seconds=build_seconds,
        build_prims=build_prims,
        stage1_seconds=stats1.simulated_seconds,
        stage2_seconds=stats2.simulated_seconds,
        stage1_counts=stats1.counts,
        stage2_counts=stats2.counts,
    )


@register_algorithm(
    "rt-dbscan-tiled",
    description="Algorithm 3 sharded over spatial tiles with eps-halo boundary merge.",
    supports_backend=True,
    supports_tiles=True,
    supports_native=True,
)
@dataclass
class TiledRTDBSCAN(ClustererMixin):
    """Tiled RT-DBSCAN clusterer.

    Parameters
    ----------
    eps, min_pts:
        The DBSCAN parameters.
    device:
        Simulated device the *aggregated* operation counts are charged to;
        each tile additionally runs on a private device shard with the same
        cost model (one simulated GPU per shard).
    backend:
        Neighbour-search substrate per tile: ``"rt"`` (default), ``"grid"``,
        ``"kdtree"`` or ``"brute"``.  Labels are identical across backends
        and identical to the untiled :class:`~repro.dbscan.rt_dbscan.RTDBSCAN`.
    tiles:
        Target tile count (see :class:`~repro.partition.tiler.Tiler`), or
        ``"auto"`` to scale with the dataset (~one tile per 4096 points,
        capped at 16).
    grid:
        Explicit ``(nx, ny, nz)`` tile grid; overrides ``tiles``.
    workers:
        Tile-fit parallelism for the :class:`ParallelMap` executor
        (default serial).  An existing executor can be passed instead.
    executor_mode:
        ``"thread"`` (default for ``workers > 1``) or ``"process"``.
    builder, leaf_size, chunk_size:
        Acceleration-structure parameters forwarded to the ``rt`` backend
        (ignored by the host backends).
    backend_kwargs:
        Extra keyword arguments forwarded verbatim to the backend factory.
        Only **exact** backends are accepted here: the tile worker launches
        owned points as external queries and subtracts the guaranteed self
        hit, a convention the approximate tier (``lsh`` / ``sampled``) does
        not honour — run those through the monolithic pipeline.
    keep_neighbor_counts:
        Store per-point neighbour counts and points in the result so
        :meth:`DBSCANResult.refit` works, as in the untiled pipeline.
    native:
        Kernel-tier override, carried into every tile job (so process-pool
        workers honour it too): ``True`` forces the compiled C kernels,
        ``False`` forces pure numpy, ``None`` defers to ``REPRO_NATIVE``.
        Labels and charged operation counts are identical either way.
    native_threads:
        OpenMP worker-count override for the native kernels, carried into
        every tile job like ``native``; ``None`` defers to
        ``REPRO_NATIVE_THREADS``.  Byte-identical results at any count.
    """

    eps: float
    min_pts: int
    device: RTDevice | None = None
    backend: str = "rt"
    tiles: int | str = 4
    grid: tuple[int, int, int] | None = None
    workers: int | ParallelMap | None = None
    executor_mode: str | None = None
    builder: str = "lbvh"
    leaf_size: int = 4
    chunk_size: int = 16384
    keep_neighbor_counts: bool = True
    backend_kwargs: dict | None = None
    native: bool | None = None
    native_threads: int | None = None

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)
        self.device = self.device or RTDevice()
        self.backend = str(self.backend).lower()
        from ..api.registry import get_backend

        if not get_backend(self.backend).exact:
            raise ValueError(
                f"the tiled pipeline requires an exact neighbour backend, got "
                f"{self.backend!r}; run approximate backends through 'rt-dbscan'"
            )
        if isinstance(self.tiles, str):
            if self.tiles != "auto":
                raise ValueError(f"tiles must be a positive integer or 'auto', got {self.tiles!r}")
        elif int(self.tiles) < 1:
            raise ValueError(f"tiles must be a positive integer or 'auto', got {self.tiles}")

    # ------------------------------------------------------------------ #
    def _num_tiles(self, n: int) -> int:
        if self.tiles == "auto":
            return max(1, min(16, n // 4096))
        return int(self.tiles)

    def _backend_kwargs(self) -> dict:
        if self.backend == "rt":
            kwargs = {
                "builder": self.builder,
                "leaf_size": self.leaf_size,
                "chunk_size": self.chunk_size,
            }
        else:
            kwargs = {}
        if self.backend_kwargs:
            kwargs.update(self.backend_kwargs)
        return kwargs

    def _make_jobs(
        self, pts3: np.ndarray, tiles, executor: ParallelMap
    ) -> tuple[list[TileJob], SharedArrayPool | None]:
        """Materialise per-tile jobs; under a process executor the array
        payloads go into one shared-memory segment so that pickling a job
        ships only segment metadata (no point bytes cross the pickle pipe).
        The returned pool (if any) must be closed after the fan-out.
        """
        payloads = [
            (pts3[t.indices], np.asarray(t.indices, dtype=np.intp)) for t in tiles
        ]
        pool: SharedArrayPool | None = None
        if executor.mode == "process":
            pool = SharedArrayPool.for_arrays([a for pair in payloads for a in pair])
            payloads = [(pool.share(p), pool.share(i)) for p, i in payloads]
        jobs = [
            TileJob(
                tile_id=t.tile_id,
                points=p_arr,
                num_owned=t.num_owned,
                local_to_global=i_arr,
                eps=self.params.eps,
                min_pts=self.params.min_pts,
                backend=self.backend,
                backend_kwargs=self._backend_kwargs(),
                cost_model=self.device.cost_model,
                has_rt_cores=self.device.has_rt_cores,
                native=self.native,
                native_threads=self.native_threads,
            )
            for t, (p_arr, i_arr) in zip(tiles, payloads)
        ]
        return jobs, pool

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points``; labels are bit-identical to an untiled run."""
        # The override also covers the parent-side merge (its union-find
        # consults the dispatcher); tile workers get it via TileJob.native.
        ctx = (
            native_dispatch.override(self.native)
            if self.native is not None
            else contextlib.nullcontext()
        )
        tctx = (
            native_dispatch.thread_override(self.native_threads)
            if self.native_threads is not None
            else contextlib.nullcontext()
        )
        with ctx, tctx:
            return self._fit(points)

    def _fit(self, points: np.ndarray) -> DBSCANResult:
        pts3 = ensure_points3d(points)
        n = pts3.shape[0]
        executor = as_parallel_map(self.workers, mode=self.executor_mode)
        timer = PhaseTimer("rt-dbscan-tiled", self.device.cost_model)

        # -------------------------------------------------------------- #
        # Tile split: host-side planning, charged no device time.
        # -------------------------------------------------------------- #
        with timer.phase("tile_split", simulated_seconds=0.0):
            tiler = Tiler(self.params.eps, tiles=self._num_tiles(n), grid=self.grid)
            tiles = tiler.split(pts3)
            jobs, pool = self._make_jobs(pts3, tiles, executor)

        timer.metadata.update(
            {
                "eps": self.params.eps,
                "min_pts": self.params.min_pts,
                "num_points": n,
                "device": self.device.name,
                "backend": self.backend,
                "num_tiles": len(tiles),
                "grid": tuple(int(g) for g in tiler.grid_shape(pts3)),
                "workers": executor.workers,
                "executor_mode": executor.mode,
            }
        )

        # -------------------------------------------------------------- #
        # Shard-local clustering: both query stages, per tile, in parallel.
        # -------------------------------------------------------------- #
        try:
            results = executor.map(run_tile, jobs)
        finally:
            if pool is not None:
                pool.close()

        build_counts = OpCounts(
            bvh_build_prims=sum(r.build_prims for r in results),
            kernel_launches=len(results),
        )
        stage1_counts = OpCounts.sum(r.stage1_counts for r in results)
        stage2_counts = OpCounts.sum(r.stage2_counts for r in results)
        timer.add_phase(
            "bvh_build",
            counts=build_counts,
            simulated_seconds=sum(r.build_seconds for r in results),
        )
        timer.add_phase(
            "core_identification",
            counts=stage1_counts,
            simulated_seconds=sum(r.stage1_seconds for r in results),
        )
        self.device.charge(build_counts)
        self.device.charge(stage1_counts)

        # -------------------------------------------------------------- #
        # Boundary merge: exact global stage 2 over the stitched pair set.
        # -------------------------------------------------------------- #
        with timer.phase("cluster_formation") as counts:
            merged = merge_tiles(n, results)
            counts.merge(stage2_counts)
            counts.union_ops += merged.num_unions
            counts.atomic_ops += merged.num_atomics
            self.device.charge(
                OpCounts(union_ops=merged.num_unions, atomic_ops=merged.num_atomics)
            )
            self.device.charge(stage2_counts)
        # Stage-2 query time was simulated on the tile shards; the merge's
        # union/atomic work is priced by the parent cost model on top.
        timer.set_last_phase_seconds(
            sum(r.stage2_seconds for r in results)
            + self.device.cost_model.time_s(
                OpCounts(union_ops=merged.num_unions, atomic_ops=merged.num_atomics)
            )
        )

        critical = max((r.total_seconds for r in results), default=0.0)
        report = timer.report()
        report.metadata["critical_path_seconds"] = critical
        total_tile_seconds = sum(r.total_seconds for r in results)
        report.metadata["parallel_speedup_bound"] = (
            total_tile_seconds / critical if critical > 0 else 1.0
        )

        return DBSCANResult(
            labels=merged.labels,
            core_mask=merged.core_mask,
            params=self.params,
            algorithm="rt-dbscan-tiled",
            report=report,
            neighbor_counts=merged.neighbor_counts if self.keep_neighbor_counts else None,
            points=pts3 if self.keep_neighbor_counts else None,
            extra={
                "backend": self.backend,
                "kernel_tier": native_dispatch.active_tier(),
                "build_seconds": sum(r.build_seconds for r in results),
                "num_tiles": len(tiles),
                "num_boundary_pairs": merged.num_boundary_pairs,
                "critical_path_seconds": critical,
                "tiles": [r.summary() for r in results],
            },
        )


def tiled_rt_dbscan(points: np.ndarray, eps: float, min_pts: int, **kwargs) -> DBSCANResult:
    """Functional convenience wrapper around :class:`TiledRTDBSCAN`."""
    return TiledRTDBSCAN(eps=eps, min_pts=min_pts, **kwargs).fit(points)
