"""Report formatting.

Turns lists of :class:`~repro.bench.runner.RunRecord` into the rows the paper
prints: raw execution-time tables (Tables I–III), speedup series (Figs. 4–8)
and phase breakdowns (Section V-D).  Output is plain text so the benchmark
harness can simply ``print`` it and EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

from .runner import RunRecord, speedup_series

__all__ = [
    "format_time_table",
    "format_speedup_table",
    "format_breakdown",
    "format_records",
    "format_agreement_table",
]


def _fmt_seconds(value: float) -> str:
    if value != value:  # NaN
        return "n/a"
    if value == float("inf"):
        return "inf"
    if value >= 1.0:
        return f"{value:.2f}"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def format_records(records: list[RunRecord]) -> str:
    """Flat listing of all runs (one line each)."""
    lines = [
        f"{'dataset':<12} {'algorithm':<20} {'n':>9} {'eps':>10} {'minPts':>7} "
        f"{'status':>6} {'sim time':>10} {'clusters':>9} {'noise':>9}"
    ]
    for r in records:
        lines.append(
            f"{r.dataset:<12} {r.algorithm:<20} {r.num_points:>9} {r.eps:>10.5g} "
            f"{r.min_pts:>7} {r.status:>6} {_fmt_seconds(r.simulated_seconds):>10} "
            f"{r.num_clusters:>9} {r.num_noise:>9}"
        )
    return "\n".join(lines)


def format_time_table(
    records: list[RunRecord], *, algorithms: list[str], vary: str = "num_points",
    title: str = "",
) -> str:
    """Paper-style raw execution-time table (one row per configuration).

    ``vary`` selects the row key (``"num_points"`` for Tables I/III,
    ``"eps"`` for Table II); columns are the requested algorithms.
    """
    keys = sorted({getattr(r, vary) for r in records})
    header = f"{vary:>12} | " + " | ".join(f"{a:>18}" for a in algorithms)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for k in keys:
        row = [f"{k:>12.6g}" if isinstance(k, float) else f"{k:>12}"]
        for algo in algorithms:
            match = [r for r in records if getattr(r, vary) == k and r.algorithm == algo]
            if not match:
                row.append(f"{'--':>18}")
            elif match[0].status == "oom":
                row.append(f"{'OOM':>18}")
            else:
                row.append(f"{_fmt_seconds(match[0].simulated_seconds):>18}")
        lines.append(" | ".join(row))
    return "\n".join(lines)


def format_speedup_table(
    records: list[RunRecord], *, baseline: str, targets: list[str], vary: str = "eps",
    title: str = "",
) -> str:
    """Paper-style speedup table: speedup of each target over the baseline."""
    header = f"{vary:>12} | " + " | ".join(f"{t:>20}" for t in targets)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    series = {t: speedup_series(records, baseline=baseline, target=t, key=vary) for t in targets}
    keys = sorted({getattr(r, vary) for r in records if r.algorithm == baseline})
    for k in keys:
        row = [f"{k:>12.6g}" if isinstance(k, float) else f"{k:>12}"]
        for t in targets:
            match = [s for s in series[t] if s[vary] == k]
            if not match:
                row.append(f"{'--':>20}")
            else:
                sp = match[0]["speedup"]
                if sp != sp:
                    row.append(f"{'n/a':>20}")
                elif sp == float("inf"):
                    row.append(f"{'inf (baseline OOM)':>20}")
                elif sp == 0.0 and match[0]["target_status"] == "oom":
                    row.append(f"{'OOM':>20}")
                else:
                    row.append(f"{sp:>19.2f}x")
        lines.append(" | ".join(row))
    return "\n".join(lines)


def format_agreement_table(records: list[RunRecord], *, title: str = "") -> str:
    """Speedup-vs-agreement table of an approximate-tier sweep.

    One row per record carrying an ``extra["agreement"]`` quality block (the
    output of :func:`repro.bench.experiments.run_approx_experiment` or any
    :func:`~repro.bench.runner.run_single` call with ``reference=``): the
    knob setting, the simulated speedup over the reference, the ARI and the
    core/noise agreement rates — every approximate number next to its error
    bar.
    """
    header = (
        f"{'algorithm':<20} {'knobs':<24} {'speedup':>8} {'ARI':>7} "
        f"{'core agr':>9} {'noise agr':>10} {'equivalent':>11}"
    )
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for r in records:
        agreement = r.extra.get("agreement")
        if agreement is None:
            continue
        knobs = ", ".join(
            f"{k}={v:g}" if isinstance(v, (int, float)) else f"{k}={v}"
            for k, v in (r.extra.get("backend_kwargs") or {}).items()
        )
        speedup = agreement.get("simulated_speedup")
        lines.append(
            f"{r.algorithm:<20} {knobs or '--':<24} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '--'):>8} "
            f"{agreement['ari']:>7.4f} {agreement['core_agreement']:>9.4f} "
            f"{agreement['noise_agreement']:>10.4f} "
            f"{('yes' if agreement['equivalent'] else 'no'):>11}"
        )
    return "\n".join(lines)


def format_breakdown(record: RunRecord, *, title: str = "") -> str:
    """Section V-D style phase breakdown of one run."""
    total = record.simulated_seconds
    lines = [title] if title else []
    lines.append(f"{record.algorithm} on {record.dataset} (n={record.num_points}, "
                 f"eps={record.eps:g}, minPts={record.min_pts})")
    for name, seconds in record.breakdown.items():
        frac = seconds / total if total else 0.0
        lines.append(f"  {name:<22} {_fmt_seconds(seconds):>10}  ({frac * 100:5.1f}%)")
    lines.append(f"  {'total':<22} {_fmt_seconds(total):>10}")
    return "\n".join(lines)
