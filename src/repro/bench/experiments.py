"""Experiment registry — one entry per table/figure of the paper.

Every experiment the paper reports is described by an :class:`ExperimentSpec`
that records the paper's configuration (dataset, sizes, ε values, minPts,
algorithms compared) and the *scaled* configuration the reproduction actually
runs.  Scaling is necessary because the substrate here is an instrumented
Python simulator rather than an RTX 2060: dataset sizes are reduced by a
documented factor and ε values are re-derived from the synthetic datasets'
density (using the k-distance heuristic) so that the neighbourhood-size
regimes match the paper's.  EXPERIMENTS.md records the mapping and the
paper-vs-measured comparison for every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.registry import generate
from ..neighbors.knn import kth_neighbor_distances
from .runner import RunRecord, run_sweep

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "run_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one paper experiment and its scaled reproduction."""

    id: str
    paper_ref: str
    title: str
    dataset: str
    mode: str  # "eps_sweep" | "size_sweep" | "breakdown" | "triangle_mode"
    algorithms: tuple[str, ...]
    baseline: str
    min_pts: int
    #: sizes the paper ran (for documentation).
    paper_sizes: tuple[int, ...]
    #: sizes the scaled reproduction runs by default.
    sizes: tuple[int, ...]
    #: ε multipliers applied to the calibrated reference ε (eps sweeps), or a
    #: single-element tuple for fixed-ε experiments.
    eps_factors: tuple[float, ...] = (1.0,)
    #: quantile used by the k-distance ε calibration; lower values give a
    #: sparser clustering regime.
    eps_quantile: float = 0.30
    #: absolute ε override (used for the NGSIM zero-cluster regime).
    eps_absolute: tuple[float, ...] | None = None
    seed: int = 2023
    description: str = ""
    notes: str = ""
    extra: dict = field(default_factory=dict, hash=False, compare=False)

    # ------------------------------------------------------------------ #
    def reference_size(self) -> int:
        return max(self.sizes)

    def calibrate_eps(self, points: np.ndarray) -> float:
        """Reference ε from the k-distance heuristic on the given points."""
        k = min(self.min_pts, points.shape[0] - 1)
        dists = kth_neighbor_distances(points, k)
        return float(np.quantile(dists, self.eps_quantile))

    def eps_values(self, points: np.ndarray) -> list[float]:
        """Concrete ε values for this experiment on the given points."""
        if self.eps_absolute is not None:
            return [float(e) for e in self.eps_absolute]
        ref = self.calibrate_eps(points)
        return [ref * f for f in self.eps_factors]

    def build_configs(self, *, scale: float = 1.0) -> list[tuple[str, np.ndarray, float, int]]:
        """Materialise the (label, points, eps, min_pts) configurations."""
        sizes = [max(256, int(round(s * scale))) for s in self.sizes]
        largest = generate(self.dataset, max(sizes), seed=self.seed)
        configs: list[tuple[str, np.ndarray, float, int]] = []
        if self.mode == "eps_sweep":
            pts = largest
            for eps in self.eps_values(pts):
                configs.append((self.dataset, pts, eps, self.min_pts))
        elif self.mode in ("size_sweep", "breakdown", "triangle_mode"):
            eps_list = self.eps_values(largest)
            eps = eps_list[0]
            for n in sizes:
                configs.append((self.dataset, largest[:n], eps, self.min_pts))
        else:
            raise ValueError(f"unknown experiment mode {self.mode!r}")
        return configs


# -------------------------------------------------------------------------- #
# The registry: one entry per table / figure in the evaluation section.
# -------------------------------------------------------------------------- #
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> ExperimentSpec:
    EXPERIMENTS[spec.id] = spec
    return spec


_register(ExperimentSpec(
    id="fig4",
    paper_ref="Figure 4",
    title="Speedup over CUDA-DClust+ on varying eps (16K 3DRoad points)",
    dataset="3droad",
    mode="eps_sweep",
    algorithms=("cuda-dclust+", "g-dbscan", "fdbscan", "rt-dbscan"),
    baseline="cuda-dclust+",
    min_pts=100,
    paper_sizes=(16_000,),
    sizes=(16_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="All four GPU implementations on the small dataset where the "
                "memory-hungry baselines still fit on the device.",
))

_register(ExperimentSpec(
    id="fig5a",
    paper_ref="Figure 5a",
    title="Speedup over FDBSCAN on varying eps (3DRoad)",
    dataset="3droad",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(400_000,),
    sizes=(24_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="Paper observes up to 1.5x on 3DRoad (BVH build dominates the small dataset).",
))

_register(ExperimentSpec(
    id="fig5b",
    paper_ref="Figure 5b",
    title="Speedup over FDBSCAN on varying eps (Porto)",
    dataset="porto",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(32_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="Paper observes up to 2.3x, increasing with eps.",
))

_register(ExperimentSpec(
    id="fig5c",
    paper_ref="Figure 5c",
    title="Speedup over FDBSCAN on varying eps (3DIono)",
    dataset="3diono",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(32_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="Paper observes up to 3.6x, increasing with eps.",
))

_register(ExperimentSpec(
    id="fig6a",
    paper_ref="Figure 6a",
    title="Speedup over FDBSCAN on varying dataset size (3DRoad)",
    dataset="3droad",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(50_000, 100_000, 200_000, 400_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    eps_quantile=0.30,
    description="Paper observes a maximum of 1.37x on this relatively small dataset.",
))

_register(ExperimentSpec(
    id="fig6b",
    paper_ref="Figure 6b",
    title="Speedup over FDBSCAN on varying dataset size (Porto)",
    dataset="porto",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper observes up to 2.9x at the largest sizes (paper minPts=1000 at 1M+ points).",
))

_register(ExperimentSpec(
    id="fig6c",
    paper_ref="Figure 6c",
    title="Speedup over FDBSCAN on varying dataset size (3DIono)",
    dataset="3diono",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=10,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper observes up to 4.1x at the largest sizes.",
))

_register(ExperimentSpec(
    id="fig7",
    paper_ref="Figure 7",
    title="Execution-time growth with dataset size (3DIono)",
    dataset="3diono",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=10,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Raw execution times; RT-DBSCAN's growth rate must be visibly slower.",
))

_register(ExperimentSpec(
    id="table1",
    paper_ref="Table I",
    title="Raw execution time on Porto, varying dataset size",
    dataset="porto",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper: FDBSCAN 539.85s..282047s vs RT-DBSCAN 200.82s..96333s (2.7x-2.9x).",
))

_register(ExperimentSpec(
    id="table2",
    paper_ref="Table II / Figure 8a",
    title="Raw execution time and speedup on NGSIM, varying eps (dense, zero clusters)",
    dataset="ngsim",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(64_000,),
    eps_absolute=(0.0001, 0.00025, 0.0005, 0.00075, 0.001),
    description="Zero clusters form; the paper measures ~2500x, dominated by hardware effects "
                "our analytic model reproduces only in direction (RT-DBSCAN wins), not magnitude.",
))

_register(ExperimentSpec(
    id="table3",
    paper_ref="Table III / Figure 8b",
    title="Raw execution time and speedup on NGSIM, varying dataset size",
    dataset="ngsim",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(8_000, 16_000, 32_000, 64_000),
    eps_absolute=(0.0005,),
    description="Paper: FDBSCAN 12.7s..6964s vs RT-DBSCAN 0.03s..1.26s.",
))

_register(ExperimentSpec(
    id="fig9a",
    paper_ref="Figure 9a",
    title="Early-exit impact on Porto (execution time vs dataset size)",
    dataset="porto",
    mode="size_sweep",
    algorithms=("fdbscan", "fdbscan-earlyexit", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=20,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    eps_quantile=0.6,
    description="Paper: early exit helps FDBSCAN by ~3x on Porto and beats RT-DBSCAN by ~1.5x "
                "at large sizes (small minPts lets traversal stop very early).",
))

_register(ExperimentSpec(
    id="fig9b",
    paper_ref="Figure 9b",
    title="Early-exit impact on 3DRoad (execution time vs dataset size)",
    dataset="3droad",
    mode="size_sweep",
    algorithms=("fdbscan", "fdbscan-earlyexit", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(50_000, 100_000, 200_000, 400_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper: RT-DBSCAN outperforms FDBSCAN-EarlyExit on 3DRoad.",
))

_register(ExperimentSpec(
    id="fig9c",
    paper_ref="Figure 9c",
    title="Early-exit impact on NGSIM (execution time vs dataset size)",
    dataset="ngsim",
    mode="size_sweep",
    algorithms=("fdbscan", "fdbscan-earlyexit", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(8_000, 16_000, 32_000, 64_000),
    eps_absolute=(0.0005,),
    description="Paper: RT-DBSCAN vastly outperforms both FDBSCAN variants on NGSIM.",
))

_register(ExperimentSpec(
    id="sec5d",
    paper_ref="Section V-D",
    title="Runtime breakdown: BVH build vs clustering stages (3DIono)",
    dataset="3diono",
    mode="breakdown",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(32_000,),
    eps_quantile=0.30,
    description="Paper: RT-DBSCAN spends ~48% of its time on clustering (build-dominated) while "
                "FDBSCAN spends ~94%; clustering phases are ~9x faster on the RT device.",
))

_register(ExperimentSpec(
    id="sec6c",
    paper_ref="Section VI-C",
    title="Triangle-tessellated spheres vs custom sphere Intersection program",
    dataset="porto",
    mode="triangle_mode",
    algorithms=("rt-dbscan", "rt-dbscan-triangles"),
    baseline="rt-dbscan",
    min_pts=50,
    paper_sizes=(1_000_000,),
    sizes=(4_000,),
    eps_quantile=0.30,
    description="Paper: approximating spheres with triangles is 2x-5x slower because every hit "
                "must be routed through the AnyHit program.",
))


# -------------------------------------------------------------------------- #
def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (case-insensitive)."""
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def list_experiments() -> list[str]:
    """Ids of all registered experiments."""
    return sorted(EXPERIMENTS)


def run_experiment(
    exp_id: str, *, scale: float = 1.0, algorithms: list[str] | None = None, **kwargs
) -> list[RunRecord]:
    """Run every configuration of one experiment and return the records."""
    spec = get_experiment(exp_id)
    configs = spec.build_configs(scale=scale)
    algos = list(algorithms) if algorithms is not None else list(spec.algorithms)
    return run_sweep(algos, configs, **kwargs)
