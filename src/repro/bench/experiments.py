"""Experiment registry — one entry per table/figure of the paper.

Every experiment the paper reports is described by an :class:`ExperimentSpec`
that records the paper's configuration (dataset, sizes, ε values, minPts,
algorithms compared) and the *scaled* configuration the reproduction actually
runs.  Scaling is necessary because the substrate here is an instrumented
Python simulator rather than an RTX 2060: dataset sizes are reduced by a
documented factor and ε values are re-derived from the synthetic datasets'
density (using the k-distance heuristic) so that the neighbourhood-size
regimes match the paper's.  EXPERIMENTS.md records the mapping and the
paper-vs-measured comparison for every entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.registry import generate
from ..data.stream import make_stream
from ..neighbors.knn import kth_neighbor_distances
from ..partition.executor import ParallelMap, as_parallel_map
from .runner import RunRecord, run_single, run_sweep

__all__ = [
    "calibrate_eps",
    "ExperimentSpec",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "run_approx_experiment",
    "list_experiments",
    "StreamingExperimentSpec",
    "StreamingRunResult",
    "STREAMING_EXPERIMENTS",
    "get_streaming_experiment",
    "list_streaming_experiments",
    "run_streaming",
    "run_streaming_experiment",
    "run_service_experiment",
    "run_recovery_experiment",
]


def calibrate_eps(
    points: np.ndarray,
    min_pts: int,
    quantile: float,
    *,
    sample: int | None = None,
    seed: int | None = None,
) -> float:
    """Reference ε from the k-distance heuristic (shared by batch and stream).

    The k-th neighbour distance distribution is evaluated at the given
    quantile with ``k = min(min_pts, n - 1)`` — the procedure every
    experiment uses so that different runs on the same data are comparable.

    ``sample`` caps the number of points the heuristic evaluates: datasets
    larger than it are subsampled with ``np.random.default_rng(seed)``, so a
    fixed ``seed`` makes the calibration reproducible regardless of dataset
    size.  The default (``None``) evaluates every point, which is fully
    deterministic and needs no seed.
    """
    points = np.asarray(points, dtype=np.float64)
    if sample is not None:
        if sample < 2:
            raise ValueError(f"sample must be at least 2, got {sample}")
        if points.shape[0] > sample:
            rng = np.random.default_rng(seed)
            idx = rng.choice(points.shape[0], size=sample, replace=False)
            points = points[np.sort(idx)]
    k = min(min_pts, points.shape[0] - 1)
    return float(np.quantile(kth_neighbor_distances(points, k), quantile))


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one paper experiment and its scaled reproduction."""

    id: str
    paper_ref: str
    title: str
    dataset: str
    mode: str  # "eps_sweep" | "size_sweep" | "breakdown" | "triangle_mode" | "approx_sweep"
    algorithms: tuple[str, ...]
    baseline: str
    min_pts: int
    #: sizes the paper ran (for documentation).
    paper_sizes: tuple[int, ...]
    #: sizes the scaled reproduction runs by default.
    sizes: tuple[int, ...]
    #: ε multipliers applied to the calibrated reference ε (eps sweeps), or a
    #: single-element tuple for fixed-ε experiments.
    eps_factors: tuple[float, ...] = (1.0,)
    #: quantile used by the k-distance ε calibration; lower values give a
    #: sparser clustering regime.
    eps_quantile: float = 0.30
    #: absolute ε override (used for the NGSIM zero-cluster regime).
    eps_absolute: tuple[float, ...] | None = None
    seed: int = 2023
    description: str = ""
    notes: str = ""
    extra: dict = field(default_factory=dict, hash=False, compare=False)

    # ------------------------------------------------------------------ #
    def reference_size(self) -> int:
        return max(self.sizes)

    def calibrate_eps(self, points: np.ndarray) -> float:
        """Reference ε from the k-distance heuristic on the given points."""
        return calibrate_eps(points, self.min_pts, self.eps_quantile)

    def eps_values(self, points: np.ndarray) -> list[float]:
        """Concrete ε values for this experiment on the given points."""
        if self.eps_absolute is not None:
            return [float(e) for e in self.eps_absolute]
        ref = self.calibrate_eps(points)
        return [ref * f for f in self.eps_factors]

    def build_configs(self, *, scale: float = 1.0) -> list[tuple[str, np.ndarray, float, int]]:
        """Materialise the (label, points, eps, min_pts) configurations."""
        sizes = [max(256, int(round(s * scale))) for s in self.sizes]
        largest = generate(self.dataset, max(sizes), seed=self.seed)
        configs: list[tuple[str, np.ndarray, float, int]] = []
        if self.mode == "eps_sweep":
            pts = largest
            for eps in self.eps_values(pts):
                configs.append((self.dataset, pts, eps, self.min_pts))
        elif self.mode in ("size_sweep", "breakdown", "triangle_mode", "approx_sweep"):
            eps_list = self.eps_values(largest)
            eps = eps_list[0]
            for n in sizes:
                configs.append((self.dataset, largest[:n], eps, self.min_pts))
        else:
            raise ValueError(f"unknown experiment mode {self.mode!r}")
        return configs


# -------------------------------------------------------------------------- #
# The registry: one entry per table / figure in the evaluation section.
# -------------------------------------------------------------------------- #
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> ExperimentSpec:
    EXPERIMENTS[spec.id] = spec
    return spec


_register(ExperimentSpec(
    id="fig4",
    paper_ref="Figure 4",
    title="Speedup over CUDA-DClust+ on varying eps (16K 3DRoad points)",
    dataset="3droad",
    mode="eps_sweep",
    algorithms=("cuda-dclust+", "g-dbscan", "fdbscan", "rt-dbscan"),
    baseline="cuda-dclust+",
    min_pts=100,
    paper_sizes=(16_000,),
    sizes=(16_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="All four GPU implementations on the small dataset where the "
                "memory-hungry baselines still fit on the device.",
))

_register(ExperimentSpec(
    id="fig5a",
    paper_ref="Figure 5a",
    title="Speedup over FDBSCAN on varying eps (3DRoad)",
    dataset="3droad",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(400_000,),
    sizes=(24_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="Paper observes up to 1.5x on 3DRoad (BVH build dominates the small dataset).",
))

_register(ExperimentSpec(
    id="fig5b",
    paper_ref="Figure 5b",
    title="Speedup over FDBSCAN on varying eps (Porto)",
    dataset="porto",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(32_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="Paper observes up to 2.3x, increasing with eps.",
))

_register(ExperimentSpec(
    id="fig5c",
    paper_ref="Figure 5c",
    title="Speedup over FDBSCAN on varying eps (3DIono)",
    dataset="3diono",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(32_000,),
    eps_factors=(0.5, 0.75, 1.0, 1.5, 2.0),
    description="Paper observes up to 3.6x, increasing with eps.",
))

_register(ExperimentSpec(
    id="fig6a",
    paper_ref="Figure 6a",
    title="Speedup over FDBSCAN on varying dataset size (3DRoad)",
    dataset="3droad",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(50_000, 100_000, 200_000, 400_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    eps_quantile=0.30,
    description="Paper observes a maximum of 1.37x on this relatively small dataset.",
))

_register(ExperimentSpec(
    id="fig6b",
    paper_ref="Figure 6b",
    title="Speedup over FDBSCAN on varying dataset size (Porto)",
    dataset="porto",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper observes up to 2.9x at the largest sizes (paper minPts=1000 at 1M+ points).",
))

_register(ExperimentSpec(
    id="fig6c",
    paper_ref="Figure 6c",
    title="Speedup over FDBSCAN on varying dataset size (3DIono)",
    dataset="3diono",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=10,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper observes up to 4.1x at the largest sizes.",
))

_register(ExperimentSpec(
    id="fig7",
    paper_ref="Figure 7",
    title="Execution-time growth with dataset size (3DIono)",
    dataset="3diono",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=10,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Raw execution times; RT-DBSCAN's growth rate must be visibly slower.",
))

_register(ExperimentSpec(
    id="table1",
    paper_ref="Table I",
    title="Raw execution time on Porto, varying dataset size",
    dataset="porto",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper: FDBSCAN 539.85s..282047s vs RT-DBSCAN 200.82s..96333s (2.7x-2.9x).",
))

_register(ExperimentSpec(
    id="table2",
    paper_ref="Table II / Figure 8a",
    title="Raw execution time and speedup on NGSIM, varying eps (dense, zero clusters)",
    dataset="ngsim",
    mode="eps_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(64_000,),
    eps_absolute=(0.0001, 0.00025, 0.0005, 0.00075, 0.001),
    description="Zero clusters form; the paper measures ~2500x, dominated by hardware effects "
                "our analytic model reproduces only in direction (RT-DBSCAN wins), not magnitude.",
))

_register(ExperimentSpec(
    id="table3",
    paper_ref="Table III / Figure 8b",
    title="Raw execution time and speedup on NGSIM, varying dataset size",
    dataset="ngsim",
    mode="size_sweep",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(8_000, 16_000, 32_000, 64_000),
    eps_absolute=(0.0005,),
    description="Paper: FDBSCAN 12.7s..6964s vs RT-DBSCAN 0.03s..1.26s.",
))

_register(ExperimentSpec(
    id="fig9a",
    paper_ref="Figure 9a",
    title="Early-exit impact on Porto (execution time vs dataset size)",
    dataset="porto",
    mode="size_sweep",
    algorithms=("fdbscan", "fdbscan-earlyexit", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=20,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    eps_quantile=0.6,
    description="Paper: early exit helps FDBSCAN by ~3x on Porto and beats RT-DBSCAN by ~1.5x "
                "at large sizes (small minPts lets traversal stop very early).",
))

_register(ExperimentSpec(
    id="fig9b",
    paper_ref="Figure 9b",
    title="Early-exit impact on 3DRoad (execution time vs dataset size)",
    dataset="3droad",
    mode="size_sweep",
    algorithms=("fdbscan", "fdbscan-earlyexit", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(50_000, 100_000, 200_000, 400_000),
    sizes=(4_000, 8_000, 16_000, 32_000),
    description="Paper: RT-DBSCAN outperforms FDBSCAN-EarlyExit on 3DRoad.",
))

_register(ExperimentSpec(
    id="fig9c",
    paper_ref="Figure 9c",
    title="Early-exit impact on NGSIM (execution time vs dataset size)",
    dataset="ngsim",
    mode="size_sweep",
    algorithms=("fdbscan", "fdbscan-earlyexit", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000),
    sizes=(8_000, 16_000, 32_000, 64_000),
    eps_absolute=(0.0005,),
    description="Paper: RT-DBSCAN vastly outperforms both FDBSCAN variants on NGSIM.",
))

_register(ExperimentSpec(
    id="sec5d",
    paper_ref="Section V-D",
    title="Runtime breakdown: BVH build vs clustering stages (3DIono)",
    dataset="3diono",
    mode="breakdown",
    algorithms=("fdbscan", "rt-dbscan"),
    baseline="fdbscan",
    min_pts=100,
    paper_sizes=(1_000_000,),
    sizes=(32_000,),
    eps_quantile=0.30,
    description="Paper: RT-DBSCAN spends ~48% of its time on clustering (build-dominated) while "
                "FDBSCAN spends ~94%; clustering phases are ~9x faster on the RT device.",
))

_register(ExperimentSpec(
    id="sec6c",
    paper_ref="Section VI-C",
    title="Triangle-tessellated spheres vs custom sphere Intersection program",
    dataset="porto",
    mode="triangle_mode",
    algorithms=("rt-dbscan", "rt-dbscan-triangles"),
    baseline="rt-dbscan",
    min_pts=50,
    paper_sizes=(1_000_000,),
    sizes=(4_000,),
    eps_quantile=0.30,
    description="Paper: approximating spheres with triangles is 2x-5x slower because every hit "
                "must be routed through the AnyHit program.",
))

_register(ExperimentSpec(
    id="scaling",
    paper_ref="Beyond the paper",
    title="Tiled scale-out: shard-local clustering + halo merge vs one monolithic pass",
    dataset="porto",
    mode="size_sweep",
    algorithms=("rt-dbscan", "rt-dbscan-tiled"),
    baseline="rt-dbscan",
    min_pts=50,
    paper_sizes=(2_000, 4_000, 8_000),
    sizes=(2_000, 4_000, 8_000),
    eps_quantile=0.30,
    description="The partition layer's eps-halo tiling (default 4 tiles) against the untiled "
                "pipeline.  Labels are bit-identical; the simulated *total* device time pays "
                "the per-shard pipeline setup, while the candidate work (distances, node "
                "visits) shrinks with tile locality and the per-shard critical path — the "
                "wall-clock of a real multi-GPU deployment — drops well below the monolithic "
                "run (reported in the tiled records' critical_path_seconds).",
))

_register(ExperimentSpec(
    id="approx",
    paper_ref="Beyond the paper",
    title="Approximate tier: speedup vs agreement per speed/recall knob setting",
    dataset="blobs",
    mode="approx_sweep",
    algorithms=("rt-dbscan@brute", "rt-dbscan@lsh", "rt-dbscan@sampled"),
    baseline="rt-dbscan@brute",
    min_pts=10,
    paper_sizes=(4_000,),
    sizes=(4_000,),
    eps_quantile=0.30,
    description="The deliberately inexact lsh/sampled backends swept over their speed "
                "knobs; every record carries the agreement_summary quality block (ARI, "
                "core/noise/partition agreement) against the exact baseline, and speedups "
                "are over the exhaustive brute oracle the candidates skip.",
    extra={
        # the knob ladder each approximate backend is swept over, weakest first
        "knobs": {
            "lsh": [
                {"recall_target": 0.5},
                {"recall_target": 0.8},
                {"recall_target": 0.95},
                {"recall_target": 1.0},
            ],
            "sampled": [
                {"sample_rate": 0.25},
                {"sample_rate": 0.5},
                {"sample_rate": 0.75},
                {"sample_rate": 1.0},
            ],
        },
    },
))

_register(ExperimentSpec(
    id="backends",
    paper_ref="Beyond the paper",
    title="Backend ablation: Algorithm 3 on RT, grid, KD-tree and brute substrates",
    dataset="porto",
    mode="size_sweep",
    algorithms=("rt-dbscan@brute", "rt-dbscan@grid", "rt-dbscan@kdtree", "rt-dbscan"),
    baseline="rt-dbscan@brute",
    min_pts=50,
    paper_sizes=(2_000, 4_000),
    sizes=(2_000, 4_000),
    eps_quantile=0.30,
    description="The same RT-DBSCAN pipeline with the neighbour search swapped via the backend "
                "registry; labels are identical across substrates, only the simulated cost "
                "differs (speedups are over the index-free brute-force backend).",
))


# -------------------------------------------------------------------------- #
# Streaming experiments — beyond the paper: the same RT-DBSCAN machinery
# driven by a continuous feed, with the acceleration structure refit rather
# than rebuilt between window updates.
# -------------------------------------------------------------------------- #


@dataclass(frozen=True)
class StreamingExperimentSpec:
    """One streaming workload: a stream shape plus window/chunk geometry."""

    id: str
    title: str
    stream: str  # name registered in repro.data.stream.STREAMS
    num_chunks: int
    chunk_size: int
    window: int | None
    min_pts: int
    #: absolute ε, or None to calibrate with the k-distance heuristic.
    eps_absolute: float | None = None
    eps_quantile: float = 0.30
    seed: int = 2023
    description: str = ""
    stream_kwargs: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass
class StreamingRunResult:
    """Per-update records plus engine totals for one streaming run."""

    spec_id: str
    mode: str
    eps: float
    min_pts: int
    updates: list  # list[StreamUpdate]
    summary: dict

    @property
    def maintenance_seconds(self) -> float:
        """Total simulated time spent keeping the accel structure fresh."""
        return sum(
            u.report.phase("scene_update").simulated_seconds for u in self.updates if u.report
        )

    @property
    def updates_per_simulated_second(self) -> float:
        total = self.summary["total_simulated_seconds"]
        return len(self.updates) / total if total else float("inf")

    @property
    def points_per_simulated_second(self) -> float:
        total = self.summary["total_simulated_seconds"]
        return self.summary["points_ingested"] / total if total else float("inf")

    def as_dict(self) -> dict:
        return {
            "spec_id": self.spec_id,
            "mode": self.mode,
            "eps": self.eps,
            "min_pts": self.min_pts,
            "updates": [u.as_dict() for u in self.updates],
            "summary": dict(self.summary),
            "maintenance_seconds": self.maintenance_seconds,
            "updates_per_simulated_second": self.updates_per_simulated_second,
            "points_per_simulated_second": self.points_per_simulated_second,
        }


STREAMING_EXPERIMENTS: dict[str, StreamingExperimentSpec] = {}


def _register_streaming(spec: StreamingExperimentSpec) -> StreamingExperimentSpec:
    STREAMING_EXPERIMENTS[spec.id] = spec
    return spec


_register_streaming(StreamingExperimentSpec(
    id="stream-drift",
    title="Sliding-window clustering of drifting Gaussian blobs",
    stream="drift-blobs",
    num_chunks=16,
    chunk_size=150,
    window=1800,
    min_pts=5,
    description="Small chunks into a large window: the refit-friendly regime where "
                "the auto policy should rebuild rarely and win on maintenance time.",
))

_register_streaming(StreamingExperimentSpec(
    id="stream-burst",
    title="Burst hotspots over uniform background (promotion/demotion stress)",
    stream="burst-hotspots",
    num_chunks=12,
    chunk_size=200,
    window=800,
    min_pts=8,
    description="Cluster count oscillates as bursts enter and leave the window; "
                "exercises the eviction-triggered re-clustering path.",
))

_register_streaming(StreamingExperimentSpec(
    id="stream-ngsim",
    title="NGSIM corridor replay at the paper's eps (dense, zero clusters)",
    stream="ngsim-replay",
    num_chunks=10,
    chunk_size=300,
    window=1500,
    min_pts=100,
    eps_absolute=0.0005,
    description="The Section V-C regime as a feed: neighbourhoods are empty, so "
                "updates are traversal-bound and throughput is maximal.",
))


def get_streaming_experiment(exp_id: str) -> StreamingExperimentSpec:
    """Look up a streaming experiment by id (case-insensitive)."""
    key = exp_id.lower()
    if key not in STREAMING_EXPERIMENTS:
        raise KeyError(
            f"unknown streaming experiment {exp_id!r}; available: "
            f"{sorted(STREAMING_EXPERIMENTS)}"
        )
    return STREAMING_EXPERIMENTS[key]


def list_streaming_experiments() -> list[str]:
    """Ids of all registered streaming experiments."""
    return sorted(STREAMING_EXPERIMENTS)


def run_streaming(
    stream: str,
    num_chunks: int,
    chunk_size: int,
    *,
    window: int | None = None,
    eps: float | None = None,
    min_pts: int = 5,
    eps_quantile: float = 0.30,
    seed: int = 2023,
    mode: str = "auto",
    stream_kwargs: dict | None = None,
    spec_id: str = "custom",
) -> StreamingRunResult:
    """Run the streaming engine over a named stream and collect records.

    ``eps=None`` calibrates ε with the k-distance heuristic over the whole
    materialised stream (the same procedure the batch experiments use), so
    streaming and batch runs on the same feed are directly comparable.
    ``mode`` selects the refit policy — ``"rebuild"`` is the per-chunk
    rebuild baseline the throughput benchmark compares against.

    Since the feed is materialised up front, the engine is built with
    :meth:`StreamingRTDBSCAN.for_feed`, which pre-sizes the scene's slot
    buffer via the partition layer's occupancy bound — in particular an
    unbounded-window run never grows its slot buffer, so it never pays a
    growth-forced rebuild.
    """
    from ..streaming import RefitPolicy, StreamingRTDBSCAN

    if num_chunks < 1:
        raise ValueError("num_chunks must be a positive integer")
    if chunk_size < 1:
        raise ValueError("chunk_size must be a positive integer")
    chunks = list(make_stream(stream, num_chunks, chunk_size, seed=seed,
                              **(stream_kwargs or {})))
    if eps is None:
        eps = calibrate_eps(np.vstack(chunks), min_pts, eps_quantile)

    engine = StreamingRTDBSCAN.for_feed(
        np.vstack(chunks),
        eps,
        min_pts,
        window=window,
        chunk_size=chunk_size,
        policy=RefitPolicy(mode=mode),
    )
    updates = engine.consume(chunks)
    return StreamingRunResult(
        spec_id=spec_id,
        mode=mode,
        eps=float(eps),
        min_pts=int(min_pts),
        updates=updates,
        summary=engine.summary(),
    )


def run_streaming_experiment(
    exp_id: str, *, scale: float = 1.0, mode: str = "auto"
) -> StreamingRunResult:
    """Run one registered streaming experiment at the given scale."""
    spec = get_streaming_experiment(exp_id)
    chunk_size = max(50, int(round(spec.chunk_size * scale)))
    window = None if spec.window is None else max(2 * chunk_size, int(round(spec.window * scale)))
    return run_streaming(
        spec.stream,
        spec.num_chunks,
        chunk_size,
        window=window,
        eps=spec.eps_absolute,
        min_pts=spec.min_pts,
        eps_quantile=spec.eps_quantile,
        seed=spec.seed,
        mode=mode,
        stream_kwargs=dict(spec.stream_kwargs),
        spec_id=spec.id,
    )


def run_service_experiment(
    *,
    num_tenants: int = 8,
    num_chunks: int = 10,
    chunk_size: int = 120,
    window: int = 600,
    eps: float = 0.35,
    min_pts: int = 5,
    skew: float = 1.0,
    seed: int = 2023,
    max_batch_chunks: int = 8,
    max_queue_chunks: int = 32,
) -> dict:
    """Multi-tenant service throughput against a serial single-session baseline.

    Replays one deterministic skewed ensemble (:func:`multi_tenant_feeds`)
    two ways over identical engines:

    * **serial** — one :class:`StreamingRTDBSCAN` per tenant consuming its
      feed chunk by chunk, back to back (the no-service baseline);
    * **service** — the same chunks interleaved across tenants through
      :class:`~repro.service.service.ClusteringService`, so queued chunks
      coalesce into micro-batched updates.

    Besides wall/simulated time for both runs, the record carries the
    batching factor (chunks per ``update()`` call) and a per-tenant parity
    bit — service labels must stay bit-identical to the serial consume.
    """
    import asyncio
    import time as _time

    from ..api import ClustererSpec
    from ..data.stream import interleave_feeds, multi_tenant_feeds
    from ..service import ClusteringService, Request, ServiceConfig
    from ..streaming import StreamingRTDBSCAN

    feeds = multi_tenant_feeds(num_tenants, num_chunks, chunk_size,
                               seed=seed, skew=skew)
    total_chunks = sum(len(chunks) for chunks in feeds.values())
    total_points = sum(c.shape[0] for chunks in feeds.values() for c in chunks)

    t0 = _time.perf_counter()
    serial_results: dict = {}
    serial_sim = 0.0
    serial_updates = 0
    for tenant, chunks in feeds.items():
        with StreamingRTDBSCAN(eps=eps, min_pts=min_pts, window=window) as engine:
            engine.consume(chunks)
            serial_results[tenant] = engine.result()
            summary = engine.summary()
        serial_sim += summary["total_simulated_seconds"]
        serial_updates += summary["num_updates"]
    serial_wall = _time.perf_counter() - t0

    config = ServiceConfig(
        spec=ClustererSpec(algo="streaming-rt-dbscan", eps=eps, min_pts=min_pts,
                           params={"window": window}),
        max_batch_chunks=max_batch_chunks,
        max_queue_chunks=max_queue_chunks,
        session_ttl_s=None,
    )

    async def drive() -> tuple[dict, dict]:
        async with ClusteringService(config) as service:
            for tenant, chunk in interleave_feeds(feeds, seed=seed):
                while not (await service.submit(Request.ingest(tenant, chunk))).ok:
                    await asyncio.sleep(0)
            labels = {}
            for tenant in feeds:
                resp = await service.submit(Request.query_labels(tenant))
                labels[tenant] = resp.body
            stats = (await service.submit(Request.stats())).body
        return labels, stats

    t0 = _time.perf_counter()
    labels, stats = asyncio.run(drive())
    service_wall = _time.perf_counter() - t0

    labels_match = all(
        labels[t]["labels"] == serial_results[t].labels.tolist()
        and labels[t]["core_mask"] == serial_results[t].core_mask.tolist()
        for t in feeds
    )
    tenant_stats = stats["sessions"]["tenants"]
    service_sim = sum(
        s["engine"]["total_simulated_seconds"] for s in tenant_stats.values()
    )
    batches = stats["service"]["batches"]

    return {
        "num_tenants": num_tenants,
        "num_chunks_per_tenant": num_chunks,
        "chunk_size": chunk_size,
        "window": window,
        "skew": skew,
        "eps": float(eps),
        "min_pts": int(min_pts),
        "total_chunks": total_chunks,
        "total_points": total_points,
        "labels_match": bool(labels_match),
        "serial": {
            "wall_seconds": serial_wall,
            "simulated_seconds": serial_sim,
            "updates": serial_updates,
            "points_per_wall_second": total_points / max(serial_wall, 1e-9),
        },
        "service": {
            "wall_seconds": service_wall,
            "simulated_seconds": service_sim,
            "updates": batches,
            "chunks_ingested": stats["service"]["chunks_ingested"],
            "points_per_wall_second": total_points / max(service_wall, 1e-9),
        },
        "batching_factor": total_chunks / max(batches, 1),
        "wall_speedup_vs_serial": serial_wall / max(service_wall, 1e-9),
        "simulated_speedup_vs_serial": serial_sim / max(service_sim, 1e-9),
    }


def run_recovery_experiment(
    *,
    window_sizes: tuple[int, ...] = (200, 600, 1200),
    chunk_size: int = 100,
    eps: float = 0.35,
    min_pts: int = 5,
    seed: int = 2023,
    repeats: int = 3,
    backend: str = "grid",
) -> dict:
    """Durability cost curve: checkpoint write / restore latency vs window size.

    For each window size, fills a :class:`StreamingRTDBSCAN` to capacity from
    the deterministic drift-blobs stream, then measures three things over
    ``repeats`` rounds (medians reported):

    * ``snapshot_seconds`` — engine state → plain-JSON snapshot dict;
    * ``write_seconds`` — snapshot → CRC-framed checkpoint file through
      :class:`~repro.service.store.SnapshotStore` (atomic tmp+rename+fsync);
    * ``restore_seconds`` — file → verified record →
      :meth:`StreamingRTDBSCAN.restore` replaying the window.

    Each row also carries the checkpoint file size and a parity bit (restored
    labels must equal the donor's), so a perf snapshot that shows restore
    getting cheap never hides it getting *wrong*.
    """
    import tempfile
    import time as _time

    from ..service.store import SnapshotStore
    from ..streaming import StreamingRTDBSCAN

    rows = []
    with tempfile.TemporaryDirectory(prefix="rtdbscan-recovery-") as tmp:
        store = SnapshotStore(tmp)
        for window in window_sizes:
            num_chunks = -(-window // chunk_size) + 2  # fill past capacity
            stream = make_stream("drift-blobs", num_chunks=num_chunks,
                                 chunk_size=chunk_size, seed=seed)
            engine = StreamingRTDBSCAN(eps=eps, min_pts=min_pts, window=window,
                                       backend=backend)
            for chunk in stream:
                engine.update(chunk)
            donor_labels = engine.result().labels.tolist()

            snapshot_s, write_s, restore_s = [], [], []
            parity = True
            tenant = f"w{window}"
            for _ in range(repeats):
                t0 = _time.perf_counter()
                snapshot = engine.snapshot()
                snapshot_s.append(_time.perf_counter() - t0)

                t0 = _time.perf_counter()
                path = store.save(tenant, snapshot)
                write_s.append(_time.perf_counter() - t0)

                t0 = _time.perf_counter()
                record = store.load(tenant)
                resumed = StreamingRTDBSCAN.restore(record["snapshot"])
                restore_s.append(_time.perf_counter() - t0)
                parity = parity and resumed.result().labels.tolist() == donor_labels

            rows.append({
                "window": int(window),
                "window_points": int(engine.result().labels.shape[0]),
                "backend": backend,
                "checkpoint_bytes": int(path.stat().st_size),
                "snapshot_seconds": float(np.median(snapshot_s)),
                "write_seconds": float(np.median(write_s)),
                "restore_seconds": float(np.median(restore_s)),
                "labels_match": bool(parity),
            })
    return {
        "chunk_size": int(chunk_size),
        "eps": float(eps),
        "min_pts": int(min_pts),
        "repeats": int(repeats),
        "rows": rows,
    }


# -------------------------------------------------------------------------- #
def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (case-insensitive)."""
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def list_experiments() -> list[str]:
    """Ids of all registered experiments."""
    return sorted(EXPERIMENTS)


def run_experiment(
    exp_id: str, *, scale: float = 1.0, algorithms: list[str] | None = None, **kwargs
) -> list[RunRecord]:
    """Run every configuration of one experiment and return the records."""
    spec = get_experiment(exp_id)
    if spec.mode == "approx_sweep":
        return run_approx_experiment(spec, scale=scale, **kwargs)
    configs = spec.build_configs(scale=scale)
    algos = list(algorithms) if algorithms is not None else list(spec.algorithms)
    return run_sweep(algos, configs, **kwargs)


def _run_approx_job(job: tuple) -> RunRecord:
    """One approx-sweep cell; module-level so process executors can pickle it."""
    algo, pts, eps, min_pts, label, cost_model, reference, knob = job
    kwargs = {"backend_kwargs": dict(knob)} if knob else {}
    return run_single(
        algo, pts, eps, min_pts, dataset=label, cost_model=cost_model,
        reference=reference, **kwargs,
    )


def run_approx_experiment(
    spec: ExperimentSpec | str,
    *,
    scale: float = 1.0,
    cost_model=None,
    workers: int | ParallelMap | None = None,
    executor_mode: str | None = None,
) -> list[RunRecord]:
    """Sweep the approximate backends over their knob ladders with agreement.

    Returns one record for the exact baseline plus one per
    (approximate algorithm, knob setting), each approximate record carrying
    the :func:`repro.metrics.agreement_summary` quality block against the
    baseline under ``extra["agreement"]`` and its knob setting under
    ``extra["backend_kwargs"]`` — the data behind the speedup-vs-agreement
    table (:func:`repro.bench.report.format_agreement_table`).  ``workers``
    fans the independent cells out over the shared
    :class:`~repro.partition.executor.ParallelMap` executor, as in
    :func:`~repro.bench.runner.run_sweep`.
    """
    if isinstance(spec, str):
        spec = get_experiment(spec)
    if spec.mode != "approx_sweep":
        raise ValueError(f"experiment {spec.id!r} is not an approx_sweep experiment")
    label, pts, eps, min_pts = spec.build_configs(scale=scale)[0]
    ladders = spec.extra.get("knobs", {})
    jobs = [(spec.baseline, pts, eps, min_pts, label, cost_model, None, None)]
    for algo in spec.algorithms:
        if algo == spec.baseline:
            continue
        backend = algo.partition("@")[2]
        for knob in ladders.get(backend, [{}]):
            jobs.append(
                (algo, pts, eps, min_pts, label, cost_model, spec.baseline, knob)
            )
    executor = as_parallel_map(workers, mode=executor_mode)
    return executor.map(_run_approx_job, jobs)
