"""Benchmark runner.

Runs a named algorithm on a point set with given (ε, minPts), catches the
simulated out-of-memory condition the way the paper reports it for the
baselines, and returns a flat :class:`RunRecord` the report formatters and
the pytest benchmarks consume.

Algorithms are resolved from the registry in :mod:`repro.api.registry` — the
hand-written factory table this module used to keep is gone.  Names may use
the ``"algo@backend"`` spelling (e.g. ``"rt-dbscan@grid"``) to pin a
neighbour backend, which is how the backend-ablation experiment labels its
columns.  ``ALGORITHMS`` remains importable as a read-only mapping view over
the registry for backward compatibility.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..api.registry import list_algorithms, resolve_algorithm
from ..api.spec import ClustererSpec
from ..dbscan.params import DBSCANResult
from ..native import dispatch as native_dispatch
from ..partition.executor import ParallelMap, as_parallel_map
from ..perf.cost_model import DeviceCostModel
from ..perf.memory import DeviceMemoryError
from ..rtcore.device import RTDevice

__all__ = ["RunRecord", "ALGORITHMS", "run_single", "run_sweep", "speedup_series"]


class _AlgorithmsView(Mapping):
    """Deprecated mapping shim over the algorithm registry.

    Keeps ``from repro.bench.runner import ALGORITHMS`` working: iteration
    yields the registered algorithm names, and indexing returns a legacy
    ``factory(eps, min_pts, device, **kwargs)`` callable.  New code should
    use :func:`repro.api.registry.resolve_algorithm` or
    :func:`repro.cluster` instead.
    """

    def __getitem__(self, name: str):
        entry, backend = resolve_algorithm(name)

        def factory(eps, min_pts, device=None, **kwargs):
            if backend is not None:
                kwargs.setdefault("backend", backend)
            return entry.factory(eps=eps, min_pts=min_pts, device=device, **kwargs)

        return factory

    def __contains__(self, name) -> bool:
        # The old dict returned False for any unknown key; resolve_algorithm
        # raises ValueError for @-spellings of non-backend algorithms, which
        # must read as "not a valid name" here, not crash.
        try:
            resolve_algorithm(name)
        except (KeyError, ValueError, TypeError, AttributeError):
            return False
        return True

    def __iter__(self):
        return iter(list_algorithms())

    def __len__(self) -> int:
        return len(list_algorithms())


#: Deprecated: registry-backed view over algorithm name -> legacy factory.
ALGORITHMS = _AlgorithmsView()


@dataclass
class RunRecord:
    """One (algorithm, dataset configuration) execution."""

    algorithm: str
    dataset: str
    num_points: int
    eps: float
    min_pts: int
    status: str = "ok"  # "ok" | "oom" | "error"
    simulated_seconds: float = float("nan")
    wall_seconds: float = float("nan")
    num_clusters: int = -1
    num_noise: int = -1
    num_core: int = -1
    #: which kernel tier executed the fit: "native" (compiled C hot loops)
    #: or "numpy"; taken from the result's extra block when the algorithm
    #: records it, otherwise from the dispatcher's state at fit time.
    kernel_tier: str = ""
    breakdown: dict = field(default_factory=dict)
    error: str = ""
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "num_points": self.num_points,
            "eps": self.eps,
            "min_pts": self.min_pts,
            "status": self.status,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "num_clusters": self.num_clusters,
            "num_noise": self.num_noise,
            "num_core": self.num_core,
            "kernel_tier": self.kernel_tier,
            "breakdown": dict(self.breakdown),
            "error": self.error,
            "extra": dict(self.extra),
        }


def run_single(
    algorithm: str,
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    dataset: str = "unknown",
    cost_model: DeviceCostModel | None = None,
    backend: str | None = None,
    reference: str | None = None,
    **kwargs,
) -> RunRecord:
    """Run one algorithm on one configuration and return its record.

    ``algorithm`` is resolved from the registry (``KeyError`` lists the
    available names); ``backend`` pins a neighbour backend for algorithms
    that support one, equivalent to the ``"algo@backend"`` spelling.

    ``reference`` names an exact algorithm (``"algo"`` or ``"algo@backend"``)
    to fit on the same configuration; the run record then carries the
    :func:`repro.metrics.agreement_summary` quality block under
    ``extra["agreement"]`` — how the approximate tier ships every number
    with its error bar.

    Out-of-memory conditions on the simulated device are reported as
    ``status="oom"`` rather than raised, because the paper treats them as
    data points ("G-DBSCAN and CUDA-DClust+ ran out of memory beyond 100 K
    points"), not as failures of the harness.
    """
    points = np.asarray(points, dtype=np.float64)
    record = RunRecord(
        algorithm=algorithm,
        dataset=dataset,
        num_points=points.shape[0],
        eps=float(eps),
        min_pts=int(min_pts),
    )
    spec = ClustererSpec(algo=algorithm, eps=float(eps), min_pts=int(min_pts),
                         backend=backend)
    entry, backend = spec.resolve()
    if backend is not None:
        kwargs.setdefault("backend", backend)
        record.extra["backend"] = backend

    device = RTDevice(cost_model=cost_model) if cost_model is not None else RTDevice()
    clusterer = entry.factory(eps=eps, min_pts=min_pts, device=device, **kwargs)
    start = time.perf_counter()
    try:
        result = clusterer.fit(points)
    except DeviceMemoryError as exc:
        record.status = "oom"
        record.error = str(exc)
        record.wall_seconds = time.perf_counter() - start
        return record
    record.wall_seconds = time.perf_counter() - start
    _fill_from_result(record, result)
    if kwargs.get("backend_kwargs"):
        record.extra["backend_kwargs"] = dict(kwargs["backend_kwargs"])
    if reference is not None:
        from ..metrics.agreement import agreement_summary

        ref_entry, ref_backend = ClustererSpec(
            algo=reference, eps=float(eps), min_pts=int(min_pts)
        ).resolve()
        ref_kwargs = {"backend": ref_backend} if ref_backend is not None else {}
        ref_device = (
            RTDevice(cost_model=cost_model) if cost_model is not None else RTDevice()
        )
        ref_result = ref_entry.factory(
            eps=eps, min_pts=min_pts, device=ref_device, **ref_kwargs
        ).fit(points)
        record.extra["agreement"] = agreement_summary(
            result, ref_result, points=points
        )
    return record


def _fill_from_result(record: RunRecord, result: DBSCANResult) -> None:
    record.num_clusters = result.num_clusters
    record.num_noise = result.num_noise
    record.num_core = int(result.core_mask.sum())
    record.kernel_tier = result.extra.get("kernel_tier") or native_dispatch.active_tier()
    if result.report is not None:
        record.simulated_seconds = result.report.total_simulated_seconds
        record.breakdown = result.report.breakdown()
    else:
        # Uninstrumented reference implementations (the sequential oracle)
        # carry no simulated-time report; fall back to wall-clock time.
        record.simulated_seconds = record.wall_seconds


def _run_sweep_job(job: tuple) -> RunRecord:
    """One sweep cell; module-level so process executors can pickle it."""
    algo, pts, eps, min_pts, label, cost_model, kwargs = job
    return run_single(algo, pts, eps, min_pts, dataset=label, cost_model=cost_model, **kwargs)


def run_sweep(
    algorithms: list[str],
    points_by_config: list[tuple[str, np.ndarray, float, int]],
    *,
    cost_model: DeviceCostModel | None = None,
    workers: int | ParallelMap | None = None,
    executor_mode: str | None = None,
    **kwargs,
) -> list[RunRecord]:
    """Run every algorithm on every ``(label, points, eps, min_pts)`` config.

    ``workers`` fans the independent (config, algorithm) cells out over the
    shared :class:`~repro.partition.executor.ParallelMap` executor (an
    existing executor is also accepted).  The default stays serial so
    wall-clock timings remain deterministic; simulated timings are unaffected
    by the strategy because every cell runs on its own simulated device.
    Records come back in the same order as the serial loop produced them.
    """
    executor = as_parallel_map(workers, mode=executor_mode)
    jobs = [
        (algo, pts, eps, min_pts, label, cost_model, kwargs)
        for label, pts, eps, min_pts in points_by_config
        for algo in algorithms
    ]
    return executor.map(_run_sweep_job, jobs)


def speedup_series(
    records: list[RunRecord], *, baseline: str, target: str, key: str = "eps"
) -> list[dict]:
    """Per-configuration speedup of ``target`` over ``baseline``.

    Configurations are matched on ``(dataset, num_points, eps, min_pts)``;
    the ``key`` argument selects which field labels the series (``"eps"`` or
    ``"num_points"``).  OOM baseline runs yield ``inf`` speedup, OOM target
    runs yield 0.0, matching how the paper plots these cases.
    """
    def config_key(r: RunRecord):
        return (r.dataset, r.num_points, r.eps, r.min_pts)

    base = {config_key(r): r for r in records if r.algorithm == baseline}
    out = []
    for r in records:
        if r.algorithm != target:
            continue
        b = base.get(config_key(r))
        if b is None:
            continue
        if b.status == "oom" and r.status == "oom":
            speedup = float("nan")
        elif b.status == "oom":
            speedup = float("inf")
        elif r.status == "oom":
            speedup = 0.0
        else:
            speedup = b.simulated_seconds / r.simulated_seconds if r.simulated_seconds else float("inf")
        out.append(
            {
                key: getattr(r, key) if hasattr(r, key) else r.extra.get(key),
                "dataset": r.dataset,
                "baseline_seconds": b.simulated_seconds,
                "target_seconds": r.simulated_seconds,
                "speedup": speedup,
                "baseline_status": b.status,
                "target_status": r.status,
            }
        )
    return out
