"""Benchmark harness: experiment registry, sweep runner and report formatting.

One registered experiment per table/figure of the paper's evaluation section;
see DESIGN.md for the experiment index and EXPERIMENTS.md for paper-vs-
measured results.
"""

from .experiments import (
    EXPERIMENTS,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    run_approx_experiment,
    run_experiment,
)
from .report import (
    format_agreement_table,
    format_breakdown,
    format_records,
    format_speedup_table,
    format_time_table,
)
from .runner import ALGORITHMS, RunRecord, run_single, run_sweep, speedup_series

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_approx_experiment",
    "format_agreement_table",
    "format_breakdown",
    "format_records",
    "format_speedup_table",
    "format_time_table",
    "ALGORITHMS",
    "RunRecord",
    "run_single",
    "run_sweep",
    "speedup_series",
]
