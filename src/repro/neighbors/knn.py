"""k-nearest-neighbour helpers.

DBSCAN users commonly choose ε from the "k-distance plot": sort every point's
distance to its k-th nearest neighbour and look for the knee.  These helpers
implement that workflow (used by the examples and the parameter-sweep
benchmark) on top of a KD-tree, plus a small brute-force variant used as an
oracle in tests.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["kth_neighbor_distances", "knn_brute_force", "suggest_eps"]


def kth_neighbor_distances(points: np.ndarray, k: int) -> np.ndarray:
    """Distance from every point to its k-th nearest *other* point."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if not 1 <= k < n:
        raise ValueError("k must satisfy 1 <= k < number of points")
    tree = cKDTree(points)
    # k+1 because the nearest neighbour of a point is the point itself.
    dists, _ = tree.query(points, k=k + 1)
    return dists[:, k]


def knn_brute_force(points: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k nearest other points for every point (exact, O(n^2))."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if not 1 <= k < n:
        raise ValueError("k must satisfy 1 <= k < number of points")
    d2 = ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    return np.argsort(d2, axis=1)[:, :k]


def suggest_eps(points: np.ndarray, min_pts: int, *, quantile: float = 0.95) -> float:
    """Suggest an ε value via the k-distance heuristic.

    Uses the ``quantile`` of the distance to the ``min_pts``-th neighbour,
    which places roughly ``quantile`` of the points inside dense regions.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    k = max(1, min_pts)
    dists = kth_neighbor_distances(points, min(k, len(points) - 1))
    return float(np.quantile(dists, quantile))
