"""Exact brute-force fixed-radius neighbour search.

This is the reference oracle every accelerated search is tested against.  It
streams over fixed-size query blocks, so memory stays O(block · n) instead of
O(n²) — and inside each block the distance work is done in two tiers:

1. a **BLAS prescreen**: ``‖q‖² + ‖p‖² − 2 q·p`` via one matrix multiply,
   with a conservative floating-point error margin added to ε², and
2. an **exact confirm**: the surviving candidates (≈ the true neighbour set)
   are re-tested with the componentwise ``(q − p)²`` sum in the original
   coordinates.

The confirm step reproduces the naive computation bit-for-bit, so the hit
set is *exactly* the one a full ``(a − b)²`` sweep would produce — the
prescreen margin only ever admits extra candidates, never drops one — while
the O(n²) part of the work runs at matrix-multiply speed instead of
broadcast-subtract speed.  Both inputs are centred before the prescreen to
keep the norms (and therefore the error margin) small.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..native import dispatch as native_dispatch

__all__ = [
    "brute_force_neighbors",
    "brute_force_neighbor_counts",
    "pairwise_within",
    "pairwise_within_blocks",
]


def _pairwise_blocks_native(
    nk, queries: np.ndarray, data: np.ndarray, r2: float, block_size: int
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """The blocked sweep on the native tier (same yield contract as numpy).

    The C kernel evaluates the exact componentwise ``(q - p)²`` test directly
    — the set the prescreen + confirm pipeline is guaranteed to produce — so
    the emitted fragments are byte-identical.  Data is transposed once into
    SoA layout so the inner distance loop vectorises.
    """
    queries = np.ascontiguousarray(queries)
    data_t = np.ascontiguousarray(data.T)
    nq = queries.shape[0]
    for lo in range(0, nq, block_size):
        hi = min(nq, lo + block_size)
        block = queries[lo:hi]
        counts = np.zeros(hi - lo, dtype=np.int64)
        nk.brute_block(block, data_t, r2, row_counts=counts)
        indptr = np.zeros(hi - lo + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        di = np.empty(int(indptr[-1]), dtype=np.intp)
        nk.brute_block(block, data_t, r2, indptr=indptr, indices=di)
        qi = np.repeat(np.arange(lo, hi, dtype=np.intp), counts)
        yield lo, qi, di


def pairwise_within_blocks(
    queries: np.ndarray, data: np.ndarray, radius: float, *, block_size: int = 1024
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Stream exact ``(query, data)`` ε-pairs one query block at a time.

    Yields ``(block_start, query_idx, data_idx)`` triples where ``query_idx``
    is *global* (already offset by ``block_start``) and ascending, and the
    data indices within each query row are ascending — i.e. every block is a
    ready-made canonical CSR fragment.  Nothing proportional to the full
    pair set is ever allocated here; peak memory is the block's O(block · n)
    distance matrix.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if queries.shape[1] != data.shape[1]:
        raise ValueError("queries and data must have the same dimensionality")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    r2 = radius * radius

    if data.shape[0] == 0 or queries.shape[0] == 0:
        # No pairs possible; emit one empty fragment per query block so CSR
        # consumers still see every row.
        for lo in range(0, queries.shape[0], block_size):
            yield lo, np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        return

    nk = native_dispatch.kernels()
    if nk is not None and data.shape[1] in (2, 3):
        yield from _pairwise_blocks_native(nk, queries, data, r2, block_size)
        return

    # Centre both sets with one shared offset: the prescreen's error margin
    # scales with the squared norms, so working in a frame where the data
    # hugs the origin keeps the margin (and false-candidate count) tiny.
    center = data.mean(axis=0)
    dc = data - center
    qc = queries - center
    # Drop axes that are identically zero after centring (e.g. the z = 0
    # plane of lifted 2D data): they contribute nothing to the prescreen
    # distance, so the GEMM skips them entirely.
    live = (qc != 0.0).any(axis=0) | (dc != 0.0).any(axis=0)
    if not live.all():
        qc = np.ascontiguousarray(qc[:, live])
        dc = np.ascontiguousarray(dc[:, live])
    dn = np.einsum("ij,ij->i", dc, dc)
    qn = np.einsum("ij,ij->i", qc, qc)
    # Absolute error bound of the dot-trick distance: a handful of ulps of
    # the largest intermediate.  64 ulps is orders of magnitude above the
    # worst case, and false positives only cost one exact re-test each.
    margin = 64.0 * np.finfo(np.float64).eps * (
        (qn.max() if qn.size else 0.0) + (dn.max() if dn.size else 0.0)
    )
    threshold = r2 + margin

    for lo in range(0, queries.shape[0], block_size):
        hi = min(queries.shape[0], lo + block_size)
        # d2 = ‖q‖² + ‖p‖² − 2 q·p, assembled in-place on the GEMM output.
        d2 = qc[lo:hi] @ dc.T
        d2 *= -2.0
        d2 += qn[lo:hi, None]
        d2 += dn[None, :]
        qi, di = np.nonzero(d2 <= threshold)
        del d2  # release the block before the next GEMM allocates its own
        if qi.size:
            diff = queries[lo + qi] - data[di]
            exact = np.einsum("ij,ij->i", diff, diff) <= r2
            qi, di = qi[exact], di[exact]
        yield lo, (qi + lo).astype(np.intp), di.astype(np.intp)


def pairwise_within(
    queries: np.ndarray, data: np.ndarray, radius: float, *, chunk_size: int = 2048
) -> tuple[np.ndarray, np.ndarray]:
    """All ``(query, data)`` index pairs with Euclidean distance <= radius.

    Both inputs are ``(n, d)`` arrays with matching dimensionality; the result
    includes self pairs when the arrays share points.  Pairs come back in
    row-major order (queries ascending, data indices ascending per query).
    """
    out_q: list[np.ndarray] = []
    out_d: list[np.ndarray] = []
    for _, qi, di in pairwise_within_blocks(queries, data, radius, block_size=chunk_size):
        out_q.append(qi)
        out_d.append(di)
    q = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
    d = np.concatenate(out_d) if out_d else np.empty(0, dtype=np.intp)
    return q, d


def brute_force_neighbors(
    points: np.ndarray, radius: float, *, include_self: bool = False, chunk_size: int = 2048
) -> list[np.ndarray]:
    """Per-point neighbour lists within ``radius`` (sorted, exact).

    ``include_self`` controls whether a point is listed as its own neighbour;
    the paper's Algorithm 2 excludes it (the ``q != s`` filter), which is the
    convention the DBSCAN implementations in this package follow.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qi, di = pairwise_within(points, points, radius, chunk_size=chunk_size)
    if not include_self:
        keep = qi != di
        qi, di = qi[keep], di[keep]
    counts = np.bincount(qi, minlength=points.shape[0])
    splits = np.cumsum(counts)[:-1]
    return list(np.split(di, splits))


def brute_force_neighbor_counts(
    points: np.ndarray, radius: float, *, include_self: bool = False, chunk_size: int = 2048
) -> np.ndarray:
    """Number of neighbours within ``radius`` for every point (exact)."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for _, qi, di in pairwise_within_blocks(points, points, radius, block_size=chunk_size):
        if not include_self:
            qi = qi[qi != di]
        counts += np.bincount(qi, minlength=n)
    return counts
