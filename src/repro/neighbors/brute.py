"""Exact brute-force fixed-radius neighbour search.

This is the reference oracle every accelerated search is tested against.  It
computes all pairwise distances in memory-bounded chunks, so it stays exact
and usable up to the dataset sizes the unit tests and small benchmarks need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["brute_force_neighbors", "brute_force_neighbor_counts", "pairwise_within"]


def pairwise_within(
    queries: np.ndarray, data: np.ndarray, radius: float, *, chunk_size: int = 2048
) -> tuple[np.ndarray, np.ndarray]:
    """All ``(query, data)`` index pairs with Euclidean distance <= radius.

    Both inputs are ``(n, d)`` arrays with matching dimensionality; the result
    includes self pairs when the arrays share points.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if queries.shape[1] != data.shape[1]:
        raise ValueError("queries and data must have the same dimensionality")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    r2 = radius * radius
    out_q: list[np.ndarray] = []
    out_d: list[np.ndarray] = []
    for lo in range(0, queries.shape[0], chunk_size):
        hi = min(queries.shape[0], lo + chunk_size)
        block = queries[lo:hi]
        d2 = ((block[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
        qi, di = np.nonzero(d2 <= r2)
        out_q.append(qi + lo)
        out_d.append(di)
    q = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
    d = np.concatenate(out_d) if out_d else np.empty(0, dtype=np.intp)
    return q.astype(np.intp), d.astype(np.intp)


def brute_force_neighbors(
    points: np.ndarray, radius: float, *, include_self: bool = False, chunk_size: int = 2048
) -> list[np.ndarray]:
    """Per-point neighbour lists within ``radius`` (sorted, exact).

    ``include_self`` controls whether a point is listed as its own neighbour;
    the paper's Algorithm 2 excludes it (the ``q != s`` filter), which is the
    convention the DBSCAN implementations in this package follow.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qi, di = pairwise_within(points, points, radius, chunk_size=chunk_size)
    if not include_self:
        keep = qi != di
        qi, di = qi[keep], di[keep]
    order = np.lexsort((di, qi))
    qi, di = qi[order], di[order]
    counts = np.bincount(qi, minlength=points.shape[0])
    splits = np.cumsum(counts)[:-1]
    return list(np.split(di, splits))


def brute_force_neighbor_counts(
    points: np.ndarray, radius: float, *, include_self: bool = False, chunk_size: int = 2048
) -> np.ndarray:
    """Number of neighbours within ``radius`` for every point (exact)."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    qi, di = pairwise_within(points, points, radius, chunk_size=chunk_size)
    if not include_self:
        keep = qi != di
        qi = qi[keep]
    return np.bincount(qi, minlength=points.shape[0]).astype(np.int64)
