"""Pluggable fixed-radius neighbour backends.

:class:`NeighborBackend` is the substrate contract RT-DBSCAN's Algorithm 3
actually depends on: build an index over the dataset once, then answer

* ``neighbor_counts()`` — ε-neighbour count per point (stage 1), and
* ``neighbor_csr()``    — the confirmed ε-adjacency in canonical CSR form
  (stage 2; see :mod:`repro.adjacency`),

with the dataset's own points as the default queries and self pairs excluded
(the paper's ``q != s`` filter).  Every backend produces the CSR
**chunk-by-chunk** — a block of queries at a time — so the full ε-pair set is
never materialised as an intermediate; peak memory is one block's candidate
working set plus the adjacency itself.  The legacy ``neighbor_pairs()``
surface survives as a thin expansion of the CSR for callers that still want
flat pair arrays.

The RT-core ray query of Algorithm 2
(:class:`~repro.neighbors.rt_find.RTNeighborFinder`) is one implementation;
this module adds three host-side implementations behind the same protocol —
a uniform grid, a KD-tree and the exact brute-force oracle — so the same
clustering pipeline runs on any substrate.  All backends return *identical*
adjacencies (byte-identical CSR arrays, since the form is canonical), which
is what makes ``RTDBSCAN(backend=...)`` label-equivalent across substrates;
they differ only in the operations they charge to the device cost model
(CPU backends charge shader-core work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..adjacency import csr_row_ids, expand_ranges
from ..api.registry import register_backend
from ..bvh.traversal import point_query_counts_early_exit, point_query_csr
from ..geometry.transforms import ensure_points3d
from ..native import dispatch as native_dispatch
from ..perf.cost_model import OpCounts
from ..rtcore.counters import LaunchStats
from ..rtcore.device import RTDevice
from .brute import pairwise_within_blocks
from .grid import UniformGrid

__all__ = [
    "NeighborBackend",
    "BruteNeighborBackend",
    "GridNeighborBackend",
    "KDTreeNeighborBackend",
]


@runtime_checkable
class NeighborBackend(Protocol):
    """Contract between the DBSCAN pipeline and a neighbour-search substrate."""

    radius: float
    #: simulated seconds spent building the index (0 for index-free backends).
    build_seconds: float

    @property
    def num_points(self) -> int: ...

    @property
    def num_prims(self) -> int: ...

    def neighbor_counts(
        self, queries: np.ndarray | None = None, *, min_count: int | None = None
    ) -> tuple[np.ndarray, LaunchStats]: ...

    def neighbor_csr(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]: ...

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]: ...

    def release(self) -> None: ...


def _aligned_copy(arr: np.ndarray, alignment: int = 32) -> np.ndarray:
    """A C-contiguous float64 copy whose data pointer is ``alignment``-aligned.

    numpy only guarantees 16-byte alignment from its allocator; the native
    SoA kernels want vector-width (AVX, 32-byte) alignment, so the copy is
    carved at the right offset out of an over-allocated byte buffer.
    """
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    buf = np.empty(arr.nbytes + alignment, dtype=np.uint8)
    offset = (-buf.ctypes.data) % alignment
    out = buf[offset : offset + arr.nbytes].view(np.float64)
    out[:] = arr.ravel()
    return out


# ------------------------------------------------------------------------- #
# Host-side (shader-core priced) backends.
# ------------------------------------------------------------------------- #
@dataclass
class _HostNeighborBackend:
    """Shared machinery of the CPU backends: validation, cost accounting.

    Subclasses implement ``_build()`` (index construction, sets
    ``build_seconds`` and optionally a device-memory allocation) and
    ``_scan()`` — the blocked query sweep that yields per-row hit counts,
    optionally the CSR index fragments, and the charged candidate /
    node-visit totals.  Counts, CSR and pair queries all derive from it.
    """

    points: np.ndarray
    radius: float
    device: RTDevice | None = None

    build_seconds: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.radius <= 0 or not np.isfinite(self.radius):
            raise ValueError("radius (eps) must be positive")
        self.points = ensure_points3d(self.points)
        self.device = self.device or RTDevice()
        self._mem_label: str | None = None
        self._build()

    def _build(self) -> None:  # pragma: no cover - overridden
        pass

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def num_prims(self) -> int:
        return self.num_points

    def _charge(self, *, num_rays: int, candidates: int, node_visits: int = 0,
                confirmed: int = 0) -> LaunchStats:
        """Charge one query launch to the device at shader-core rates."""
        counts = OpCounts(
            sm_node_visits=int(node_visits),
            distance_computations=int(candidates),
            kernel_launches=1,
        )
        seconds = self.device.charge(counts)
        return LaunchStats(
            num_rays=int(num_rays),
            confirmed_hits=int(confirmed),
            simulated_seconds=seconds,
            counts=counts,
        )

    def _resolve_queries(self, queries: np.ndarray | None) -> tuple[np.ndarray, bool]:
        """Query points plus the self-filter flag (dataset queries drop q == p)."""
        if queries is None:
            return self.points, True
        return ensure_points3d(queries, name="queries"), False

    def _scan(
        self, qpts: np.ndarray, self_query: bool, collect: bool
    ) -> tuple[np.ndarray, list[np.ndarray] | None, int, int]:
        """Blocked sweep: ``(row_counts, csr_parts, candidates, node_visits)``.

        ``csr_parts`` (only when ``collect``) are canonical per-block CSR
        index fragments: rows in query order, indices ascending.
        """
        raise NotImplementedError  # pragma: no cover - overridden

    # ------------------------------------------------------------------ #
    def neighbor_counts(
        self, queries: np.ndarray | None = None, *, min_count: int | None = None
    ) -> tuple[np.ndarray, LaunchStats]:
        """ε-neighbour count per query (self excluded for dataset queries).

        ``min_count`` is an early-exit hint the host backends cannot exploit;
        it is accepted for protocol compatibility and ignored.  No neighbour
        ids are stored — this is a pure counting sweep.
        """
        del min_count
        qpts, self_query = self._resolve_queries(queries)
        row_counts, _, candidates, node_visits = self._scan(qpts, self_query, collect=False)
        stats = self._charge(
            num_rays=qpts.shape[0], candidates=candidates,
            node_visits=node_visits, confirmed=int(row_counts.sum()),
        )
        return row_counts, stats

    def neighbor_csr(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """Confirmed ε-adjacency in canonical CSR form, built block-by-block."""
        qpts, self_query = self._resolve_queries(queries)
        row_counts, parts, candidates, node_visits = self._scan(qpts, self_query, collect=True)
        indptr = np.zeros(qpts.shape[0] + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
        stats = self._charge(
            num_rays=qpts.shape[0], candidates=candidates,
            node_visits=node_visits, confirmed=int(indices.size),
        )
        return indptr, indices, stats

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """Legacy pair-array surface: the CSR expanded to flat ``(q, p)``.

        Materialises the redundant query column; pipelines should consume
        :meth:`neighbor_csr` directly.
        """
        indptr, indices, stats = self.neighbor_csr(queries)
        return csr_row_ids(indptr), indices, stats

    def release(self) -> None:
        """Free the simulated device-side index."""
        if self._mem_label is not None:
            self.device.memory.free(self._mem_label)
            self._mem_label = None


@register_backend(
    "brute",
    description="Exact all-pairs distance search on the shader cores (O(n^2), index-free).",
    native=True,
)
@dataclass
class BruteNeighborBackend(_HostNeighborBackend):
    """The exact oracle: blocked all-pairs distances, no index at all.

    Memory stays O(``chunk_size`` · n): each block's distances run through
    the BLAS prescreen + exact confirm of
    :func:`~repro.neighbors.brute.pairwise_within_blocks`.
    """

    chunk_size: int = 512

    def _scan(self, qpts, self_query, collect):
        nq = qpts.shape[0]
        row_counts = np.zeros(nq, dtype=np.int64)
        parts: list[np.ndarray] | None = [] if collect else None
        for lo, qi, di in pairwise_within_blocks(
            qpts, self.points, self.radius, block_size=self.chunk_size
        ):
            if self_query:
                keep = qi != di
                qi, di = qi[keep], di[keep]
            hi = min(nq, lo + self.chunk_size)
            row_counts[lo:hi] = np.bincount(qi - lo, minlength=hi - lo)
            if parts is not None:
                parts.append(di)
        return row_counts, parts, nq * self.num_points, 0


@register_backend(
    "grid",
    description="Uniform ε-cell grid (the CUDA-DClust+ / DenseBox index) on the shader cores.",
    native=True,
)
@dataclass
class GridNeighborBackend(_HostNeighborBackend):
    """ε-cell grid: candidates come from the 3^d cells around each query.

    The stencil gather is fully vectorised over query blocks via the grid's
    flat CSR cell table (:meth:`~repro.neighbors.grid.UniformGrid.stencil_ranges`);
    there is no per-cell Python loop.
    """

    block_size: int = 4096

    def _build(self) -> None:
        self.grid = UniformGrid(self.points, self.radius)
        self.build_seconds = self.device.cost_model.build_time_s(self.num_points, unit="sm")
        self._mem_label = f"grid_backend_{id(self)}"
        self.device.memory.allocate(self._mem_label, self.grid.memory_bytes())
        self._soa: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def _grid_soa(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidate coordinates in cell order as three 32-byte-aligned arrays.

        The native stencil kernel streams these SoA lanes instead of chasing
        ``grid.order`` through the (n, 3) points array, so its inner distance
        loop reads three contiguous, vector-width-aligned streams.  Built
        lazily on the first native scan and cached for the backend's life.
        """
        if self._soa is None:
            gathered = self.points[self.grid.order]
            self._soa = tuple(
                _aligned_copy(np.ascontiguousarray(gathered[:, k]))
                for k in range(3)
            )
        return self._soa

    def _scan_native(self, qpts, self_query, collect):
        """The stencil sweep on the native tier (or ``None`` to use numpy).

        One C pass counts per-row hits (and the charged candidate total), a
        second fills the pre-sized canonical CSR fragment — byte-identical to
        the numpy block sweep below.
        """
        nk = native_dispatch.kernels()
        if nk is None:
            return None
        grid = self.grid
        soa = self._grid_soa()
        qpts = np.ascontiguousarray(qpts)
        row_counts = np.zeros(qpts.shape[0], dtype=np.int64)
        candidates = nk.grid_scan(
            qpts, soa, grid.order, grid.cell_table, grid.cell_indptr,
            grid.origin, grid.cell_size, grid.dims,
            self.radius * self.radius, self_query, row_counts=row_counts,
        )
        if candidates is None:
            return None
        if not collect:
            return row_counts, None, candidates, 0
        indptr = np.zeros(qpts.shape[0] + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.intp)
        nk.grid_scan(
            qpts, soa, grid.order, grid.cell_table, grid.cell_indptr,
            grid.origin, grid.cell_size, grid.dims,
            self.radius * self.radius, self_query,
            indptr=indptr, indices=indices,
        )
        return row_counts, [indices], candidates, 0

    def _scan(self, qpts, self_query, collect):
        native = self._scan_native(qpts, self_query, collect)
        if native is not None:
            return native
        r2 = self.radius * self.radius
        nq = qpts.shape[0]
        row_counts = np.zeros(nq, dtype=np.int64)
        parts: list[np.ndarray] | None = [] if collect else None
        candidates = 0
        for lo in range(0, nq, self.block_size):
            hi = min(nq, lo + self.block_size)
            starts, cnts = self.grid.stencil_ranges(qpts[lo:hi])
            per_q = cnts.sum(axis=1)
            candidates += int(per_q.sum())
            cand = self.grid.order[expand_ranges(starts.ravel(), cnts.ravel())]
            rep_q = np.repeat(np.arange(lo, hi, dtype=np.intp), per_q)
            d = qpts[rep_q] - self.points[cand]
            hit = np.einsum("ij,ij->i", d, d) <= r2
            if self_query:
                hit &= rep_q != cand
            hq, hc = rep_q[hit], cand[hit]
            order = np.lexsort((hc, hq))
            hq, hc = hq[order], hc[order]
            row_counts[lo:hi] = np.bincount(hq - lo, minlength=hi - lo)
            if parts is not None:
                parts.append(hc)
        return row_counts, parts, candidates, 0


@register_backend(
    "kdtree",
    description="Median-split KD-tree fixed-radius search on the shader cores.",
    native=True,
)
@dataclass
class KDTreeNeighborBackend(_HostNeighborBackend):
    """KD-tree search — the CPU fast path for interactive use and refits.

    The tree is a median-split KD-tree materialised in BVH array form
    (:func:`~repro.bvh.kdtree.build_kdtree` over eps-sphere boxes), so both
    query tiers reuse the parity-proven sphere traversal kernels: the numpy
    level-synchronous wavefront (:func:`~repro.bvh.traversal.point_query_csr`
    / counts) and the native DFS (``bvh_sphere``).  Charged node-visit and
    candidate counts are the real traversal counters — previously this
    backend wrapped scipy's cKDTree and charged a synthetic depth estimate.
    """

    leafsize: int = 16

    def _build(self) -> None:
        from ..bvh.kdtree import build_kdtree
        from ..geometry.aabb import AABB

        # eps-sphere boxes around each point, ulp-padded outward exactly like
        # SphereGeometry.bounds so AABB pruning stays conservative wrt the
        # rounded d^2 <= r^2 confirm.
        r = self.radius
        pad = 4.0 * np.finfo(np.float64).eps * (np.abs(self.points) + r)
        self.bvh = build_kdtree(
            AABB(self.points - r - pad, self.points + r + pad),
            leaf_size=self.leafsize,
        )
        self.build_seconds = self.device.cost_model.build_time_s(self.num_points, unit="sm")
        self._mem_label = f"kdtree_backend_{id(self)}"
        self.device.memory.allocate(self._mem_label, self.bvh.memory_bytes())

    def _confirm(self, qpts, self_query):
        """Exact-sphere Intersection program for the numpy traversal tier."""
        pts = self.points
        r2 = self.radius * self.radius

        def confirm(rep_q: np.ndarray, rep_p: np.ndarray) -> np.ndarray:
            d = qpts[rep_q] - pts[rep_p]
            hit = np.einsum("ij,ij->i", d, d) <= r2
            if self_query:
                hit &= rep_q != rep_p
            return hit

        return confirm

    def _scan_native(self, qpts, self_query, collect):
        """The KD sweep on the native DFS kernel (or ``None`` to use numpy)."""
        nk = native_dispatch.kernels()
        if nk is None:
            return None
        qpts = np.ascontiguousarray(qpts)
        nq = qpts.shape[0]
        row_counts = np.zeros(nq, dtype=np.int64)
        stats_buf = np.zeros(5, dtype=np.int64)
        kwargs = dict(exclude_self=self_query)
        ok = nk.bvh_sphere(
            qpts, qpts, self.bvh, self.points, self.radius * self.radius,
            row_counts=row_counts, stats=stats_buf, **kwargs,
        )
        if not ok:
            return None
        candidates = int(stats_buf[2])
        node_visits = int(stats_buf[0])
        if not collect:
            return row_counts, None, candidates, node_visits
        indptr = np.zeros(nq + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.intp)
        nk.bvh_sphere(
            qpts, qpts, self.bvh, self.points, self.radius * self.radius,
            indptr=indptr, indices=indices, **kwargs,
        )
        return row_counts, [indices], candidates, node_visits

    def _scan(self, qpts, self_query, collect):
        native = self._scan_native(qpts, self_query, collect)
        if native is not None:
            return native
        confirm = self._confirm(qpts, self_query)
        if not collect:
            counts, stats = point_query_counts_early_exit(self.bvh, qpts, confirm)
            return counts, None, stats.candidates, stats.node_visits
        indptr, indices, stats = point_query_csr(self.bvh, qpts, confirm)
        row_counts = np.diff(indptr).astype(np.int64)
        return row_counts, [indices], stats.candidates, stats.node_visits
