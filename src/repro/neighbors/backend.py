"""Pluggable fixed-radius neighbour backends.

:class:`NeighborBackend` is the substrate contract RT-DBSCAN's Algorithm 3
actually depends on: build an index over the dataset once, then answer

* ``neighbor_counts()`` — ε-neighbour count per point (stage 1), and
* ``neighbor_pairs()``  — all confirmed ``(query, neighbour)`` pairs (stage 2),

with the dataset's own points as the default queries and self pairs excluded
(the paper's ``q != s`` filter).  The RT-core ray query of Algorithm 2
(:class:`~repro.neighbors.rt_find.RTNeighborFinder`) is one implementation;
this module adds three host-side implementations behind the same protocol —
a uniform grid, a KD-tree and the exact brute-force oracle — so the same
clustering pipeline runs on any substrate.  All backends return *identical*
pair sets, which is what makes `RTDBSCAN(backend=...)` label-equivalent
across substrates; they differ only in the operations they charge to the
device cost model (CPU backends charge shader-core work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..api.registry import register_backend
from ..geometry.transforms import lift_to_3d, validate_points
from ..perf.cost_model import OpCounts
from ..rtcore.counters import LaunchStats
from ..rtcore.device import RTDevice
from .brute import pairwise_within
from .grid import UniformGrid

__all__ = [
    "NeighborBackend",
    "BruteNeighborBackend",
    "GridNeighborBackend",
    "KDTreeNeighborBackend",
]


@runtime_checkable
class NeighborBackend(Protocol):
    """Contract between the DBSCAN pipeline and a neighbour-search substrate."""

    radius: float
    #: simulated seconds spent building the index (0 for index-free backends).
    build_seconds: float

    @property
    def num_points(self) -> int: ...

    @property
    def num_prims(self) -> int: ...

    def neighbor_counts(
        self, queries: np.ndarray | None = None, *, min_count: int | None = None
    ) -> tuple[np.ndarray, LaunchStats]: ...

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]: ...

    def release(self) -> None: ...


# ------------------------------------------------------------------------- #
# Host-side (shader-core priced) backends.
# ------------------------------------------------------------------------- #
@dataclass
class _HostNeighborBackend:
    """Shared machinery of the CPU backends: validation, cost accounting.

    Subclasses implement ``_build()`` (index construction, sets
    ``build_seconds`` and optionally a device-memory allocation) and
    ``neighbor_pairs``; counts are derived from pairs by default.
    """

    points: np.ndarray
    radius: float
    device: RTDevice | None = None

    build_seconds: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.radius <= 0 or not np.isfinite(self.radius):
            raise ValueError("radius (eps) must be positive")
        self.points = lift_to_3d(validate_points(self.points))
        self.device = self.device or RTDevice()
        self._mem_label: str | None = None
        self._build()

    def _build(self) -> None:  # pragma: no cover - overridden
        pass

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def num_prims(self) -> int:
        return self.num_points

    def _charge(self, *, num_rays: int, candidates: int, node_visits: int = 0,
                confirmed: int = 0) -> LaunchStats:
        """Charge one query launch to the device at shader-core rates."""
        counts = OpCounts(
            sm_node_visits=int(node_visits),
            distance_computations=int(candidates),
            kernel_launches=1,
        )
        seconds = self.device.charge(counts)
        return LaunchStats(
            num_rays=int(num_rays),
            confirmed_hits=int(confirmed),
            simulated_seconds=seconds,
            counts=counts,
        )

    # ------------------------------------------------------------------ #
    def neighbor_counts(
        self, queries: np.ndarray | None = None, *, min_count: int | None = None
    ) -> tuple[np.ndarray, LaunchStats]:
        """ε-neighbour count per query (self excluded for dataset queries).

        ``min_count`` is an early-exit hint the host backends cannot exploit;
        it is accepted for protocol compatibility and ignored.
        """
        del min_count
        num_queries = self.num_points
        if queries is not None:
            num_queries = lift_to_3d(validate_points(queries)).shape[0]
        q, _, stats = self.neighbor_pairs(queries)
        counts = np.bincount(q, minlength=num_queries).astype(np.int64)
        return counts, stats

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:  # pragma: no cover - overridden
        raise NotImplementedError

    def release(self) -> None:
        """Free the simulated device-side index."""
        if self._mem_label is not None:
            self.device.memory.free(self._mem_label)
            self._mem_label = None


@register_backend(
    "brute",
    description="Exact all-pairs distance search on the shader cores (O(n^2), index-free).",
)
@dataclass
class BruteNeighborBackend(_HostNeighborBackend):
    """The exact oracle: chunked all-pairs distances, no index at all."""

    chunk_size: int = 2048

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        if queries is None:
            qpts, self_query = self.points, True
        else:
            qpts, self_query = lift_to_3d(validate_points(queries)), False
        q, p = pairwise_within(qpts, self.points, self.radius, chunk_size=self.chunk_size)
        if self_query:
            keep = q != p
            q, p = q[keep], p[keep]
        stats = self._charge(
            num_rays=qpts.shape[0],
            candidates=qpts.shape[0] * self.num_points,
            confirmed=q.size,
        )
        return q, p, stats


@register_backend(
    "grid",
    description="Uniform ε-cell grid (the CUDA-DClust+ / DenseBox index) on the shader cores.",
)
@dataclass
class GridNeighborBackend(_HostNeighborBackend):
    """ε-cell grid: candidates come from the 3^d cells around each query."""

    def _build(self) -> None:
        self.grid = UniformGrid(self.points, self.radius)
        self.build_seconds = self.device.cost_model.build_time_s(self.num_points, unit="sm")
        self._mem_label = f"grid_backend_{id(self)}"
        self.device.memory.allocate(self._mem_label, self.grid.memory_bytes())

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        r2 = self.radius * self.radius
        out_q: list[np.ndarray] = []
        out_p: list[np.ndarray] = []
        candidates = 0
        if queries is None:
            # Batch per occupied cell: every point in a cell shares the same
            # 3^d candidate neighbourhood.
            for cell_id in self.grid.cell_start:
                qi = self.grid.points_in_cell(cell_id)
                cand = self.grid.candidate_neighbors(self.points[qi[0]])
                candidates += qi.size * cand.size
                if cand.size == 0:
                    continue
                d = self.points[qi][:, None, :] - self.points[cand][None, :, :]
                hit = np.einsum("ijk,ijk->ij", d, d) <= r2
                a, b = np.nonzero(hit)
                qq, pp = qi[a], cand[b]
                keep = qq != pp
                out_q.append(qq[keep])
                out_p.append(pp[keep])
            num_rays = self.num_points
        else:
            # Batch external queries by grid cell, mirroring the self-query
            # path: all queries in one cell share the same 3^d candidate
            # neighbourhood.  The tiled partition layer leans on this — it
            # launches every owned point as an external query.
            qpts = lift_to_3d(validate_points(queries))
            qcell = self.grid.cell_id_of(qpts)
            order = np.argsort(qcell, kind="stable")
            sorted_cells = qcell[order]
            boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
            for group in np.split(order, boundaries):
                cand = self.grid.candidate_neighbors(qpts[group[0]])
                candidates += group.size * cand.size
                if cand.size == 0:
                    continue
                d = qpts[group][:, None, :] - self.points[cand][None, :, :]
                hit = np.einsum("ijk,ijk->ij", d, d) <= r2
                a, b = np.nonzero(hit)
                out_q.append(group[a])
                out_p.append(cand[b])
            num_rays = qpts.shape[0]
        q = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
        p = np.concatenate(out_p) if out_p else np.empty(0, dtype=np.intp)
        stats = self._charge(num_rays=num_rays, candidates=candidates, confirmed=q.size)
        return q.astype(np.intp), p.astype(np.intp), stats


@register_backend(
    "kdtree",
    description="KD-tree fixed-radius search (scipy cKDTree) on the shader cores.",
)
@dataclass
class KDTreeNeighborBackend(_HostNeighborBackend):
    """KD-tree search — the CPU fast path for interactive use and refits."""

    leafsize: int = 16

    def _build(self) -> None:
        from scipy.spatial import cKDTree

        self.tree = cKDTree(self.points, leafsize=self.leafsize)
        self.build_seconds = self.device.cost_model.build_time_s(self.num_points, unit="sm")
        self._mem_label = f"kdtree_backend_{id(self)}"
        # Tree nodes + a copy of the coordinates, roughly 2x the point bytes.
        self.device.memory.allocate(self._mem_label, 2 * self.points.nbytes)

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        if queries is None:
            qpts, self_query = self.points, True
        else:
            qpts, self_query = lift_to_3d(validate_points(queries)), False
        lists = self.tree.query_ball_point(qpts, r=self.radius)
        lens = np.asarray([len(lst) for lst in lists], dtype=np.intp)
        q = np.repeat(np.arange(qpts.shape[0], dtype=np.intp), lens)
        p = (
            np.concatenate([np.asarray(lst, dtype=np.intp) for lst in lists if lst])
            if lens.sum()
            else np.empty(0, dtype=np.intp)
        )
        candidates = int(lens.sum())
        if self_query:
            keep = q != p
            q, p = q[keep], p[keep]
        depth = max(1, math.ceil(math.log2(max(self.num_points, 2))))
        stats = self._charge(
            num_rays=qpts.shape[0],
            candidates=candidates,
            node_visits=qpts.shape[0] * depth,
            confirmed=q.size,
        )
        return q, p, stats
