"""Uniform-grid fixed-radius neighbour search.

CUDA-DClust+ (and the DenseBox family the paper cites) index the dataset with
a Cartesian grid whose cell width equals ε: a point's ε-neighbourhood can
only contain points from its own cell and the immediately adjacent cells.
This module provides that index for the CUDA-DClust+ baseline plus a
standalone query interface used in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

__all__ = ["UniformGrid"]


@dataclass
class UniformGrid:
    """A uniform grid over 2D/3D points with cell width equal to the query radius.

    Parameters
    ----------
    points:
        ``(n, d)`` points with d in {2, 3}.
    cell_size:
        Edge length of each grid cell; for DBSCAN indexes this is ε.
    """

    points: np.ndarray
    cell_size: float
    origin: np.ndarray = field(init=False)
    dims: np.ndarray = field(init=False)
    cell_ids: np.ndarray = field(init=False)
    order: np.ndarray = field(init=False)
    cell_start: dict = field(init=False)

    def __post_init__(self) -> None:
        self.points = np.atleast_2d(np.asarray(self.points, dtype=np.float64))
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if self.points.shape[1] not in (2, 3):
            raise ValueError("UniformGrid supports 2D and 3D points only")
        self.origin = self.points.min(axis=0)
        extent = self.points.max(axis=0) - self.origin
        self.dims = np.maximum(np.floor(extent / self.cell_size).astype(np.int64) + 1, 1)
        coords = self._cell_coords(self.points)
        self.cell_ids = self._flatten(coords)
        self.order = np.argsort(self.cell_ids, kind="stable")
        sorted_ids = self.cell_ids[self.order]
        unique_ids, starts, counts = np.unique(sorted_ids, return_index=True, return_counts=True)
        self.cell_start = {
            int(cid): (int(s), int(c)) for cid, s, c in zip(unique_ids, starts, counts)
        }

    # ------------------------------------------------------------------ #
    def _cell_coords(self, pts: np.ndarray) -> np.ndarray:
        coords = np.floor((pts - self.origin) / self.cell_size).astype(np.int64)
        return np.clip(coords, 0, self.dims - 1)

    def _flatten(self, coords: np.ndarray) -> np.ndarray:
        if self.points.shape[1] == 2:
            return coords[:, 0] * self.dims[1] + coords[:, 1]
        return (coords[:, 0] * self.dims[1] + coords[:, 1]) * self.dims[2] + coords[:, 2]

    @property
    def num_cells(self) -> int:
        return int(np.prod(self.dims))

    @property
    def num_occupied_cells(self) -> int:
        return len(self.cell_start)

    def points_in_cell(self, cell_id: int) -> np.ndarray:
        """Indices of the points stored in one flattened cell id."""
        entry = self.cell_start.get(int(cell_id))
        if entry is None:
            return np.empty(0, dtype=np.intp)
        start, count = entry
        return self.order[start : start + count]

    def cell_id_of(self, pts: np.ndarray) -> np.ndarray:
        """Flattened cell id of each point, vectorised.

        Coordinates are clipped into the grid extent, so out-of-extent
        points (e.g. external queries near the data boundary) land in the
        nearest boundary cell — consistent with
        :meth:`candidate_neighbors`, which clips the same way.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        return self._flatten(self._cell_coords(pts))

    def candidate_neighbors(self, query: np.ndarray) -> np.ndarray:
        """Point indices in the 3^d cells surrounding ``query`` (unfiltered)."""
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        coord = self._cell_coords(query)[0]
        d = self.points.shape[1]
        out = []
        for offset in product((-1, 0, 1), repeat=d):
            c = coord + np.asarray(offset)
            if np.any(c < 0) or np.any(c >= self.dims):
                continue
            cid = self._flatten(c.reshape(1, -1))[0]
            out.append(self.points_in_cell(int(cid)))
        return np.concatenate(out) if out else np.empty(0, dtype=np.intp)

    def query_radius(self, query: np.ndarray, radius: float | None = None,
                     *, exclude_index: int | None = None) -> np.ndarray:
        """Exact fixed-radius neighbours of one query point.

        ``radius`` defaults to the grid's cell size (the DBSCAN ε); the
        candidate set from the surrounding cells is filtered by exact
        distance.  ``exclude_index`` removes the query point itself when it
        is part of the indexed dataset.
        """
        r = self.cell_size if radius is None else float(radius)
        if r > self.cell_size + 1e-12:
            raise ValueError("query radius may not exceed the grid cell size")
        cand = self.candidate_neighbors(query)
        if cand.size == 0:
            return cand
        d = self.points[cand] - np.asarray(query, dtype=np.float64)
        ok = np.einsum("ij,ij->i", d, d) <= r * r
        result = cand[ok]
        if exclude_index is not None:
            result = result[result != exclude_index]
        return result

    def candidate_stats(self) -> dict:
        """Occupancy summary used by the CUDA-DClust+ cost accounting."""
        counts = np.array([c for _, c in self.cell_start.values()], dtype=np.int64)
        return {
            "occupied_cells": int(counts.size),
            "max_per_cell": int(counts.max()) if counts.size else 0,
            "mean_per_cell": float(counts.mean()) if counts.size else 0.0,
        }

    def memory_bytes(self) -> int:
        """Approximate device footprint of the grid index."""
        return int(self.order.nbytes + self.cell_ids.nbytes + len(self.cell_start) * 16)
