"""Uniform-grid fixed-radius neighbour search.

CUDA-DClust+ (and the DenseBox family the paper cites) index the dataset with
a Cartesian grid whose cell width equals ε: a point's ε-neighbourhood can
only contain points from its own cell and the immediately adjacent cells.

The index is stored as a **flat CSR cell table** — exactly how the GPU
implementations lay it out: point ids sorted by flattened cell id
(``order``), the sorted array of occupied cell ids (``cell_table``) and an
offset array (``cell_indptr``) delimiting each occupied cell's slice of
``order``.  Cell lookups are binary searches (``np.searchsorted``) and the
3^d-stencil candidate gather is fully vectorised over whole query batches —
there is no per-cell Python dictionary or ``itertools.product`` loop
anywhere on the query path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from ..adjacency import expand_ranges

__all__ = ["UniformGrid"]


@dataclass
class UniformGrid:
    """A uniform grid over 2D/3D points with cell width equal to the query radius.

    Parameters
    ----------
    points:
        ``(n, d)`` points with d in {2, 3}.
    cell_size:
        Edge length of each grid cell; for DBSCAN indexes this is ε.

    Attributes
    ----------
    order:
        Point ids sorted by flattened cell id; each occupied cell owns a
        contiguous slice.
    cell_table:
        Sorted flattened ids of the occupied cells.
    cell_indptr:
        ``(num_occupied + 1,)`` offsets into ``order`` delimiting each
        occupied cell's slice.
    """

    points: np.ndarray
    cell_size: float
    origin: np.ndarray = field(init=False)
    dims: np.ndarray = field(init=False)
    cell_ids: np.ndarray = field(init=False)
    order: np.ndarray = field(init=False)
    cell_table: np.ndarray = field(init=False)
    cell_indptr: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.points = np.atleast_2d(np.asarray(self.points, dtype=np.float64))
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if self.points.shape[1] not in (2, 3):
            raise ValueError("UniformGrid supports 2D and 3D points only")
        self.origin = self.points.min(axis=0)
        extent = self.points.max(axis=0) - self.origin
        self.dims = np.maximum(np.floor(extent / self.cell_size).astype(np.int64) + 1, 1)
        coords = self._cell_coords(self.points)
        self.cell_ids = self._flatten(coords)
        self.order = np.argsort(self.cell_ids, kind="stable")
        sorted_ids = self.cell_ids[self.order]
        self.cell_table, counts = np.unique(sorted_ids, return_counts=True)
        self.cell_indptr = np.zeros(self.cell_table.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self.cell_indptr[1:])
        # The 3^d stencil offsets, flattened once for the vectorised gather.
        d = self.points.shape[1]
        self._stencil = np.array(list(product((-1, 0, 1), repeat=d)), dtype=np.int64)

    # ------------------------------------------------------------------ #
    def _cell_coords(self, pts: np.ndarray) -> np.ndarray:
        coords = np.floor((pts - self.origin) / self.cell_size).astype(np.int64)
        return np.clip(coords, 0, self.dims - 1)

    def _flatten(self, coords: np.ndarray) -> np.ndarray:
        if self.points.shape[1] == 2:
            return coords[:, 0] * self.dims[1] + coords[:, 1]
        return (coords[:, 0] * self.dims[1] + coords[:, 1]) * self.dims[2] + coords[:, 2]

    @property
    def num_cells(self) -> int:
        return int(np.prod(self.dims))

    @property
    def num_occupied_cells(self) -> int:
        return int(self.cell_table.size)

    def points_in_cell(self, cell_id: int) -> np.ndarray:
        """Indices of the points stored in one flattened cell id."""
        pos = int(np.searchsorted(self.cell_table, int(cell_id)))
        if pos >= self.cell_table.size or self.cell_table[pos] != int(cell_id):
            return np.empty(0, dtype=np.intp)
        return self.order[self.cell_indptr[pos] : self.cell_indptr[pos + 1]]

    def cell_id_of(self, pts: np.ndarray) -> np.ndarray:
        """Flattened cell id of each point, vectorised.

        Coordinates are clipped into the grid extent, so out-of-extent
        points (e.g. external queries near the data boundary) land in the
        nearest boundary cell — consistent with
        :meth:`candidate_neighbors`, which clips the same way.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        return self._flatten(self._cell_coords(pts))

    # ------------------------------------------------------------------ #
    def stencil_ranges(self, pts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate slices of ``order`` for every query's 3^d stencil.

        For a batch of ``m`` query points returns ``(starts, counts)``, both
        of shape ``(m, 3^d)``: entry ``[i, s]`` delimits the slice of
        ``order`` holding the points of the ``s``-th stencil cell around
        query ``i`` (count 0 for out-of-grid or unoccupied cells).  One
        vectorised binary search per batch — no per-cell Python.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        coords = self._cell_coords(pts)
        ncoord = coords[:, None, :] + self._stencil[None, :, :]
        valid = ((ncoord >= 0) & (ncoord < self.dims)).all(axis=2)
        flat = ncoord.reshape(-1, pts.shape[1])
        # Clip before flattening so invalid coords still index safely; their
        # counts are zeroed by the validity mask below.
        nid = self._flatten(np.clip(flat, 0, self.dims - 1))
        pos = np.searchsorted(self.cell_table, nid)
        pos[pos == self.cell_table.size] = 0  # safe index; masked as unoccupied below
        hit = (self.cell_table[pos] == nid) & valid.reshape(-1)
        starts = np.where(hit, self.cell_indptr[pos], 0)
        counts = np.where(hit, self.cell_indptr[pos + 1] - self.cell_indptr[pos], 0)
        shape = (pts.shape[0], self._stencil.shape[0])
        return starts.reshape(shape), counts.reshape(shape)

    def candidate_neighbors(self, query: np.ndarray) -> np.ndarray:
        """Point indices in the 3^d cells surrounding ``query`` (unfiltered)."""
        starts, counts = self.stencil_ranges(np.asarray(query, dtype=np.float64).reshape(1, -1))
        return self.order[expand_ranges(starts.ravel(), counts.ravel())]

    def query_radius(self, query: np.ndarray, radius: float | None = None,
                     *, exclude_index: int | None = None) -> np.ndarray:
        """Exact fixed-radius neighbours of one query point.

        ``radius`` defaults to the grid's cell size (the DBSCAN ε); the
        candidate set from the surrounding cells is filtered by exact
        distance.  ``exclude_index`` removes the query point itself when it
        is part of the indexed dataset.
        """
        r = self.cell_size if radius is None else float(radius)
        if r > self.cell_size + 1e-12:
            raise ValueError("query radius may not exceed the grid cell size")
        cand = self.candidate_neighbors(query)
        if cand.size == 0:
            return cand
        d = self.points[cand] - np.asarray(query, dtype=np.float64)
        ok = np.einsum("ij,ij->i", d, d) <= r * r
        result = cand[ok]
        if exclude_index is not None:
            result = result[result != exclude_index]
        return result

    def candidate_stats(self) -> dict:
        """Occupancy summary used by the CUDA-DClust+ cost accounting."""
        counts = np.diff(self.cell_indptr)
        return {
            "occupied_cells": int(counts.size),
            "max_per_cell": int(counts.max()) if counts.size else 0,
            "mean_per_cell": float(counts.mean()) if counts.size else 0.0,
        }

    def memory_bytes(self) -> int:
        """Approximate device footprint of the grid index."""
        return int(
            self.order.nbytes + self.cell_ids.nbytes
            + self.cell_table.nbytes + self.cell_indptr.nbytes
        )
