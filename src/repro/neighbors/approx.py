"""Approximate fixed-radius neighbour backends — the speed/agreement tier.

Every other backend in this package is **exact**: it returns the true
ε-adjacency and therefore bit-identical DBSCAN labels.  This module adds two
deliberately *inexact* substrates behind the same
:class:`~repro.neighbors.backend.NeighborBackend` protocol, registered as the
``lsh`` and ``sampled`` backends:

* :class:`LSHNeighborBackend` — random-projection LSH bucketing.  Each probe
  hashes every point onto a random direction, quantised into buckets of
  width ``width_factor · ε`` with a random offset; a query's candidates are
  the points sharing one of its buckets across all probes.  Candidates then
  run through the same exact blocked distance confirm the brute oracle uses
  (:func:`~repro.neighbors.brute.pairwise_within_blocks` semantics), so the
  backend has **perfect precision** — every reported pair is a true ε-pair —
  and recall below one: true pairs that never share a bucket are missed.
  The exhaustive BLAS prescreen of the brute backend is exactly what is
  skipped; that is the speed trade.
* :class:`SampledNeighborBackend` — sampled-candidate prescreen: candidates
  are a seeded random subset of ``sample_rate · n`` points, confirmed
  exactly.  Recall per edge ≈ ``sample_rate``; precision is again perfect.

The exactness contract of the tier:

* reported pairs are always true ε-pairs (the confirm is bit-exact), so
  approximate core counts never exceed the true counts and the approximate
  core set is a subset of the exact one;
* with a fixed ``seed``, raising the speed/recall knob (``recall_target`` /
  ``num_probes`` for LSH, ``sample_rate`` for sampling) only ever *adds*
  candidates — probe tables and sample sets are nested by construction — so
  the discovered edge set grows monotonically with the knob;
* at the maximum knob setting (``recall_target=1.0`` / ``sample_rate=1.0``)
  both backends degenerate to the exact blocked brute sweep and are
  bit-identical to the ``brute`` oracle.

Because labels through these backends are *not* bit-identical to the exact
reference, every run should carry a quantified agreement report (ARI plus
core/noise/partition agreement) — see :func:`repro.metrics.agreement_summary`,
``repro.cluster(..., reference=...)`` and the ``approx`` bench experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..adjacency import expand_ranges
from ..api.registry import register_backend
from ..native import dispatch as native_dispatch
from .backend import _HostNeighborBackend
from .brute import pairwise_within_blocks

__all__ = [
    "LSHNeighborBackend",
    "SampledNeighborBackend",
    "per_probe_recall",
    "probes_for_recall",
]


def per_probe_recall(radius: float, width: float) -> float:
    """Estimated probability that one probe co-buckets a worst-case ε-pair.

    For two points at distance ``radius``, the projected separation onto a
    standard-normal direction is half-normal with mean ``radius·sqrt(2/π)``;
    with a uniformly random bucket offset the co-bucket probability given a
    projected separation ``s`` is ``max(0, 1 − s/width)``.  Evaluating at the
    mean separation gives a serviceable closed form, clamped away from 0/1 so
    the probe-count planner below stays finite.
    """
    s = math.sqrt(2.0 / math.pi) * radius / width
    return min(0.95, max(0.05, 1.0 - s))


def probes_for_recall(
    recall_target: float, *, radius: float, width: float, max_probes: int = 32
) -> int | None:
    """Number of independent probes needed to reach ``recall_target``.

    Probes miss independently, so ``L`` probes reach recall
    ``1 − (1 − p1)^L`` with ``p1`` the single-probe estimate above.  Returns
    ``None`` for ``recall_target >= 1.0``: no finite probe count guarantees
    full recall, which is the signal to fall back to the exhaustive sweep.
    """
    if not 0.0 < recall_target <= 1.0:
        raise ValueError(
            f"recall_target must be in (0, 1], got {recall_target}"
        )
    if recall_target >= 1.0:
        return None
    p1 = per_probe_recall(radius, width)
    needed = math.log1p(-recall_target) / math.log1p(-p1)
    return max(1, min(int(max_probes), math.ceil(needed)))


def _brute_scan(backend, qpts, self_query, collect):
    """The exact blocked sweep (shared max-knob fallback of both backends)."""
    nq = qpts.shape[0]
    row_counts = np.zeros(nq, dtype=np.int64)
    parts: list[np.ndarray] | None = [] if collect else None
    for lo, qi, di in pairwise_within_blocks(
        qpts, backend.points, backend.radius, block_size=backend.block_size
    ):
        if self_query:
            keep = qi != di
            qi, di = qi[keep], di[keep]
        hi = min(nq, lo + backend.block_size)
        row_counts[lo:hi] = np.bincount(qi - lo, minlength=hi - lo)
        if parts is not None:
            parts.append(di)
    return row_counts, parts, nq * backend.num_points, 0


@register_backend(
    "lsh",
    description="Approximate random-projection LSH bucketing with exact confirm "
                "(recall_target/num_probes speed knob).",
    exact=False,
    native=True,
    knobs=("recall_target", "num_probes", "width_factor", "seed", "max_probes",
           "block_size"),
)
@dataclass
class LSHNeighborBackend(_HostNeighborBackend):
    """Random-projection LSH: tunable-recall candidates, exact confirm.

    Parameters
    ----------
    recall_target:
        Desired per-edge recall in ``(0, 1]``.  Mapped to a probe count with
        :func:`probes_for_recall`; ``1.0`` switches to the exhaustive exact
        sweep (bit-identical to the ``brute`` backend).
    num_probes:
        Explicit probe-table count, overriding the ``recall_target`` mapping.
    width_factor:
        Bucket width in units of ε.  Wider buckets raise per-probe recall
        but admit more candidates per query.
    seed:
        Seed of the probe directions/offsets.  Probe tables are generated
        sequentially, so two backends sharing a seed have *nested* tables:
        the one with more probes discovers a superset of the other's pairs.
    """

    recall_target: float = 0.9
    num_probes: int | None = None
    width_factor: float = 4.0
    seed: int = 0
    max_probes: int = 32
    block_size: int = 4096

    def _build(self) -> None:
        if self.num_probes is not None and int(self.num_probes) < 1:
            raise ValueError(f"num_probes must be a positive integer, got {self.num_probes}")
        if self.width_factor <= 0 or not np.isfinite(self.width_factor):
            raise ValueError(f"width_factor must be positive, got {self.width_factor}")
        self.width = float(self.width_factor) * self.radius
        if self.num_probes is not None:
            probes: int | None = int(self.num_probes)
        else:
            probes = probes_for_recall(
                self.recall_target, radius=self.radius, width=self.width,
                max_probes=self.max_probes,
            )
        self.exhaustive = probes is None
        # Probes are drawn one (direction, offset) pair at a time so that a
        # fixed seed yields nested tables across different probe counts —
        # the monotonicity contract of the tier.
        rng = np.random.default_rng(self.seed)
        self._directions: list[np.ndarray] = []
        self._offsets: list[float] = []
        self._orders: list[np.ndarray] = []
        self._sorted_keys: list[np.ndarray] = []
        table_bytes = 0
        for _ in range(probes or 0):
            direction = rng.normal(size=3)
            offset = float(rng.uniform(0.0, self.width))
            keys = self._hash(self.points, direction, offset)
            order = np.argsort(keys, kind="stable").astype(np.intp)
            self._directions.append(direction)
            self._offsets.append(offset)
            self._orders.append(order)
            self._sorted_keys.append(keys[order])
            table_bytes += order.nbytes + keys.nbytes
        self.build_seconds = (
            self.device.cost_model.build_time_s(self.num_points, unit="sm")
            if not self.exhaustive else 0.0
        )
        if table_bytes:
            self._mem_label = f"lsh_backend_{id(self)}"
            self.device.memory.allocate(self._mem_label, table_bytes)

    @property
    def effective_probes(self) -> int:
        """Number of probe tables actually built (0 in exhaustive mode)."""
        return len(self._orders)

    def _hash(self, pts: np.ndarray, direction: np.ndarray, offset: float) -> np.ndarray:
        return np.floor((pts @ direction + offset) / self.width).astype(np.int64)

    def _scan(self, qpts, self_query, collect):
        if self.exhaustive:
            return _brute_scan(self, qpts, self_query, collect)
        r2 = self.radius * self.radius
        n = self.num_points
        nq = qpts.shape[0]
        row_counts = np.zeros(nq, dtype=np.int64)
        parts: list[np.ndarray] | None = [] if collect else None
        candidates = 0
        for lo in range(0, nq, self.block_size):
            hi = min(nq, lo + self.block_size)
            block = qpts[lo:hi]
            rep_parts: list[np.ndarray] = []
            cand_parts: list[np.ndarray] = []
            for direction, offset, order, sorted_keys in zip(
                self._directions, self._offsets, self._orders, self._sorted_keys
            ):
                qkeys = self._hash(block, direction, offset)
                starts = np.searchsorted(sorted_keys, qkeys, side="left")
                cnts = np.searchsorted(sorted_keys, qkeys, side="right") - starts
                cand_parts.append(order[expand_ranges(starts, cnts)])
                rep_parts.append(
                    np.repeat(np.arange(lo, hi, dtype=np.intp), cnts)
                )
            rep_q = np.concatenate(rep_parts) if rep_parts else np.empty(0, dtype=np.intp)
            cand = np.concatenate(cand_parts) if cand_parts else np.empty(0, dtype=np.intp)
            candidates += int(rep_q.size)
            # Dedupe pairs discovered by several probes; the sorted unique
            # composite key is (q, candidate) in canonical CSR order.
            pair_key = np.unique(rep_q.astype(np.int64) * n + cand)
            rep_q = (pair_key // n).astype(np.intp)
            cand = (pair_key % n).astype(np.intp)
            if self._confirm_native(
                block, lo, hi, rep_q, cand, r2, self_query, row_counts, parts
            ):
                continue
            d = block[rep_q - lo] - self.points[cand]
            hit = np.einsum("ij,ij->i", d, d) <= r2
            if self_query:
                hit &= rep_q != cand
            hq, hc = rep_q[hit], cand[hit]
            row_counts[lo:hi] = np.bincount(hq - lo, minlength=hi - lo)
            if parts is not None:
                parts.append(hc)
        return row_counts, parts, candidates, nq * self.effective_probes

    def _confirm_native(
        self, block, lo, hi, rep_q, cand, r2, self_query, row_counts, parts
    ) -> bool:
        """Confirm one block's deduped pairs on the native tier.

        ``rep_q``/``cand`` come out of the composite-key dedupe sorted by
        ``(query, candidate)``, so each row's pair range is found with one
        ``searchsorted`` and hits emitted in pair order are already the
        canonical ascending CSR row — the C kernel never needs a sort.
        Fills ``row_counts[lo:hi]`` (and appends the indices fragment when
        collecting); returns False to run the numpy confirm instead.
        """
        nk = native_dispatch.kernels()
        if nk is None:
            return False
        qblock = np.ascontiguousarray(block)
        cands = np.ascontiguousarray(cand, dtype=np.int64)
        pair_indptr = np.ascontiguousarray(
            np.searchsorted(rep_q, np.arange(lo, hi + 1)), dtype=np.int64
        )
        rc = np.zeros(hi - lo, dtype=np.int64)
        if not nk.confirm_pairs(
            qblock, lo, self.points, cands, pair_indptr, r2, self_query,
            row_counts=rc,
        ):
            return False
        row_counts[lo:hi] = rc
        if parts is not None:
            indptr = np.zeros(hi - lo + 1, dtype=np.int64)
            np.cumsum(rc, out=indptr[1:])
            indices = np.empty(int(indptr[-1]), dtype=np.intp)
            nk.confirm_pairs(
                qblock, lo, self.points, cands, pair_indptr, r2, self_query,
                indptr=indptr, indices=indices,
            )
            parts.append(indices)
        return True


@register_backend(
    "sampled",
    description="Approximate sampled-candidate prescreen with exact confirm "
                "(sample_rate speed knob).",
    exact=False,
    native=True,
    knobs=("sample_rate", "seed", "block_size"),
)
@dataclass
class SampledNeighborBackend(_HostNeighborBackend):
    """Sampled-candidate search: confirm against a seeded point subset.

    The candidate pool is a fixed random subset of ``sample_rate · n``
    points drawn once at build time from a seeded permutation, so two
    backends sharing a seed have *nested* samples across different rates.
    Every query runs the exact blocked confirm against the pool only;
    per-edge recall is therefore ≈ ``sample_rate`` and precision is perfect.
    ``sample_rate=1.0`` is bit-identical to the ``brute`` oracle.
    """

    sample_rate: float = 0.5
    seed: int = 0
    block_size: int = 1024

    def _build(self) -> None:
        if not 0.0 < self.sample_rate <= 1.0 or not np.isfinite(self.sample_rate):
            raise ValueError(f"sample_rate must be in (0, 1], got {self.sample_rate}")
        n = self.num_points
        if self.sample_rate >= 1.0:
            k = n
        else:
            k = min(n, max(1, math.ceil(self.sample_rate * n))) if n else 0
        perm = np.random.default_rng(self.seed).permutation(n)
        self.sample = np.sort(perm[:k]).astype(np.intp)

    @property
    def sample_size(self) -> int:
        return int(self.sample.size)

    def _scan(self, qpts, self_query, collect):
        if self.sample_size == self.num_points:
            return _brute_scan(self, qpts, self_query, collect)
        nq = qpts.shape[0]
        pool = self.points[self.sample]
        row_counts = np.zeros(nq, dtype=np.int64)
        parts: list[np.ndarray] | None = [] if collect else None
        for lo, qi, di in pairwise_within_blocks(
            qpts, pool, self.radius, block_size=self.block_size
        ):
            gi = self.sample[di]  # ascending per row because sample is sorted
            if self_query:
                keep = qi != gi
                qi, gi = qi[keep], gi[keep]
            hi = min(nq, lo + self.block_size)
            row_counts[lo:hi] = np.bincount(qi - lo, minlength=hi - lo)
            if parts is not None:
                parts.append(gi)
        return row_counts, parts, nq * self.sample_size, 0
