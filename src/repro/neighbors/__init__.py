"""Fixed-radius neighbour search primitives.

Contains the paper's RT-FindNeighborhood primitive (Algorithm 2) on top of
the simulated RT device, the exact brute-force oracle used by the tests, the
uniform-grid index used by the CUDA-DClust+ baseline, and kNN helpers for
ε selection.
"""

from .brute import brute_force_neighbor_counts, brute_force_neighbors, pairwise_within
from .grid import UniformGrid
from .knn import knn_brute_force, kth_neighbor_distances, suggest_eps
from .rt_find import RTNeighborFinder, rt_find_neighbors

__all__ = [
    "brute_force_neighbor_counts",
    "brute_force_neighbors",
    "pairwise_within",
    "UniformGrid",
    "knn_brute_force",
    "kth_neighbor_distances",
    "suggest_eps",
    "RTNeighborFinder",
    "rt_find_neighbors",
]
