"""Fixed-radius neighbour search primitives.

Contains the paper's RT-FindNeighborhood primitive (Algorithm 2) on top of
the simulated RT device, the exact brute-force oracle used by the tests, the
uniform-grid index used by the CUDA-DClust+ baseline, and kNN helpers for
ε selection.  All of them are unified behind the :class:`NeighborBackend`
protocol — registered as the ``rt`` / ``grid`` / ``kdtree`` / ``brute``
backends — so the DBSCAN pipeline can run on any search substrate
(see :mod:`repro.neighbors.backend`).
"""

from .approx import (
    LSHNeighborBackend,
    SampledNeighborBackend,
    probes_for_recall,
)
from .backend import (
    BruteNeighborBackend,
    GridNeighborBackend,
    KDTreeNeighborBackend,
    NeighborBackend,
)
from .brute import (
    brute_force_neighbor_counts,
    brute_force_neighbors,
    pairwise_within,
    pairwise_within_blocks,
)
from .grid import UniformGrid
from .knn import knn_brute_force, kth_neighbor_distances, suggest_eps
from .rt_find import RTNeighborFinder, rt_find_neighbors

__all__ = [
    "NeighborBackend",
    "LSHNeighborBackend",
    "SampledNeighborBackend",
    "probes_for_recall",
    "BruteNeighborBackend",
    "GridNeighborBackend",
    "KDTreeNeighborBackend",
    "brute_force_neighbor_counts",
    "brute_force_neighbors",
    "pairwise_within",
    "pairwise_within_blocks",
    "UniformGrid",
    "knn_brute_force",
    "kth_neighbor_distances",
    "suggest_eps",
    "RTNeighborFinder",
    "rt_find_neighbors",
]
