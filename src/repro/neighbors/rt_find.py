"""RT-FindNeighborhood — the paper's Algorithm 2.

``findNeighborhood(p, S, ε)`` is reduced to a ray-tracing query: every point
of the dataset becomes a solid sphere of radius ε, and an infinitesimally
short ray launched from the query point intersects exactly the spheres whose
centres lie within ε (Section III-B/III-C).  ``RTNeighborFinder`` wraps the
scene setup (OWL context, geometry, acceleration-structure build) and exposes
the two query flavours DBSCAN needs:

* ``neighbor_counts``  — count ε-neighbours per point (stage 1 of Algorithm 3);
* ``neighbor_csr``     — the confirmed ε-adjacency in canonical CSR form
  (stage 2), produced chunk-by-chunk so the pair set is never materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..adjacency import csr_row_ids
from ..api.registry import register_backend
from ..geometry.transforms import ensure_points3d
from ..rtcore.counters import LaunchStats
from ..rtcore.device import RTDevice
from ..rtcore.owl import OWLContext, OWLGroup, owl_context_create

__all__ = ["RTNeighborFinder", "rt_find_neighbors"]


@register_backend(
    "rt",
    description="ε-sphere ray queries on the simulated RT cores (the paper's Algorithm 2).",
    native=True,
)
@dataclass
class RTNeighborFinder:
    """Fixed-radius neighbour search backed by the simulated RT device.

    Parameters
    ----------
    points:
        ``(n, 2)`` or ``(n, 3)`` data points.  2D inputs are lifted to 3D
        with z = 0, as the paper does for planar datasets.
    radius:
        The ε query radius (also the radius of every scene sphere).
    device:
        Simulated device; a fresh RTX 2060-like device is created if omitted.
    builder, leaf_size, chunk_size:
        Acceleration-structure and launch parameters forwarded to the
        pipeline.
    triangle_mode:
        When True the spheres are tessellated into triangles and hits are
        routed through the AnyHit program (the Section VI-C ablation).
    """

    points: np.ndarray
    radius: float
    device: RTDevice | None = None
    builder: str = "lbvh"
    leaf_size: int = 4
    chunk_size: int = 16384
    triangle_mode: bool = False
    triangle_subdivisions: int = 0

    context: OWLContext = field(default=None, init=False)  # type: ignore[assignment]
    group: OWLGroup = field(default=None, init=False)  # type: ignore[assignment]
    build_seconds: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("radius (eps) must be positive")
        # One validated float64 lift; the scene geometry, the intersection
        # programs and any later refit all share this single array instead of
        # re-validating (and re-copying) per step.
        self.points = ensure_points3d(self.points)
        self.device = self.device or RTDevice()
        self.context = owl_context_create(self.device)
        if self.triangle_mode:
            _, geom = self.context.create_triangle_geom_type(
                self.points, self.radius, subdivisions=self.triangle_subdivisions
            )
        else:
            _, geom = self.context.create_sphere_geom_type(self.points, self.radius)
        self.group = self.context.build_group(
            geom, builder=self.builder, leaf_size=self.leaf_size, chunk_size=self.chunk_size
        )
        self.build_seconds = self.group.build_seconds

    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def num_prims(self) -> int:
        """Scene primitives (spheres, or triangles in triangle mode)."""
        return len(self.group.geom.primitives)

    def _external_programs(self, query_pts: np.ndarray):
        """Intersection program for query points that are not the dataset.

        The default sphere program assumes the launch rays originate at the
        dataset points themselves (so the ``q != s`` self filter is an index
        comparison); external queries need a program bound to their own
        coordinates and no self filter.
        """
        from ..rtcore.programs import ProgramGroup

        centers = self.points
        r2 = self.radius * self.radius

        def intersection(query_idx: np.ndarray, prim_idx: np.ndarray) -> np.ndarray:
            if self.triangle_mode:
                targets = centers[self.group.geom.primitives.owners[prim_idx]]
            else:
                targets = centers[prim_idx]
            d = query_pts[query_idx] - targets
            return np.einsum("ij,ij->i", d, d) <= r2

        payload = {}
        if not self.triangle_mode:
            # Native-tier descriptor: external queries confirm against their
            # own coordinates and carry no self filter.
            payload["native_sphere"] = {
                "centers": centers,
                "confirm_pts": query_pts,
                "r2": r2,
                "exclude_self": False,
            }
        return ProgramGroup(
            intersection=intersection, name="external-queries", payload=payload
        )

    def neighbor_counts(
        self, queries: np.ndarray | None = None, *, min_count: int | None = None
    ) -> tuple[np.ndarray, LaunchStats]:
        """Count ε-neighbours for each query point.

        ``queries`` defaults to the dataset itself (the DBSCAN use case), in
        which case the point's own sphere is excluded from its count.
        Arbitrary external query points are also supported (no self filter).
        """
        if queries is None:
            return self.group.launch_counts(self.points, min_count=min_count)
        pts = ensure_points3d(queries, name="queries")
        return self.group.launch_counts(
            pts, programs=self._external_programs(pts), min_count=min_count
        )

    def neighbor_csr(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """Confirmed ε-adjacency in canonical CSR form (see :mod:`repro.adjacency`).

        The zero-materialisation stage-2 query: hits are confirmed inside the
        chunked traversal and come back as ``(indptr, indices)`` — the full
        candidate pair set never exists in memory.  Self pairs are excluded
        when querying the dataset against itself.
        """
        if queries is None:
            return self.group.launch_csr(self.points)
        pts = ensure_points3d(queries, name="queries")
        return self.group.launch_csr(pts, programs=self._external_programs(pts))

    def neighbor_pairs(
        self, queries: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """All confirmed ``(query, neighbour)`` pairs within ε (legacy surface).

        Self pairs are excluded when querying the dataset against itself.
        Materialises the redundant query column; pipelines should consume
        :meth:`neighbor_csr` directly.
        """
        indptr, indices, stats = self.neighbor_csr(queries)
        return csr_row_ids(indptr), indices, stats

    def neighbor_lists(self, queries: np.ndarray | None = None) -> list[np.ndarray]:
        """Per-query neighbour index lists (convenience wrapper for examples)."""
        indptr, indices, _ = self.neighbor_csr(queries)
        return list(np.split(indices, indptr[1:-1]))

    def release(self) -> None:
        """Free the device-side scene."""
        self.context.destroy()


def rt_find_neighbors(
    points: np.ndarray, radius: float, **kwargs
) -> tuple[list[np.ndarray], LaunchStats]:
    """One-shot RT-FindNeighborhood over a dataset.

    Builds the ε-sphere scene, launches one ray per point, and returns the
    per-point neighbour lists together with the launch statistics.
    """
    finder = RTNeighborFinder(points, radius, **kwargs)
    try:
        indptr, indices, stats = finder.neighbor_csr()
        return list(np.split(indices, indptr[1:-1])), stats
    finally:
        finder.release()
