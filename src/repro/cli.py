"""Command-line interface.

Five subcommands cover the common workflows:

* ``rt-dbscan cluster``     — run any registered DBSCAN variant on a CSV file
  or a named synthetic dataset and print (or save) the labels;
* ``rt-dbscan stream``      — run the streaming engine over a synthetic
  point stream (sliding window, refit-aware scene maintenance) and print
  per-chunk progress plus throughput totals;
* ``rt-dbscan serve``       — start the multi-tenant streaming clustering
  service: one session per tenant/feed behind a JSON-lines TCP front-end
  with micro-batching, backpressure and idle-session eviction;
* ``rt-dbscan experiment``  — regenerate one of the paper's tables/figures
  (by experiment id, see ``rt-dbscan list``) and print the report;
* ``rt-dbscan list``        — list available datasets, streams, algorithms,
  neighbour backends and experiments;
* ``rt-dbscan native``      — diagnose the optional compiled kernel tier
  (build status, cache location, fallback reason).

Algorithms and neighbour backends are resolved from the registries in
:mod:`repro.api.registry`: ``--algo rt-dbscan --backend kdtree`` (or the
compact ``--algo rt-dbscan@kdtree``) runs the paper's Algorithm 3 on the
KD-tree substrate.  The console script is installed as ``rt-dbscan``; the
module can also be run with ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap

import numpy as np

from .api import ClustererSpec, make_clusterer
from .api.facade import DEFAULT_REFERENCE
from .api.registry import get_algorithm, get_backend, list_algorithms, list_backends
from .bench.experiments import (
    get_experiment,
    get_streaming_experiment,
    list_experiments,
    list_streaming_experiments,
    run_experiment,
    run_streaming,
)
from .bench.report import (
    format_agreement_table,
    format_breakdown,
    format_records,
    format_speedup_table,
    format_time_table,
)
from .bench.runner import run_single
from .data.registry import generate, list_datasets
from .data.stream import list_streams

__all__ = ["main", "build_parser"]

#: shown by ``rt-dbscan stream --help`` so the help output doubles as docs.
STREAM_EPILOG = textwrap.dedent(
    """\
    examples:
      # sliding-window clustering of drifting blobs; the cost-model policy
      # decides per chunk whether to refit or rebuild the BVH
      rt-dbscan stream --stream drift-blobs --chunks 16 --chunk-size 150 \\
          --window 1800 --min-pts 5

      # the paper's dense NGSIM corridor (Section V-C) replayed as a feed
      rt-dbscan stream --stream ngsim-replay --chunks 10 --chunk-size 300 \\
          --window 1500 --eps 0.0005 --min-pts 100

      # force a rebuild on every chunk to measure what refit saves
      rt-dbscan stream --stream drift-blobs --mode rebuild

      # machine-readable per-chunk records and totals
      rt-dbscan stream --stream burst-hotspots --json

    Omitting --eps calibrates it with the k-distance heuristic over the
    materialised stream (quantile 0.30), the same procedure the batch
    experiments use.  Omitting --window grows the window without bound
    (no evictions), in which case the final labels are identical to batch
    rt-dbscan on the concatenated stream.
    """
)

SERVE_EPILOG = textwrap.dedent(
    """\
    examples:
      # serve on the default port; every tenant gets its own sliding-window
      # streaming session (created on first ingest, evicted after 5 idle min)
      rt-dbscan serve --eps 0.3 --min-pts 5 --window 2000

      # ephemeral port for scripts: the bound port is written to a file
      rt-dbscan serve --eps 0.3 --min-pts 5 --port 0 --port-file port.txt

      # CI smoke shape: stop after N requests instead of waiting for a
      # {"op": "shutdown"} request
      rt-dbscan serve --eps 0.3 --min-pts 5 --port 0 --max-requests 16

      # durable sessions: evicted/idle windows spill to --state-dir as
      # checksummed checkpoints, tenants restore transparently on their
      # next request, and a crashed server restarts warm
      rt-dbscan serve --eps 0.3 --min-pts 5 --window 2000 \\
          --state-dir /var/lib/rt-dbscan --checkpoint-interval 30

      # offline integrity sweep of a state dir (no server started)
      rt-dbscan serve --restore-check /var/lib/rt-dbscan

    The wire protocol is one JSON object per line; ops are ingest,
    query_labels, snapshot, evict, stats, metrics (Prometheus text),
    checkpoint and shutdown, e.g.:

      {"op": "ingest", "tenant": "feed-a", "points": [[0.1, 0.2], ...]}
      {"op": "query_labels", "tenant": "feed-a"}
      {"op": "stats"}

    Ingest responses return as soon as the chunk is queued; a per-session
    worker coalesces queued chunks into micro-batched update() calls
    (labels are invariant to the coalescing).  A tenant that outruns its
    queue budget gets {"status": "busy", "retry_after_s": ...} instead of
    unbounded buffering.
    """
)

CLUSTER_EPILOG = textwrap.dedent(
    """\
    examples:
      # the paper's RT-core pipeline on a synthetic dataset
      rt-dbscan cluster --dataset blobs --num-points 5000 --eps 0.3 --min-pts 10

      # the same Algorithm 3 on the KD-tree substrate (CPU fast path)
      rt-dbscan cluster --dataset blobs --num-points 5000 --eps 0.3 \\
          --min-pts 10 --algo rt-dbscan --backend kdtree

      # scale out: shard into 4 spatial tiles (eps-halo ghost zones) and fit
      # them on 4 worker threads; labels are identical to the untiled run
      rt-dbscan cluster --dataset blobs --num-points 50000 --eps 0.3 \\
          --min-pts 10 --tiles 4 --workers 4

      # the approximate tier: LSH candidates at a 0.8 recall target; the run
      # automatically reports ARI + core/noise/partition agreement against
      # the exact kdtree reference
      rt-dbscan cluster --dataset blobs --num-points 5000 --eps 0.3 \\
          --min-pts 10 --backend lsh --recall-target 0.8

    Algorithm and backend names come from the registry; run `rt-dbscan list`
    to see them all.  --algo also accepts the compact algo@backend spelling.
    --tiles upgrades the default rt-dbscan to the tiled variant automatically.
    Approximate backends (lsh, sampled) get an agreement report against
    --reference (default rt-dbscan@kdtree; 'none' disables it).
    """
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="rt-dbscan",
        description="RT-DBSCAN reproduction: DBSCAN on a simulated ray-tracing device.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -- cluster --------------------------------------------------------- #
    p_cluster = sub.add_parser(
        "cluster",
        help="cluster a CSV file or a synthetic dataset",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=CLUSTER_EPILOG,
    )
    src = p_cluster.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="CSV file with 2 or 3 numeric columns (no header)")
    src.add_argument("--dataset", choices=list_datasets(), help="named synthetic dataset")
    p_cluster.add_argument("--num-points", type=int, default=10_000,
                           help="points to generate when using --dataset (default 10000)")
    p_cluster.add_argument("--seed", type=int, default=0, help="generator seed")
    p_cluster.add_argument("--eps", type=float, required=True, help="DBSCAN eps radius")
    p_cluster.add_argument("--min-pts", type=int, required=True, help="DBSCAN minPts")
    p_cluster.add_argument("--algorithm", "--algo", dest="algorithm", default="rt-dbscan",
                           metavar="NAME",
                           help="registered algorithm, optionally algo@backend "
                                "(default rt-dbscan; see 'rt-dbscan list')")
    p_cluster.add_argument("--backend", choices=list_backends(), default=None,
                           help="neighbour backend for backend-pluggable algorithms")
    p_cluster.add_argument("--tiles", type=int, default=None,
                           help="shard into N spatial tiles with eps-halo ghost zones "
                                "(upgrades rt-dbscan to rt-dbscan-tiled)")
    p_cluster.add_argument("--workers", type=int, default=None,
                           help="tile-fit parallelism for the ParallelMap executor "
                                "(default serial)")
    p_cluster.add_argument("--native", choices=("auto", "on", "off"), default="auto",
                           help="kernel tier for algorithms tagged [native]: compiled "
                                "C hot loops (on), pure numpy (off), or the "
                                "REPRO_NATIVE environment default (auto); labels are "
                                "identical either way")
    p_cluster.add_argument("--native-threads", type=int, default=None,
                           help="OpenMP worker count for the native kernels "
                                "(default: the REPRO_NATIVE_THREADS environment "
                                "knob, itself defaulting to one worker per core); "
                                "labels are identical at any count")
    p_cluster.add_argument("--recall-target", type=float, default=None,
                           help="lsh backend: per-edge recall target in (0, 1]; "
                                "1.0 falls back to the exact exhaustive sweep")
    p_cluster.add_argument("--probes", type=int, default=None,
                           help="lsh backend: explicit probe-table count "
                                "(overrides --recall-target)")
    p_cluster.add_argument("--sample-rate", type=float, default=None,
                           help="sampled backend: candidate-pool fraction in (0, 1]")
    p_cluster.add_argument("--reference", default="auto", metavar="ALGO",
                           help="exact reference for the agreement report: an "
                                "algorithm name (algo or algo@backend), 'none' to "
                                "disable, or 'auto' (default) which compares "
                                f"approximate backends against {DEFAULT_REFERENCE}")
    p_cluster.add_argument("--output", help="write labels (one per line) to this file")
    p_cluster.add_argument("--json", action="store_true", help="print the summary as JSON")

    # -- stream ----------------------------------------------------------- #
    p_stream = sub.add_parser(
        "stream",
        help="run streaming RT-DBSCAN over a synthetic point stream",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=STREAM_EPILOG,
    )
    p_stream.add_argument("--stream", default="drift-blobs", choices=list_streams(),
                          help="named stream generator (default drift-blobs)")
    p_stream.add_argument("--chunks", type=int, default=12,
                          help="number of chunks to feed (default 12)")
    p_stream.add_argument("--chunk-size", type=int, default=200,
                          help="points per chunk (default 200)")
    p_stream.add_argument("--window", type=int, default=None,
                          help="sliding-window size in points (default: grow unbounded)")
    p_stream.add_argument("--eps", type=float, default=None,
                          help="DBSCAN eps (default: k-distance calibration over the stream)")
    p_stream.add_argument("--min-pts", type=int, default=5, help="DBSCAN minPts (default 5)")
    p_stream.add_argument("--mode", default="auto", choices=("auto", "refit", "rebuild"),
                          help="scene maintenance policy (default auto = cost-model driven)")
    p_stream.add_argument("--seed", type=int, default=2023, help="stream generator seed")
    p_stream.add_argument("--json", action="store_true",
                          help="print per-chunk records and totals as JSON")

    # -- serve ------------------------------------------------------------ #
    p_serve = sub.add_parser(
        "serve",
        help="start the multi-tenant streaming clustering service (TCP/JSON-lines)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=SERVE_EPILOG,
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=7155,
                         help="bind port; 0 picks a free ephemeral port (default 7155)")
    p_serve.add_argument("--port-file", default=None, metavar="PATH",
                         help="write the bound port number to this file once listening")
    p_serve.add_argument("--max-requests", type=int, default=None,
                         help="shut down after serving N requests (default: run until "
                              "a shutdown request arrives)")
    p_serve.add_argument("--eps", type=float, default=None,
                         help="DBSCAN eps shared by every tenant session "
                              "(required unless --restore-check)")
    p_serve.add_argument("--min-pts", type=int, default=None,
                         help="DBSCAN minPts (required unless --restore-check)")
    p_serve.add_argument("--window", type=int, default=None,
                         help="per-session sliding-window size in points "
                              "(default: grow unbounded)")
    p_serve.add_argument("--algo", default="streaming-rt-dbscan", metavar="NAME",
                         help="session algorithm; must support partial_fit "
                              "(default streaming-rt-dbscan)")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="session pool capacity (default 64); at capacity the "
                              "least-recently-used idle session is evicted")
    p_serve.add_argument("--session-ttl", type=float, default=300.0, metavar="SECONDS",
                         help="evict sessions idle longer than this (default 300; "
                              "0 disables TTL eviction)")
    p_serve.add_argument("--max-queue-chunks", type=int, default=64,
                         help="per-session pending-chunk budget before ingests get "
                              "busy/retry-after backpressure (default 64)")
    p_serve.add_argument("--max-batch-chunks", type=int, default=8,
                         help="micro-batch coalescing cap per update() call (default 8)")
    p_serve.add_argument("--no-presize", action="store_true",
                         help="disable for_feed slot-buffer pre-sizing from the "
                              "tenant's first chunk")
    p_serve.add_argument("--state-dir", default=None, metavar="DIR",
                         help="durable session state: evicted/idle sessions spill "
                              "checksummed checkpoints here and restore on the "
                              "tenant's next request (default: state is dropped)")
    p_serve.add_argument("--checkpoint-interval", type=float, default=30.0,
                         metavar="SECONDS",
                         help="background checkpoint cadence for live sessions "
                              "(default 30; 0 disables; needs --state-dir)")
    p_serve.add_argument("--restore-check", default=None, metavar="DIR",
                         help="offline diagnostic: verify every checkpoint in DIR "
                              "(header, CRC32, snapshot schema) and exit without "
                              "starting a server")

    # -- experiment ------------------------------------------------------ #
    p_exp = sub.add_parser("experiment", help="regenerate one of the paper's tables/figures")
    p_exp.add_argument("id", choices=list_experiments(), help="experiment id (e.g. fig5c, table1)")
    p_exp.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the experiment's dataset sizes (default 1.0)")
    p_exp.add_argument("--workers", type=int, default=None,
                       help="run the sweep's configurations concurrently on N workers "
                            "(default serial, keeping wall-clock timings deterministic)")
    p_exp.add_argument("--json", action="store_true", help="print raw records as JSON")

    # -- list ------------------------------------------------------------ #
    sub.add_parser("list", help="list datasets, algorithms, backends and experiments")

    # -- native ----------------------------------------------------------- #
    p_native = sub.add_parser(
        "native", help="diagnose the optional compiled (cffi) kernel tier"
    )
    p_native.add_argument("--json", action="store_true",
                          help="print the status dictionary as JSON")
    return parser


def _load_points(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        pts = np.loadtxt(args.input, delimiter=",", dtype=np.float64)
        return np.atleast_2d(pts)
    return generate(args.dataset, args.num_points, seed=args.seed)


def _tiled_algorithm_name(algorithm: str, tiles: int | None) -> str:
    """Upgrade the default algorithm to the tiled variant when --tiles is set.

    Only the plain ``rt-dbscan`` spelling (optionally with an ``@backend``
    suffix) is rewritten; any other explicit --algo choice is respected and
    validated against its registry entry instead.
    """
    if tiles is None:
        return algorithm
    base, sep, backend = algorithm.partition("@")
    if base.lower() == "rt-dbscan":
        return f"rt-dbscan-tiled{sep}{backend}"
    return algorithm


def _cmd_cluster(args: argparse.Namespace) -> int:
    algorithm = _tiled_algorithm_name(args.algorithm, args.tiles)
    native = {"auto": None, "on": True, "off": False}[args.native]
    backend_kwargs = {
        knob: value
        for knob, value in (
            ("recall_target", args.recall_target),
            ("num_probes", args.probes),
            ("sample_rate", args.sample_rate),
        )
        if value is not None
    }
    params = {"backend_kwargs": backend_kwargs} if backend_kwargs else {}
    try:
        # Validates the whole combination up front: algorithm name, backend
        # name, algo@backend consistency, tiles/workers support, the numeric
        # parameters and the backend-specific knobs.
        spec = ClustererSpec(
            algo=algorithm, eps=args.eps, min_pts=args.min_pts,
            backend=args.backend, tiles=args.tiles, workers=args.workers,
            native=native, native_threads=args.native_threads, params=params,
        )
        _, resolved_backend = spec.resolve()
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    reference = None if args.reference == "none" else args.reference
    if reference == "auto":
        # Approximate backends always ship with their error bar; exact runs
        # need no reference.
        approximate = (
            resolved_backend is not None and not get_backend(resolved_backend).exact
        )
        reference = DEFAULT_REFERENCE if approximate else None
    points = _load_points(args)
    extra_kwargs = {}
    if args.tiles is not None:
        extra_kwargs["tiles"] = args.tiles
    if args.workers is not None:
        extra_kwargs["workers"] = args.workers
    if native is not None:
        extra_kwargs["native"] = native
    if args.native_threads is not None:
        extra_kwargs["native_threads"] = args.native_threads
    if backend_kwargs:
        extra_kwargs["backend_kwargs"] = backend_kwargs
    record = run_single(
        algorithm, points, args.eps, args.min_pts,
        dataset=args.dataset or args.input, backend=args.backend,
        reference=reference, **extra_kwargs,
    )
    if args.json:
        print(json.dumps(record.as_dict(), indent=2))
    else:
        print(format_records([record]))
        if record.extra.get("agreement"):
            print()
            print(format_agreement_table(
                [record], title=f"Agreement vs exact reference ({reference})"
            ))
        if record.breakdown:
            print()
            print(format_breakdown(record))
    if args.output and record.status == "ok":
        # Labels are only materialised when they must be persisted.
        result = make_clusterer(spec).fit(points)
        np.savetxt(args.output, result.labels, fmt="%d")
        print(f"labels written to {args.output}")
    return 0 if record.status == "ok" else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    result = run_streaming(
        args.stream,
        args.chunks,
        args.chunk_size,
        window=args.window,
        eps=args.eps,
        min_pts=args.min_pts,
        seed=args.seed,
        mode=args.mode,
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0

    print(f"# streaming rt-dbscan: stream={args.stream} mode={args.mode} "
          f"eps={result.eps:.6g} minPts={result.min_pts} window={args.window or 'unbounded'}")
    header = (f"{'chunk':>5} {'new':>6} {'evict':>6} {'window':>7} {'clusters':>8} "
              f"{'noise':>6} {'accel':>8} {'sim_s':>12}")
    print(header)
    print("-" * len(header))
    for u in result.updates:
        print(f"{u.chunk_index:>5} {u.num_new:>6} {u.num_evicted:>6} {u.window_size:>7} "
              f"{u.num_clusters:>8} {u.num_noise:>6} {u.accel_action:>8} "
              f"{u.simulated_seconds:>12.6f}")
    s = result.summary
    scene = s["scene"]
    print()
    print(f"totals: {s['points_ingested']} points in {s['num_updates']} updates "
          f"({s['points_evicted']} evicted)")
    print(f"  accel maintenance: {scene['num_refits']} refits, {scene['num_builds']} builds "
          f"({result.maintenance_seconds:.6f} simulated s)")
    print(f"  throughput: {result.updates_per_simulated_second:,.1f} updates/s, "
          f"{result.points_per_simulated_second:,.0f} points/s (simulated)")
    print(f"  simulated total: {s['total_simulated_seconds']:.6f} s, "
          f"wall total: {s['total_wall_seconds']:.3f} s")
    return 0


def _cmd_restore_check(state_dir: str) -> int:
    """Offline checkpoint integrity sweep (``serve --restore-check``)."""
    from .service import verify_checkpoint_dir

    reports = verify_checkpoint_dir(state_dir, deep=True)
    if not reports:
        print(f"no checkpoints found in {state_dir}")
        return 0
    bad = 0
    for report in reports:
        if report["ok"]:
            print(f"ok      {report['tenant']:<24} window={report['window_points']:<8} "
                  f"backend={report['backend']}  {report['path']}")
        else:
            bad += 1
            print(f"CORRUPT {report['tenant']:<24} {report['path']}: {report['error']}")
    print(f"{len(reports) - bad}/{len(reports)} checkpoint(s) verified")
    return 0 if bad == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the service layer (asyncio machinery) only loads for
    # the subcommand that needs it.
    from .service import ServiceConfig, run_server

    if args.restore_check is not None:
        return _cmd_restore_check(args.restore_check)
    if args.eps is None or args.min_pts is None:
        print("error: --eps and --min-pts are required to start the server "
              "(only --restore-check runs without them)", file=sys.stderr)
        return 2
    params = {"window": args.window} if args.window is not None else {}
    try:
        config = ServiceConfig(
            spec=ClustererSpec(algo=args.algo, eps=args.eps, min_pts=args.min_pts,
                               params=params),
            max_sessions=args.max_sessions,
            session_ttl_s=args.session_ttl if args.session_ttl > 0 else None,
            max_queue_chunks=args.max_queue_chunks,
            max_batch_chunks=args.max_batch_chunks,
            presize=not args.no_presize,
            state_dir=args.state_dir,
            checkpoint_interval_s=(
                args.checkpoint_interval if args.checkpoint_interval > 0 else None
            ),
        )
        return run_server(
            config,
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            max_requests=args.max_requests,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = get_experiment(args.id)
    records = run_experiment(args.id, scale=args.scale, workers=args.workers)
    if args.json:
        print(json.dumps([r.as_dict() for r in records], indent=2))
        return 0
    print(f"# {spec.paper_ref}: {spec.title}")
    print(f"# dataset={spec.dataset}  minPts={spec.min_pts}  scale={args.scale}")
    print()
    if spec.mode == "approx_sweep":
        print(format_agreement_table(
            records, title=f"Speedup vs agreement (exact baseline: {spec.baseline})"
        ))
        return 0
    vary = "eps" if spec.mode == "eps_sweep" else "num_points"
    print(format_time_table(records, algorithms=list(spec.algorithms), vary=vary,
                            title="Execution time (simulated seconds)"))
    print()
    targets = [a for a in spec.algorithms if a != spec.baseline]
    print(format_speedup_table(records, baseline=spec.baseline, targets=targets, vary=vary,
                               title=f"Speedup over {spec.baseline}"))
    if spec.mode == "breakdown":
        print()
        for r in records:
            if r.status == "ok":
                print(format_breakdown(r))
                print()
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("datasets:")
    for name in list_datasets():
        print(f"  {name}")
    print("streams:")
    for name in list_streams():
        print(f"  {name}")
    print("algorithms:")
    for name in list_algorithms():
        entry = get_algorithm(name)
        tags = []
        if entry.supports_backend:
            tags.append("backends")
        if entry.supports_partial_fit:
            tags.append("partial_fit")
        if entry.supports_tiles:
            tags.append("tiles")
        if entry.supports_native:
            tags.append("native")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"  {name:<22} {entry.description}{suffix}")
    print("neighbour backends (for algorithms tagged [backends]):")
    for name in list_backends():
        entry = get_backend(name)
        tags = []
        if not entry.exact:
            tags.append("approximate")
        if entry.native:
            tags.append("native")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"  {name:<22} {entry.description}{suffix}")
    print("experiments:")
    for exp_id in list_experiments():
        spec = get_experiment(exp_id)
        print(f"  {exp_id:<8} {spec.paper_ref:<18} {spec.title}")
    print("streaming experiments:")
    for exp_id in list_streaming_experiments():
        sspec = get_streaming_experiment(exp_id)
        print(f"  {exp_id:<13} {sspec.title}")
    return 0


def _cmd_native(args: argparse.Namespace) -> int:
    from .native import dispatch as native_dispatch

    status = native_dispatch.status()
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    print("native kernel tier (cffi-compiled C hot loops):")
    print(f"  mode:            {status['mode']}  (REPRO_NATIVE={status['env'] or 'unset'})")
    print(f"  active:          {status['active']}")
    print(f"  built:           {status['built']}")
    print(f"  module:          {status['module'] or 'n/a'}")
    print(f"  cache dir:       {status['cache_dir']}")
    openmp = status["openmp"]
    openmp_str = "unknown (not built)" if openmp is None else str(openmp)
    if not status["openmp_requested"]:
        openmp_str += "  (disabled via REPRO_NATIVE_NO_OPENMP)"
    print(f"  openmp:          {openmp_str}")
    requested = status["requested_threads"]
    print(
        f"  threads:         {status['resolved_threads']} resolved  "
        f"(requested {'auto' if requested is None else requested}, "
        f"REPRO_NATIVE_THREADS={status['threads_env'] or 'unset'}, "
        f"omp max {status['max_threads'] if status['max_threads'] is not None else 'n/a'})"
    )
    if status["fallback_reason"]:
        print(f"  fallback reason: {status['fallback_reason']}")
    print("  kernels:")
    for name, info in status["kernels"].items():
        par = "parallel" if info["parallel"] else "serial"
        print(f"    {name:<16} {info['tier']}/{par:<9} {info['serves']}")
    return 0 if status["active"] or status["mode"] == "off" else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``rt-dbscan`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "native":
        return _cmd_native(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
