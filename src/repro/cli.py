"""Command-line interface.

Three subcommands cover the common workflows:

* ``rt-dbscan cluster``     — run a DBSCAN variant on a CSV file or a named
  synthetic dataset and print (or save) the labels;
* ``rt-dbscan experiment``  — regenerate one of the paper's tables/figures
  (by experiment id, see ``rt-dbscan list``) and print the report;
* ``rt-dbscan list``        — list available datasets, algorithms and
  experiments.

The console script is installed as ``rt-dbscan``; the module can also be run
with ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .bench.experiments import get_experiment, list_experiments, run_experiment
from .bench.report import format_breakdown, format_records, format_speedup_table, format_time_table
from .bench.runner import ALGORITHMS, run_single
from .data.registry import generate, list_datasets

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="rt-dbscan",
        description="RT-DBSCAN reproduction: DBSCAN on a simulated ray-tracing device.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -- cluster --------------------------------------------------------- #
    p_cluster = sub.add_parser("cluster", help="cluster a CSV file or a synthetic dataset")
    src = p_cluster.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="CSV file with 2 or 3 numeric columns (no header)")
    src.add_argument("--dataset", choices=list_datasets(), help="named synthetic dataset")
    p_cluster.add_argument("--num-points", type=int, default=10_000,
                           help="points to generate when using --dataset (default 10000)")
    p_cluster.add_argument("--seed", type=int, default=0, help="generator seed")
    p_cluster.add_argument("--eps", type=float, required=True, help="DBSCAN eps radius")
    p_cluster.add_argument("--min-pts", type=int, required=True, help="DBSCAN minPts")
    p_cluster.add_argument("--algorithm", default="rt-dbscan",
                           choices=sorted(ALGORITHMS) + ["classic"],
                           help="which implementation to run (default rt-dbscan)")
    p_cluster.add_argument("--output", help="write labels (one per line) to this file")
    p_cluster.add_argument("--json", action="store_true", help="print the summary as JSON")

    # -- experiment ------------------------------------------------------ #
    p_exp = sub.add_parser("experiment", help="regenerate one of the paper's tables/figures")
    p_exp.add_argument("id", choices=list_experiments(), help="experiment id (e.g. fig5c, table1)")
    p_exp.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the experiment's dataset sizes (default 1.0)")
    p_exp.add_argument("--json", action="store_true", help="print raw records as JSON")

    # -- list ------------------------------------------------------------ #
    sub.add_parser("list", help="list datasets, algorithms and experiments")
    return parser


def _load_points(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        pts = np.loadtxt(args.input, delimiter=",", dtype=np.float64)
        return np.atleast_2d(pts)
    return generate(args.dataset, args.num_points, seed=args.seed)


def _cmd_cluster(args: argparse.Namespace) -> int:
    points = _load_points(args)
    record = run_single(
        args.algorithm, points, args.eps, args.min_pts,
        dataset=args.dataset or args.input,
    )
    if args.json:
        print(json.dumps(record.as_dict(), indent=2))
    else:
        print(format_records([record]))
        if record.breakdown:
            print()
            print(format_breakdown(record))
    if args.output and record.status == "ok":
        # Re-run is avoided by refitting only when labels must be persisted.
        from .bench.runner import ALGORITHMS as _ALGOS
        from .dbscan.classic import classic_dbscan
        from .rtcore.device import RTDevice

        if args.algorithm == "classic":
            result = classic_dbscan(points, args.eps, args.min_pts)
        else:
            result = _ALGOS[args.algorithm](args.eps, args.min_pts, RTDevice()).fit(points)
        np.savetxt(args.output, result.labels, fmt="%d")
        print(f"labels written to {args.output}")
    return 0 if record.status == "ok" else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = get_experiment(args.id)
    records = run_experiment(args.id, scale=args.scale)
    if args.json:
        print(json.dumps([r.as_dict() for r in records], indent=2))
        return 0
    print(f"# {spec.paper_ref}: {spec.title}")
    print(f"# dataset={spec.dataset}  minPts={spec.min_pts}  scale={args.scale}")
    print()
    vary = "eps" if spec.mode == "eps_sweep" else "num_points"
    print(format_time_table(records, algorithms=list(spec.algorithms), vary=vary,
                            title="Execution time (simulated seconds)"))
    print()
    targets = [a for a in spec.algorithms if a != spec.baseline]
    print(format_speedup_table(records, baseline=spec.baseline, targets=targets, vary=vary,
                               title=f"Speedup over {spec.baseline}"))
    if spec.mode == "breakdown":
        print()
        for r in records:
            if r.status == "ok":
                print(format_breakdown(r))
                print()
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("datasets:")
    for name in list_datasets():
        print(f"  {name}")
    print("algorithms:")
    for name in sorted(ALGORITHMS) + ["classic"]:
        print(f"  {name}")
    print("experiments:")
    for exp_id in list_experiments():
        spec = get_experiment(exp_id)
        print(f"  {exp_id:<8} {spec.paper_ref:<18} {spec.title}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``rt-dbscan`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "list":
        return _cmd_list(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
