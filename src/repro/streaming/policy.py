"""Refit-vs-rebuild decision policy.

Every window update leaves the acceleration structure stale: appended points
occupy previously parked slots, evicted points are parked far outside the
data extent, and drifting clusters stretch the node bounds the tree was
built for.  The maintainer must choose between

* **refit** — recompute node bounds bottom-up (cheap: no Morton sort, no
  node emission; the cost model prices it ~4x below a build per primitive),
  at the price of progressively worse tree quality as churn accumulates; or
* **rebuild** — pay the full per-primitive build cost and restore an
  optimally-partitioned tree.

:class:`RefitPolicy` makes that call from the device cost model plus a churn
bound: while the modelled refit time undercuts the modelled build time *and*
the fraction of primitives that moved since the last build stays under
``churn_rebuild_fraction``, refit wins.  The churn bound stands in for the
traversal degradation the cost model cannot see directly (stale trees make
ε-queries visit more nodes, which *is* charged honestly through the
traversal counters — the policy merely bounds how bad it may get).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.cost_model import DeviceCostModel

__all__ = ["RefitPolicy"]

#: Valid policy modes.
MODES = ("auto", "refit", "rebuild")


@dataclass
class RefitPolicy:
    """Chooses how to bring the acceleration structure up to date.

    Parameters
    ----------
    mode:
        ``"auto"`` (cost-model driven, default), ``"refit"`` (always refit
        unless a rebuild is structurally required, e.g. capacity growth), or
        ``"rebuild"`` (rebuild on every update; the baseline the streaming
        benchmarks compare against).
    churn_rebuild_fraction:
        In ``auto`` mode, rebuild once more than this fraction of the
        primitives changed since the structure was last built.
    """

    mode: str = "auto"
    churn_rebuild_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not 0.0 < self.churn_rebuild_fraction <= 1.0:
            raise ValueError("churn_rebuild_fraction must be in (0, 1]")

    def choose(
        self,
        *,
        cost_model: DeviceCostModel,
        num_prims: int,
        churn_fraction: float,
        has_rt_cores: bool = True,
        structure_valid: bool = True,
    ) -> str:
        """Return ``"refit"`` or ``"rebuild"`` for the pending update.

        ``churn_fraction`` is the fraction of primitives whose bounds changed
        since the last full build; ``structure_valid`` is False when no
        usable structure exists (first build, capacity growth), which forces
        a rebuild regardless of mode.
        """
        if not structure_valid:
            return "rebuild"
        if self.mode == "rebuild":
            return "rebuild"
        if self.mode == "refit":
            return "refit"
        unit = "rt" if has_rt_cores else "sm"
        refit_s = cost_model.refit_time_s(num_prims, unit=unit)
        build_s = cost_model.build_time_s(num_prims, unit=unit)
        if refit_s >= build_s:
            return "rebuild"
        if churn_fraction > self.churn_rebuild_fraction:
            return "rebuild"
        return "refit"
