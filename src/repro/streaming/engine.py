"""Streaming RT-DBSCAN engine.

:class:`StreamingRTDBSCAN` clusters an unbounded point stream with the
paper's two-stage RT-DBSCAN while touching, per update, only the state an
update can actually change:

* **Stage 1 (core identification) is incremental.**  The engine caches the
  per-point ε-neighbour count (the same quantity batch RT-DBSCAN exposes via
  ``keep_neighbor_counts``).  A chunk of ``k`` new points launches ``k``
  ε-rays; each new point's count is read off its own ray, and every hit onto
  an existing point bumps that point's cached count.  No existing point is
  re-queried unless it crosses the ``min_pts`` threshold ("promotion").

* **Stage 2 (cluster formation) is monotone under insertion.**  Core–core
  edges discovered by the new and promoted rays are merged into a persistent
  union–find forest; border points carry an *anchor* — the earliest-arrived
  core point within ε — which reproduces the batch implementation's
  deterministic border assignment.  Because insertion can only add core
  points and grow clusters, the forest never needs repair on append-only
  streams, and the final window labelling is identical to batch
  :func:`repro.dbscan.rt_dbscan` on the same points.

* **Eviction is the only structural hazard.**  Removing a *noise or border*
  point just decrements its neighbours' counts.  Removing a *core* point —
  or demoting one by decrement — can split a cluster, so those updates
  re-run stage 2 with ε-rays from the surviving core points only (stage 1
  stays incremental; this is the paper's "recompute rather than store"
  trade applied to the streaming setting).

Scene maintenance (refit vs rebuild) is delegated to
:class:`~repro.streaming.scene.StreamingScene` and its
:class:`~repro.streaming.policy.RefitPolicy`; every launch, refit, build,
union and atomic is charged to the device cost model, so per-update reports
carry the same Section V-D style breakdown as the batch path.  Scene queries
run through the zero-materialisation CSR launch
(:meth:`~repro.streaming.scene.StreamingScene.query_csr`): candidates are
confirmed chunk-by-chunk inside the traversal and only the window's live
edge set — the expansion the incremental count/anchor updates actually
consume — is ever materialised.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..api.protocol import ClustererMixin
from ..api.registry import get_backend, register_algorithm
from ..dbscan.disjoint_set import ParallelDisjointSet
from ..native import dispatch as native_dispatch
from ..dbscan.params import NOISE, DBSCANParams, DBSCANResult, canonicalize_labels
from ..geometry.transforms import ensure_points3d
from ..perf.cost_model import OpCounts
from ..perf.timing import ExecutionReport, PhaseTimer
from ..rtcore.device import RTDevice
from .policy import RefitPolicy
from .scene import HostStreamingScene, StreamingScene

__all__ = ["StreamingRTDBSCAN", "StreamUpdate", "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION"]

#: identity + schema version of the engine section of :meth:`StreamingRTDBSCAN.snapshot`.
SNAPSHOT_FORMAT = "streaming-rt-dbscan-snapshot"
SNAPSHOT_VERSION = 1


@dataclass
class StreamUpdate:
    """Outcome of one :meth:`StreamingRTDBSCAN.update` call.

    Attributes
    ----------
    labels:
        Cluster labels of the *current window*, in arrival order (noise is
        ``-1``; numbering follows the same smallest-member convention as the
        batch algorithms).
    core_mask:
        Core flags of the current window, aligned with ``labels``.
    window_arrivals:
        Global arrival sequence number of each window point, aligned with
        ``labels`` — callers use it to join labels back to their own stream
        bookkeeping.
    accel_action:
        How the acceleration structure was maintained this update:
        ``"none"``, ``"refit"`` or ``"rebuild"``.
    reclustered:
        True when eviction forced the full stage-2 re-clustering pass.
    report:
        Per-phase simulated/wall time and operation counts for this update.
    """

    chunk_index: int
    num_new: int
    num_evicted: int
    window_size: int
    num_clusters: int
    num_noise: int
    accel_action: str
    reclustered: bool
    labels: np.ndarray
    core_mask: np.ndarray
    window_arrivals: np.ndarray
    report: ExecutionReport | None = None
    extra: dict = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        return self.report.total_simulated_seconds if self.report else 0.0

    @property
    def wall_seconds(self) -> float:
        return self.report.total_wall_seconds if self.report else 0.0

    def as_dict(self) -> dict:
        return {
            "chunk_index": self.chunk_index,
            "num_new": self.num_new,
            "num_evicted": self.num_evicted,
            "window_size": self.window_size,
            "num_clusters": self.num_clusters,
            "num_noise": self.num_noise,
            "accel_action": self.accel_action,
            "reclustered": self.reclustered,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
        }


@register_algorithm(
    "streaming-rt-dbscan",
    description="Incremental RT-DBSCAN over a point stream (sliding window, refit-aware).",
    supports_backend=True,
    supports_partial_fit=True,
    supports_native=True,
)
class StreamingRTDBSCAN(ClustererMixin):
    """Incremental RT-DBSCAN over a point stream.

    Parameters
    ----------
    eps, min_pts:
        The DBSCAN parameters (shared by every window).
    window:
        Maximum number of live points.  ``None`` (default) grows without
        bound; an integer turns the engine into a sliding window that evicts
        the oldest points as new chunks arrive.
    device:
        Simulated RT device; a fresh RTX 2060-like device by default.
    policy:
        Refit-vs-rebuild policy for scene maintenance (default: cost-model
        driven ``"auto"``).
    backend:
        Window-query substrate: ``"rt"`` (default) maintains the ε-sphere
        BVH scene on the simulated RT device; any exact registered host
        backend (``"grid"``, ``"kdtree"``, ``"brute"``) answers the same
        queries through :class:`~repro.streaming.scene.HostStreamingScene`
        with bit-identical labels.  Approximate backends are refused.
    builder, leaf_size, chunk_size, initial_capacity:
        Scene parameters forwarded to :class:`StreamingScene`.
    native:
        Kernel-tier override applied to every :meth:`update`: ``True``
        forces the compiled C kernels, ``False`` forces pure numpy,
        ``None`` (default) defers to the ``REPRO_NATIVE`` environment knob.
        Labels and charged operation counts are identical either way.
    native_threads:
        OpenMP worker-count override for the native kernels, applied to
        every :meth:`update` like ``native``; ``None`` (default) defers to
        ``REPRO_NATIVE_THREADS``.  Byte-identical results at any count.

    Examples
    --------
    >>> engine = StreamingRTDBSCAN(eps=0.3, min_pts=5, window=2000)
    >>> for chunk in stream:                      # doctest: +SKIP
    ...     update = engine.update(chunk)
    ...     serve(update.labels, update.window_arrivals)
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        *,
        window: int | None = None,
        device: RTDevice | None = None,
        policy: RefitPolicy | None = None,
        backend: str | None = None,
        builder: str = "lbvh",
        leaf_size: int = 4,
        chunk_size: int = 16384,
        initial_capacity: int = 256,
        native: bool | None = None,
        native_threads: int | None = None,
    ) -> None:
        self.params = DBSCANParams(eps=eps, min_pts=min_pts)
        self.native = native
        self.native_threads = native_threads
        if window is not None and window < 1:
            raise ValueError("window must be a positive integer or None")
        self.window = window
        self.device = device or RTDevice()
        self.policy = policy or RefitPolicy()
        self.backend = "rt" if backend is None else get_backend(backend).name
        self.builder = builder
        if self.backend == "rt":
            self.scene = StreamingScene(
                eps,
                self.device,
                builder=builder,
                leaf_size=leaf_size,
                chunk_size=chunk_size,
                initial_capacity=initial_capacity,
            )
        else:
            # Host substrates answer window queries through the registered
            # neighbour backends.  Only exact backends qualify: the engine's
            # cached counts are maintained by *incremental deltas*, so an
            # approximate candidate sweep would silently corrupt them.
            if not get_backend(self.backend).exact:
                raise ValueError(
                    f"streaming-rt-dbscan requires an exact neighbour backend; "
                    f"{self.backend!r} is approximate"
                )
            self.scene = HostStreamingScene(
                eps,
                self.device,
                backend=self.backend,
                leaf_size=leaf_size,
                chunk_size=chunk_size,
                initial_capacity=initial_capacity,
            )

        cap = self.scene.capacity
        self._counts = np.zeros(cap, dtype=np.int64)
        self._core = np.zeros(cap, dtype=bool)
        self._arrival = np.full(cap, -1, dtype=np.int64)
        self._anchor = np.full(cap, -1, dtype=np.intp)
        self._forest = ParallelDisjointSet(cap)
        self._next_arrival = 0

        #: running totals across updates.
        self.num_updates = 0
        self.points_ingested = 0
        self.points_evicted = 0
        self.total_counts = OpCounts()
        self.total_simulated_seconds = 0.0
        self.total_wall_seconds = 0.0
        self._last_report: ExecutionReport | None = None

        #: lifecycle state: ``release()`` is idempotent, and every *effective*
        #: release (one that actually freed the scene) is counted so session
        #: owners can assert the exactly-once teardown contract.
        self.num_releases = 0
        self._released = False
        #: True when this engine was rebuilt from a checkpoint (see
        #: :meth:`restore`); surfaced in results so serving stats can tell a
        #: warm-restored session from a fresh one.
        self.restored = False

    # ------------------------------------------------------------------ #
    @classmethod
    def for_feed(
        cls,
        sample_points: np.ndarray,
        eps: float,
        min_pts: int,
        *,
        window: int | None = None,
        chunk_size: int,
        **kwargs,
    ) -> "StreamingRTDBSCAN":
        """An engine pre-sized for a feed whose extent is known up front.

        Uses the partition layer's
        :func:`~repro.partition.tiler.plan_stream_capacity` occupancy bound
        to size the scene's slot buffer to everything the window can ever
        hold — so the slot buffer never grows, and the engine never pays a
        growth-forced rebuild.  ``sample_points`` must cover the feed this
        engine will actually ingest (for a sharded deployment, build one
        engine per shard and pass that shard's points); all other keyword
        arguments are forwarded to the constructor.
        """
        from ..partition.tiler import plan_stream_capacity

        capacity = plan_stream_capacity(
            sample_points, eps, window=window, chunk_size=chunk_size
        )
        return cls(
            eps, min_pts, window=window,
            initial_capacity=max(256, capacity), **kwargs,
        )

    # ------------------------------------------------------------------ #
    @property
    def eps(self) -> float:
        return self.params.eps

    @property
    def min_pts(self) -> int:
        return self.params.min_pts

    @property
    def window_size(self) -> int:
        return int((self._arrival >= 0).sum())

    def _window_slots(self) -> np.ndarray:
        """Live slots in arrival order (the canonical window ordering)."""
        live = np.flatnonzero(self._arrival >= 0)
        return live[np.argsort(self._arrival[live], kind="stable")]

    @property
    def window_points(self) -> np.ndarray:
        """Current window points (lifted to 3D), in arrival order."""
        return self.scene.centers[self._window_slots()].copy()

    @property
    def window_arrivals(self) -> np.ndarray:
        return self._arrival[self._window_slots()].copy()

    # ------------------------------------------------------------------ #
    def _sync_capacity(self) -> None:
        cap = self.scene.capacity
        old = self._counts.shape[0]
        if cap <= old:
            return
        pad = cap - old
        self._counts = np.concatenate([self._counts, np.zeros(pad, dtype=np.int64)])
        self._core = np.concatenate([self._core, np.zeros(pad, dtype=bool)])
        self._arrival = np.concatenate([self._arrival, np.full(pad, -1, dtype=np.int64)])
        self._anchor = np.concatenate([self._anchor, np.full(pad, -1, dtype=np.intp)])
        self._forest.grow(cap)

    def _validate_chunk(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        if pts.size == 0:
            return np.empty((0, 3), dtype=np.float64)
        return ensure_points3d(pts, name="chunk")

    # ------------------------------------------------------------------ #
    def _native_ctx(self) -> contextlib.ExitStack:
        """Tier + thread overrides for one update (no-op when both unset)."""
        stack = contextlib.ExitStack()
        if self.native is not None:
            stack.enter_context(native_dispatch.override(self.native))
        if self.native_threads is not None:
            stack.enter_context(
                native_dispatch.thread_override(self.native_threads)
            )
        return stack

    def update(self, points: np.ndarray) -> StreamUpdate:
        """Ingest one chunk, slide the window, and re-cluster incrementally."""
        with self._native_ctx():
            return self._update(points)

    def _update(self, points: np.ndarray) -> StreamUpdate:
        pts3 = self._validate_chunk(points)
        if self.window is not None and pts3.shape[0] > self.window:
            # A chunk larger than the window: only its newest points survive.
            pts3 = pts3[-self.window :]
        k = pts3.shape[0]
        timer = PhaseTimer("streaming-rt-dbscan", self.device.cost_model)
        timer.metadata.update(
            {
                "eps": self.eps,
                "min_pts": self.min_pts,
                "window": self.window,
                "chunk_points": k,
                "device": self.device.name,
            }
        )

        # ------------------------------------------------------------ #
        # Eviction: slide the window before the chunk lands.
        # ------------------------------------------------------------ #
        evict_slots = np.empty(0, dtype=np.intp)
        if self.window is not None:
            live = self._window_slots()
            overflow = live.size + k - self.window
            if overflow > 0:
                evict_slots = live[:overflow]

        need_full = False
        with timer.phase("evict") as counts:
            if evict_slots.size:
                need_full = self._evict(evict_slots, counts)

        # ------------------------------------------------------------ #
        # Scene maintenance: append spheres, then refit or rebuild.
        # ------------------------------------------------------------ #
        accel_action = "none"
        accel_seconds = 0.0
        new_slots = np.empty(0, dtype=np.intp)
        with timer.phase("scene_update") as counts:
            if k:
                new_slots = self.scene.allocate(k)
                self._sync_capacity()
                self.scene.set_points(new_slots, pts3)
                self._arrival[new_slots] = np.arange(
                    self._next_arrival, self._next_arrival + k, dtype=np.int64
                )
                self._next_arrival += k
            if k or evict_slots.size:
                accel_action, accel_seconds, accel_counts = self.scene.commit(self.policy)
                counts.merge(accel_counts)
                # Ingesting after release() transparently rebuilds the scene
                # (commit sees the invalidated structure), so the engine is
                # live again and a later teardown must release it again.
                self._released = False
        # The accel time comes from the device's build/refit estimate, not
        # from the recorded counts (mirrors the batch bvh_build phase).
        timer.set_last_phase_seconds(accel_seconds)

        # ------------------------------------------------------------ #
        # Stage 1 (incremental): counts from the new points' rays only.
        # ------------------------------------------------------------ #
        promoted = np.empty(0, dtype=np.intp)
        new_q = new_p = np.empty(0, dtype=np.intp)
        with timer.phase("core_update") as counts:
            if k:
                new_q, new_p, stats = self.scene.query_pairs(new_slots)
                counts.merge(stats.counts)
                promoted = self._apply_count_deltas(new_slots, new_q, new_p)

        # ------------------------------------------------------------ #
        # Stage 2: monotone merge, or full re-cluster after a core loss.
        # ------------------------------------------------------------ #
        with timer.phase("cluster_update") as counts:
            if need_full:
                self._forest = ParallelDisjointSet(self.scene.capacity)
                self._anchor[:] = -1
                core_slots = np.flatnonzero(self._core & (self._arrival >= 0))
                q, p, stats = self.scene.query_pairs(core_slots)
                counts.merge(stats.counts)
            elif promoted.size:
                pq, pp, stats = self.scene.query_pairs(promoted)
                counts.merge(stats.counts)
                q = np.concatenate([new_q, pq])
                p = np.concatenate([new_p, pp])
            else:
                q, p = new_q, new_p
            unions, atomics = self._apply_pairs(q, p)
            counts.union_ops += unions
            counts.atomic_ops += atomics
            self.device.charge(OpCounts(union_ops=unions, atomic_ops=atomics))

        # ------------------------------------------------------------ #
        # Window labelling.
        # ------------------------------------------------------------ #
        win = self._window_slots()
        labels, core_mask = self._window_labels(win)

        report = timer.report()
        self._last_report = report
        self.num_updates += 1
        self.points_ingested += k
        self.points_evicted += int(evict_slots.size)
        for phase in report.phases:
            self.total_counts.merge(phase.counts)
        self.total_simulated_seconds += report.total_simulated_seconds
        self.total_wall_seconds += report.total_wall_seconds

        unique = np.unique(labels)
        return StreamUpdate(
            chunk_index=self.num_updates - 1,
            num_new=k,
            num_evicted=int(evict_slots.size),
            window_size=int(win.size),
            num_clusters=int((unique >= 0).sum()),
            num_noise=int((labels == NOISE).sum()),
            accel_action=accel_action,
            reclustered=need_full,
            labels=labels,
            core_mask=core_mask,
            window_arrivals=self._arrival[win].copy(),
            report=report,
        )

    # ------------------------------------------------------------------ #
    def _evict(self, evict_slots: np.ndarray, counts: OpCounts) -> bool:
        """Remove the given slots; returns True when stage 2 must re-run.

        Only the loss of a core point (directly, or by demotion of a
        neighbour whose count drops below ``min_pts``) can change the
        cluster structure of the survivors; border and noise evictions just
        decrement cached counts.
        """
        q, p, stats = self.scene.query_pairs(evict_slots)
        counts.merge(stats.counts)

        evicted_core = bool(self._core[evict_slots].any())

        ev_mask = np.zeros(self.scene.capacity, dtype=bool)
        ev_mask[evict_slots] = True
        survivors = p[~ev_mask[p]]
        np.subtract.at(self._counts, survivors, 1)
        touched = np.unique(survivors)
        demoted = touched[self._core[touched] & (self._counts[touched] < self.min_pts)]
        self._core[demoted] = False

        self.scene.deallocate(evict_slots)
        self._counts[evict_slots] = 0
        self._core[evict_slots] = False
        self._arrival[evict_slots] = -1
        self._anchor[evict_slots] = -1
        # Evicted slots were either never unioned (non-core) or the forest is
        # about to be rebuilt (core loss); reset keeps slot reuse clean.
        self._forest.parent[evict_slots] = evict_slots
        return evicted_core or bool(demoted.size)

    def _apply_count_deltas(
        self, new_slots: np.ndarray, q: np.ndarray, p: np.ndarray
    ) -> np.ndarray:
        """Fold the new points' ray hits into the cached neighbour counts.

        Returns the *promoted* slots: existing points pushed over the
        ``min_pts`` threshold by the arrivals.
        """
        cap = self.scene.capacity
        new_mask = np.zeros(cap, dtype=bool)
        new_mask[new_slots] = True
        # Each new point's count is exactly its own ray's confirmed hits.
        self._counts[new_slots] = np.bincount(q, minlength=cap)[new_slots]
        # Every hit onto an existing point adds one neighbour there.
        inc = p[~new_mask[p]]
        np.add.at(self._counts, inc, 1)
        touched = np.unique(inc)
        promoted = touched[~self._core[touched] & (self._counts[touched] >= self.min_pts)]
        self._core[new_slots] = self._counts[new_slots] >= self.min_pts
        self._core[promoted] = True
        return promoted

    def _apply_pairs(self, q: np.ndarray, p: np.ndarray) -> tuple[int, int]:
        """Merge discovered ε-pairs into the forest and border anchors.

        Core–core pairs are unioned; (core, non-core) pairs in either
        orientation propose the core as the non-core point's anchor.
        Returns ``(union_hooks, anchor_atomics)`` for the cost model.
        """
        if q.size == 0:
            return 0, 0
        qc = self._core[q]
        pc = self._core[p]

        before = self._forest.num_unions
        both = qc & pc
        self._forest.union_edges(q[both], p[both])
        unions = self._forest.num_unions - before

        border = np.concatenate([p[qc & ~pc], q[~qc & pc]])
        anchor = np.concatenate([q[qc & ~pc], p[~qc & pc]])
        atomics = self._anchor_min(border, anchor)
        return unions, atomics

    def _anchor_min(self, border: np.ndarray, anchor: np.ndarray) -> int:
        """Keep, per border point, the earliest-arrived core neighbour.

        This reproduces the batch implementation's deterministic border
        attachment (first core ray to reach the point wins, and rays launch
        in arrival order), so chunked ingest matches the batch labelling.
        """
        if border.size == 0:
            return 0
        order = np.lexsort((self._arrival[anchor], border))
        b, a = border[order], anchor[order]
        first = np.ones(b.size, dtype=bool)
        first[1:] = b[1:] != b[:-1]
        b, a = b[first], a[first]
        current = self._anchor[b]
        sentinel = np.iinfo(np.int64).max
        current_arrival = np.where(current >= 0, self._arrival[current], sentinel)
        better = self._arrival[a] < current_arrival
        self._anchor[b[better]] = a[better]
        return int(better.sum())

    def _window_labels(self, win: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Canonical labels and core mask for the window slots ``win``."""
        core_mask = self._core[win].copy()
        keys = np.full(win.size, NOISE, dtype=np.int64)
        if core_mask.any():
            keys[core_mask] = self._forest.find_many(win[core_mask])
        anchors = self._anchor[win]
        border = ~core_mask & (anchors >= 0)
        if border.any():
            keys[border] = self._forest.find_many(anchors[border])
        return canonicalize_labels(keys), core_mask

    # ------------------------------------------------------------------ #
    def partial_fit(self, points: np.ndarray) -> "StreamingRTDBSCAN":
        """Ingest one chunk (estimator-API spelling of :meth:`update`).

        Returns ``self`` so calls chain; the per-update record is available
        via :meth:`result` or by using :meth:`update` directly.
        """
        self.update(points)
        return self

    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Feed ``points`` as one chunk and return the window labelling.

        On a fresh, unbounded-window engine this is exactly batch
        :func:`repro.dbscan.rt_dbscan` on the same points; on a live engine
        it is one more incremental update.
        """
        self.update(points)
        return self.result()

    def consume(self, chunks) -> list[StreamUpdate]:
        """Feed every chunk of an iterable through :meth:`update`."""
        return [self.update(chunk) for chunk in chunks]

    def result(self) -> DBSCANResult:
        """The current window as a batch-style :class:`DBSCANResult`.

        Lets callers reuse the agreement metrics and report formatters that
        operate on batch results.
        """
        win = self._window_slots()
        labels, core_mask = self._window_labels(win)
        with self._native_ctx():
            kernel_tier = native_dispatch.active_tier()
        return DBSCANResult(
            labels=labels,
            core_mask=core_mask,
            params=self.params,
            algorithm="streaming-rt-dbscan",
            report=self._last_report,
            neighbor_counts=self._counts[win].copy(),
            extra={
                "scene": self.scene.summary(),
                "window_arrivals": self._arrival[win].copy(),
                "kernel_tier": kernel_tier,
                "backend": self.backend,
                "restored": self.restored,
            },
        )

    def summary(self) -> dict:
        """Running totals for reports and benchmarks."""
        return {
            "num_updates": self.num_updates,
            "points_ingested": self.points_ingested,
            "points_evicted": self.points_evicted,
            "window_size": self.window_size,
            "total_simulated_seconds": self.total_simulated_seconds,
            "total_wall_seconds": self.total_wall_seconds,
            "counts": self.total_counts.as_dict(),
            "scene": self.scene.summary(),
        }

    def snapshot(self) -> dict:
        """A JSON-friendly snapshot of the current window state.

        Bundles the window labelling with the engine's running totals — the
        payload the service layer's ``snapshot`` op returns — plus an
        ``"engine"`` section carrying everything :meth:`restore` needs to
        rebuild an equivalent engine: constructor parameters, the window
        points in arrival order, their arrival numbers, and the running
        totals.  Arrays come back as plain lists so the snapshot serialises
        directly (the service's checkpoint store writes exactly this dict).
        """
        win = self._window_slots()
        labels, core_mask = self._window_labels(win)
        return {
            "window_size": int(win.size),
            "num_clusters": int((np.unique(labels) >= 0).sum()),
            "num_noise": int((labels == NOISE).sum()),
            "labels": labels.tolist(),
            "core_mask": core_mask.tolist(),
            "window_arrivals": self._arrival[win].tolist(),
            "released": self._released,
            "summary": self.summary(),
            "engine": {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION,
                "eps": float(self.eps),
                "min_pts": int(self.min_pts),
                "window": self.window,
                "backend": self.backend,
                "builder": self.builder,
                "leaf_size": int(self.scene.leaf_size),
                "chunk_size": int(self.scene.chunk_size),
                "capacity": int(self.scene.capacity),
                "native": self.native,
                "native_threads": self.native_threads,
                "points": self.scene.centers[win].tolist(),
                "arrivals": self._arrival[win].tolist(),
                "next_arrival": int(self._next_arrival),
                "totals": {
                    "num_updates": self.num_updates,
                    "points_ingested": self.points_ingested,
                    "points_evicted": self.points_evicted,
                    "total_simulated_seconds": self.total_simulated_seconds,
                    "total_wall_seconds": self.total_wall_seconds,
                    "counts": self.total_counts.as_dict(),
                },
            },
        }

    @classmethod
    def validate_snapshot(cls, snapshot: dict) -> dict:
        """Check a snapshot's engine section; returns it or raises ValueError.

        Structural validation only (format tag, schema version, array shape
        and arrival-order invariants) — cheap enough for the offline
        ``--restore-check`` diagnostic to run over a whole checkpoint
        directory without replaying any window.
        """
        if not isinstance(snapshot, dict) or "engine" not in snapshot:
            raise ValueError("snapshot has no 'engine' section (pre-durability record?)")
        sec = snapshot["engine"]
        if sec.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(f"unrecognised snapshot format {sec.get('format')!r}")
        if sec.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {sec.get('version')!r} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        points = np.asarray(sec.get("points", []), dtype=np.float64)
        arrivals = np.asarray(sec.get("arrivals", []), dtype=np.int64)
        if points.size and (points.ndim != 2 or points.shape[1] != 3):
            raise ValueError(f"snapshot points must be (n, 3), got shape {points.shape}")
        n = points.shape[0] if points.size else 0
        if arrivals.shape != (n,):
            raise ValueError(
                f"snapshot arrivals length {arrivals.shape} does not match {n} points"
            )
        if n and np.any(np.diff(arrivals) <= 0):
            raise ValueError("snapshot arrivals must be strictly increasing")
        if n and int(sec.get("next_arrival", -1)) <= int(arrivals[-1]):
            raise ValueError("snapshot next_arrival must exceed the last window arrival")
        window = sec.get("window")
        if window is not None and n > int(window):
            raise ValueError(f"snapshot window holds {n} points but window={window}")
        if not np.isfinite(points).all():
            raise ValueError("snapshot points must be finite")
        return sec

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        *,
        device: RTDevice | None = None,
        policy: RefitPolicy | None = None,
    ) -> "StreamingRTDBSCAN":
        """Rebuild an engine from a :meth:`snapshot` record.

        The window points are replayed as one update on a fresh engine —
        counts, core flags, border anchors and the union–find forest are all
        pure functions of the live window, so the replay reproduces them
        exactly — and the arrival numbering is then restored from the
        snapshot, so every later update (ingest, eviction order, border
        tie-breaks) proceeds bit-identically to an engine that never
        stopped.  Raises ``ValueError`` for structurally invalid snapshots.
        """
        sec = cls.validate_snapshot(snapshot)
        points = np.asarray(sec["points"], dtype=np.float64)
        n = points.shape[0] if points.size else 0
        engine = cls(
            sec["eps"],
            sec["min_pts"],
            window=sec["window"],
            device=device,
            policy=policy,
            backend=sec.get("backend") or None,
            builder=sec.get("builder", "lbvh"),
            leaf_size=sec.get("leaf_size", 4),
            chunk_size=sec.get("chunk_size", 16384),
            initial_capacity=max(256, int(sec.get("capacity", 0)), n),
            native=sec.get("native"),
            native_threads=sec.get("native_threads"),
        )
        if n:
            engine.update(points)
            win = engine._window_slots()
            engine._arrival[win] = np.asarray(sec["arrivals"], dtype=np.int64)
        engine._next_arrival = int(sec["next_arrival"])
        totals = sec.get("totals") or {}
        engine.num_updates = int(totals.get("num_updates", engine.num_updates))
        engine.points_ingested = int(totals.get("points_ingested", engine.points_ingested))
        engine.points_evicted = int(totals.get("points_evicted", engine.points_evicted))
        engine.total_simulated_seconds = float(
            totals.get("total_simulated_seconds", engine.total_simulated_seconds)
        )
        engine.total_wall_seconds = float(
            totals.get("total_wall_seconds", engine.total_wall_seconds)
        )
        counts = totals.get("counts")
        if counts:
            engine.total_counts = OpCounts(**{
                k: int(v) for k, v in counts.items()
                if k in OpCounts.__dataclass_fields__
            })
        engine.restored = True
        return engine

    # ------------------------------------------------------------------ #
    @property
    def released(self) -> bool:
        """True while the device-side scene is freed (see :meth:`release`)."""
        return self._released

    def release(self) -> None:
        """Free the device-side scene (idempotent).

        Repeated calls are no-ops: only the first call after the engine last
        touched the scene frees anything, and :attr:`num_releases` counts
        those effective releases — which is how the service layer's tests
        assert that eviction and shutdown tear a session down *exactly once*.
        Ingesting again after a release transparently rebuilds the scene.
        """
        if self._released:
            return
        self.scene.release()
        self._released = True
        self.num_releases += 1

    def __enter__(self) -> "StreamingRTDBSCAN":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
