"""Incrementally maintained ε-sphere scene.

The batch pipeline rebuilds the whole scene per run; a stream cannot afford
that, so :class:`StreamingScene` keeps the spheres in a *slot buffer* sized
above the live window:

* **append** — new points fill free slots (recycled first, then fresh ones);
* **evict**  — a slot is *parked*: its sphere collapses to radius zero and
  moves to a point outside the data extent, so it can never produce a hit
  and barely disturbs traversal;
* **commit** — after the slot edits, the acceleration structure is brought
  up to date either by a *refit* (an OptiX accel update over the existing
  topology, priced by :meth:`DeviceCostModel.refit_time_s`) or by a full
  *rebuild* (new LBVH/SAH tree over the slot buffer), as decided by the
  :class:`~repro.streaming.policy.RefitPolicy`.

Capacity grows geometrically when the buffer fills; growth invalidates the
tree topology and therefore forces a rebuild.  All query launches run
through the regular :class:`~repro.rtcore.pipeline.ScenePipeline`, so node
visits, intersection-program calls and kernel launches are charged to the
device exactly as in the batch path.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import make_backend
from ..geometry.sphere import SphereGeometry
from ..perf.cost_model import OpCounts
from ..rtcore.counters import LaunchStats
from ..rtcore.device import RTDevice
from ..rtcore.pipeline import ScenePipeline
from ..rtcore.programs import ProgramGroup
from .policy import RefitPolicy

__all__ = ["StreamingScene", "HostStreamingScene"]


class StreamingScene:
    """Slot-buffer ε-sphere scene with refit-aware maintenance.

    Parameters
    ----------
    eps:
        Sphere radius (the DBSCAN ε).
    device:
        Simulated RT device all work is charged to.
    builder, leaf_size, chunk_size:
        Acceleration-structure and launch parameters, as in the batch path.
    initial_capacity:
        Starting size of the slot buffer.
    growth_factor:
        Capacity multiplier when the buffer fills.
    """

    def __init__(
        self,
        eps: float,
        device: RTDevice | None = None,
        *,
        builder: str = "lbvh",
        leaf_size: int = 4,
        chunk_size: int = 16384,
        initial_capacity: int = 256,
        growth_factor: float = 2.0,
    ) -> None:
        if eps <= 0 or not np.isfinite(eps):
            raise ValueError("eps must be a positive finite number")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be positive")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        self.eps = float(eps)
        self.device = device or RTDevice()
        self.builder = builder
        self.leaf_size = leaf_size
        self.chunk_size = chunk_size
        self.growth_factor = float(growth_factor)

        self.capacity = int(initial_capacity)
        self.centers = np.zeros((self.capacity, 3), dtype=np.float64)
        self.radii = np.zeros(self.capacity, dtype=np.float64)
        self.active = np.zeros(self.capacity, dtype=bool)
        self._free: list[int] = []
        self._high_water = 0

        self.pipeline: ScenePipeline | None = None
        self._needs_rebuild = True
        self._churned_since_build = 0

        #: maintenance statistics (exposed in benchmark reports).
        self.num_builds = 0
        self.num_refits = 0
        self.build_prims_total = 0
        self.refit_prims_total = 0

    # ------------------------------------------------------------------ #
    @property
    def num_active(self) -> int:
        return int(self.active.sum())

    def active_slots(self) -> np.ndarray:
        return np.flatnonzero(self.active)

    # ------------------------------------------------------------------ #
    def _grow(self, needed: int) -> None:
        new_cap = max(int(np.ceil(self.capacity * self.growth_factor)), needed)
        pad = new_cap - self.capacity
        self.centers = np.vstack([self.centers, np.zeros((pad, 3))])
        self.radii = np.concatenate([self.radii, np.zeros(pad)])
        self.active = np.concatenate([self.active, np.zeros(pad, dtype=bool)])
        self.capacity = new_cap
        self._needs_rebuild = True

    def allocate(self, k: int) -> np.ndarray:
        """Reserve ``k`` slots and return their ids (lowest ids first).

        The caller must follow up with :meth:`set_points` and then
        :meth:`commit`.  Growing past the current capacity marks the
        structure for rebuild.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        self._free.sort()
        recycled = self._free[:k]
        self._free = self._free[k:]
        fresh_needed = k - len(recycled)
        if self._high_water + fresh_needed > self.capacity:
            self._grow(self._high_water + fresh_needed)
        fresh = list(range(self._high_water, self._high_water + fresh_needed))
        self._high_water += fresh_needed
        return np.asarray(recycled + fresh, dtype=np.intp)

    def set_points(self, slots: np.ndarray, points3: np.ndarray) -> None:
        """Activate ``slots`` as ε-spheres centred on ``points3``."""
        slots = np.asarray(slots, dtype=np.intp)
        self.centers[slots] = points3
        self.radii[slots] = self.eps
        self.active[slots] = True
        self._churned_since_build += int(slots.size)

    def deallocate(self, slots: np.ndarray) -> None:
        """Park ``slots``: zero radius, centre outside the data extent."""
        slots = np.asarray(slots, dtype=np.intp)
        if slots.size == 0:
            return
        self.active[slots] = False
        self.radii[slots] = 0.0
        self.centers[slots] = self._park_point()
        self._free.extend(int(s) for s in slots)
        self._churned_since_build += int(slots.size)

    def _park_point(self) -> np.ndarray:
        """A point safely outside the live data extent.

        Parked spheres have radius zero, so they can never confirm a hit;
        placing them just past the active bounding box (rather than at some
        astronomical coordinate) keeps the Morton quantisation of a later
        rebuild from squeezing the real data into a single cell.
        """
        if not self.active.any():
            return np.full(3, 1.0e6)
        act = self.centers[self.active]
        hi = act.max(axis=0)
        extent = float((hi - act.min(axis=0)).max())
        return hi + max(extent, 1.0) * 0.5 + 4.0 * self.eps

    # ------------------------------------------------------------------ #
    @property
    def churn_fraction(self) -> float:
        if self.capacity == 0:
            return 0.0
        return self._churned_since_build / self.capacity

    def commit(self, policy: RefitPolicy) -> tuple[str, float, OpCounts]:
        """Bring the acceleration structure up to date.

        Returns ``(action, simulated_seconds, counts)`` where ``action`` is
        ``"refit"`` or ``"rebuild"``.  Both paths are charged to the device:
        per-primitive refit/build work plus one kernel launch.
        """
        action = policy.choose(
            cost_model=self.device.cost_model,
            num_prims=self.capacity,
            churn_fraction=self.churn_fraction,
            has_rt_cores=self.device.has_rt_cores,
            structure_valid=self.pipeline is not None and not self._needs_rebuild,
        )
        if action == "rebuild":
            seconds = self._rebuild()
            counts = OpCounts(bvh_build_prims=self.capacity, kernel_launches=1)
            self.device.charge(counts)
        else:
            # Refit keeps the stale topology, so churn keeps accumulating
            # until a rebuild restores tree quality.
            assert self.pipeline is not None
            seconds = self.pipeline.refit_accel()  # charges the device itself
            counts = OpCounts(bvh_refit_prims=self.capacity, kernel_launches=1)
            self.num_refits += 1
            self.refit_prims_total += self.capacity
        return action, seconds, counts

    def _rebuild(self) -> float:
        if self.pipeline is not None:
            self.pipeline.release()
        # Park every inactive slot (including never-used buffer slack) so the
        # new tree groups the dead primitives into one far-away subtree.
        inactive = ~self.active
        if inactive.any():
            self.centers[inactive] = self._park_point()
            self.radii[inactive] = 0.0
        geometry = SphereGeometry(self.centers, self.radii)
        self.pipeline = ScenePipeline(
            device=self.device,
            geometry=geometry,
            builder=self.builder,
            leaf_size=self.leaf_size,
            chunk_size=self.chunk_size,
        )
        seconds = self.pipeline.build_accel()
        self._needs_rebuild = False
        self._churned_since_build = 0
        self.num_builds += 1
        self.build_prims_total += self.capacity
        return seconds

    # ------------------------------------------------------------------ #
    def query_csr(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """ε-rays from the given (active) slots, confirmed hits as CSR.

        Row ``i`` of the returned ``(indptr, indices)`` adjacency holds the
        hit slot ids of query slot ``slots[i]``.  The intersection program
        applies the exact distance test, rejects parked primitives, and
        excludes the self hit — matching the batch sphere program's
        semantics.  Runs through the zero-materialisation CSR launch, so the
        candidate pair set is confirmed chunk-by-chunk inside the traversal.
        """
        slots = np.asarray(slots, dtype=np.intp)
        if slots.size == 0:
            return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.intp), LaunchStats()
        if self.pipeline is None:
            raise RuntimeError("commit() must run before querying the scene")
        qpts = self.centers[slots]
        eps2 = self.eps * self.eps

        def intersection(query_idx: np.ndarray, prim_idx: np.ndarray) -> np.ndarray:
            d = qpts[query_idx] - self.centers[prim_idx]
            hit = np.einsum("ij,ij->i", d, d) <= eps2
            hit &= self.active[prim_idx]
            hit &= slots[query_idx] != prim_idx
            return hit

        programs = ProgramGroup(
            intersection=intersection,
            name="streaming-window",
            # Native-tier descriptor: parked primitives are rejected via the
            # active mask and the self hit via the slot map (prim != slots[q]),
            # mirroring the closure above bit-for-bit.
            payload={
                "native_sphere": {
                    "centers": self.centers,
                    "confirm_pts": qpts,
                    "r2": eps2,
                    "self_map": slots,
                    "active": self.active,
                }
            },
        )
        return self.pipeline.launch_csr_queries(qpts, programs)

    def query_pairs(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """ε-rays from the given (active) slots against the whole scene.

        Returns ``(query_slot, hit_slot, stats)`` pairs in slot space —
        the expanded form of :meth:`query_csr`, sized by the window's live
        edge set (small per update), not by any candidate intermediate.
        """
        slots = np.asarray(slots, dtype=np.intp)
        if slots.size == 0:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.intp),
                LaunchStats(),
            )
        indptr, indices, stats = self.query_csr(slots)
        q_rows = np.repeat(slots, np.diff(indptr))
        return q_rows, indices, stats

    def release(self) -> None:
        """Free the device-side scene."""
        if self.pipeline is not None:
            self.pipeline.release()
            self.pipeline = None
        self._needs_rebuild = True

    def summary(self) -> dict:
        return {
            "capacity": self.capacity,
            "num_active": self.num_active,
            "num_builds": self.num_builds,
            "num_refits": self.num_refits,
            "build_prims_total": self.build_prims_total,
            "refit_prims_total": self.refit_prims_total,
            "churn_fraction": self.churn_fraction,
        }


class HostStreamingScene(StreamingScene):
    """Slot-buffer window scene answered by a host neighbour backend.

    Same slot-buffer lifecycle as :class:`StreamingScene` (allocate /
    set_points / deallocate / commit / query), but instead of maintaining an
    ε-sphere BVH on the simulated RT device, :meth:`commit` rebuilds one of
    the registered host backends (``grid`` / ``kdtree`` / ``brute``) over the
    live window and :meth:`query_csr` answers through its external-query
    sweep.  Because every exact backend returns the canonical ε-adjacency,
    the streaming engine produces bit-identical labels on this scene and on
    the RT scene — which is what lets the snapshot/restore parity suite
    assert recovery on every substrate the engine supports.

    Host index structures have no refit path: any churn since the last
    commit forces a rebuild (host builds are cheap — the backends charge
    their own shader-core build costs to the device).
    """

    def __init__(
        self,
        eps: float,
        device: RTDevice | None = None,
        *,
        backend: str = "grid",
        leaf_size: int = 4,
        chunk_size: int = 16384,
        initial_capacity: int = 256,
        growth_factor: float = 2.0,
    ) -> None:
        super().__init__(
            eps,
            device,
            leaf_size=leaf_size,
            chunk_size=chunk_size,
            initial_capacity=initial_capacity,
            growth_factor=growth_factor,
        )
        self.backend_name = backend
        self._backend = None
        #: slot ids (ascending) the live index was built over; CSR indices
        #: from the backend are positions into this map.
        self._slot_map = np.empty(0, dtype=np.intp)

    # ------------------------------------------------------------------ #
    def commit(self, policy: RefitPolicy) -> tuple[str, float, OpCounts]:
        """Rebuild the host index over the live window (no refit path)."""
        if self._backend is not None:
            self._backend.release()
            self._backend = None
        slots = self.active_slots()
        self._slot_map = slots
        self._needs_rebuild = False
        self._churned_since_build = 0
        if slots.size == 0:
            return "none", 0.0, OpCounts()
        self._backend = make_backend(
            self.backend_name, self.centers[slots], self.eps, device=self.device
        )
        self.num_builds += 1
        self.build_prims_total += int(slots.size)
        return "rebuild", self._backend.build_seconds, OpCounts(kernel_launches=1)

    def query_csr(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray, LaunchStats]:
        """External ε-queries against the committed index, self hits removed.

        The backend sweep has no notion of identity for external query
        points, so the query point's own zero-distance hit comes back and is
        filtered here — matching the RT scene's ``prim != slots[q]``
        intersection semantics bit-for-bit.  Indices come back in slot space
        (ascending per row: the backend CSR is ascending in index space and
        the slot map is monotone).
        """
        slots = np.asarray(slots, dtype=np.intp)
        if slots.size == 0:
            return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.intp), LaunchStats()
        if self._backend is None:
            if self._slot_map.size == 0 and not self.active.any():
                # Empty committed window: every query row is empty.
                return (
                    np.zeros(slots.size + 1, dtype=np.int64),
                    np.empty(0, dtype=np.intp),
                    LaunchStats(),
                )
            raise RuntimeError("commit() must run before querying the scene")
        indptr, indices, stats = self._backend.neighbor_csr(self.centers[slots])
        mapped = self._slot_map[indices]
        rows = np.repeat(np.arange(slots.size, dtype=np.intp), np.diff(indptr))
        keep = mapped != slots[rows]
        out_indptr = np.zeros(slots.size + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[keep], minlength=slots.size), out=out_indptr[1:])
        return out_indptr, mapped[keep], stats

    def release(self) -> None:
        if self._backend is not None:
            self._backend.release()
            self._backend = None
        self._slot_map = np.empty(0, dtype=np.intp)
        self._needs_rebuild = True

    def summary(self) -> dict:
        payload = super().summary()
        payload["backend"] = self.backend_name
        return payload
