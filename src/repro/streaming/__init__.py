"""Streaming RT-DBSCAN: incremental ingest + refit-aware re-clustering.

The paper's core argument — BVH-backed ε-queries are so cheap that redundant
traversal beats bookkeeping — extends naturally to *streaming* workloads
where points arrive continuously.  This subsystem maintains the ε-sphere
scene incrementally instead of rebuilding it per batch:

* :class:`StreamingScene` keeps the spheres in a slot buffer sized above the
  live window; appends fill free slots, evictions park slots out of the data
  extent, and the acceleration structure is *refit* (an OptiX accel update,
  priced by the device cost model) unless churn or capacity growth makes a
  full rebuild pay off;
* :class:`RefitPolicy` is that refit-vs-rebuild decision, driven by
  :class:`repro.perf.cost_model.DeviceCostModel`;
* :class:`StreamingRTDBSCAN` layers incremental DBSCAN label maintenance on
  top: per-point ε-neighbour counts are updated from the new points' rays
  alone, the union–find forest grows monotonically under insertion, and only
  cluster-structure-changing evictions trigger a (core-point-only)
  re-clustering pass.

For any chunked feed with no evictions the final window labelling is
identical to batch :func:`repro.dbscan.rt_dbscan` on the same points.
"""

from .engine import StreamingRTDBSCAN, StreamUpdate
from .policy import RefitPolicy
from .scene import StreamingScene

__all__ = ["StreamingRTDBSCAN", "StreamUpdate", "RefitPolicy", "StreamingScene"]
