"""GPU DBSCAN baselines re-implemented for the comparison study.

FDBSCAN (with and without early exit), G-DBSCAN and CUDA-DClust+ — the three
GPU comparators of the paper's evaluation — instrumented with the same
operation counters and charged to the same simulated device as RT-DBSCAN.
"""

from .cuda_dclust import CUDADClustPlus, cuda_dclust_plus
from .fdbscan import FDBSCAN, fdbscan
from .gdbscan import GDBSCAN, gdbscan

__all__ = [
    "CUDADClustPlus",
    "cuda_dclust_plus",
    "FDBSCAN",
    "fdbscan",
    "GDBSCAN",
    "gdbscan",
]
