"""FDBSCAN baseline (Prokopenko et al., the paper's primary comparator).

FDBSCAN is the algorithm RT-DBSCAN is derived from: a BVH-backed fixed-radius
search combined with a union–find cluster formation pass, with no stored
neighbour lists.  The crucial difference is *where* the BVH traversal runs —
FDBSCAN traverses its tree with shader-core code, while RT-DBSCAN hands the
traversal to the RT cores.  The implementation below therefore reuses the
same BVH substrate but charges every traversal step at the shader-core rate
of the cost model, and its BVH build at the cheaper "plain spatial build"
rate (the paper measures the OptiX sphere build to be ~2.5× more expensive).

The ``early_exit`` flag reproduces the optimisation discussed in Section VI-B:
core-point identification stops traversing as soon as ``min_pts`` neighbours
have been confirmed.  RT-DBSCAN cannot use this optimisation (OptiX would
need an AnyHit call per hit), which is exactly the trade-off Fig. 9 explores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.protocol import ClustererMixin
from ..api.registry import register_algorithm
from ..bvh.lbvh import build_lbvh
from ..bvh.traversal import point_query_counts_early_exit, point_query_csr
from ..dbscan.formation import form_clusters_csr
from ..dbscan.params import DBSCANParams, DBSCANResult
from ..geometry.aabb import AABB
from ..geometry.transforms import ensure_points3d
from ..perf.cost_model import OpCounts
from ..perf.timing import PhaseTimer
from ..rtcore.device import RTDevice

__all__ = ["FDBSCAN", "fdbscan"]


@register_algorithm(
    "fdbscan",
    description="FDBSCAN (Prokopenko et al.): shader-core BVH + union-find.",
)
@dataclass
class FDBSCAN(ClustererMixin):
    """FDBSCAN clusterer (shader-core BVH + union–find).

    Parameters
    ----------
    eps, min_pts:
        DBSCAN parameters.
    early_exit:
        Stop the stage-1 traversal of a point once ``min_pts`` neighbours are
        confirmed (Section VI-B).  Off by default to match the paper's main
        comparison, which targets the multi-run use case.
    device:
        The simulated GPU; FDBSCAN uses only its shader cores.
    leaf_size, chunk_size:
        BVH build / traversal batching parameters.
    """

    eps: float
    min_pts: int
    early_exit: bool = False
    device: RTDevice | None = None
    leaf_size: int = 4
    chunk_size: int = 16384

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)
        self.device = self.device or RTDevice()

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points`` with the FDBSCAN algorithm."""
        pts = ensure_points3d(points)
        n = pts.shape[0]
        eps = self.params.eps
        algorithm = "fdbscan-earlyexit" if self.early_exit else "fdbscan"
        timer = PhaseTimer(algorithm, self.device.cost_model)
        timer.metadata.update(
            {"eps": eps, "min_pts": self.params.min_pts, "num_points": n, "device": self.device.name}
        )

        def confirm(q: np.ndarray, p: np.ndarray) -> np.ndarray:
            d = pts[q] - pts[p]
            hit = np.einsum("ij,ij->i", d, d) <= eps * eps
            hit &= q != p
            return hit

        # -------------------------------------------------------------- #
        # Index construction: a plain spatial BVH over the points (each
        # point's box is expanded by eps so a containment query at a point
        # finds every candidate within range, as ArborX does).
        # -------------------------------------------------------------- #
        build_seconds = self.device.cost_model.build_time_s(n, unit="sm")
        with timer.phase("bvh_build", simulated_seconds=build_seconds) as counts:
            bounds = AABB.from_spheres(pts, eps)
            bvh = build_lbvh(bounds, leaf_size=self.leaf_size)
            self.device.memory.allocate("fdbscan_bvh", bvh.memory_bytes())
            counts.bvh_build_prims = n
            counts.kernel_launches += 1

        try:
            # ------------------------------------------------------------ #
            # Stage 1 — core point identification (early exit optional).
            #
            # The early-exit optimisation terminates a point's depth-first
            # traversal as soon as ``min_pts`` neighbours have been confirmed
            # (Section VI-B).  The level-synchronous simulator always computes
            # the exact counts; when early exit is enabled the *charged* cost
            # is reduced analytically: a point with R >= minPts confirmed
            # neighbours among C candidates examines on average
            # ``C * minPts / R`` candidates before stopping, with a floor of
            # one root-to-leaf descent.
            # ------------------------------------------------------------ #
            with timer.phase("core_identification") as counts:
                if self.early_exit:
                    # The exact counts plus the per-query candidate histogram
                    # come from one counting traversal — the candidate pair
                    # set itself is never materialised.
                    cand_per_q = np.zeros(n, dtype=np.int64)
                    neighbor_counts, stats1 = point_query_counts_early_exit(
                        bvh, pts, confirm, min_count=None,
                        chunk_size=self.chunk_size, candidate_counts=cand_per_q,
                    )
                    frac = np.ones(n, dtype=np.float64)
                    reached = neighbor_counts >= self.params.min_pts
                    frac[reached] = self.params.min_pts / np.maximum(
                        neighbor_counts[reached], 1
                    )
                    charged_candidates = int(np.ceil((cand_per_q * frac).sum()))
                    depth_floor = n * bvh.depth
                    extra_visits = max(stats1.node_visits - depth_floor, 0)
                    charged_visits = depth_floor + int(
                        np.ceil(extra_visits * charged_candidates / max(stats1.candidates, 1))
                    )
                else:
                    neighbor_counts, stats1 = point_query_counts_early_exit(
                        bvh, pts, confirm, min_count=None, chunk_size=self.chunk_size
                    )
                    charged_candidates = stats1.candidates
                    charged_visits = stats1.node_visits
                counts.sm_node_visits += charged_visits
                counts.distance_computations += charged_candidates
                counts.kernel_launches += 1
                core_mask = neighbor_counts >= self.params.min_pts
                self.device.charge(
                    OpCounts(
                        sm_node_visits=charged_visits,
                        distance_computations=charged_candidates,
                        kernel_launches=1,
                    )
                )

            # ------------------------------------------------------------ #
            # Stage 2 — cluster formation with union-find.  Neighbourhoods
            # are recomputed (FDBSCAN stores nothing).
            # ------------------------------------------------------------ #
            with timer.phase("cluster_formation") as counts:
                indptr, indices, stats2 = point_query_csr(
                    bvh, pts, confirm, chunk_size=self.chunk_size
                )
                counts.sm_node_visits += stats2.node_visits
                counts.distance_computations += stats2.candidates
                counts.kernel_launches += 1

                formation = form_clusters_csr(indptr, indices, core_mask)
                counts.union_ops += formation.num_unions
                counts.atomic_ops += formation.num_atomics
                self.device.charge(
                    OpCounts(
                        sm_node_visits=stats2.node_visits,
                        distance_computations=stats2.candidates,
                        union_ops=formation.num_unions,
                        atomic_ops=formation.num_atomics,
                        kernel_launches=1,
                    )
                )
                labels = formation.labels
        finally:
            self.device.memory.free("fdbscan_bvh")

        return DBSCANResult(
            labels=labels,
            core_mask=core_mask,
            params=self.params,
            algorithm=algorithm,
            report=timer.report(),
            neighbor_counts=None if self.early_exit else neighbor_counts,
        )


@register_algorithm(
    "fdbscan-earlyexit",
    description="FDBSCAN with the Section VI-B early-exit traversal optimisation.",
)
def _fdbscan_early_exit(eps: float, min_pts: int, device=None, **kwargs) -> FDBSCAN:
    kwargs.setdefault("early_exit", True)
    return FDBSCAN(eps=eps, min_pts=min_pts, device=device, **kwargs)


def fdbscan(points: np.ndarray, eps: float, min_pts: int, **kwargs) -> DBSCANResult:
    """Functional convenience wrapper around :class:`FDBSCAN`."""
    return FDBSCAN(eps=eps, min_pts=min_pts, **kwargs).fit(points)
