"""G-DBSCAN baseline (Andrade et al.).

G-DBSCAN materialises the ε-neighbourhood graph of the whole dataset on the
GPU — a dense all-pairs distance pass fills per-point adjacency lists — and
then finds clusters by running level-synchronous breadth-first searches from
unvisited core points.  Its weakness, which the paper leans on, is memory:
the graph-construction pass and the adjacency lists do not fit in the 6 GB of
the RTX 2060 once the dataset grows past roughly 10^5 points, so the
simulated device raises :class:`~repro.perf.memory.DeviceMemoryError` in the
same regime (Section V-B1).

Cost accounting follows the GPU algorithm (all-pairs distance computations,
per-edge BFS work) even though the host-side implementation uses a KD-tree to
obtain the same adjacency lists without quadratic Python time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..api.protocol import ClustererMixin
from ..api.registry import register_algorithm
from ..dbscan.params import NOISE, UNCLASSIFIED, DBSCANParams, DBSCANResult, canonicalize_labels
from ..geometry.transforms import lift_to_3d, validate_points
from ..perf.cost_model import OpCounts
from ..perf.memory import estimate_adjacency_bytes
from ..perf.timing import PhaseTimer
from ..rtcore.device import RTDevice

__all__ = ["GDBSCAN", "gdbscan"]


@register_algorithm(
    "g-dbscan",
    description="G-DBSCAN (Andrade et al.): materialised ε-graph + parallel BFS.",
)
@dataclass
class GDBSCAN(ClustererMixin):
    """G-DBSCAN clusterer (ε-graph construction + parallel BFS).

    Parameters
    ----------
    eps, min_pts:
        DBSCAN parameters.
    device:
        Simulated GPU (shader cores only).  The graph-construction working
        set is charged against its 6 GB memory budget.
    """

    eps: float
    min_pts: int
    device: RTDevice | None = None

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)
        self.device = self.device or RTDevice()

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points``; raises ``DeviceMemoryError`` if the graph
        working set exceeds device memory (the behaviour the paper reports
        for datasets beyond ~100 K points)."""
        pts = lift_to_3d(validate_points(points))
        n = pts.shape[0]
        eps = self.params.eps
        timer = PhaseTimer("g-dbscan", self.device.cost_model)
        timer.metadata.update(
            {"eps": eps, "min_pts": self.params.min_pts, "num_points": n, "device": self.device.name}
        )

        try:
            # ------------------------------------------------------------ #
            # Graph construction.  The GPU kernel computes the full n x n
            # distance matrix to fill the adjacency lists; the dominant
            # device allocations are the pairwise working matrix and the
            # CSR adjacency.
            # ------------------------------------------------------------ #
            with timer.phase("graph_construction") as counts:
                # The all-pairs working matrix is what blows the memory budget.
                self.device.memory.allocate("gdbscan_pairwise_matrix", n * n)
                tree = cKDTree(pts)
                neighbor_lists = tree.query_ball_point(pts, r=eps)
                neighbors = [
                    np.setdiff1d(np.asarray(lst, dtype=np.intp), [i])
                    for i, lst in enumerate(neighbor_lists)
                ]
                degrees = np.asarray([len(nb) for nb in neighbors], dtype=np.int64)
                mean_degree = float(degrees.mean()) if n else 0.0
                self.device.memory.allocate(
                    "gdbscan_adjacency", estimate_adjacency_bytes(n, mean_degree)
                )
                counts.distance_computations += n * n
                counts.bytes_moved += n * n  # writing the boolean pairwise matrix
                counts.kernel_launches += 2  # degree kernel + adjacency fill kernel
                self.device.charge(
                    OpCounts(distance_computations=n * n, bytes_moved=n * n, kernel_launches=2)
                )

            # ------------------------------------------------------------ #
            # Core identification is a by-product of the degree array.
            # ------------------------------------------------------------ #
            with timer.phase("core_identification") as counts:
                core_mask = degrees >= self.params.min_pts
                counts.kernel_launches += 1
                self.device.charge(OpCounts(kernel_launches=1))

            # ------------------------------------------------------------ #
            # Cluster identification: BFS over the ε-graph from every
            # unvisited core point (level-synchronous on the GPU).
            # ------------------------------------------------------------ #
            with timer.phase("cluster_identification") as counts:
                labels = np.full(n, UNCLASSIFIED, dtype=np.int64)
                cluster_id = 0
                edges_traversed = 0
                bfs_levels = 0
                for seed in range(n):
                    if labels[seed] != UNCLASSIFIED or not core_mask[seed]:
                        continue
                    labels[seed] = cluster_id
                    frontier = deque([seed])
                    while frontier:
                        bfs_levels += 1
                        next_frontier: deque[int] = deque()
                        while frontier:
                            u = frontier.popleft()
                            if not core_mask[u]:
                                continue
                            for v in neighbors[u]:
                                edges_traversed += 1
                                if labels[v] == UNCLASSIFIED or labels[v] == NOISE:
                                    labels[v] = cluster_id
                                    next_frontier.append(int(v))
                        frontier = next_frontier
                    cluster_id += 1
                labels[labels == UNCLASSIFIED] = NOISE
                counts.distance_computations += 0
                counts.bytes_moved += edges_traversed * 4
                counts.kernel_launches += bfs_levels
                counts.union_ops += edges_traversed
                self.device.charge(
                    OpCounts(
                        bytes_moved=edges_traversed * 4,
                        kernel_launches=bfs_levels,
                        union_ops=edges_traversed,
                    )
                )
        finally:
            self.device.memory.free("gdbscan_pairwise_matrix")
            self.device.memory.free("gdbscan_adjacency")

        return DBSCANResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            params=self.params,
            algorithm="g-dbscan",
            report=timer.report(),
            neighbor_counts=degrees,
        )


def gdbscan(points: np.ndarray, eps: float, min_pts: int, **kwargs) -> DBSCANResult:
    """Functional convenience wrapper around :class:`GDBSCAN`."""
    return GDBSCAN(eps=eps, min_pts=min_pts, **kwargs).fit(points)
