"""CUDA-DClust+ baseline (Poudel & Gowanlock).

CUDA-DClust+ grows many clusters in parallel as *chains*: each GPU block
picks an unprocessed seed point, expands a cluster from it using a grid
index, and records *collisions* when its chain reaches points already owned
by another chain; a final host pass merges collided chains.  Compared to
CUDA-DClust it builds the grid index on the GPU and reduces transfers, but
it still keeps per-chain bookkeeping (seed lists, a collision matrix and the
grid index) resident on the device — the paper observes both memory pressure
on the 6 GB RTX 2060 beyond ~10^5 points and run-to-run variability in
cluster assignment of border points.

The reproduction keeps the chain/collision structure (so the cost and memory
profile follow the same shape) while producing a deterministic, exact DBSCAN
labelling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.protocol import ClustererMixin
from ..api.registry import register_algorithm
from ..dbscan.disjoint_set import DisjointSet
from ..dbscan.labels import labels_from_roots
from ..dbscan.params import DBSCANParams, DBSCANResult, canonicalize_labels
from ..geometry.transforms import validate_points
from ..neighbors.grid import UniformGrid
from ..perf.cost_model import OpCounts
from ..perf.timing import PhaseTimer
from ..rtcore.device import RTDevice

__all__ = ["CUDADClustPlus", "cuda_dclust_plus"]


@register_algorithm(
    "cuda-dclust+",
    description="CUDA-DClust+ (Poudel & Gowanlock): grid index + parallel chain expansion.",
)
@dataclass
class CUDADClustPlus(ClustererMixin):
    """CUDA-DClust+ clusterer (grid index + parallel chain expansion).

    Parameters
    ----------
    eps, min_pts:
        DBSCAN parameters.
    device:
        Simulated GPU (shader cores only).
    chain_length:
        Number of points a chain may claim before yielding (per-block work
        quantum in the original implementation); affects only the simulated
        kernel-launch count, not the labelling.
    max_neighbors_buffer:
        Capacity of the fixed per-point candidate buffer the GPU kernels
        allocate; together with the collision matrix this is what exhausts
        device memory on larger datasets.
    """

    eps: float
    min_pts: int
    device: RTDevice | None = None
    chain_length: int = 64
    max_neighbors_buffer: int = 8192

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)
        self.device = self.device or RTDevice()

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster ``points``; raises ``DeviceMemoryError`` when the chain
        bookkeeping exceeds the simulated device memory."""
        pts = validate_points(points)
        n = pts.shape[0]
        eps = self.params.eps
        timer = PhaseTimer("cuda-dclust+", self.device.cost_model)
        timer.metadata.update(
            {"eps": eps, "min_pts": self.params.min_pts, "num_points": n, "device": self.device.name}
        )

        try:
            # ------------------------------------------------------------ #
            # Index construction: the ε-cell grid, built on the GPU.
            # ------------------------------------------------------------ #
            with timer.phase("index_construction") as counts:
                grid = UniformGrid(pts, eps)
                self.device.memory.allocate("dclust_grid", grid.memory_bytes())
                # Fixed-capacity per-point neighbour-table buffers + chain states.
                # The original implementation keeps a neighbour table of
                # ``n x max_neighbors`` 32-bit indices resident on the device,
                # which is what exhausts the 6 GB budget beyond ~10^5 points.
                num_chains = max(1, n // self.chain_length)
                self.device.memory.allocate(
                    "dclust_candidate_buffers", n * self.max_neighbors_buffer * 4
                )
                self.device.memory.allocate("dclust_collision_matrix", num_chains * num_chains)
                counts.bytes_moved += pts.nbytes
                counts.kernel_launches += 2
                self.device.charge(OpCounts(bytes_moved=pts.nbytes, kernel_launches=2))

            # ------------------------------------------------------------ #
            # Chain expansion: neighbourhoods come from the grid; every
            # candidate inspected costs one distance computation.
            # ------------------------------------------------------------ #
            with timer.phase("chain_expansion") as counts:
                neighbor_lists: list[np.ndarray] = []
                distance_tests = 0
                for i in range(n):
                    cand = grid.candidate_neighbors(pts[i])
                    distance_tests += int(cand.size)
                    d = pts[cand] - pts[i]
                    ok = np.einsum("ij,ij->i", d, d) <= eps * eps
                    nb = cand[ok]
                    neighbor_lists.append(nb[nb != i])
                degrees = np.asarray([len(nb) for nb in neighbor_lists], dtype=np.int64)
                core_mask = degrees >= self.params.min_pts

                # Chains expand clusters in parallel; every point processed
                # costs a chain step and collisions are resolved with the
                # collision matrix (modelled as atomic operations).
                forest = DisjointSet(n)
                collisions = 0
                for i in np.flatnonzero(core_mask):
                    for j in neighbor_lists[i]:
                        if core_mask[j]:
                            if not forest.connected(i, int(j)):
                                collisions += 1
                            forest.union(i, int(j))
                # Border points attach to the first core chain that reaches them.
                border_assigned = np.zeros(n, dtype=bool)
                border_owner = np.zeros(n, dtype=np.intp)
                for i in np.flatnonzero(core_mask):
                    for j in neighbor_lists[i]:
                        if not core_mask[j] and not border_assigned[j]:
                            border_assigned[j] = True
                            border_owner[j] = i
                num_chain_steps = int(core_mask.sum()) + int(border_assigned.sum())
                kernel_rounds = max(1, num_chain_steps // max(self.chain_length, 1))

                counts.distance_computations += distance_tests
                counts.union_ops += forest.num_unions
                counts.atomic_ops += collisions + int(border_assigned.sum())
                counts.kernel_launches += kernel_rounds
                self.device.charge(
                    OpCounts(
                        distance_computations=distance_tests,
                        union_ops=forest.num_unions,
                        atomic_ops=collisions + int(border_assigned.sum()),
                        kernel_launches=kernel_rounds,
                    )
                )

            # ------------------------------------------------------------ #
            # Collision resolution / final labelling on the host.
            # ------------------------------------------------------------ #
            with timer.phase("collision_resolution") as counts:
                roots = forest.roots()
                for b in np.flatnonzero(border_assigned):
                    roots[b] = roots[border_owner[b]]
                labels = labels_from_roots(roots, core_mask, assigned_mask=border_assigned)
                counts.bytes_moved += roots.nbytes
                counts.kernel_launches += 1
                self.device.charge(OpCounts(bytes_moved=roots.nbytes, kernel_launches=1))
        finally:
            self.device.memory.free("dclust_grid")
            self.device.memory.free("dclust_candidate_buffers")
            self.device.memory.free("dclust_collision_matrix")

        return DBSCANResult(
            labels=canonicalize_labels(labels),
            core_mask=core_mask,
            params=self.params,
            algorithm="cuda-dclust+",
            report=timer.report(),
            neighbor_counts=degrees,
        )


def cuda_dclust_plus(points: np.ndarray, eps: float, min_pts: int, **kwargs) -> DBSCANResult:
    """Functional convenience wrapper around :class:`CUDADClustPlus`."""
    return CUDADClustPlus(eps=eps, min_pts=min_pts, **kwargs).fit(points)
