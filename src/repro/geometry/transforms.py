"""Dataset-to-scene transforms.

OptiX (and therefore the simulated RT device) only accepts 3D input.  The
paper lifts 2D datasets by setting the z coordinate to zero and giving the
query rays a z direction of 1.  These helpers centralise that convention and
a few normalisation utilities the examples and benchmarks share.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lift_to_3d",
    "validate_points",
    "ensure_points3d",
    "minmax_normalize",
    "standardize",
    "bounding_extent",
]


def validate_points(points: np.ndarray, *, name: str = "points") -> np.ndarray:
    """Validate and canonicalise a point array to 2D float64 with 2 or 3 columns."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2D array, got ndim={arr.ndim}")
    if arr.shape[1] not in (2, 3):
        raise ValueError(
            f"{name} must have 2 or 3 columns (RT cores handle at most 3 dimensions), "
            f"got {arr.shape[1]}"
        )
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one point")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite coordinates")
    return arr


def lift_to_3d(points: np.ndarray) -> np.ndarray:
    """Lift 2D points to 3D by appending z = 0 (3D points pass through)."""
    arr = validate_points(points)
    if arr.shape[1] == 3:
        return arr
    z = np.zeros((arr.shape[0], 1), dtype=np.float64)
    return np.hstack([arr, z])


def ensure_points3d(points: np.ndarray, *, name: str = "points") -> np.ndarray:
    """Validate and lift in a single pass — the hot-path entry point.

    ``lift_to_3d(validate_points(x))`` validates twice (``lift_to_3d`` calls
    ``validate_points`` internally), which on large arrays means two extra
    full scans of the data.  This helper performs exactly one validation and
    one (conditional) lift; already-3D ``float64`` input passes through with
    no copy at all.
    """
    arr = validate_points(points, name=name)
    if arr.shape[1] == 3:
        return arr
    out = np.zeros((arr.shape[0], 3), dtype=np.float64)
    out[:, :2] = arr
    return out


def minmax_normalize(points: np.ndarray) -> np.ndarray:
    """Scale each axis into [0, 1]; constant axes map to 0."""
    arr = validate_points(points)
    lo = arr.min(axis=0)
    hi = arr.max(axis=0)
    span = hi - lo
    safe = np.where(span > 0, span, 1.0)
    out = (arr - lo) / safe
    out[:, span == 0] = 0.0
    return out


def standardize(points: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance scaling per axis (constant axes stay at 0)."""
    arr = validate_points(points)
    mu = arr.mean(axis=0)
    sd = arr.std(axis=0)
    safe = np.where(sd > 0, sd, 1.0)
    out = (arr - mu) / safe
    out[:, sd == 0] = 0.0
    return out


def bounding_extent(points: np.ndarray) -> float:
    """Length of the diagonal of the point set's bounding box.

    Useful for choosing ε sweeps that are comparable across datasets.
    """
    arr = validate_points(points)
    span = arr.max(axis=0) - arr.min(axis=0)
    return float(np.linalg.norm(span))
