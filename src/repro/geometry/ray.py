"""Rays and ray–primitive intersection tests.

The RT-DBSCAN reduction launches an *infinitesimally short* ray from every
query point (``t`` in ``[0, 1e-16]``).  Such a ray behaves like a point
query: it intersects exactly the solid primitives that contain its origin.
We keep the full parametric ray machinery anyway so that the simulated RT
device can also serve conventional ray-tracing launches (used in tests and
in the triangle-mode experiment of Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RayBatch",
    "EPSILON_RAY_TMAX",
    "ray_aabb_intersect",
    "ray_sphere_intersect",
    "point_in_sphere",
    "make_point_query_rays",
]

#: ``t_max`` used by the paper for the "infinitesimally small" query rays.
EPSILON_RAY_TMAX = 1e-16


@dataclass
class RayBatch:
    """A batch of rays ``r(t) = origin + t * direction, t in [tmin, tmax]``.

    Attributes
    ----------
    origins:
        ``(n, 3)`` ray origins.
    directions:
        ``(n, 3)`` ray directions (not required to be normalised; the RT
        device never relies on unit length for the point-query reduction).
    tmin, tmax:
        ``(n,)`` per-ray parametric interval bounds.
    """

    origins: np.ndarray
    directions: np.ndarray
    tmin: np.ndarray = field(default=None)  # type: ignore[assignment]
    tmax: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.origins = np.atleast_2d(np.asarray(self.origins, dtype=np.float64))
        self.directions = np.atleast_2d(np.asarray(self.directions, dtype=np.float64))
        n = self.origins.shape[0]
        if self.origins.shape != (n, 3) or self.directions.shape != (n, 3):
            raise ValueError("origins and directions must both have shape (n, 3)")
        if self.tmin is None:
            self.tmin = np.zeros(n, dtype=np.float64)
        else:
            self.tmin = np.broadcast_to(np.asarray(self.tmin, dtype=np.float64), (n,)).copy()
        if self.tmax is None:
            self.tmax = np.full(n, np.inf, dtype=np.float64)
        else:
            self.tmax = np.broadcast_to(np.asarray(self.tmax, dtype=np.float64), (n,)).copy()
        if np.any(self.tmax < self.tmin):
            raise ValueError("tmax must be >= tmin for every ray")

    def __len__(self) -> int:
        return self.origins.shape[0]

    @property
    def is_point_query(self) -> bool:
        """True when every ray is short enough to act as a point query."""
        return bool(np.all(self.tmax <= 1e-12))


def make_point_query_rays(points: np.ndarray, direction=(0.0, 0.0, 1.0)) -> RayBatch:
    """Build the paper's ε-neighbourhood query rays.

    One infinitesimally short ray per query point, with the fixed direction
    the paper uses for 2D data lifted to 3D (z component 1).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    dirs = np.broadcast_to(np.asarray(direction, dtype=np.float64), points.shape).copy()
    return RayBatch(points, dirs, tmin=0.0, tmax=EPSILON_RAY_TMAX)


# ---------------------------------------------------------------------- #
# intersection tests
# ---------------------------------------------------------------------- #
def ray_aabb_intersect(
    origins: np.ndarray,
    inv_dirs: np.ndarray,
    tmin: np.ndarray,
    tmax: np.ndarray,
    box_lower: np.ndarray,
    box_upper: np.ndarray,
) -> np.ndarray:
    """Slab test of rays against boxes, elementwise over equal-length batches.

    Parameters are broadcast against each other; ``inv_dirs`` is the
    precomputed reciprocal of the ray directions (``inf`` where a component
    is zero, which the slab test handles via IEEE semantics).
    """
    origins = np.atleast_2d(origins)
    inv_dirs = np.atleast_2d(inv_dirs)
    box_lower = np.atleast_2d(box_lower)
    box_upper = np.atleast_2d(box_upper)
    t0 = (box_lower - origins) * inv_dirs
    t1 = (box_upper - origins) * inv_dirs
    tnear = np.minimum(t0, t1)
    tfar = np.maximum(t0, t1)
    # A zero direction component with the origin inside the slab yields
    # -inf/+inf (always passes); outside the slab yields NaN which we treat
    # as a miss for that axis by replacing with +/- inf appropriately.
    tnear = np.where(np.isnan(tnear), -np.inf, tnear)
    tfar = np.where(np.isnan(tfar), np.inf, tfar)
    enter = np.maximum(tnear.max(axis=1), np.asarray(tmin))
    exit_ = np.minimum(tfar.min(axis=1), np.asarray(tmax))
    return enter <= exit_


def ray_sphere_intersect(
    origins: np.ndarray,
    directions: np.ndarray,
    tmin: np.ndarray,
    tmax: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
) -> np.ndarray:
    """Solid-sphere intersection, elementwise over equal-length batches.

    Matches the paper's Intersection program semantics: the spheres are
    *solid*, so a ray whose origin lies inside a sphere intersects it even
    when the parametric interval is infinitesimal.
    """
    origins = np.atleast_2d(np.asarray(origins, dtype=np.float64))
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    radii = np.asarray(radii, dtype=np.float64)
    tmin = np.asarray(tmin, dtype=np.float64)
    tmax = np.asarray(tmax, dtype=np.float64)

    oc = origins - centers
    dist2 = np.einsum("ij,ij->i", oc, oc)
    inside = dist2 <= radii**2
    # Surface hit within [tmin, tmax] for origins outside the sphere.
    a = np.einsum("ij,ij->i", directions, directions)
    b = 2.0 * np.einsum("ij,ij->i", oc, directions)
    c = dist2 - radii**2
    disc = b * b - 4.0 * a * c
    hit_surface = np.zeros(len(origins), dtype=bool)
    ok = (disc >= 0) & (a > 0)
    if np.any(ok):
        sq = np.sqrt(np.where(ok, disc, 0.0))
        t0 = (-b - sq) / np.where(ok, 2.0 * a, 1.0)
        t1 = (-b + sq) / np.where(ok, 2.0 * a, 1.0)
        in0 = (t0 >= tmin) & (t0 <= tmax)
        in1 = (t1 >= tmin) & (t1 <= tmax)
        hit_surface = ok & (in0 | in1)
    return inside | hit_surface


def point_in_sphere(points: np.ndarray, centers: np.ndarray, radii) -> np.ndarray:
    """Elementwise containment of ``points[i]`` in sphere ``(centers[i], radii[i])``."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    radii = np.asarray(radii, dtype=np.float64)
    d = points - centers
    return np.einsum("ij,ij->i", d, d) <= radii**2
