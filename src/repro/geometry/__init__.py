"""Geometric primitives used by the simulated RT device.

The subpackage provides the scene-building blocks of the paper's pipeline:
axis-aligned bounding boxes, rays, ε-spheres, triangle tessellations
(Section VI-C) and Morton codes for the LBVH builder, plus the 2D→3D lifting
transform the paper applies to planar datasets.
"""

from .aabb import (
    AABB,
    aabb_centroids,
    aabb_contains_points,
    aabb_overlaps,
    aabb_surface_area,
    aabb_union,
)
from .morton import morton3d_30, morton3d_63, morton_order, normalize_to_unit_cube
from .ray import (
    EPSILON_RAY_TMAX,
    RayBatch,
    make_point_query_rays,
    point_in_sphere,
    ray_aabb_intersect,
    ray_sphere_intersect,
)
from .sphere import SphereGeometry
from .transforms import (
    bounding_extent,
    ensure_points3d,
    lift_to_3d,
    minmax_normalize,
    standardize,
    validate_points,
)
from .triangle import TriangleGeometry, icosphere, tessellate_spheres

__all__ = [
    "AABB",
    "aabb_centroids",
    "aabb_contains_points",
    "aabb_overlaps",
    "aabb_surface_area",
    "aabb_union",
    "morton3d_30",
    "morton3d_63",
    "morton_order",
    "normalize_to_unit_cube",
    "EPSILON_RAY_TMAX",
    "RayBatch",
    "make_point_query_rays",
    "point_in_sphere",
    "ray_aabb_intersect",
    "ray_sphere_intersect",
    "SphereGeometry",
    "bounding_extent",
    "ensure_points3d",
    "lift_to_3d",
    "minmax_normalize",
    "standardize",
    "validate_points",
    "TriangleGeometry",
    "icosphere",
    "tessellate_spheres",
]
