"""Sphere primitives.

The input transformation of RT-DBSCAN (Section III-B) turns every data point
into a solid sphere of radius ε.  ``SphereGeometry`` is the batch primitive
the simulated RT device builds its BVH over; it also carries the custom
bounding-box and intersection programs the OWL pipeline would register.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .aabb import AABB

__all__ = ["SphereGeometry"]


@dataclass
class SphereGeometry:
    """A batch of spheres sharing a common (or per-sphere) radius.

    Parameters
    ----------
    centers:
        ``(n, 3)`` sphere centres — the (lifted) data points.
    radii:
        Scalar or ``(n,)`` radii.  RT-DBSCAN uses a single ε for all spheres.
    """

    centers: np.ndarray
    radii: np.ndarray

    def __post_init__(self) -> None:
        self.centers = np.atleast_2d(np.asarray(self.centers, dtype=np.float64))
        if self.centers.shape[1] != 3:
            raise ValueError(f"sphere centers must have shape (n, 3), got {self.centers.shape}")
        radii = np.asarray(self.radii, dtype=np.float64)
        if radii.ndim == 0:
            radii = np.full(self.centers.shape[0], float(radii))
        if radii.shape != (self.centers.shape[0],):
            raise ValueError("radii must be a scalar or a (n,) array matching centers")
        if np.any(radii < 0):
            raise ValueError("sphere radii must be non-negative")
        self.radii = radii

    def __len__(self) -> int:
        return self.centers.shape[0]

    # -- OWL-style bounds program ------------------------------------- #
    def bounds(self) -> AABB:
        """Axis-aligned bounding boxes, one per sphere (the bounds program).

        The boxes are padded by a few ulps: the intersection program accepts
        any point whose *rounded* squared distance is ≤ r², and such points
        can sit marginally outside the exact ball.  Without the pad the BVH
        would prune candidates the distance test confirms, making traversal
        results diverge from brute force exactly at the ε boundary.
        """
        r = self.radii[:, None]
        pad = 4.0 * np.finfo(np.float64).eps * (np.abs(self.centers) + r)
        return AABB(self.centers - r - pad, self.centers + r + pad)

    # -- OWL-style intersection program -------------------------------- #
    def contains(self, points: np.ndarray, prim_ids: np.ndarray) -> np.ndarray:
        """Exact solid-sphere containment for candidate (point, primitive) pairs.

        ``points`` is ``(m, 3)`` and ``prim_ids`` is ``(m,)``; element ``k``
        reports whether ``points[k]`` lies inside sphere ``prim_ids[k]``.
        This is the distance check of Algorithm 2 line 6 that filters
        bounding-box false positives.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        prim_ids = np.asarray(prim_ids, dtype=np.intp)
        d = points - self.centers[prim_ids]
        return np.einsum("ij,ij->i", d, d) <= self.radii[prim_ids] ** 2

    def squared_distance(self, points: np.ndarray, prim_ids: np.ndarray) -> np.ndarray:
        """Squared distance from each point to the centre of its paired sphere."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        prim_ids = np.asarray(prim_ids, dtype=np.intp)
        d = points - self.centers[prim_ids]
        return np.einsum("ij,ij->i", d, d)
