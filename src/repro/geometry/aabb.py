"""Axis-aligned bounding boxes (AABBs).

AABBs are the bounding volumes used by the simulated RT device.  Following
the paper (Section II-A), every scene primitive — a sphere of radius ``eps``
centred on a data point for RT-DBSCAN — is enclosed in an AABB, and the BVH
is built over those AABBs.

The module keeps boxes in structure-of-arrays form (two ``(n, 3)`` float64
arrays ``lower`` and ``upper``) so that all box math vectorises over the
whole batch, per the NumPy idioms used throughout this project.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AABB",
    "aabb_union",
    "aabb_contains_points",
    "aabb_overlaps",
    "aabb_surface_area",
    "aabb_centroids",
    "EMPTY_LOWER",
    "EMPTY_UPPER",
]

# Sentinel bounds of an empty box: any union with a real box yields the real
# box, and no point is contained in it.
EMPTY_LOWER = np.inf
EMPTY_UPPER = -np.inf


@dataclass
class AABB:
    """A batch of axis-aligned bounding boxes.

    Parameters
    ----------
    lower:
        ``(n, 3)`` array of per-box minimum corners.
    upper:
        ``(n, 3)`` array of per-box maximum corners.

    Notes
    -----
    A single box may be represented as a batch of size one.  The class is a
    thin, validated wrapper; all heavy lifting is done by the module-level
    vectorised helpers so they can also be applied to raw arrays inside the
    BVH builders without object overhead.
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        self.lower = np.atleast_2d(np.asarray(self.lower, dtype=np.float64))
        self.upper = np.atleast_2d(np.asarray(self.upper, dtype=np.float64))
        if self.lower.shape != self.upper.shape:
            raise ValueError(
                f"lower/upper shape mismatch: {self.lower.shape} vs {self.upper.shape}"
            )
        if self.lower.ndim != 2 or self.lower.shape[1] != 3:
            raise ValueError(f"AABB arrays must have shape (n, 3), got {self.lower.shape}")
        finite = np.isfinite(self.lower) & np.isfinite(self.upper)
        bad = finite.all(axis=1) & (self.lower > self.upper).any(axis=1)
        if bad.any():
            raise ValueError("AABB has lower > upper for at least one finite box")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n: int = 1) -> "AABB":
        """Return ``n`` empty boxes (identity element for union)."""
        lower = np.full((n, 3), EMPTY_LOWER, dtype=np.float64)
        upper = np.full((n, 3), EMPTY_UPPER, dtype=np.float64)
        return cls(lower, upper)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "AABB":
        """Single box that bounds every row of ``points`` (``(n, 3)``)."""
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            return cls.empty(1)
        return cls(points.min(axis=0, keepdims=True), points.max(axis=0, keepdims=True))

    @classmethod
    def from_spheres(cls, centers: np.ndarray, radius: float | np.ndarray) -> "AABB":
        """Per-sphere AABBs for spheres of the given radius at ``centers``.

        This is the bounding-box program of the paper's OWL pipeline: every
        data point expanded to a sphere of radius ε gets a cube of side 2ε.
        """
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        radius = np.asarray(radius, dtype=np.float64)
        if np.any(radius < 0):
            raise ValueError("sphere radius must be non-negative")
        r = radius.reshape(-1, 1) if radius.ndim else radius
        return cls(centers - r, centers + r)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.lower.shape[0]

    @property
    def centroids(self) -> np.ndarray:
        """``(n, 3)`` array of box centres (empty boxes give NaN)."""
        return aabb_centroids(self.lower, self.upper)

    @property
    def extents(self) -> np.ndarray:
        """``(n, 3)`` array of box edge lengths."""
        return self.upper - self.lower

    def surface_area(self) -> np.ndarray:
        """Per-box surface area (used by the SAH builder)."""
        return aabb_surface_area(self.lower, self.upper)

    def union_all(self) -> "AABB":
        """Single box bounding the whole batch."""
        lo = self.lower.min(axis=0, keepdims=True)
        hi = self.upper.max(axis=0, keepdims=True)
        return AABB(lo, hi)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(n_boxes, n_points)`` of point containment."""
        return aabb_contains_points(self.lower, self.upper, points)

    def overlaps(self, other: "AABB") -> np.ndarray:
        """Pairwise overlap test against another batch of equal length."""
        return aabb_overlaps(self.lower, self.upper, other.lower, other.upper)

    def expanded(self, margin: float) -> "AABB":
        """Return boxes grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return AABB(self.lower - margin, self.upper + margin)


# ---------------------------------------------------------------------- #
# vectorised helpers on raw arrays
# ---------------------------------------------------------------------- #
def aabb_union(lower_a, upper_a, lower_b, upper_b):
    """Componentwise union of two equally shaped batches of boxes."""
    return np.minimum(lower_a, lower_b), np.maximum(upper_a, upper_b)


def aabb_centroids(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Box centres; preserves the shape of the inputs."""
    return 0.5 * (np.asarray(lower) + np.asarray(upper))


def aabb_surface_area(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Surface area of each box; empty boxes report zero area."""
    ext = np.asarray(upper, dtype=np.float64) - np.asarray(lower, dtype=np.float64)
    ext = np.maximum(ext, 0.0)
    ext = np.where(np.isfinite(ext), ext, 0.0)
    d = np.atleast_2d(ext)
    area = 2.0 * (d[:, 0] * d[:, 1] + d[:, 1] * d[:, 2] + d[:, 0] * d[:, 2])
    return area if np.ndim(lower) == 2 else area[0]


def aabb_contains_points(lower: np.ndarray, upper: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Containment matrix: element ``[i, j]`` is True if box ``i`` contains point ``j``.

    Containment is inclusive of the boundary, matching the behaviour of a
    watertight ray/point-in-box test on RT hardware.
    """
    lower = np.atleast_2d(np.asarray(lower, dtype=np.float64))
    upper = np.atleast_2d(np.asarray(upper, dtype=np.float64))
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    ge = points[None, :, :] >= lower[:, None, :]
    le = points[None, :, :] <= upper[:, None, :]
    return (ge & le).all(axis=2)


def aabb_overlaps(lower_a, upper_a, lower_b, upper_b) -> np.ndarray:
    """Pairwise overlap of two equally sized batches of boxes (inclusive)."""
    lower_a = np.atleast_2d(np.asarray(lower_a, dtype=np.float64))
    upper_a = np.atleast_2d(np.asarray(upper_a, dtype=np.float64))
    lower_b = np.atleast_2d(np.asarray(lower_b, dtype=np.float64))
    upper_b = np.atleast_2d(np.asarray(upper_b, dtype=np.float64))
    return ((lower_a <= upper_b) & (upper_a >= lower_b)).all(axis=1)
