"""Morton (Z-order) codes.

The simulated RT device builds its BVH the way GPU LBVH builders do: it
quantises primitive centroids onto a 2^10 (or 2^21) grid per axis, interleaves
the bits into a Morton code, sorts primitives along the resulting space-filling
curve and splits ranges at the median.  Nearby primitives end up in nearby
leaves, which is what gives the traversal its pruning power.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expand_bits_10",
    "expand_bits_21",
    "morton3d_30",
    "morton3d_63",
    "normalize_to_unit_cube",
    "morton_order",
]


def expand_bits_10(v: np.ndarray) -> np.ndarray:
    """Spread the low 10 bits of each value so they occupy every third bit."""
    v = np.asarray(v, dtype=np.uint64) & np.uint64(0x3FF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x030000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x0300F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x030C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x09249249)
    return v


def expand_bits_21(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value so they occupy every third bit."""
    v = np.asarray(v, dtype=np.uint64) & np.uint64(0x1FFFFF)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def morton3d_30(coords: np.ndarray) -> np.ndarray:
    """30-bit Morton codes for points already normalised to [0, 1]^3."""
    coords = np.clip(np.atleast_2d(np.asarray(coords, dtype=np.float64)), 0.0, 1.0)
    scaled = np.minimum((coords * 1024.0).astype(np.uint64), np.uint64(1023))
    x = expand_bits_10(scaled[:, 0])
    y = expand_bits_10(scaled[:, 1])
    z = expand_bits_10(scaled[:, 2])
    return (x << np.uint64(2)) | (y << np.uint64(1)) | z


def morton3d_63(coords: np.ndarray) -> np.ndarray:
    """63-bit Morton codes for points already normalised to [0, 1]^3.

    Higher resolution than :func:`morton3d_30`; used for very large scenes
    where many primitives would otherwise share a 30-bit code.
    """
    coords = np.clip(np.atleast_2d(np.asarray(coords, dtype=np.float64)), 0.0, 1.0)
    scaled = np.minimum((coords * float(1 << 21)).astype(np.uint64), np.uint64((1 << 21) - 1))
    x = expand_bits_21(scaled[:, 0])
    y = expand_bits_21(scaled[:, 1])
    z = expand_bits_21(scaled[:, 2])
    return (x << np.uint64(2)) | (y << np.uint64(1)) | z


def normalize_to_unit_cube(points: np.ndarray) -> np.ndarray:
    """Affinely map a point set into the unit cube (degenerate axes map to 0.5)."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = hi - lo
    safe = np.where(span > 0, span, 1.0)
    out = (points - lo) / safe
    out[:, span == 0] = 0.5
    return out


def morton_order(points: np.ndarray, bits: int = 30) -> np.ndarray:
    """Return the permutation that sorts ``points`` along the Morton curve.

    Ties are broken by original index so the ordering is deterministic.
    """
    unit = normalize_to_unit_cube(points)
    if bits == 30:
        codes = morton3d_30(unit)
    elif bits == 63:
        codes = morton3d_63(unit)
    else:
        raise ValueError("bits must be 30 or 63")
    return np.lexsort((np.arange(len(codes)), codes))
