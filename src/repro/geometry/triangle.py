"""Triangle primitives and sphere tessellation.

Section VI-C of the paper experiments with approximating the ε-spheres by
triangle meshes so that the (hardware-accelerated) ray–triangle test could be
used instead of a custom Intersection program.  The authors found a 2×–5×
slowdown because every triangle hit must invoke the AnyHit program.  To
reproduce that ablation we provide an icosphere tessellation of a sphere and
a batched point-in-mesh test usable by the simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .aabb import AABB

__all__ = ["TriangleGeometry", "icosphere", "tessellate_spheres"]


def _icosahedron() -> tuple[np.ndarray, np.ndarray]:
    """Unit icosahedron vertices and faces."""
    phi = (1.0 + np.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            [-1, phi, 0], [1, phi, 0], [-1, -phi, 0], [1, -phi, 0],
            [0, -1, phi], [0, 1, phi], [0, -1, -phi], [0, 1, -phi],
            [phi, 0, -1], [phi, 0, 1], [-phi, 0, -1], [-phi, 0, 1],
        ],
        dtype=np.float64,
    )
    verts /= np.linalg.norm(verts, axis=1, keepdims=True)
    faces = np.array(
        [
            [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
            [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
            [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
            [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
        ],
        dtype=np.intp,
    )
    return verts, faces


def icosphere(subdivisions: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Unit icosphere (geodesic sphere) vertices and triangle faces.

    Each subdivision splits every triangle into four, so the face count is
    ``20 * 4**subdivisions``.
    """
    if subdivisions < 0:
        raise ValueError("subdivisions must be non-negative")
    verts, faces = _icosahedron()
    for _ in range(subdivisions):
        vert_list = list(map(tuple, verts))
        cache: dict[tuple[int, int], int] = {}

        def midpoint(i: int, j: int) -> int:
            key = (min(i, j), max(i, j))
            if key in cache:
                return cache[key]
            m = 0.5 * (np.asarray(vert_list[i]) + np.asarray(vert_list[j]))
            m = m / np.linalg.norm(m)
            vert_list.append(tuple(m))
            cache[key] = len(vert_list) - 1
            return cache[key]

        new_faces = []
        for a, b, c in faces:
            ab, bc, ca = midpoint(a, b), midpoint(b, c), midpoint(c, a)
            new_faces.extend([[a, ab, ca], [b, bc, ab], [c, ca, bc], [ab, bc, ca]])
        verts = np.asarray(vert_list, dtype=np.float64)
        faces = np.asarray(new_faces, dtype=np.intp)
    return verts, faces


@dataclass
class TriangleGeometry:
    """A triangle soup with a per-triangle owner primitive index.

    ``owners[k]`` records which original sphere (data point) triangle ``k``
    tessellates; the RT-DBSCAN triangle-mode pipeline maps triangle hits back
    to data points through it.
    """

    vertices: np.ndarray  # (v, 3)
    faces: np.ndarray  # (f, 3) int
    owners: np.ndarray  # (f,) int

    def __post_init__(self) -> None:
        self.vertices = np.atleast_2d(np.asarray(self.vertices, dtype=np.float64))
        self.faces = np.atleast_2d(np.asarray(self.faces, dtype=np.intp))
        self.owners = np.asarray(self.owners, dtype=np.intp)
        if self.vertices.shape[1] != 3 or self.faces.shape[1] != 3:
            raise ValueError("vertices and faces must have shape (*, 3)")
        if self.owners.shape != (self.faces.shape[0],):
            raise ValueError("owners must have one entry per face")
        if self.faces.size and self.faces.max() >= self.vertices.shape[0]:
            raise ValueError("face index out of range")

    def __len__(self) -> int:
        return self.faces.shape[0]

    def bounds(self) -> AABB:
        """Per-triangle AABBs (the built-in triangle bounds of the device)."""
        tri = self.vertices[self.faces]  # (f, 3, 3)
        return AABB(tri.min(axis=1), tri.max(axis=1))

    def triangle_vertices(self) -> np.ndarray:
        """``(f, 3, 3)`` array of triangle corner coordinates."""
        return self.vertices[self.faces]


def tessellate_spheres(
    centers: np.ndarray, radius: float, subdivisions: int = 1
) -> TriangleGeometry:
    """Tessellate every ε-sphere into an icosphere mesh (Section VI-C mode).

    Returns a single triangle soup whose ``owners`` array maps each triangle
    back to the index of the data point whose sphere it belongs to.
    """
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    if radius < 0:
        raise ValueError("radius must be non-negative")
    unit_v, unit_f = icosphere(subdivisions)
    n = centers.shape[0]
    nv, nf = unit_v.shape[0], unit_f.shape[0]
    verts = (unit_v[None, :, :] * radius + centers[:, None, :]).reshape(n * nv, 3)
    offsets = (np.arange(n) * nv)[:, None, None]
    faces = (unit_f[None, :, :] + offsets).reshape(n * nf, 3)
    owners = np.repeat(np.arange(n, dtype=np.intp), nf)
    return TriangleGeometry(verts, faces, owners)
