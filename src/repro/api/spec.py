"""Declarative clusterer configuration.

A :class:`ClustererSpec` captures everything needed to build a clusterer —
algorithm name, the two DBSCAN parameters, an optional neighbour backend and
free-form algorithm parameters — as a small frozen value object that can be
validated, logged, serialised into benchmark records, and handed to
:func:`repro.api.registry.make_clusterer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .registry import AlgorithmEntry, get_backend, resolve_algorithm

__all__ = ["ClustererSpec"]


@dataclass(frozen=True)
class ClustererSpec:
    """Configuration for one clusterer instance.

    Parameters
    ----------
    algo:
        Registered algorithm name; the compact ``"algo@backend"`` spelling is
        also accepted (mutually consistent with ``backend``).
    eps:
        DBSCAN ε.  May stay ``None`` while the spec is being assembled, but
        must be set before :func:`~repro.api.registry.make_clusterer`;
        :func:`repro.cluster` fills it via k-distance calibration.
    min_pts:
        DBSCAN minPts.
    backend:
        Optional neighbour backend name, for algorithms registered with
        ``supports_backend=True``.
    tiles:
        Optional spatial tile count for algorithms registered with
        ``supports_tiles=True`` (the partition layer).
    workers:
        Optional executor parallelism for tile-capable algorithms.
    native:
        Optional kernel-tier override for algorithms registered with
        ``supports_native=True``: ``True`` forces the compiled C kernels,
        ``False`` forces pure numpy, ``None`` (default) defers to the
        ``REPRO_NATIVE`` environment knob.  Results are byte-identical
        either way; only wall-clock time changes.
    native_threads:
        Optional OpenMP worker-count override for the native tier (again
        only for ``supports_native=True`` algorithms): a positive integer
        pins the fan-out, ``None`` (default) defers to the
        ``REPRO_NATIVE_THREADS`` environment knob (itself defaulting to
        one worker per core).  Ignored when the native tier is off or the
        build lacks OpenMP.  Results are byte-identical at any count.
    params:
        Extra keyword arguments forwarded to the algorithm factory
        (e.g. ``builder="sah"`` or ``window=2000``).
    """

    algo: str = "rt-dbscan"
    eps: float | None = None
    min_pts: int = 5
    backend: str | None = None
    tiles: int | None = None
    workers: int | None = None
    native: bool | None = None
    native_threads: int | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.eps is not None and (not np.isfinite(self.eps) or self.eps <= 0):
            raise ValueError(f"eps must be a positive finite number, got {self.eps}")
        if int(self.min_pts) != self.min_pts or self.min_pts < 1:
            raise ValueError(f"min_pts must be a positive integer, got {self.min_pts}")
        for name in ("tiles", "workers", "native_threads"):
            value = getattr(self, name)
            if value is None:
                continue
            if int(value) != value or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value}")
            object.__setattr__(self, name, int(value))
        object.__setattr__(self, "min_pts", int(self.min_pts))
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------------ #
    def resolve(self) -> tuple[AlgorithmEntry, str | None]:
        """Validate against the registries; returns (entry, backend name).

        Raises ``KeyError`` for unknown algorithm/backend names and
        ``ValueError`` when a backend is requested for an algorithm that does
        not take one, or when ``algo`` carries an ``@backend`` suffix that
        contradicts the ``backend`` field.
        """
        entry, inline = resolve_algorithm(self.algo)
        backend = self.backend
        if backend is not None:
            backend = get_backend(backend).name
            if inline is not None and inline != backend:
                raise ValueError(
                    f"conflicting backends: algo={self.algo!r} vs backend={self.backend!r}"
                )
        else:
            backend = inline
        if backend is not None and not entry.supports_backend:
            raise ValueError(
                f"algorithm {entry.name!r} does not accept a neighbour backend"
            )
        # Backend-specific kwargs (declared knobs such as the approximate
        # tier's recall_target) are validated against the registry entry so
        # a typo fails here, not deep inside the backend constructor.
        declared = self.params.get("backend_kwargs") or {}
        if declared and backend is None:
            raise ValueError(
                "backend_kwargs were given but no neighbour backend is selected"
            )
        if backend is not None:
            bentry = get_backend(backend)
            unknown = set(declared) - set(bentry.knobs)
            if unknown:
                raise ValueError(
                    f"neighbour backend {backend!r} does not accept kwargs "
                    f"{sorted(unknown)}; valid knobs: {sorted(bentry.knobs) or 'none'}"
                )
        if (self.tiles is not None or self.workers is not None) and not entry.supports_tiles:
            raise ValueError(
                f"algorithm {entry.name!r} does not accept tiles/workers; "
                "use a tile-capable algorithm such as 'rt-dbscan-tiled'"
            )
        if self.native is not None and not entry.supports_native:
            raise ValueError(
                f"algorithm {entry.name!r} does not accept a native= kernel-tier "
                "override"
            )
        if self.native_threads is not None and not entry.supports_native:
            raise ValueError(
                f"algorithm {entry.name!r} does not accept a native_threads= "
                "override"
            )
        return entry, backend

    def as_dict(self) -> dict:
        return {
            "algo": self.algo,
            "eps": self.eps,
            "min_pts": self.min_pts,
            "backend": self.backend,
            "tiles": self.tiles,
            "workers": self.workers,
            "native": self.native,
            "native_threads": self.native_threads,
            "params": dict(self.params),
        }
