"""Unified estimator API: protocol, spec, registries and the cluster facade.

Layering
--------
* :mod:`repro.api.protocol` — the ``Clusterer`` / ``StreamingClusterer``
  protocols every implementation satisfies;
* :mod:`repro.api.registry` — decorator-based algorithm and neighbour-backend
  registries plus the ``make_clusterer`` / ``make_backend`` factories;
* :mod:`repro.api.spec` — the declarative ``ClustererSpec`` configuration;
* :mod:`repro.api.facade` — the one-call ``repro.cluster(...)`` entry point.
"""

from .facade import cluster
from .protocol import Clusterer, ClustererMixin, StreamingClusterer
from .registry import (
    AlgorithmEntry,
    BackendEntry,
    get_algorithm,
    get_backend,
    list_algorithms,
    list_backends,
    make_backend,
    make_clusterer,
    make_streaming_clusterer,
    register_algorithm,
    register_backend,
    resolve_algorithm,
)
from .spec import ClustererSpec

__all__ = [
    "cluster",
    "Clusterer",
    "ClustererMixin",
    "StreamingClusterer",
    "AlgorithmEntry",
    "BackendEntry",
    "get_algorithm",
    "get_backend",
    "list_algorithms",
    "list_backends",
    "make_backend",
    "make_clusterer",
    "make_streaming_clusterer",
    "register_algorithm",
    "register_backend",
    "resolve_algorithm",
    "ClustererSpec",
]
