"""The estimator protocol every clusterer in this package satisfies.

The protocol follows the sklearn convention the related clustering libraries
use (``fit`` / ``fit_predict``, plus ``partial_fit`` for engines that accept
data incrementally), while keeping this package's richer return type:
``fit`` returns a :class:`~repro.dbscan.params.DBSCANResult`, not ``self``,
because the timing report and core mask are first-class outputs here.

:class:`ClustererMixin` supplies the derived ``fit_predict`` so that the
concrete implementations only have to write ``fit``.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["Clusterer", "StreamingClusterer", "ClustererMixin"]


@runtime_checkable
class Clusterer(Protocol):
    """A batch clusterer: ``fit`` points, get a labelled result."""

    def fit(self, points: np.ndarray) -> Any:
        """Cluster ``points`` and return a ``DBSCANResult``."""
        ...

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        ...


@runtime_checkable
class StreamingClusterer(Clusterer, Protocol):
    """A clusterer that additionally accepts data chunk by chunk."""

    def partial_fit(self, points: np.ndarray) -> "StreamingClusterer":
        """Ingest one chunk of points; returns ``self`` for chaining."""
        ...


class ClustererMixin:
    """Derived estimator methods shared by the concrete clusterers."""

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels
