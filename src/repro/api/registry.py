"""Algorithm and neighbour-backend registries.

The registries are the single source of truth for "what can this package
run": every clusterer (RT-DBSCAN, the GPU baselines, the sequential oracle,
the streaming engine) registers itself with :func:`register_algorithm`, and
every fixed-radius neighbour search registers with :func:`register_backend`.
The benchmark runner, the CLI and the :func:`repro.cluster` facade all
resolve names here instead of keeping hand-written factory tables.

Names are case-insensitive.  An algorithm that supports pluggable neighbour
backends (``supports_backend=True``) can also be addressed with the compact
``"algo@backend"`` spelling — ``"rt-dbscan@grid"`` resolves to the RT-DBSCAN
pipeline running on the uniform-grid search — which is how the backend
ablation experiment names its columns.

This module deliberately imports nothing from the implementation layers; the
implementations import *it* (a leaf module) and register themselves as a side
effect of being imported.  :func:`_ensure_builtins` triggers those imports
lazily so that ``import repro.api`` alone is enough to see the full registry.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "AlgorithmEntry",
    "BackendEntry",
    "register_algorithm",
    "register_backend",
    "get_algorithm",
    "get_backend",
    "resolve_algorithm",
    "list_algorithms",
    "list_backends",
    "make_backend",
    "make_clusterer",
    "make_streaming_clusterer",
]


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered clustering algorithm.

    ``factory`` is called as ``factory(eps=..., min_pts=..., device=...,
    **params)`` and must return an object satisfying the
    :class:`~repro.api.protocol.Clusterer` protocol.  ``instrumented`` is
    False for reference implementations (the sequential oracle) whose results
    carry no simulated-time report; the benchmark runner then falls back to
    wall-clock timing.
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    instrumented: bool = True
    supports_backend: bool = False
    supports_partial_fit: bool = False
    supports_tiles: bool = False
    supports_native: bool = False
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class BackendEntry:
    """One registered fixed-radius neighbour backend.

    ``factory`` is called as ``factory(points, radius, device=..., **kwargs)``
    and must return an object satisfying the
    :class:`~repro.neighbors.backend.NeighborBackend` protocol.

    ``exact`` records the exactness contract: exact backends return the true
    ε-adjacency (and therefore bit-identical DBSCAN labels); approximate
    backends (``exact=False``) trade recall for speed and every run through
    them should ship with an agreement report against an exact reference
    (see :func:`repro.metrics.agreement_summary`).  ``knobs`` names the
    backend-specific constructor kwargs (e.g. ``recall_target`` for the LSH
    backend) that :class:`~repro.api.spec.ClustererSpec` validates and
    :func:`make_clusterer` routes to the backend factory.  ``native`` marks
    backends whose hot loops have a compiled implementation in the optional
    native tier (:mod:`repro.native`); results are byte-identical either way.
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: tuple[str, ...] = ()
    exact: bool = True
    knobs: tuple[str, ...] = ()
    native: bool = False


_ALGORITHMS: dict[str, AlgorithmEntry] = {}
_BACKENDS: dict[str, BackendEntry] = {}

#: modules whose import populates the registries with the built-in entries.
_BUILTIN_MODULES = (
    "repro.neighbors.rt_find",
    "repro.neighbors.backend",
    "repro.neighbors.approx",
    "repro.dbscan",
    "repro.baselines",
    "repro.streaming",
    "repro.partition",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the implementation modules so their registrations run."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    # Flag first to stay re-entrant (the builtin modules may consult the
    # registry while importing), but reset on failure so a transient import
    # error doesn't leave the registry permanently partial.
    _builtins_loaded = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        _builtins_loaded = False
        raise


# ------------------------------------------------------------------------- #
# Registration decorators.
# ------------------------------------------------------------------------- #
def register_algorithm(
    name: str,
    *,
    description: str = "",
    instrumented: bool = True,
    supports_backend: bool = False,
    supports_partial_fit: bool = False,
    supports_tiles: bool = False,
    supports_native: bool = False,
    aliases: tuple[str, ...] = (),
) -> Callable:
    """Class/function decorator that registers a clusterer factory.

    The decorated object must be callable as ``factory(eps=..., min_pts=...,
    device=..., **params)``.  Algorithms registered with
    ``supports_tiles=True`` additionally accept ``tiles=`` / ``workers=``
    keyword arguments (the partition-layer knobs); ``supports_native=True``
    ones accept a ``native=`` kernel-tier override.  Registering an
    already-taken name raises ``ValueError`` — overwriting a registration is
    always a bug.
    """

    def decorator(factory: Callable) -> Callable:
        entry = AlgorithmEntry(
            name=name.lower(),
            factory=factory,
            description=description,
            instrumented=instrumented,
            supports_backend=supports_backend,
            supports_partial_fit=supports_partial_fit,
            supports_tiles=supports_tiles,
            supports_native=supports_native,
            aliases=tuple(a.lower() for a in aliases),
        )
        for key in (entry.name, *entry.aliases):
            if key in _ALGORITHMS:
                raise ValueError(f"algorithm {key!r} is already registered")
            _ALGORITHMS[key] = entry
        return factory

    return decorator


def register_backend(
    name: str,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
    exact: bool = True,
    knobs: tuple[str, ...] = (),
    native: bool = False,
) -> Callable:
    """Class/function decorator that registers a neighbour-backend factory.

    The decorated object must be callable as ``factory(points, radius,
    device=..., **kwargs)``.  ``exact=False`` marks deliberately inexact
    backends (the approximate tier); ``knobs`` declares their tunable
    speed/recall kwargs so specs can validate them up front; ``native=True``
    advertises a compiled implementation of the backend's hot loops in the
    optional native tier.
    """

    def decorator(factory: Callable) -> Callable:
        entry = BackendEntry(
            name=name.lower(),
            factory=factory,
            description=description,
            aliases=tuple(a.lower() for a in aliases),
            exact=exact,
            knobs=tuple(knobs),
            native=native,
        )
        for key in (entry.name, *entry.aliases):
            if key in _BACKENDS:
                raise ValueError(f"neighbour backend {key!r} is already registered")
            _BACKENDS[key] = entry
        return factory

    return decorator


# ------------------------------------------------------------------------- #
# Lookup.
# ------------------------------------------------------------------------- #
def list_algorithms() -> list[str]:
    """Primary (alias-free) names of all registered algorithms, sorted."""
    _ensure_builtins()
    return sorted({entry.name for entry in _ALGORITHMS.values()})


def list_backends() -> list[str]:
    """Primary names of all registered neighbour backends, sorted."""
    _ensure_builtins()
    return sorted({entry.name for entry in _BACKENDS.values()})


def get_algorithm(name: str) -> AlgorithmEntry:
    """Look up an algorithm entry by (case-insensitive) name or alias."""
    _ensure_builtins()
    key = name.lower()
    if key not in _ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; available: {list_algorithms()}")
    return _ALGORITHMS[key]


def get_backend(name: str) -> BackendEntry:
    """Look up a backend entry by (case-insensitive) name or alias."""
    _ensure_builtins()
    key = name.lower()
    if key not in _BACKENDS:
        raise KeyError(f"unknown neighbour backend {name!r}; available: {list_backends()}")
    return _BACKENDS[key]


def resolve_algorithm(name: str) -> tuple[AlgorithmEntry, str | None]:
    """Resolve ``"algo"`` or ``"algo@backend"`` to (entry, backend name).

    The ``@backend`` suffix is only legal for algorithms registered with
    ``supports_backend=True``.
    """
    base, sep, backend = name.partition("@")
    entry = get_algorithm(base)
    if not sep:
        return entry, None
    if not entry.supports_backend:
        raise ValueError(
            f"algorithm {entry.name!r} does not accept a neighbour backend "
            f"(got {name!r})"
        )
    return entry, get_backend(backend).name


# ------------------------------------------------------------------------- #
# Factories.
# ------------------------------------------------------------------------- #
def make_backend(name: str, points, radius: float, *, device=None, **kwargs):
    """Instantiate a registered neighbour backend over a dataset."""
    return get_backend(name).factory(points, radius, device=device, **kwargs)


def make_clusterer(spec, *, device=None):
    """Instantiate the clusterer described by a :class:`ClustererSpec`.

    ``device`` is the simulated RT device to charge the run to; each
    algorithm creates a fresh default device when it is omitted.
    """
    from .spec import ClustererSpec

    if not isinstance(spec, ClustererSpec):
        raise TypeError(f"make_clusterer expects a ClustererSpec, got {type(spec).__name__}")
    entry, backend = spec.resolve()
    if spec.eps is None:
        raise ValueError(
            "ClustererSpec.eps must be set before make_clusterer(); "
            "use repro.cluster(...) for k-distance auto-calibration"
        )
    params = dict(spec.params)
    if backend is not None:
        params["backend"] = backend
        # Route backend-specific knobs (declared on the registry entry) into
        # the ``backend_kwargs`` dict the backend-pluggable algorithms
        # forward verbatim to make_backend: both the explicit
        # ``params["backend_kwargs"]`` spelling and bare top-level knobs
        # (``recall_target=0.9``) are accepted; unknown knob names were
        # already rejected by ``spec.resolve()``.
        knobs = get_backend(backend).knobs
        backend_kwargs = dict(params.pop("backend_kwargs", None) or {})
        for knob in knobs:
            if knob in params:
                backend_kwargs.setdefault(knob, params.pop(knob))
        if backend_kwargs:
            params["backend_kwargs"] = backend_kwargs
    if spec.tiles is not None:
        params["tiles"] = spec.tiles
    if spec.workers is not None:
        params["workers"] = spec.workers
    if spec.native is not None:
        params["native"] = spec.native
    if spec.native_threads is not None:
        params["native_threads"] = spec.native_threads
    return entry.factory(eps=spec.eps, min_pts=spec.min_pts, device=device, **params)


def make_streaming_clusterer(spec, *, device=None):
    """Instantiate a clusterer that supports incremental per-chunk ingest.

    Exactly :func:`make_clusterer` plus the guarantee the serving layer
    builds sessions on: the resolved algorithm must have been registered with
    ``supports_partial_fit=True`` (so the instance satisfies the
    :class:`~repro.api.protocol.StreamingClusterer` protocol and can consume
    a feed chunk by chunk).  Raises ``ValueError`` for batch-only algorithms
    instead of failing at the first ``partial_fit`` call.
    """
    entry, _ = spec.resolve()
    if not entry.supports_partial_fit:
        raise ValueError(
            f"algorithm {entry.name!r} does not support partial_fit; "
            "sessions need a streaming-capable algorithm such as "
            "'streaming-rt-dbscan'"
        )
    return make_clusterer(spec, device=device)
