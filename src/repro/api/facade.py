"""One-call clustering facade.

``repro.cluster(points, algo=..., backend=..., **params)`` is the package's
front door: it resolves the algorithm from the registry, optionally
auto-calibrates ε with the same k-distance heuristic the benchmark harness
uses, builds the clusterer and fits it — returning the full
:class:`~repro.dbscan.params.DBSCANResult` (labels, core mask, timing
report), identical to what the legacy constructors produce.
"""

from __future__ import annotations

import numpy as np

from .registry import make_clusterer
from .spec import ClustererSpec

__all__ = ["cluster", "DEFAULT_REFERENCE"]


#: datasets larger than this are subsampled for the k-distance calibration.
CALIBRATION_SAMPLE = 50_000

#: exact reference run used for ``reference=True`` agreement reports — the
#: KD-tree substrate is the fastest exact host backend.
DEFAULT_REFERENCE = "rt-dbscan@kdtree"


def cluster(
    points: np.ndarray,
    algo: str = "rt-dbscan",
    *,
    eps: float | None = None,
    min_pts: int = 5,
    backend: str | None = None,
    tiles: int | None = None,
    workers: int | None = None,
    device=None,
    reference: bool | str | None = None,
    eps_quantile: float = 0.30,
    seed: int = 0,
    calibration_sample: int | None = CALIBRATION_SAMPLE,
    **params,
):
    """Cluster ``points`` with any registered algorithm.

    Parameters
    ----------
    points:
        ``(n, 2)`` or ``(n, 3)`` data points.
    algo:
        Registered algorithm name (see :func:`repro.list_algorithms`), with
        the ``"algo@backend"`` spelling also accepted.
    eps:
        DBSCAN ε.  When omitted it is calibrated from the data with the
        k-distance heuristic at ``eps_quantile`` — the procedure the paper's
        experiments use.  The calibrated value is exposed in the result's
        ``extra["calibrated_eps"]`` (and in the report metadata).
    min_pts:
        DBSCAN minPts.
    backend:
        Neighbour backend for backend-pluggable algorithms
        (see :func:`repro.list_backends`).
    tiles, workers:
        Partition-layer knobs for tile-capable algorithms
        (``"rt-dbscan-tiled"``): spatial tile count and executor parallelism.
    device:
        Simulated RT device to charge the run to (fresh default if omitted).
    reference:
        Quantify agreement against an exact reference run: ``True`` compares
        against :data:`DEFAULT_REFERENCE`, a string names any registered
        algorithm (``"algo"`` or ``"algo@backend"`` spelling).  The reference
        is fitted on the same points with the same ``eps``/``min_pts`` on its
        own device, and the quality block of
        :func:`repro.metrics.agreement_summary` (ARI, core/noise/partition
        agreement, simulated speedup) lands in ``result.extra["agreement"]``.
        This is how approximate-tier runs (``backend="lsh"`` / ``"sampled"``)
        ship with their error bar.
    seed:
        Seed for the calibration subsample, so the auto-calibrated ε is
        reproducible on datasets larger than ``calibration_sample``.
    calibration_sample:
        Cap on the number of points the k-distance heuristic evaluates
        (``None`` evaluates every point).
    **params:
        Extra keyword arguments forwarded to the algorithm's constructor.

    Returns
    -------
    DBSCANResult
        Labels identical to running the algorithm's legacy constructor with
        the same parameters.

    Examples
    --------
    >>> import repro
    >>> from repro.data import make_blobs
    >>> points, _ = make_blobs(2000, centers=4, std=0.2, seed=7)
    >>> repro.cluster(points, eps=0.3, min_pts=10).num_clusters
    4
    >>> repro.cluster(points, "rt-dbscan", eps=0.3, min_pts=10,
    ...               backend="kdtree").num_clusters
    4
    """
    pts = np.asarray(points, dtype=np.float64)
    calibration: dict | None = None
    if eps is None:
        from ..bench.experiments import calibrate_eps

        eps = calibrate_eps(
            pts, int(min_pts), eps_quantile, sample=calibration_sample, seed=seed
        )
        calibration = {
            "calibrated_eps": float(eps),
            "eps_quantile": float(eps_quantile),
            "calibration_seed": int(seed),
            "calibration_sample": calibration_sample,
        }
    spec = ClustererSpec(
        algo=algo, eps=float(eps), min_pts=min_pts, backend=backend,
        tiles=tiles, workers=workers, params=params,
    )
    result = make_clusterer(spec, device=device).fit(pts)
    if calibration is not None:
        result.extra.update(calibration)
        if result.report is not None:
            result.report.metadata.update(calibration)
    if reference:
        from ..metrics.agreement import agreement_summary

        ref_algo = DEFAULT_REFERENCE if reference is True else str(reference)
        ref_spec = ClustererSpec(algo=ref_algo, eps=float(eps), min_pts=min_pts)
        ref_result = make_clusterer(ref_spec).fit(pts)
        result.extra["agreement"] = agreement_summary(result, ref_result, points=pts)
    return result
