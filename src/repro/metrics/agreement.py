"""DBSCAN-specific agreement checks.

Two correct DBSCAN implementations must agree exactly on (a) which points are
core points, (b) which points are noise, and (c) how the core points are
partitioned into clusters.  Border points may legitimately differ: a border
point within ε of two different clusters can be attached to either (the
paper's Algorithm 3 resolves the race with an atomic union).  These helpers
express exactly that contract so the integration and property tests can
assert it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dbscan.params import DBSCANResult
from .ari import adjusted_rand_index

__all__ = [
    "AgreementReport",
    "agreement_summary",
    "compare_results",
    "core_partitions_equal",
    "labels_equivalent",
]


@dataclass
class AgreementReport:
    """Outcome of comparing two DBSCAN results on the same data."""

    core_mask_equal: bool
    noise_mask_equal: bool
    core_partition_equal: bool
    border_assignment_valid: bool
    ari: float
    num_clusters_a: int
    num_clusters_b: int

    @property
    def equivalent(self) -> bool:
        """True when the two results are DBSCAN-equivalent (see module doc)."""
        return (
            self.core_mask_equal
            and self.noise_mask_equal
            and self.core_partition_equal
            and self.border_assignment_valid
            and self.num_clusters_a == self.num_clusters_b
        )

    def as_dict(self) -> dict:
        return {
            "core_mask_equal": self.core_mask_equal,
            "noise_mask_equal": self.noise_mask_equal,
            "core_partition_equal": self.core_partition_equal,
            "border_assignment_valid": self.border_assignment_valid,
            "ari": self.ari,
            "num_clusters_a": self.num_clusters_a,
            "num_clusters_b": self.num_clusters_b,
            "equivalent": self.equivalent,
        }


def core_partitions_equal(
    labels_a: np.ndarray, labels_b: np.ndarray, core_mask: np.ndarray
) -> bool:
    """Do the two labelings partition the core points identically?"""
    core_mask = np.asarray(core_mask, dtype=bool)
    a = np.asarray(labels_a)[core_mask]
    b = np.asarray(labels_b)[core_mask]
    if a.size == 0:
        return True
    # Build the label mapping a -> b and check it is a bijection that is
    # consistent for every core point.
    pairs = {}
    reverse = {}
    for la, lb in zip(a.tolist(), b.tolist()):
        if la in pairs and pairs[la] != lb:
            return False
        if lb in reverse and reverse[lb] != la:
            return False
        pairs[la] = lb
        reverse[lb] = la
    return True


def _border_assignment_valid(
    points: np.ndarray | None,
    result: DBSCANResult,
    reference: DBSCANResult,
) -> bool:
    """Every border point must sit in a cluster containing a core point within ε.

    When ``points`` is None the geometric check is skipped and only the
    structural condition (border points not labelled noise by one result and
    cluster by the other) is verified — which is already covered by the noise
    mask equality — so the function returns True.
    """
    if points is None:
        return True
    pts = np.asarray(points, dtype=np.float64)
    eps = result.params.eps
    border_idx = np.flatnonzero(result.border_mask)
    core_idx = np.flatnonzero(result.core_mask)
    if border_idx.size == 0 or core_idx.size == 0:
        return border_idx.size == 0
    core_pts = pts[core_idx]
    core_labels = result.labels[core_idx]
    for b in border_idx:
        lab = result.labels[b]
        if lab < 0:
            return False
        same = core_labels == lab
        if not same.any():
            return False
        d2 = ((core_pts[same] - pts[b]) ** 2).sum(axis=1)
        if d2.min() > eps * eps + 1e-12:
            return False
    return True


def compare_results(
    a: DBSCANResult, b: DBSCANResult, *, points: np.ndarray | None = None
) -> AgreementReport:
    """Compare two DBSCAN results for DBSCAN-equivalence.

    ``points`` enables the geometric validation of border assignments (each
    border point must be within ε of a core point of its assigned cluster).
    """
    core_equal = bool(np.array_equal(a.core_mask, b.core_mask))
    noise_equal = bool(np.array_equal(a.noise_mask, b.noise_mask))
    partition_equal = core_equal and core_partitions_equal(a.labels, b.labels, a.core_mask)
    border_ok = _border_assignment_valid(points, b, a) and _border_assignment_valid(points, a, b)
    return AgreementReport(
        core_mask_equal=core_equal,
        noise_mask_equal=noise_equal,
        core_partition_equal=partition_equal,
        border_assignment_valid=border_ok,
        ari=adjusted_rand_index(a.labels, b.labels),
        num_clusters_a=a.num_clusters,
        num_clusters_b=b.num_clusters,
    )


def labels_equivalent(a: DBSCANResult, b: DBSCANResult, *, points: np.ndarray | None = None) -> bool:
    """Shorthand: are the two results DBSCAN-equivalent?"""
    return compare_results(a, b, points=points).equivalent


def agreement_summary(
    result: DBSCANResult,
    reference: DBSCANResult,
    *,
    points: np.ndarray | None = None,
) -> dict:
    """Quantified agreement of ``result`` against an exact ``reference``.

    This is the quality block every approximate-tier run ships with
    (stored under ``DBSCANResult.extra["agreement"]`` by
    ``repro.cluster(..., reference=...)`` and the bench "approx"
    experiment).  On top of the strict :func:`compare_results` report it
    adds *rates* — the fraction of points on which the core/noise verdicts
    agree, which is more informative than the all-or-nothing booleans when
    the backends genuinely differ — and the simulated speedup over the
    reference when both results carry execution reports.
    """
    report = compare_results(reference, result, points=points)
    n = max(1, result.num_points)
    out = report.as_dict()
    out.update(
        {
            "reference_algorithm": reference.algorithm,
            "reference_backend": reference.extra.get("backend"),
            "core_agreement": float(
                (result.core_mask == reference.core_mask).sum() / n
            ),
            "noise_agreement": float(
                (result.noise_mask == reference.noise_mask).sum() / n
            ),
        }
    )
    if result.report is not None and reference.report is not None:
        ref_s = reference.report.total_simulated_seconds
        res_s = result.report.total_simulated_seconds
        if res_s > 0:
            out["simulated_speedup"] = float(ref_s / res_s)
    return out
