"""Clustering-quality and agreement metrics.

Adjusted Rand index and DBSCAN-specific equivalence checks (identical core
and noise sets, identical core partitions, border-point assignments valid up
to ties) used to validate every accelerated implementation against the
sequential oracle.
"""

from .agreement import (
    AgreementReport,
    agreement_summary,
    compare_results,
    core_partitions_equal,
    labels_equivalent,
)
from .ari import adjusted_rand_index, contingency_matrix, pair_confusion_matrix, rand_index

__all__ = [
    "AgreementReport",
    "agreement_summary",
    "compare_results",
    "core_partitions_equal",
    "labels_equivalent",
    "adjusted_rand_index",
    "contingency_matrix",
    "pair_confusion_matrix",
    "rand_index",
]
