"""Clustering agreement indices.

The adjusted Rand index (ARI) is the standard chance-corrected measure of
agreement between two labelings; it is used by the integration tests to show
that every accelerated DBSCAN produces the same partition as the sequential
oracle (up to border-point tie-breaking, which leaves ARI at 1.0 or within a
hair of it) and by the examples to compare DBSCAN output against generator
ground truth.
"""

from __future__ import annotations

import numpy as np

__all__ = ["contingency_matrix", "pair_confusion_matrix", "adjusted_rand_index", "rand_index"]


def contingency_matrix(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Cross-tabulation of two labelings (any integer labels, including -1)."""
    labels_a = np.asarray(labels_a).ravel()
    labels_b = np.asarray(labels_b).ravel()
    if labels_a.shape != labels_b.shape:
        raise ValueError("labelings must have the same length")
    _, a_idx = np.unique(labels_a, return_inverse=True)
    _, b_idx = np.unique(labels_b, return_inverse=True)
    n_a = a_idx.max() + 1 if a_idx.size else 0
    n_b = b_idx.max() + 1 if b_idx.size else 0
    cont = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(cont, (a_idx, b_idx), 1)
    return cont


def pair_confusion_matrix(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """2x2 pair confusion matrix [[TN, FP], [FN, TP]] over point pairs."""
    cont = contingency_matrix(labels_a, labels_b)
    n = cont.sum()
    sum_squares = (cont.astype(np.float64) ** 2).sum()
    a_marg = cont.sum(axis=1).astype(np.float64)
    b_marg = cont.sum(axis=0).astype(np.float64)
    tp = sum_squares - n
    fp = (b_marg**2).sum() - sum_squares
    fn = (a_marg**2).sum() - sum_squares
    tn = n**2 - tp - fp - fn - n
    return np.array([[tn, fp], [fn, tp]], dtype=np.float64)


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Unadjusted Rand index in [0, 1]."""
    (tn, fp), (fn, tp) = pair_confusion_matrix(labels_a, labels_b)
    denom = tn + fp + fn + tp
    if denom == 0:
        return 1.0
    return float((tp + tn) / denom)


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index in [-1, 1]; 1.0 means identical partitions.

    Follows the pair-counting formulation; degenerate cases (both labelings
    put everything in one cluster, or everything in singletons) return 1.0
    when the labelings agree and 0.0 otherwise.
    """
    (tn, fp), (fn, tp) = pair_confusion_matrix(labels_a, labels_b)
    if fp == 0 and fn == 0:
        return 1.0
    denom = (tp + fn) * (fn + tn) + (tp + fp) * (fp + tn)
    if denom == 0:
        return 0.0
    return float(2.0 * (tp * tn - fn * fp) / denom)
