"""Median-split KD-tree builder, materialised in BVH array form.

A KD-tree and a BVH differ in how they *choose* splits, not in what the
query kernels need: per-node bounds, child links and leaf primitive ranges.
Building the KD-tree straight into the :class:`~repro.bvh.node.BVH` layout
means the host KD-tree backend shares the exact traversal kernels (numpy
level-synchronous wavefront *and* the native DFS) that the RT path already
runs — so numpy-vs-native parity holds by construction and the charged
traversal counts are real, not synthetic depth estimates.

Splits follow the classic construction: each internal node splits its
primitive range at the median along the widest axis of the range's centroid
extent (``np.argpartition``, so the build is O(n log n) without a full sort
per level).  Median splits keep the tree balanced, which is also what makes
the recursion depth logarithmic.
"""

from __future__ import annotations

import numpy as np

from ..geometry.aabb import AABB, aabb_centroids
from .node import INVALID_NODE, BVH

__all__ = ["build_kdtree"]


def build_kdtree(bounds: AABB, *, leaf_size: int = 16) -> BVH:
    """Build a median-split KD-tree over the primitive ``bounds``.

    Parameters
    ----------
    bounds:
        Per-primitive AABBs (e.g. eps-spheres around the dataset points).
    leaf_size:
        Maximum number of primitives per leaf.

    Returns
    -------
    BVH
        A balanced hierarchy in BVH array form; leaves own contiguous
        slices of the median-partitioned primitive permutation.
    """
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    prim_lower = np.asarray(bounds.lower, dtype=np.float64)
    prim_upper = np.asarray(bounds.upper, dtype=np.float64)
    n = prim_lower.shape[0]
    if n == 0:
        raise ValueError("cannot build a KD-tree over zero primitives")

    centroids = aabb_centroids(prim_lower, prim_upper)
    perm = np.arange(n, dtype=np.intp)

    node_lower: list[np.ndarray] = []
    node_upper: list[np.ndarray] = []
    left: list[int] = []
    right: list[int] = []
    prim_start: list[int] = []
    prim_count: list[int] = []

    max_depth = 0
    num_leaves = 0
    # Preorder DFS; each entry is (start, end, parent, is_right_child, depth).
    todo: list[tuple[int, int, int, int, int]] = [(0, n, -1, 0, 1)]
    while todo:
        s, e, parent, is_right, depth = todo.pop()
        idx = len(left)
        if parent >= 0:
            (right if is_right else left)[parent] = idx
        ids = perm[s:e]
        node_lower.append(prim_lower[ids].min(axis=0))
        node_upper.append(prim_upper[ids].max(axis=0))
        max_depth = max(max_depth, depth)
        if e - s <= leaf_size:
            left.append(INVALID_NODE)
            right.append(INVALID_NODE)
            prim_start.append(s)
            prim_count.append(e - s)
            num_leaves += 1
            continue
        cen = centroids[ids]
        axis = int(np.argmax(cen.max(axis=0) - cen.min(axis=0)))
        mid = (s + e) // 2
        part = np.argpartition(cen[:, axis], mid - s)
        perm[s:e] = ids[part]
        left.append(0)  # patched when the child is popped
        right.append(0)
        prim_start.append(0)
        prim_count.append(0)
        todo.append((mid, e, idx, 1, depth + 1))
        todo.append((s, mid, idx, 0, depth + 1))

    return BVH(
        node_lower=np.asarray(node_lower, dtype=np.float64),
        node_upper=np.asarray(node_upper, dtype=np.float64),
        left=np.asarray(left, dtype=np.intp),
        right=np.asarray(right, dtype=np.intp),
        prim_start=np.asarray(prim_start, dtype=np.intp),
        prim_count=np.asarray(prim_count, dtype=np.intp),
        prim_indices=perm,
        prim_lower=prim_lower,
        prim_upper=prim_upper,
        builder="kdtree",
        leaf_size=leaf_size,
        build_stats={"levels": max_depth, "num_leaves": num_leaves},
    )
