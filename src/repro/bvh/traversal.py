"""Batched BVH traversal kernels — the coherent wavefront.

The RT-DBSCAN reduction turns every neighbourhood query into an
infinitesimally short ray, which behaves exactly like a *point* query against
the BVH: a node can only contribute hits if the query point lies inside the
node's box.  The kernels below therefore traverse the hierarchy with a
level-synchronous frontier of ``(query, node)`` pairs and vectorise the
containment tests over the whole frontier — the software analogue of the
wavefront the RT cores would process in hardware.

Wavefront coherence
-------------------
Within each launch chunk the queries are **sorted by Morton code** before
traversal (the scheduling trick the RT cores' ray-coherence hardware
exploits): spatially adjacent queries then walk the same subtrees at the same
level, so the frontier's node gathers hit runs of identical nodes and the
surviving-query masks stay dense instead of fragmenting.  The per-query visit
*set* is a property of the tree alone, so the reordering changes none of the
operation counts the cost model charges — only the host-side memory-access
pattern.  Child links and the leaf mask are precomputed structure-of-arrays
lookups on :class:`~repro.bvh.node.BVH` (``children``, ``leaf_mask``), so a
frontier expansion is a single fancy-index gather per level.

:func:`point_query_csr` is the stage-2 workhorse: it confirms candidates
chunk-by-chunk with the caller's Intersection program and emits a canonical
CSR adjacency directly, so the full candidate pair set — typically several
times the confirmed set — never exists in memory.  The legacy
:func:`point_query_pairs` (all candidates, materialised) is kept for
callers that genuinely need raw candidates.

Every kernel reports a :class:`TraversalStats` record with the operation
counts the device timing model (``repro.perf``) converts into simulated
execution time: box tests (node visits), leaf visits, and intersection-program
invocations (candidate primitive checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..geometry.morton import morton_order
from .node import BVH

__all__ = [
    "TraversalStats",
    "point_query_pairs",
    "point_query_counts_early_exit",
    "point_query_csr",
    "ray_query_pairs",
]

#: below this many queries a Morton sort costs more than the coherence wins.
_COHERENCE_MIN_QUERIES = 1024


@dataclass
class TraversalStats:
    """Operation counts accumulated over one or more traversal launches."""

    queries: int = 0
    node_visits: int = 0
    leaf_visits: int = 0
    candidates: int = 0
    confirmed: int = 0
    levels: int = 0

    def merge(self, other: "TraversalStats") -> "TraversalStats":
        self.queries += other.queries
        self.node_visits += other.node_visits
        self.leaf_visits += other.leaf_visits
        self.candidates += other.candidates
        self.confirmed += other.confirmed
        self.levels = max(self.levels, other.levels)
        return self

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "node_visits": self.node_visits,
            "leaf_visits": self.leaf_visits,
            "candidates": self.candidates,
            "confirmed": self.confirmed,
            "levels": self.levels,
        }


def _expand_leaf_ranges(bvh: BVH, leaf_nodes: np.ndarray) -> np.ndarray:
    """Indices into ``bvh.prim_indices`` for the slices owned by ``leaf_nodes``."""
    counts = bvh.prim_count[leaf_nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    starts = bvh.prim_start[leaf_nodes]
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
    return idx


def _contains(bvh: BVH, points: np.ndarray, q: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    p = points[q]
    lo = bvh.node_lower[nodes]
    hi = bvh.node_upper[nodes]
    # Column-chained compare-and-accumulate: no (k, 3) boolean temporaries
    # and no axis reduction — the frontier's hottest few lines.
    keep = p[:, 0] >= lo[:, 0]
    keep &= p[:, 0] <= hi[:, 0]
    keep &= p[:, 1] >= lo[:, 1]
    keep &= p[:, 1] <= hi[:, 1]
    keep &= p[:, 2] >= lo[:, 2]
    keep &= p[:, 2] <= hi[:, 2]
    return keep


def _coherent_chunk(points: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Query ids of one launch chunk, Morton-sorted for traversal coherence."""
    q = np.arange(lo, hi, dtype=np.intp)
    if hi - lo >= _COHERENCE_MIN_QUERIES:
        q = q[morton_order(points[lo:hi])]
    return q


def _traverse_chunk(
    bvh: BVH,
    points: np.ndarray,
    q: np.ndarray,
    stats: TraversalStats,
    on_leaf: Callable[[np.ndarray, np.ndarray], None],
    prune: Callable[[np.ndarray], np.ndarray] | None = None,
) -> None:
    """The level-synchronous frontier core shared by every point-query kernel.

    Walks one launch chunk's ``(query, node)`` frontier, charges the node /
    leaf / candidate counters, and hands each level's candidate expansion to
    ``on_leaf(rep_q, rep_p)`` — the only part that differs between the
    pair-emitting, counting and CSR kernels.  ``prune`` (early exit) filters
    the next level's frontier by query id.
    """
    leaf_mask = bvh.leaf_mask
    children = bvh.children
    nodes = np.zeros(q.shape[0], dtype=np.intp)
    level = 0
    while q.size:
        level += 1
        stats.node_visits += int(q.size)
        keep = _contains(bvh, points, q, nodes)
        q, nodes = q[keep], nodes[keep]
        if q.size == 0:
            break
        leaf = leaf_mask[nodes]
        if leaf.any():
            leaf_q = q[leaf]
            leaf_nodes = nodes[leaf]
            stats.leaf_visits += int(leaf_nodes.size)
            idx = _expand_leaf_ranges(bvh, leaf_nodes)
            rep_q = np.repeat(leaf_q, bvh.prim_count[leaf_nodes])
            rep_p = bvh.prim_indices[idx]
            stats.candidates += int(rep_p.size)
            on_leaf(rep_q, rep_p)
        internal = ~leaf
        inodes = nodes[internal]
        q = np.repeat(q[internal], 2)
        nodes = children[inodes].reshape(-1)
        if prune is not None and q.size:
            still_active = prune(q)
            q, nodes = q[still_active], nodes[still_active]
    stats.levels = max(stats.levels, level)


def point_query_pairs(
    bvh: BVH,
    points: np.ndarray,
    *,
    chunk_size: int = 16384,
) -> tuple[np.ndarray, np.ndarray, TraversalStats]:
    """Find all candidate ``(query, primitive)`` pairs for point queries.

    A pair ``(i, j)`` is emitted whenever query point ``i`` lies inside the
    AABB of primitive-owning leaf ``j`` reached during traversal; the exact
    primitive test (the Intersection program) is applied by the caller.

    This kernel *materialises the full candidate set*; pipelines that only
    need the confirmed adjacency should use :func:`point_query_csr`, which
    confirms chunk-by-chunk and keeps peak memory proportional to one chunk.

    Parameters
    ----------
    bvh:
        The acceleration structure.
    points:
        ``(n, 3)`` query points (ray origins of the ε-rays).
    chunk_size:
        Number of queries traversed per frontier pass; bounds peak memory.

    Returns
    -------
    (query_idx, prim_idx, stats)
        Candidate pair arrays (unsorted) and the traversal statistics.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    nq = points.shape[0]
    stats = TraversalStats(queries=nq)
    out_q: list[np.ndarray] = []
    out_p: list[np.ndarray] = []

    def on_leaf(rep_q: np.ndarray, rep_p: np.ndarray) -> None:
        out_q.append(rep_q)
        out_p.append(rep_p)

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        _traverse_chunk(bvh, points, _coherent_chunk(points, lo_q, hi_q), stats, on_leaf)

    query_idx = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
    prim_idx = np.concatenate(out_p) if out_p else np.empty(0, dtype=np.intp)
    return query_idx, prim_idx, stats


def point_query_counts_early_exit(
    bvh: BVH,
    points: np.ndarray,
    confirm: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    min_count: int | None = None,
    chunk_size: int = 16384,
    candidate_counts: np.ndarray | None = None,
) -> tuple[np.ndarray, TraversalStats]:
    """Count confirmed hits per query, optionally stopping at ``min_count``.

    This is the traversal mode FDBSCAN's early-exit optimisation relies on
    (Section VI-B): a query stops traversing as soon as it has confirmed
    ``min_count`` neighbours.  With ``min_count=None`` the traversal runs to
    completion and returns exact counts.

    Parameters
    ----------
    confirm:
        Callback mapping candidate ``(query_idx, prim_idx)`` arrays to a
        boolean array of confirmed hits (the Intersection-program test).
    candidate_counts:
        Optional ``(nq,)`` int64 array accumulating the number of candidate
        primitives examined per query — the per-query breakdown FDBSCAN's
        early-exit cost analysis needs, gathered here so callers never have
        to materialise the candidate pair set just to histogram it.

    Returns
    -------
    (counts, stats)
        ``counts[i]`` is the number of confirmed hits for query ``i``
        (saturating once ``min_count`` is reached, if given).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    nq = points.shape[0]
    counts = np.zeros(nq, dtype=np.int64)
    stats = TraversalStats(queries=nq)

    def on_leaf(rep_q: np.ndarray, rep_p: np.ndarray) -> None:
        if candidate_counts is not None:
            np.add.at(candidate_counts, rep_q, 1)
        if rep_p.size:
            ok = np.asarray(confirm(rep_q, rep_p), dtype=bool)
            stats.confirmed += int(ok.sum())
            np.add.at(counts, rep_q[ok], 1)

    prune = None
    if min_count is not None:
        def prune(q: np.ndarray) -> np.ndarray:
            return counts[q] < min_count

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        _traverse_chunk(
            bvh, points, _coherent_chunk(points, lo_q, hi_q), stats, on_leaf, prune
        )
    return counts, stats


def point_query_csr(
    bvh: BVH,
    points: np.ndarray,
    confirm: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    chunk_size: int = 16384,
) -> tuple[np.ndarray, np.ndarray, TraversalStats]:
    """Confirmed-hit CSR adjacency, built chunk-by-chunk.

    Every candidate is confirmed with the caller's Intersection program as
    soon as its chunk's traversal discovers it, and each chunk's confirmed
    hits are canonicalised (rows in query order, indices sorted ascending)
    before the next chunk launches.  Peak intermediate memory is therefore
    one chunk's candidates plus the confirmed adjacency itself — the full
    ``(query, primitive)`` candidate set is never materialised.

    Returns
    -------
    (indptr, indices, stats)
        Canonical CSR over the ``nq`` query rows; ``stats`` carries the same
        operation counts a :func:`point_query_pairs` + confirm pipeline
        would have charged (the traversal is identical).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    nq = points.shape[0]
    stats = TraversalStats(queries=nq)
    row_counts = np.zeros(nq, dtype=np.int64)
    parts: list[np.ndarray] = []

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        hit_q: list[np.ndarray] = []
        hit_p: list[np.ndarray] = []

        def on_leaf(rep_q: np.ndarray, rep_p: np.ndarray) -> None:
            if rep_p.size:
                ok = np.asarray(confirm(rep_q, rep_p), dtype=bool)
                stats.confirmed += int(ok.sum())
                hit_q.append(rep_q[ok])
                hit_p.append(rep_p[ok])

        _traverse_chunk(bvh, points, _coherent_chunk(points, lo_q, hi_q), stats, on_leaf)

        if hit_q:
            cq = np.concatenate(hit_q)
            cp = np.concatenate(hit_p)
            order = np.lexsort((cp, cq))
            row_counts[lo_q:hi_q] = np.bincount(cq - lo_q, minlength=hi_q - lo_q)
            parts.append(cp[order])

    indptr = np.zeros(nq + 1, dtype=np.int64)
    np.cumsum(row_counts, out=indptr[1:])
    indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
    return indptr, indices, stats


def ray_query_pairs(
    bvh: BVH,
    origins: np.ndarray,
    directions: np.ndarray,
    tmin: np.ndarray,
    tmax: np.ndarray,
    *,
    chunk_size: int = 16384,
) -> tuple[np.ndarray, np.ndarray, TraversalStats]:
    """General ray traversal using the slab test (used by triangle mode and tests).

    Returns candidate ``(ray, primitive)`` pairs whose leaf AABB was hit by the
    ray's parametric interval.
    """
    origins = np.atleast_2d(np.asarray(origins, dtype=np.float64))
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    tmin = np.broadcast_to(np.asarray(tmin, dtype=np.float64), (origins.shape[0],))
    tmax = np.broadcast_to(np.asarray(tmax, dtype=np.float64), (origins.shape[0],))
    with np.errstate(divide="ignore"):
        inv_dirs = 1.0 / directions
    nq = origins.shape[0]
    stats = TraversalStats(queries=nq)
    leaf_mask = bvh.leaf_mask
    children = bvh.children
    out_q: list[np.ndarray] = []
    out_p: list[np.ndarray] = []

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        q = _coherent_chunk(origins, lo_q, hi_q)
        nodes = np.zeros(q.shape[0], dtype=np.intp)
        level = 0
        while q.size:
            level += 1
            stats.node_visits += int(q.size)
            lo = bvh.node_lower[nodes]
            hi = bvh.node_upper[nodes]
            o = origins[q]
            inv = inv_dirs[q]
            t0 = (lo - o) * inv
            t1 = (hi - o) * inv
            tnear = np.where(np.isnan(np.minimum(t0, t1)), -np.inf, np.minimum(t0, t1))
            tfar = np.where(np.isnan(np.maximum(t0, t1)), np.inf, np.maximum(t0, t1))
            enter = np.maximum(tnear.max(axis=1), tmin[q])
            exit_ = np.minimum(tfar.min(axis=1), tmax[q])
            keep = enter <= exit_
            q, nodes = q[keep], nodes[keep]
            if q.size == 0:
                break
            leaf = leaf_mask[nodes]
            if leaf.any():
                leaf_q = q[leaf]
                leaf_nodes = nodes[leaf]
                stats.leaf_visits += int(leaf_nodes.size)
                idx = _expand_leaf_ranges(bvh, leaf_nodes)
                rep_q = np.repeat(leaf_q, bvh.prim_count[leaf_nodes])
                rep_p = bvh.prim_indices[idx]
                stats.candidates += int(rep_p.size)
                out_q.append(rep_q)
                out_p.append(rep_p)
            internal = ~leaf
            inodes = nodes[internal]
            q = np.repeat(q[internal], 2)
            nodes = children[inodes].reshape(-1)
        stats.levels = max(stats.levels, level)

    query_idx = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
    prim_idx = np.concatenate(out_p) if out_p else np.empty(0, dtype=np.intp)
    return query_idx, prim_idx, stats
