"""Batched BVH traversal kernels.

The RT-DBSCAN reduction turns every neighbourhood query into an
infinitesimally short ray, which behaves exactly like a *point* query against
the BVH: a node can only contribute hits if the query point lies inside the
node's box.  The kernels below therefore traverse the hierarchy with a
level-synchronous frontier of ``(query, node)`` pairs and vectorise the
containment tests over the whole frontier — the software analogue of the
wavefront the RT cores would process in hardware.

Every kernel reports a :class:`TraversalStats` record with the operation
counts the device timing model (``repro.perf``) converts into simulated
execution time: box tests (node visits), leaf visits, and intersection-program
invocations (candidate primitive checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .node import BVH

__all__ = ["TraversalStats", "point_query_pairs", "point_query_counts_early_exit", "ray_query_pairs"]


@dataclass
class TraversalStats:
    """Operation counts accumulated over one or more traversal launches."""

    queries: int = 0
    node_visits: int = 0
    leaf_visits: int = 0
    candidates: int = 0
    confirmed: int = 0
    levels: int = 0

    def merge(self, other: "TraversalStats") -> "TraversalStats":
        self.queries += other.queries
        self.node_visits += other.node_visits
        self.leaf_visits += other.leaf_visits
        self.candidates += other.candidates
        self.confirmed += other.confirmed
        self.levels = max(self.levels, other.levels)
        return self

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "node_visits": self.node_visits,
            "leaf_visits": self.leaf_visits,
            "candidates": self.candidates,
            "confirmed": self.confirmed,
            "levels": self.levels,
        }


def _expand_leaf_ranges(bvh: BVH, leaf_nodes: np.ndarray) -> np.ndarray:
    """Indices into ``bvh.prim_indices`` for the slices owned by ``leaf_nodes``."""
    counts = bvh.prim_count[leaf_nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    starts = bvh.prim_start[leaf_nodes]
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
    return idx


def _contains(bvh: BVH, points: np.ndarray, q: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    p = points[q]
    lo = bvh.node_lower[nodes]
    hi = bvh.node_upper[nodes]
    return ((p >= lo) & (p <= hi)).all(axis=1)


def point_query_pairs(
    bvh: BVH,
    points: np.ndarray,
    *,
    chunk_size: int = 16384,
) -> tuple[np.ndarray, np.ndarray, TraversalStats]:
    """Find all candidate ``(query, primitive)`` pairs for point queries.

    A pair ``(i, j)`` is emitted whenever query point ``i`` lies inside the
    AABB of primitive-owning leaf ``j`` reached during traversal; the exact
    primitive test (the Intersection program) is applied by the caller.

    Parameters
    ----------
    bvh:
        The acceleration structure.
    points:
        ``(n, 3)`` query points (ray origins of the ε-rays).
    chunk_size:
        Number of queries traversed per frontier pass; bounds peak memory.

    Returns
    -------
    (query_idx, prim_idx, stats)
        Candidate pair arrays (unsorted) and the traversal statistics.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    nq = points.shape[0]
    stats = TraversalStats(queries=nq)
    out_q: list[np.ndarray] = []
    out_p: list[np.ndarray] = []

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        q = np.arange(lo_q, hi_q, dtype=np.intp)
        nodes = np.zeros(q.shape[0], dtype=np.intp)
        level = 0
        while q.size:
            level += 1
            stats.node_visits += int(q.size)
            keep = _contains(bvh, points, q, nodes)
            q, nodes = q[keep], nodes[keep]
            if q.size == 0:
                break
            leaf = bvh.leaf_mask[nodes]
            if leaf.any():
                leaf_q = q[leaf]
                leaf_nodes = nodes[leaf]
                stats.leaf_visits += int(leaf_nodes.size)
                idx = _expand_leaf_ranges(bvh, leaf_nodes)
                rep_q = np.repeat(leaf_q, bvh.prim_count[leaf_nodes])
                rep_p = bvh.prim_indices[idx]
                stats.candidates += int(rep_p.size)
                out_q.append(rep_q)
                out_p.append(rep_p)
            internal = ~leaf
            iq = q[internal]
            inodes = nodes[internal]
            q = np.concatenate([iq, iq])
            nodes = np.concatenate([bvh.left[inodes], bvh.right[inodes]])
        stats.levels = max(stats.levels, level)

    query_idx = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
    prim_idx = np.concatenate(out_p) if out_p else np.empty(0, dtype=np.intp)
    return query_idx, prim_idx, stats


def point_query_counts_early_exit(
    bvh: BVH,
    points: np.ndarray,
    confirm: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    min_count: int | None = None,
    chunk_size: int = 16384,
) -> tuple[np.ndarray, TraversalStats]:
    """Count confirmed hits per query, optionally stopping at ``min_count``.

    This is the traversal mode FDBSCAN's early-exit optimisation relies on
    (Section VI-B): a query stops traversing as soon as it has confirmed
    ``min_count`` neighbours.  With ``min_count=None`` the traversal runs to
    completion and returns exact counts.

    Parameters
    ----------
    confirm:
        Callback mapping candidate ``(query_idx, prim_idx)`` arrays to a
        boolean array of confirmed hits (the Intersection-program test).

    Returns
    -------
    (counts, stats)
        ``counts[i]`` is the number of confirmed hits for query ``i``
        (saturating once ``min_count`` is reached, if given).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    nq = points.shape[0]
    counts = np.zeros(nq, dtype=np.int64)
    stats = TraversalStats(queries=nq)

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        q = np.arange(lo_q, hi_q, dtype=np.intp)
        nodes = np.zeros(q.shape[0], dtype=np.intp)
        level = 0
        while q.size:
            level += 1
            stats.node_visits += int(q.size)
            keep = _contains(bvh, points, q, nodes)
            q, nodes = q[keep], nodes[keep]
            if q.size == 0:
                break
            leaf = bvh.leaf_mask[nodes]
            if leaf.any():
                leaf_q = q[leaf]
                leaf_nodes = nodes[leaf]
                stats.leaf_visits += int(leaf_nodes.size)
                idx = _expand_leaf_ranges(bvh, leaf_nodes)
                rep_q = np.repeat(leaf_q, bvh.prim_count[leaf_nodes])
                rep_p = bvh.prim_indices[idx]
                stats.candidates += int(rep_p.size)
                if rep_p.size:
                    ok = np.asarray(confirm(rep_q, rep_p), dtype=bool)
                    stats.confirmed += int(ok.sum())
                    np.add.at(counts, rep_q[ok], 1)
            internal = ~leaf
            iq = q[internal]
            inodes = nodes[internal]
            q = np.concatenate([iq, iq])
            nodes = np.concatenate([bvh.left[inodes], bvh.right[inodes]])
            if min_count is not None and q.size:
                still_active = counts[q] < min_count
                q, nodes = q[still_active], nodes[still_active]
        stats.levels = max(stats.levels, level)
    return counts, stats


def ray_query_pairs(
    bvh: BVH,
    origins: np.ndarray,
    directions: np.ndarray,
    tmin: np.ndarray,
    tmax: np.ndarray,
    *,
    chunk_size: int = 16384,
) -> tuple[np.ndarray, np.ndarray, TraversalStats]:
    """General ray traversal using the slab test (used by triangle mode and tests).

    Returns candidate ``(ray, primitive)`` pairs whose leaf AABB was hit by the
    ray's parametric interval.
    """
    origins = np.atleast_2d(np.asarray(origins, dtype=np.float64))
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    tmin = np.broadcast_to(np.asarray(tmin, dtype=np.float64), (origins.shape[0],))
    tmax = np.broadcast_to(np.asarray(tmax, dtype=np.float64), (origins.shape[0],))
    with np.errstate(divide="ignore"):
        inv_dirs = 1.0 / directions
    nq = origins.shape[0]
    stats = TraversalStats(queries=nq)
    out_q: list[np.ndarray] = []
    out_p: list[np.ndarray] = []

    for lo_q in range(0, nq, chunk_size):
        hi_q = min(nq, lo_q + chunk_size)
        q = np.arange(lo_q, hi_q, dtype=np.intp)
        nodes = np.zeros(q.shape[0], dtype=np.intp)
        level = 0
        while q.size:
            level += 1
            stats.node_visits += int(q.size)
            lo = bvh.node_lower[nodes]
            hi = bvh.node_upper[nodes]
            o = origins[q]
            inv = inv_dirs[q]
            t0 = (lo - o) * inv
            t1 = (hi - o) * inv
            tnear = np.where(np.isnan(np.minimum(t0, t1)), -np.inf, np.minimum(t0, t1))
            tfar = np.where(np.isnan(np.maximum(t0, t1)), np.inf, np.maximum(t0, t1))
            enter = np.maximum(tnear.max(axis=1), tmin[q])
            exit_ = np.minimum(tfar.min(axis=1), tmax[q])
            keep = enter <= exit_
            q, nodes = q[keep], nodes[keep]
            if q.size == 0:
                break
            leaf = bvh.leaf_mask[nodes]
            if leaf.any():
                leaf_q = q[leaf]
                leaf_nodes = nodes[leaf]
                stats.leaf_visits += int(leaf_nodes.size)
                idx = _expand_leaf_ranges(bvh, leaf_nodes)
                rep_q = np.repeat(leaf_q, bvh.prim_count[leaf_nodes])
                rep_p = bvh.prim_indices[idx]
                stats.candidates += int(rep_p.size)
                out_q.append(rep_q)
                out_p.append(rep_p)
            internal = ~leaf
            iq = q[internal]
            inodes = nodes[internal]
            q = np.concatenate([iq, iq])
            nodes = np.concatenate([bvh.left[inodes], bvh.right[inodes]])
        stats.levels = max(stats.levels, level)

    query_idx = np.concatenate(out_q) if out_q else np.empty(0, dtype=np.intp)
    prim_idx = np.concatenate(out_p) if out_p else np.empty(0, dtype=np.intp)
    return query_idx, prim_idx, stats
