"""Binned surface-area-heuristic (SAH) builder.

The SAH builder produces higher-quality trees than the Morton median-split
LBVH at a higher build cost — the same trade-off the paper leans on when it
observes that the OptiX builder spends extra time on compaction and
ray-tracing-specific optimisation (Section V-D).  It is used by the ablation
benchmarks and as a second implementation for the structural property tests.
"""

from __future__ import annotations

import numpy as np

from ..geometry.aabb import AABB, aabb_centroids, aabb_surface_area
from .node import INVALID_NODE, BVH

__all__ = ["build_sah"]


def _sah_split(
    lower: np.ndarray,
    upper: np.ndarray,
    centroids: np.ndarray,
    ids: np.ndarray,
    num_bins: int,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Find the best binned SAH split of the primitives in ``ids``.

    Returns ``(left_ids, right_ids)`` or ``None`` when no split improves on
    keeping the primitives together.
    """
    cen = centroids[ids]
    cmin = cen.min(axis=0)
    cmax = cen.max(axis=0)
    span = cmax - cmin
    axis = int(np.argmax(span))
    if span[axis] <= 0.0:
        return None

    scaled = (cen[:, axis] - cmin[axis]) / span[axis]
    bins = np.minimum((scaled * num_bins).astype(np.intp), num_bins - 1)

    # Per-bin bounds and counts.
    bin_lower = np.full((num_bins, 3), np.inf)
    bin_upper = np.full((num_bins, 3), -np.inf)
    bin_count = np.zeros(num_bins, dtype=np.intp)
    np.minimum.at(bin_lower, bins, lower[ids])
    np.maximum.at(bin_upper, bins, upper[ids])
    np.add.at(bin_count, bins, 1)

    # Sweep from the left and from the right to get prefix/suffix bounds.
    left_lower = np.minimum.accumulate(bin_lower, axis=0)
    left_upper = np.maximum.accumulate(bin_upper, axis=0)
    right_lower = np.minimum.accumulate(bin_lower[::-1], axis=0)[::-1]
    right_upper = np.maximum.accumulate(bin_upper[::-1], axis=0)[::-1]
    left_count = np.cumsum(bin_count)
    right_count = np.cumsum(bin_count[::-1])[::-1]

    # Candidate splits between bin b and b+1.
    la = aabb_surface_area(left_lower[:-1], left_upper[:-1])
    ra = aabb_surface_area(right_lower[1:], right_upper[1:])
    lc = left_count[:-1]
    rc = right_count[1:]
    valid = (lc > 0) & (rc > 0)
    if not valid.any():
        return None
    cost = np.where(valid, la * lc + ra * rc, np.inf)
    best = int(np.argmin(cost))

    parent_area = aabb_surface_area(
        lower[ids].min(axis=0, keepdims=True), upper[ids].max(axis=0, keepdims=True)
    )[0]
    leaf_cost = parent_area * len(ids)
    if cost[best] >= leaf_cost and len(ids) <= 2 * num_bins:
        # Splitting is not worth it and the node is already small.
        return None

    go_left = bins <= best
    return ids[go_left], ids[~go_left]


def build_sah(bounds: AABB, *, leaf_size: int = 4, num_bins: int = 16) -> BVH:
    """Build a binned-SAH BVH over the primitive ``bounds``."""
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    prim_lower = np.asarray(bounds.lower, dtype=np.float64)
    prim_upper = np.asarray(bounds.upper, dtype=np.float64)
    n = prim_lower.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")
    centroids = aabb_centroids(prim_lower, prim_upper)

    node_lower: list[np.ndarray] = []
    node_upper: list[np.ndarray] = []
    left: list[int] = []
    right: list[int] = []
    prim_start: list[int] = []
    prim_count: list[int] = []
    prim_order: list[np.ndarray] = []

    # Each stack entry: (node_index, ids).  Children are allocated when a
    # node is split so child links can be patched in place.
    def alloc_node(ids: np.ndarray) -> int:
        idx = len(node_lower)
        node_lower.append(prim_lower[ids].min(axis=0))
        node_upper.append(prim_upper[ids].max(axis=0))
        left.append(INVALID_NODE)
        right.append(INVALID_NODE)
        prim_start.append(0)
        prim_count.append(0)
        return idx

    root_ids = np.arange(n, dtype=np.intp)
    stack: list[tuple[int, np.ndarray]] = [(alloc_node(root_ids), root_ids)]
    offset = 0
    while stack:
        node, ids = stack.pop()
        split = None
        if len(ids) > leaf_size:
            split = _sah_split(prim_lower, prim_upper, centroids, ids, num_bins)
            if split is None and len(ids) > leaf_size:
                # Fall back to a median split on the longest axis so leaves
                # never exceed leaf_size even with duplicate centroids.
                axis = int(np.argmax(prim_upper[ids].max(0) - prim_lower[ids].min(0)))
                order = ids[np.argsort(centroids[ids, axis], kind="stable")]
                half = len(order) // 2
                split = (order[:half], order[half:])
        if split is None:
            prim_start[node] = offset
            prim_count[node] = len(ids)
            prim_order.append(ids)
            offset += len(ids)
            continue
        left_ids, right_ids = split
        li = alloc_node(left_ids)
        ri = alloc_node(right_ids)
        left[node] = li
        right[node] = ri
        stack.append((li, left_ids))
        stack.append((ri, right_ids))

    bvh = BVH(
        node_lower=np.asarray(node_lower),
        node_upper=np.asarray(node_upper),
        left=np.asarray(left, dtype=np.intp),
        right=np.asarray(right, dtype=np.intp),
        prim_start=np.asarray(prim_start, dtype=np.intp),
        prim_count=np.asarray(prim_count, dtype=np.intp),
        prim_indices=np.concatenate(prim_order) if prim_order else np.empty(0, dtype=np.intp),
        prim_lower=prim_lower,
        prim_upper=prim_upper,
        builder="sah",
        leaf_size=leaf_size,
        build_stats={"num_bins": num_bins},
    )
    return bvh
