"""Bounding volume hierarchy storage.

Nodes are stored in structure-of-arrays form, mirroring how GPU BVH builders
lay out their trees: per-node bounds plus child links, and for leaves a
``(prim_start, prim_count)`` range into a primitive-index permutation.  All
arrays are plain NumPy so the traversal kernels can stay fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BVH", "INVALID_NODE"]

#: Sentinel for "no child" (leaf nodes).
INVALID_NODE = -1


@dataclass
class BVH:
    """A binary bounding volume hierarchy over a set of primitives.

    Attributes
    ----------
    node_lower, node_upper:
        ``(m, 3)`` per-node bounds.
    left, right:
        ``(m,)`` child node indices; ``INVALID_NODE`` for leaves.
    prim_start, prim_count:
        ``(m,)`` leaf ranges into ``prim_indices`` (zero count for internal
        nodes).
    prim_indices:
        ``(n,)`` permutation of primitive ids; each leaf owns a contiguous
        slice of it.
    prim_lower, prim_upper:
        ``(n, 3)`` bounds of the primitives, in *original* primitive order.
    """

    node_lower: np.ndarray
    node_upper: np.ndarray
    left: np.ndarray
    right: np.ndarray
    prim_start: np.ndarray
    prim_count: np.ndarray
    prim_indices: np.ndarray
    prim_lower: np.ndarray
    prim_upper: np.ndarray
    builder: str = "lbvh"
    leaf_size: int = 4
    build_stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Structure-of-arrays lookups the wavefront traversal reads every
        # level: precomputed once at build time instead of being re-derived
        # per frontier pass.  ``children[i] = (left[i], right[i])`` lets the
        # traversal expand a frontier with a single fancy-index gather, and
        # the cached leaf mask avoids an O(num_nodes) comparison per level.
        self._leaf_mask = self.left == INVALID_NODE
        self._children = np.column_stack((self.left, self.right))

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return int(self.node_lower.shape[0])

    @property
    def num_primitives(self) -> int:
        return int(self.prim_indices.shape[0])

    @property
    def root(self) -> int:
        return 0

    def is_leaf(self, nodes: np.ndarray | int) -> np.ndarray | bool:
        """Leaf predicate for a node index or an array of node indices."""
        scalar = np.isscalar(nodes)
        arr = np.asarray(nodes)
        out = self.left[arr] == INVALID_NODE
        return bool(out) if scalar else out

    @property
    def leaf_mask(self) -> np.ndarray:
        return self._leaf_mask

    @property
    def children(self) -> np.ndarray:
        """``(m, 2)`` child-pair table (SoA layout for the wavefront kernels)."""
        return self._children

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth (computed lazily, cached in build_stats)."""
        if "depth" not in self.build_stats:
            depth = 0
            frontier = np.array([self.root], dtype=np.intp)
            while frontier.size:
                depth += 1
                internal = frontier[~self.leaf_mask[frontier]]
                frontier = np.concatenate([self.left[internal], self.right[internal]])
            self.build_stats["depth"] = int(depth)
        return self.build_stats["depth"]

    def leaf_primitives(self, node: int) -> np.ndarray:
        """Primitive ids stored in a leaf node."""
        if not self.is_leaf(node):
            raise ValueError(f"node {node} is not a leaf")
        s = int(self.prim_start[node])
        c = int(self.prim_count[node])
        return self.prim_indices[s : s + c]

    def memory_bytes(self) -> int:
        """Device-memory footprint of the acceleration structure in bytes."""
        arrays = (
            self.node_lower, self.node_upper, self.left, self.right,
            self.prim_start, self.prim_count, self.prim_indices,
            self.prim_lower, self.prim_upper,
        )
        return int(sum(a.nbytes for a in arrays))

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on failure.

        Invariants checked:

        * every primitive appears exactly once across all leaves;
        * leaf ranges are disjoint and within bounds;
        * every internal node has two valid children;
        * every node's box contains its children's boxes (and, for leaves,
          the boxes of its primitives).
        """
        n = self.num_primitives
        leaf = self.leaf_mask
        assert leaf.any(), "BVH must contain at least one leaf"
        counts = self.prim_count[leaf]
        assert counts.sum() == n, "leaves must cover every primitive exactly once"
        assert (counts > 0).all(), "leaves must be non-empty"
        covered = np.sort(self.prim_indices)
        assert np.array_equal(covered, np.arange(n)), "prim_indices must be a permutation"

        internal = ~leaf
        assert (self.left[internal] >= 0).all() and (self.right[internal] >= 0).all()
        assert (self.left[internal] < self.num_nodes).all()
        assert (self.right[internal] < self.num_nodes).all()

        # parent contains children
        li = self.left[internal]
        ri = self.right[internal]
        for child in (li, ri):
            assert np.all(self.node_lower[internal] <= self.node_lower[child] + 1e-12)
            assert np.all(self.node_upper[internal] >= self.node_upper[child] - 1e-12)

        # leaves contain their primitives
        leaf_ids = np.flatnonzero(leaf)
        reps = self.prim_count[leaf_ids]
        owner = np.repeat(leaf_ids, reps)
        order = np.concatenate(
            [self.prim_indices[self.prim_start[i] : self.prim_start[i] + self.prim_count[i]]
             for i in leaf_ids]
        ) if leaf_ids.size else np.empty(0, dtype=np.intp)
        assert np.all(self.node_lower[owner] <= self.prim_lower[order] + 1e-12)
        assert np.all(self.node_upper[owner] >= self.prim_upper[order] - 1e-12)
