"""Bounding volume hierarchy substrate.

Provides the acceleration structure the simulated RT device builds over the
ε-sphere scene: SoA node storage, an LBVH-style Morton builder (the hardware
analogue), a binned SAH builder (for quality ablations), batched point/ray
traversal kernels with operation counters, and refit/quality helpers.
"""

from .kdtree import build_kdtree
from .lbvh import build_lbvh
from .node import INVALID_NODE, BVH
from .refit import leaf_occupancy, refit, sah_cost
from .sah import build_sah
from .traversal import (
    TraversalStats,
    point_query_counts_early_exit,
    point_query_csr,
    point_query_pairs,
    ray_query_pairs,
)

__all__ = [
    "BVH",
    "INVALID_NODE",
    "build_kdtree",
    "build_lbvh",
    "build_sah",
    "refit",
    "sah_cost",
    "leaf_occupancy",
    "TraversalStats",
    "point_query_pairs",
    "point_query_counts_early_exit",
    "point_query_csr",
    "ray_query_pairs",
]
