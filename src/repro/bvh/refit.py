"""BVH refit and quality inspection.

Refit recomputes node bounds from primitive bounds without changing the tree
topology — the operation a BVH-based DBSCAN uses when the user changes ε and
the sphere AABBs grow or shrink.  Quality metrics (SAH cost, overlap) back
the ablation benchmarks that compare the LBVH and SAH builders.
"""

from __future__ import annotations

import numpy as np

from ..geometry.aabb import AABB, aabb_surface_area
from .node import BVH

__all__ = ["refit", "sah_cost", "leaf_occupancy"]


def refit(bvh: BVH, new_bounds: AABB) -> BVH:
    """Return a copy of ``bvh`` with node bounds recomputed from ``new_bounds``.

    The primitive order, leaf ranges and topology are preserved; only the
    per-primitive AABBs change (e.g. because ε changed).
    """
    new_lower = np.asarray(new_bounds.lower, dtype=np.float64)
    new_upper = np.asarray(new_bounds.upper, dtype=np.float64)
    if new_lower.shape[0] != bvh.num_primitives:
        raise ValueError("refit requires one bound per original primitive")

    node_lower = bvh.node_lower.copy()
    node_upper = bvh.node_upper.copy()

    # Recompute leaf bounds.  Leaf ranges are disjoint and cover the
    # primitive permutation exactly once, so ordered by start they tile
    # ``prim_indices`` and a segmented reduction handles every leaf at once.
    leaf_ids = np.flatnonzero(bvh.leaf_mask)
    order = np.argsort(bvh.prim_start[leaf_ids], kind="stable")
    leaf_ids = leaf_ids[order]
    starts = bvh.prim_start[leaf_ids]
    gathered_lower = new_lower[bvh.prim_indices]
    gathered_upper = new_upper[bvh.prim_indices]
    node_lower[leaf_ids] = np.minimum.reduceat(gathered_lower, starts, axis=0)
    node_upper[leaf_ids] = np.maximum.reduceat(gathered_upper, starts, axis=0)

    # Propagate upwards by repeatedly tightening parents until a fixed point.
    # Nodes were emitted in BFS order by the LBVH builder and pre-order by the
    # SAH builder; in both layouts children have larger indices than their
    # parent, so a single reverse sweep suffices.
    internal_ids = np.flatnonzero(~bvh.leaf_mask)[::-1]
    for i in internal_ids:
        l, r = bvh.left[i], bvh.right[i]
        node_lower[i] = np.minimum(node_lower[l], node_lower[r])
        node_upper[i] = np.maximum(node_upper[l], node_upper[r])

    return BVH(
        node_lower=node_lower,
        node_upper=node_upper,
        left=bvh.left,
        right=bvh.right,
        prim_start=bvh.prim_start,
        prim_count=bvh.prim_count,
        prim_indices=bvh.prim_indices,
        prim_lower=new_lower,
        prim_upper=new_upper,
        builder=bvh.builder if bvh.builder.endswith("+refit") else bvh.builder + "+refit",
        leaf_size=bvh.leaf_size,
        build_stats=dict(bvh.build_stats),
    )


def sah_cost(bvh: BVH, *, traversal_cost: float = 1.0, intersection_cost: float = 1.0) -> float:
    """Surface-area-heuristic cost of the tree (lower is better).

    Computed as the classic estimate: the expected number of node visits and
    primitive tests for a random ray, weighted by the given per-operation
    costs and normalised by the root surface area.
    """
    root_area = aabb_surface_area(bvh.node_lower[:1], bvh.node_upper[:1])[0]
    if root_area <= 0:
        return 0.0
    areas = aabb_surface_area(bvh.node_lower, bvh.node_upper)
    internal = ~bvh.leaf_mask
    leaf = bvh.leaf_mask
    cost = traversal_cost * areas[internal].sum()
    cost += intersection_cost * (areas[leaf] * bvh.prim_count[leaf]).sum()
    return float(cost / root_area)


def leaf_occupancy(bvh: BVH) -> dict:
    """Summary statistics of primitives-per-leaf (used in ablation reports)."""
    counts = bvh.prim_count[bvh.leaf_mask]
    return {
        "num_leaves": int(counts.size),
        "min": int(counts.min()),
        "max": int(counts.max()),
        "mean": float(counts.mean()),
    }
