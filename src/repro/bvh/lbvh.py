"""LBVH-style builder.

GPU BVH builders (including the one OptiX runs on RT hardware) sort primitive
centroids along a Morton space-filling curve and then split the sorted range
recursively.  We reproduce that strategy with a level-synchronous, fully
vectorised builder: ranges are split at their median, which both matches the
balanced trees produced by hardware compaction and keeps the Python-level
work to O(log n) vector operations.
"""

from __future__ import annotations

import numpy as np

from ..geometry.aabb import AABB, aabb_centroids
from ..geometry.morton import morton_order
from .node import INVALID_NODE, BVH

__all__ = ["build_lbvh"]


def build_lbvh(bounds: AABB, *, leaf_size: int = 4, morton_bits: int = 30) -> BVH:
    """Build an LBVH over the primitive ``bounds``.

    Parameters
    ----------
    bounds:
        Per-primitive AABBs (e.g. produced by ``SphereGeometry.bounds()``).
    leaf_size:
        Maximum number of primitives per leaf.
    morton_bits:
        Resolution of the Morton codes used to order primitives (30 or 63).

    Returns
    -------
    BVH
        A balanced hierarchy whose leaves own contiguous slices of the
        Morton-sorted primitive permutation.
    """
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    prim_lower = np.asarray(bounds.lower, dtype=np.float64)
    prim_upper = np.asarray(bounds.upper, dtype=np.float64)
    n = prim_lower.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")

    centroids = aabb_centroids(prim_lower, prim_upper)
    perm = morton_order(centroids, bits=morton_bits)
    sorted_lower = prim_lower[perm]
    sorted_upper = prim_upper[perm]

    # ------------------------------------------------------------------ #
    # Structure pass: level-synchronous median splits of [start, end) ranges.
    # ------------------------------------------------------------------ #
    starts_list: list[np.ndarray] = []
    ends_list: list[np.ndarray] = []
    left_list: list[np.ndarray] = []
    right_list: list[np.ndarray] = []
    level_offsets: list[int] = []

    cur_starts = np.array([0], dtype=np.intp)
    cur_ends = np.array([n], dtype=np.intp)
    next_offset = 0
    levels = 0
    while cur_starts.size:
        level_offsets.append(next_offset)
        m = cur_starts.size
        next_offset += m
        counts = cur_ends - cur_starts
        is_leaf = counts <= leaf_size

        left = np.full(m, INVALID_NODE, dtype=np.intp)
        right = np.full(m, INVALID_NODE, dtype=np.intp)
        internal = np.flatnonzero(~is_leaf)
        n_children = 2 * internal.size
        if n_children:
            child_base = next_offset
            left[internal] = child_base + 2 * np.arange(internal.size)
            right[internal] = left[internal] + 1
            mids = (cur_starts[internal] + cur_ends[internal]) // 2
            child_starts = np.empty(n_children, dtype=np.intp)
            child_ends = np.empty(n_children, dtype=np.intp)
            child_starts[0::2] = cur_starts[internal]
            child_ends[0::2] = mids
            child_starts[1::2] = mids
            child_ends[1::2] = cur_ends[internal]
        else:
            child_starts = np.empty(0, dtype=np.intp)
            child_ends = np.empty(0, dtype=np.intp)

        starts_list.append(cur_starts)
        ends_list.append(cur_ends)
        left_list.append(left)
        right_list.append(right)
        cur_starts, cur_ends = child_starts, child_ends
        levels += 1

    node_start = np.concatenate(starts_list)
    node_end = np.concatenate(ends_list)
    left_all = np.concatenate(left_list)
    right_all = np.concatenate(right_list)
    num_nodes = node_start.shape[0]
    leaf_mask = left_all == INVALID_NODE

    prim_start = np.where(leaf_mask, node_start, 0).astype(np.intp)
    prim_count = np.where(leaf_mask, node_end - node_start, 0).astype(np.intp)

    # ------------------------------------------------------------------ #
    # Bounds pass: leaves via segment reductions, internal nodes bottom-up.
    # ------------------------------------------------------------------ #
    node_lower = np.empty((num_nodes, 3), dtype=np.float64)
    node_upper = np.empty((num_nodes, 3), dtype=np.float64)

    leaf_ids = np.flatnonzero(leaf_mask)
    # Leaves partition [0, n); reduce each contiguous slice in one reduceat.
    order = np.argsort(node_start[leaf_ids], kind="stable")
    ordered_leaves = leaf_ids[order]
    seg_starts = node_start[ordered_leaves]
    node_lower[ordered_leaves] = np.minimum.reduceat(sorted_lower, seg_starts, axis=0)
    node_upper[ordered_leaves] = np.maximum.reduceat(sorted_upper, seg_starts, axis=0)

    # Internal bounds: walk levels from deepest to shallowest.
    for lvl in range(levels - 1, -1, -1):
        off = level_offsets[lvl]
        cnt = (level_offsets[lvl + 1] - off) if lvl + 1 < levels else num_nodes - off
        ids = np.arange(off, off + cnt)
        internal = ids[~leaf_mask[ids]]
        if internal.size == 0:
            continue
        li = left_all[internal]
        ri = right_all[internal]
        node_lower[internal] = np.minimum(node_lower[li], node_lower[ri])
        node_upper[internal] = np.maximum(node_upper[li], node_upper[ri])

    bvh = BVH(
        node_lower=node_lower,
        node_upper=node_upper,
        left=left_all,
        right=right_all,
        prim_start=prim_start,
        prim_count=prim_count,
        prim_indices=np.asarray(perm, dtype=np.intp),
        prim_lower=prim_lower,
        prim_upper=prim_upper,
        builder="lbvh",
        leaf_size=leaf_size,
        build_stats={"levels": levels, "num_leaves": int(leaf_mask.sum())},
    )
    return bvh
