"""repro — a reproduction of RT-DBSCAN (Nagarajan & Kulkarni, IPDPS 2023).

RT-DBSCAN accelerates DBSCAN's fixed-radius neighbour searches by reducing
them to ray-tracing queries executed on GPU RT cores.  This package rebuilds
the complete system in Python on top of a *simulated* RT device:

* :mod:`repro.geometry` / :mod:`repro.bvh` — the spatial substrate (AABBs,
  spheres, Morton codes, LBVH/SAH builders, batched traversal);
* :mod:`repro.rtcore`  — the simulated RT-capable GPU and its OptiX/OWL-style
  programming model;
* :mod:`repro.neighbors` — RT-FindNeighborhood (the paper's Algorithm 2) plus
  reference searches;
* :mod:`repro.dbscan`  — RT-DBSCAN (Algorithm 3) and the sequential oracle;
* :mod:`repro.baselines` — the GPU comparators (FDBSCAN, G-DBSCAN,
  CUDA-DClust+);
* :mod:`repro.streaming` — incremental window clustering over point streams
  with refit-aware scene maintenance;
* :mod:`repro.data`    — synthetic equivalents of the paper's datasets and
  chunked stream generators;
* :mod:`repro.perf` / :mod:`repro.metrics` / :mod:`repro.bench` — cost model,
  agreement metrics and the per-figure benchmark harness.

Quickstart
----------
>>> from repro import rt_dbscan
>>> from repro.data import make_blobs
>>> points, _ = make_blobs(2000, centers=4, std=0.2, seed=7)
>>> result = rt_dbscan(points, eps=0.3, min_pts=10)
>>> result.num_clusters
4
"""

from .baselines import CUDADClustPlus, FDBSCAN, GDBSCAN, cuda_dclust_plus, fdbscan, gdbscan
from .dbscan import RTDBSCAN, DBSCANParams, DBSCANResult, classic_dbscan, rt_dbscan
from .neighbors import RTNeighborFinder, rt_find_neighbors
from .perf import DEFAULT_COST_MODEL, DeviceCostModel
from .rtcore import RTDevice, owl_context_create
from .streaming import RefitPolicy, StreamingRTDBSCAN, StreamUpdate

__version__ = "1.1.0"

__all__ = [
    "CUDADClustPlus",
    "FDBSCAN",
    "GDBSCAN",
    "cuda_dclust_plus",
    "fdbscan",
    "gdbscan",
    "RTDBSCAN",
    "DBSCANParams",
    "DBSCANResult",
    "classic_dbscan",
    "rt_dbscan",
    "RTNeighborFinder",
    "rt_find_neighbors",
    "DEFAULT_COST_MODEL",
    "DeviceCostModel",
    "RTDevice",
    "owl_context_create",
    "RefitPolicy",
    "StreamingRTDBSCAN",
    "StreamUpdate",
    "__version__",
]
