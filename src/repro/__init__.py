"""repro — a reproduction of RT-DBSCAN (Nagarajan & Kulkarni, IPDPS 2023).

RT-DBSCAN accelerates DBSCAN's fixed-radius neighbour searches by reducing
them to ray-tracing queries executed on GPU RT cores.  This package rebuilds
the complete system in Python on top of a *simulated* RT device:

* :mod:`repro.api`     — the unified estimator API: ``Clusterer`` protocol,
  algorithm/backend registries and the one-call ``repro.cluster`` facade;
* :mod:`repro.geometry` / :mod:`repro.bvh` — the spatial substrate (AABBs,
  spheres, Morton codes, LBVH/SAH builders, batched traversal);
* :mod:`repro.rtcore`  — the simulated RT-capable GPU and its OptiX/OWL-style
  programming model;
* :mod:`repro.neighbors` — RT-FindNeighborhood (the paper's Algorithm 2) plus
  grid/KD-tree/brute searches behind the pluggable ``NeighborBackend``
  protocol;
* :mod:`repro.dbscan`  — RT-DBSCAN (Algorithm 3, on any backend) and the
  sequential oracle;
* :mod:`repro.baselines` — the GPU comparators (FDBSCAN, G-DBSCAN,
  CUDA-DClust+);
* :mod:`repro.streaming` — incremental window clustering over point streams
  with refit-aware scene maintenance;
* :mod:`repro.partition` — the scale-out layer: spatial tiling with ε-halo
  ghost regions, shard-local clustering with an exact boundary merge, and
  the shared serial/thread/process ``ParallelMap`` executor;
* :mod:`repro.data`    — synthetic equivalents of the paper's datasets and
  chunked stream generators;
* :mod:`repro.perf` / :mod:`repro.metrics` / :mod:`repro.bench` — cost model,
  agreement metrics and the per-figure benchmark harness.

Quickstart
----------
>>> import repro
>>> from repro.data import make_blobs
>>> points, _ = make_blobs(2000, centers=4, std=0.2, seed=7)
>>> result = repro.cluster(points, eps=0.3, min_pts=10)
>>> result.num_clusters
4
>>> repro.cluster(points, "rt-dbscan", eps=0.3, min_pts=10,
...               backend="kdtree").num_clusters
4
"""

from .api import (
    Clusterer,
    ClustererSpec,
    StreamingClusterer,
    cluster,
    list_algorithms,
    list_backends,
    make_backend,
    make_clusterer,
    register_algorithm,
    register_backend,
)
from .baselines import CUDADClustPlus, FDBSCAN, GDBSCAN, cuda_dclust_plus, fdbscan, gdbscan
from .dbscan import (
    RTDBSCAN,
    ClassicDBSCAN,
    DBSCANParams,
    DBSCANResult,
    classic_dbscan,
    rt_dbscan,
)
from .neighbors import NeighborBackend, RTNeighborFinder, rt_find_neighbors
from .partition import ParallelMap, Tiler, TiledRTDBSCAN, tiled_rt_dbscan
from .perf import DEFAULT_COST_MODEL, DeviceCostModel
from .rtcore import RTDevice, owl_context_create
from .streaming import RefitPolicy, StreamingRTDBSCAN, StreamUpdate

__version__ = "1.8.0"

__all__ = [
    "cluster",
    "Clusterer",
    "ClustererSpec",
    "StreamingClusterer",
    "list_algorithms",
    "list_backends",
    "make_backend",
    "make_clusterer",
    "register_algorithm",
    "register_backend",
    "CUDADClustPlus",
    "FDBSCAN",
    "GDBSCAN",
    "cuda_dclust_plus",
    "fdbscan",
    "gdbscan",
    "RTDBSCAN",
    "ClassicDBSCAN",
    "DBSCANParams",
    "DBSCANResult",
    "classic_dbscan",
    "rt_dbscan",
    "NeighborBackend",
    "RTNeighborFinder",
    "rt_find_neighbors",
    "ParallelMap",
    "Tiler",
    "TiledRTDBSCAN",
    "tiled_rt_dbscan",
    "DEFAULT_COST_MODEL",
    "DeviceCostModel",
    "RTDevice",
    "owl_context_create",
    "RefitPolicy",
    "StreamingRTDBSCAN",
    "StreamUpdate",
    "__version__",
]
