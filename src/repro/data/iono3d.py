"""Synthetic stand-in for the 3DIono (ionosphere) dataset.

The real 3DIono dataset comes from GPS-derived total electron content (TEC)
measurements of the ionosphere (Pankratius et al.): ~1 M samples, each with a
latitude, a longitude and a TEC value — the only genuinely 3D dataset in the
paper's evaluation (Figs. 5c, 6c, 7, Section V-D).  Spatially it is a set of
smooth sheets: receivers sample the TEC field along satellite ground tracks,
so points concentrate on smooth 2D manifolds embedded in the 3D
(lat, lon, TEC) space, with regional density variations (more receivers over
land) and measurement noise.

The generator reproduces that structure: ground-track-like curves over a
latitude/longitude window, a smooth synthetic TEC field evaluated along them
(diurnal bulge plus latitude dependence), receiver-density weighting and
additive noise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_iono3d", "IONO3D_DEFAULTS"]

#: Parameter defaults matching the paper's experiments on this dataset.
IONO3D_DEFAULTS = {
    "max_points": 8_000_000,
    "dimensions": 3,
    "min_pts": 10,
    "eps_sweep": (0.1, 0.25, 0.5, 0.75, 1.0),
    "fixed_eps": 0.5,
    "extent": ((-60.0, 60.0), (-180.0, 180.0), (0.0, 80.0)),  # lat, lon, TEC units
}


def _tec_field(lat: np.ndarray, lon: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Smooth synthetic total-electron-content field (TEC units)."""
    # Equatorial anomaly: TEC peaks near +/- 15 degrees magnetic latitude.
    anomaly = 30.0 * np.exp(-((np.abs(lat) - 15.0) ** 2) / (2 * 12.0**2))
    # Diurnal bulge: depends on local solar time, i.e. longitude.
    diurnal = 20.0 * (1.0 + np.cos(np.deg2rad(lon - 30.0))) / 2.0
    background = 8.0
    return background + anomaly + diurnal


def generate_iono3d(
    n: int,
    *,
    seed: int = 0,
    num_tracks: int | None = None,
    receiver_hotspots: int = 8,
    noise_tec: float = 1.5,
    lat_range: tuple[float, float] = (-60.0, 60.0),
    lon_range: tuple[float, float] = (-180.0, 180.0),
) -> np.ndarray:
    """Generate ``n`` 3D points shaped like ionosphere TEC samples.

    Returns an ``(n, 3)`` array of (latitude, longitude, TEC).
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    if num_tracks is None:
        num_tracks = max(4, n // 20_000)

    # Receiver hotspots concentrate samples over certain longitudes/latitudes.
    hotspot_lat = rng.uniform(lat_range[0] * 0.7, lat_range[1] * 0.7, receiver_hotspots)
    hotspot_lon = rng.uniform(lon_range[0] * 0.9, lon_range[1] * 0.9, receiver_hotspots)
    hotspot_weight = rng.dirichlet(np.ones(receiver_hotspots) * 2.0)

    track_weights = rng.dirichlet(np.ones(num_tracks) * 3.0)
    counts = rng.multinomial(n, track_weights)

    lats, lons = [], []
    for m in counts:
        if m == 0:
            continue
        # A satellite ground track: inclined great-circle-like sinusoid.
        hotspot = rng.choice(receiver_hotspots, p=hotspot_weight)
        lon0 = hotspot_lon[hotspot] + rng.normal(0, 15.0)
        inclination = rng.uniform(30.0, 80.0)
        phase = rng.uniform(0, 2 * np.pi)
        s = np.sort(rng.uniform(0, 2 * np.pi, int(m)))
        lat = inclination * np.sin(s + phase)
        lon = (lon0 + np.rad2deg(s) * 0.5) % 360.0 - 180.0
        # Receiver clustering: pull a fraction of samples towards the hotspot.
        pull = rng.uniform(0, 1, int(m)) < 0.5
        lat[pull] = hotspot_lat[hotspot] + rng.normal(0, 6.0, int(pull.sum()))
        lon[pull] = hotspot_lon[hotspot] + rng.normal(0, 8.0, int(pull.sum()))
        lats.append(np.clip(lat, *lat_range))
        lons.append(np.clip(lon, *lon_range))

    lat = np.concatenate(lats)
    lon = np.concatenate(lons)
    tec = _tec_field(lat, lon, rng) + rng.normal(0, noise_tec, lat.shape[0])
    pts = np.column_stack([lat, lon, tec])
    perm = rng.permutation(pts.shape[0])
    return pts[perm][:n]
