"""Generic synthetic point-cloud generators.

These are the building blocks the dataset-specific generators compose, and
they are also used directly by the unit tests, the property-based tests and
the quickstart example: Gaussian blobs, uniform background noise, ring/moon
shapes (to exercise DBSCAN's ability to find non-convex clusters) and simple
trajectory sampling.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_blobs",
    "make_uniform_noise",
    "make_rings",
    "make_moons",
    "make_trajectory",
    "combine",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def make_blobs(
    n: int,
    centers: np.ndarray | int = 3,
    *,
    std: float | np.ndarray = 0.1,
    dim: int = 2,
    box: float = 10.0,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs.

    Returns ``(points, true_labels)``; points are distributed as evenly as
    possible across the requested centres.
    """
    rng = _rng(seed)
    if isinstance(centers, (int, np.integer)):
        centers = rng.uniform(0.0, box, size=(int(centers), dim))
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    k = centers.shape[0]
    stds = np.broadcast_to(np.asarray(std, dtype=np.float64), (k,))
    sizes = np.full(k, n // k, dtype=np.int64)
    sizes[: n - sizes.sum()] += 1
    points = []
    labels = []
    for i, (c, s, m) in enumerate(zip(centers, stds, sizes)):
        points.append(rng.normal(c, s, size=(int(m), centers.shape[1])))
        labels.append(np.full(int(m), i, dtype=np.int64))
    return np.vstack(points), np.concatenate(labels)


def make_uniform_noise(
    n: int, *, low=0.0, high=10.0, dim: int = 2, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Uniform background noise points in a box."""
    rng = _rng(seed)
    low = np.broadcast_to(np.asarray(low, dtype=np.float64), (dim,))
    high = np.broadcast_to(np.asarray(high, dtype=np.float64), (dim,))
    return rng.uniform(low, high, size=(int(n), dim))


def make_rings(
    n: int,
    *,
    radii=(1.0, 2.5),
    center=(0.0, 0.0),
    noise: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concentric 2D rings — clusters k-means cannot find but DBSCAN can."""
    rng = _rng(seed)
    radii = np.asarray(radii, dtype=np.float64)
    k = radii.shape[0]
    sizes = np.full(k, n // k, dtype=np.int64)
    sizes[: n - sizes.sum()] += 1
    points, labels = [], []
    for i, (r, m) in enumerate(zip(radii, sizes)):
        theta = rng.uniform(0, 2 * np.pi, int(m))
        x = center[0] + r * np.cos(theta) + rng.normal(0, noise, int(m))
        y = center[1] + r * np.sin(theta) + rng.normal(0, noise, int(m))
        points.append(np.column_stack([x, y]))
        labels.append(np.full(int(m), i, dtype=np.int64))
    return np.vstack(points), np.concatenate(labels)


def make_moons(
    n: int, *, noise: float = 0.05, seed: int | np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-moons (2D)."""
    rng = _rng(seed)
    n_a = n // 2
    n_b = n - n_a
    theta_a = rng.uniform(0, np.pi, n_a)
    theta_b = rng.uniform(0, np.pi, n_b)
    a = np.column_stack([np.cos(theta_a), np.sin(theta_a)])
    b = np.column_stack([1.0 - np.cos(theta_b), 0.5 - np.sin(theta_b)])
    pts = np.vstack([a, b]) + rng.normal(0, noise, size=(n, 2))
    labels = np.concatenate([np.zeros(n_a, dtype=np.int64), np.ones(n_b, dtype=np.int64)])
    return pts, labels


def make_trajectory(
    n: int,
    waypoints: np.ndarray,
    *,
    jitter: float = 0.01,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``n`` jittered points along a polyline of waypoints.

    Used by the road-network and vehicle-trajectory dataset generators.
    """
    rng = _rng(seed)
    waypoints = np.atleast_2d(np.asarray(waypoints, dtype=np.float64))
    if waypoints.shape[0] < 2:
        raise ValueError("a trajectory needs at least two waypoints")
    seg_vec = np.diff(waypoints, axis=0)
    seg_len = np.linalg.norm(seg_vec, axis=1)
    if seg_len.sum() == 0:
        raise ValueError("trajectory waypoints are all identical")
    probs = seg_len / seg_len.sum()
    seg_idx = rng.choice(seg_len.shape[0], size=int(n), p=probs)
    t = rng.uniform(0, 1, int(n))[:, None]
    pts = waypoints[seg_idx] + t * seg_vec[seg_idx]
    return pts + rng.normal(0, jitter, size=pts.shape)


def combine(*arrays: np.ndarray, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Stack point arrays and shuffle the rows (deterministically by seed)."""
    rng = _rng(seed)
    stacked = np.vstack(arrays)
    perm = rng.permutation(stacked.shape[0])
    return stacked[perm]
