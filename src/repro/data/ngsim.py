"""Synthetic stand-in for the NGSIM vehicle-trajectory dataset.

The Next Generation Simulation (NGSIM) dataset records precise vehicle
positions (local coordinates, in feet) along three US highway segments at
10 Hz — more than 11 M points squeezed into a quasi-one-dimensional corridor
a few lanes wide and a few thousand feet long.  The paper uses it as the
"very dense" stress case (Section V-C): with ε between 1e-4 and 1e-3 feet the
ε-neighbourhoods are empty or tiny, no clusters form at minPts = 100, and the
interesting result is how cheaply each algorithm discovers that.

The generator reproduces the corridor geometry: vehicles travel along a small
number of lanes, sampled densely in the direction of travel, with lateral
jitter much larger than the ε values used in the experiments, so that the
"zero clusters formed" regime of the paper is preserved.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_ngsim", "NGSIM_DEFAULTS"]

#: Parameter defaults matching the paper's experiments on this dataset.
NGSIM_DEFAULTS = {
    "max_points": 11_000_000,
    "dimensions": 2,
    "min_pts": 100,
    "eps_sweep": (0.0001, 0.00025, 0.0005, 0.00075, 0.001),
    "fixed_eps": 0.0005,
    "extent": ((0.0, 75.0), (0.0, 1650.0)),  # (lateral feet, longitudinal feet)
}


def generate_ngsim(
    n: int,
    *,
    seed: int = 0,
    num_lanes: int = 6,
    lane_width: float = 12.0,
    corridor_length: float = 1650.0,
    lateral_jitter: float = 1.5,
    num_vehicles: int | None = None,
) -> np.ndarray:
    """Generate ``n`` 2D points shaped like dense highway trajectory data.

    Each synthetic vehicle contributes a run of consecutive samples along its
    lane (10 Hz trajectory samples), giving the same quasi-1D, extremely
    dense structure as the real data.

    Returns an ``(n, 2)`` array of (local x, local y) coordinates in feet.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    if num_vehicles is None:
        num_vehicles = max(1, n // 500)

    # Each vehicle: a lane, an entry position, a speed, and a sample count.
    lanes = rng.integers(0, num_lanes, num_vehicles)
    lane_centers = (lanes + 0.5) * lane_width
    entry = rng.uniform(0.0, corridor_length, num_vehicles)
    speeds = rng.uniform(20.0, 90.0, num_vehicles)  # feet per second
    weights = rng.dirichlet(np.ones(num_vehicles) * 4.0)
    counts = rng.multinomial(n, weights)

    xs, ys = [], []
    for lane_c, e, v, m in zip(lane_centers, entry, speeds, counts):
        if m == 0:
            continue
        t = np.arange(int(m)) * 0.1  # 10 Hz samples
        y = (e + v * t) % corridor_length
        x = lane_c + rng.normal(0.0, lateral_jitter, int(m))
        xs.append(x)
        ys.append(y)
    pts = np.column_stack([np.concatenate(xs), np.concatenate(ys)])
    perm = rng.permutation(pts.shape[0])
    return pts[perm][:n]
