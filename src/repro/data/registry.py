"""Dataset registry.

Maps the dataset names used throughout the paper's evaluation to their
synthetic generators and to the paper's parameter choices, so the benchmark
harness, the CLI and the examples can all request "porto at 50 K points"
without caring which module implements it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .iono3d import IONO3D_DEFAULTS, generate_iono3d
from .ngsim import NGSIM_DEFAULTS, generate_ngsim
from .porto import PORTO_DEFAULTS, generate_porto
from .road3d import ROAD3D_DEFAULTS, generate_road3d
from .synthetic import make_blobs, make_uniform_noise

__all__ = ["DatasetSpec", "DATASETS", "get_dataset", "generate", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset with its generator and paper-documented defaults."""

    name: str
    generator: Callable[..., np.ndarray]
    description: str
    paper_defaults: dict = field(default_factory=dict)

    def generate(self, n: int, *, seed: int = 0, **kwargs) -> np.ndarray:
        """Generate ``n`` points with a deterministic seed."""
        return self.generator(n, seed=seed, **kwargs)


def _generate_blobs_noise(n: int, *, seed: int = 0, **kwargs) -> np.ndarray:
    """Small synthetic benchmark dataset: Gaussian blobs plus 10% noise."""
    rng = np.random.default_rng(seed)
    n_noise = n // 10
    pts, _ = make_blobs(n - n_noise, centers=8, std=0.15, box=10.0, seed=rng, **kwargs)
    noise = make_uniform_noise(n_noise, low=-1.0, high=11.0, dim=pts.shape[1], seed=rng)
    out = np.vstack([pts, noise])
    return out[rng.permutation(out.shape[0])]


DATASETS: dict[str, DatasetSpec] = {
    "3droad": DatasetSpec(
        name="3droad",
        generator=generate_road3d,
        description="Road-network GPS points (North Jutland style), 2D, sparse corridors + towns.",
        paper_defaults=ROAD3D_DEFAULTS,
    ),
    "porto": DatasetSpec(
        name="porto",
        generator=generate_porto,
        description="Urban taxi GPS points (Porto style), 2D, heavy-tailed hotspots + trips.",
        paper_defaults=PORTO_DEFAULTS,
    ),
    "ngsim": DatasetSpec(
        name="ngsim",
        generator=generate_ngsim,
        description="Highway vehicle trajectories (NGSIM style), 2D, extremely dense corridor.",
        paper_defaults=NGSIM_DEFAULTS,
    ),
    "3diono": DatasetSpec(
        name="3diono",
        generator=generate_iono3d,
        description="Ionosphere TEC samples (3DIono style), 3D, smooth tracks + hotspots.",
        paper_defaults=IONO3D_DEFAULTS,
    ),
    "blobs": DatasetSpec(
        name="blobs",
        generator=_generate_blobs_noise,
        description="Synthetic Gaussian blobs with 10% uniform noise (tests and quickstart).",
        paper_defaults={"dimensions": 2, "min_pts": 10, "fixed_eps": 0.3},
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return DATASETS[key]


def generate(name: str, n: int, *, seed: int = 0, **kwargs) -> np.ndarray:
    """Generate ``n`` points from the named dataset."""
    return get_dataset(name).generate(n, seed=seed, **kwargs)


def list_datasets() -> list[str]:
    """Names of all registered datasets."""
    return sorted(DATASETS)
