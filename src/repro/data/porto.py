"""Synthetic stand-in for the Porto taxi dataset.

The real dataset (Taxi Service Trajectory Prediction Challenge) records the
GPS traces of 442 taxis operating in Porto, Portugal — roughly 1.7 M points
once flattened.  Its spatial structure is a dense urban core (pickup/dropoff
hotspots around the city centre and transport hubs) with trip trajectories
radiating outwards along arterial roads and a long, thin tail of suburban
coverage.  The paper clusters the raw 2D GPS coordinates with minPts = 1000
and ε around 0.5 (Figs. 5b, 6b, 9a and Table I).

The generator reproduces that profile: heavy-tailed hotspot sizes, arterial
trajectories linking hotspots, and sparse suburban noise.
"""

from __future__ import annotations

import numpy as np

from .synthetic import combine, make_blobs, make_trajectory, make_uniform_noise

__all__ = ["generate_porto", "PORTO_DEFAULTS"]

#: Parameter defaults matching the paper's experiments on this dataset.
PORTO_DEFAULTS = {
    "max_points": 8_000_000,
    "dimensions": 2,
    "min_pts": 1000,
    "eps_sweep": (0.1, 0.25, 0.5, 0.75, 1.0),
    "fixed_eps": 0.5,
    "extent": ((40.9, 41.45), (-8.85, -8.3)),  # (lat range, lon range) around Porto
}


def generate_porto(
    n: int,
    *,
    seed: int = 0,
    num_hotspots: int = 25,
    hotspot_fraction: float = 0.55,
    trip_fraction: float = 0.35,
    gps_jitter: float = 0.003,
) -> np.ndarray:
    """Generate ``n`` 2D points shaped like urban taxi GPS data.

    Returns an ``(n, 2)`` array of (latitude, longitude)-like coordinates.
    The remaining fraction (1 - hotspot_fraction - trip_fraction) is sparse
    suburban background noise.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if hotspot_fraction + trip_fraction > 1.0:
        raise ValueError("hotspot_fraction + trip_fraction must not exceed 1")
    rng = np.random.default_rng(seed)
    (lat_lo, lat_hi), (lon_lo, lon_hi) = PORTO_DEFAULTS["extent"]
    center = np.array([(lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2])

    # Hotspot centres cluster around the city centre with a heavy-tailed
    # radial distribution (most activity downtown, some at the periphery).
    radii = rng.exponential(0.06, num_hotspots)
    angles = rng.uniform(0, 2 * np.pi, num_hotspots)
    hotspots = center + np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])

    n_hot = int(round(n * hotspot_fraction))
    n_trip = int(round(n * trip_fraction))
    n_noise = n - n_hot - n_trip

    # Heavy-tailed hotspot sizes (a few huge hubs, many small ones).
    weights = rng.pareto(1.5, num_hotspots) + 1.0
    weights /= weights.sum()
    sizes = rng.multinomial(n_hot, weights)
    hotspot_points = []
    for c, m in zip(hotspots, sizes):
        if m == 0:
            continue
        pts, _ = make_blobs(int(m), centers=c.reshape(1, 2), std=rng.uniform(0.004, 0.02), seed=rng)
        hotspot_points.append(pts)
    hotspot_points = np.vstack(hotspot_points) if hotspot_points else np.empty((0, 2))

    # Trips: trajectories between random hotspot pairs.
    trip_points = []
    remaining = n_trip
    while remaining > 0:
        a, b = rng.choice(num_hotspots, size=2, replace=False)
        m = int(min(remaining, rng.integers(200, 2000)))
        mid = 0.5 * (hotspots[a] + hotspots[b]) + rng.normal(0, 0.01, 2)
        waypoints = np.vstack([hotspots[a], mid, hotspots[b]])
        trip_points.append(make_trajectory(m, waypoints, jitter=gps_jitter, seed=rng))
        remaining -= m
    trip_points = np.vstack(trip_points) if trip_points else np.empty((0, 2))

    noise = make_uniform_noise(
        n_noise, low=(lat_lo, lon_lo), high=(lat_hi, lon_hi), dim=2, seed=rng
    )

    pts = combine(hotspot_points, trip_points, noise, seed=rng)
    return pts[:n]
