"""Synthetic point *streams* for the streaming clustering subsystem.

Batch generators hand back one array; a stream is an iterator of chunks.
Three stream shapes cover the regimes the streaming engine must handle:

* ``drift-blobs``     — Gaussian clusters whose centres random-walk between
  chunks, so the sliding window sees clusters move, merge and separate (the
  refit-friendly case: most of the scene persists between updates);
* ``burst-hotspots``  — sparse background noise interrupted by dense bursts
  at random locations, so cluster count jumps chunk-to-chunk (stress for
  promotion/demotion bookkeeping);
* ``ngsim-replay``    — the NGSIM-style highway corridor replayed in
  sampling order, the trajectory workload of the paper's Section V-C.

All generators are deterministic in ``seed`` and yield ``(chunk_size, d)``
float64 arrays.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .ngsim import generate_ngsim
from .synthetic import make_blobs, make_uniform_noise

__all__ = [
    "chunk_stream",
    "drift_blob_stream",
    "burst_hotspot_stream",
    "ngsim_replay_stream",
    "STREAMS",
    "make_stream",
    "list_streams",
    "multi_tenant_feeds",
    "interleave_feeds",
]


def chunk_stream(points: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
    """Replay a fixed point set as consecutive chunks (the trivial stream)."""
    points = np.asarray(points, dtype=np.float64)
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    for lo in range(0, points.shape[0], chunk_size):
        yield points[lo : lo + chunk_size]


def drift_blob_stream(
    num_chunks: int,
    chunk_size: int,
    *,
    seed: int = 0,
    num_clusters: int = 4,
    std: float = 0.15,
    box: float = 10.0,
    drift: float = 0.25,
    noise_fraction: float = 0.1,
    dim: int = 2,
) -> Iterator[np.ndarray]:
    """Gaussian blobs whose centres random-walk ``drift`` per chunk.

    Every chunk mixes ``1 - noise_fraction`` cluster samples with uniform
    background noise over the box.  Drift keeps the cluster structure
    recognisable between consecutive windows while steadily invalidating
    the acceleration structure's bounds — the workload refit is for.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, box, size=(num_clusters, dim))
    for _ in range(num_chunks):
        n_noise = int(round(chunk_size * noise_fraction))
        pts, _ = make_blobs(chunk_size - n_noise, centers=centers, std=std, seed=rng)
        if n_noise:
            noise = make_uniform_noise(n_noise, low=-1.0, high=box + 1.0, dim=dim, seed=rng)
            pts = np.vstack([pts, noise])
        yield pts[rng.permutation(pts.shape[0])]
        step = rng.normal(0.0, drift, size=centers.shape)
        centers = np.clip(centers + step, 0.0, box)


def burst_hotspot_stream(
    num_chunks: int,
    chunk_size: int,
    *,
    seed: int = 0,
    burst_every: int = 3,
    burst_fraction: float = 0.7,
    std: float = 0.08,
    box: float = 10.0,
    dim: int = 2,
) -> Iterator[np.ndarray]:
    """Uniform background with periodic dense bursts at random hotspots.

    Every ``burst_every``-th chunk concentrates ``burst_fraction`` of its
    points in a tight Gaussian at a fresh location; the other chunks are
    pure background.  Windows therefore oscillate between "no clusters" and
    "one hot cluster", exercising promotion on the burst and demotion /
    cluster death as the burst slides out of the window.
    """
    if burst_every < 1:
        raise ValueError("burst_every must be positive")
    rng = np.random.default_rng(seed)
    for chunk_idx in range(num_chunks):
        if chunk_idx % burst_every == burst_every - 1:
            n_hot = int(round(chunk_size * burst_fraction))
            hotspot = rng.uniform(0.0, box, size=(1, dim))
            hot, _ = make_blobs(n_hot, centers=hotspot, std=std, seed=rng)
            cold = make_uniform_noise(chunk_size - n_hot, low=0.0, high=box, dim=dim, seed=rng)
            pts = np.vstack([hot, cold])
        else:
            pts = make_uniform_noise(chunk_size, low=0.0, high=box, dim=dim, seed=rng)
        yield pts[rng.permutation(pts.shape[0])]


def ngsim_replay_stream(
    num_chunks: int,
    chunk_size: int,
    *,
    seed: int = 0,
    **ngsim_kwargs,
) -> Iterator[np.ndarray]:
    """Replay NGSIM-style highway trajectory points chunk by chunk.

    The generator materialises ``num_chunks * chunk_size`` corridor points
    and serves them in order — the dense quasi-1D workload where the paper
    reports its largest wins (Section V-C), now arriving as a feed.
    """
    pts = generate_ngsim(num_chunks * chunk_size, seed=seed, **ngsim_kwargs)
    yield from chunk_stream(pts, chunk_size)


#: Stream name -> generator(num_chunks, chunk_size, *, seed, **kwargs).
STREAMS: dict[str, Callable[..., Iterator[np.ndarray]]] = {
    "drift-blobs": drift_blob_stream,
    "burst-hotspots": burst_hotspot_stream,
    "ngsim-replay": ngsim_replay_stream,
}


def make_stream(
    name: str, num_chunks: int, chunk_size: int, *, seed: int = 0, **kwargs
) -> Iterator[np.ndarray]:
    """Instantiate a named stream."""
    key = name.lower()
    if key not in STREAMS:
        raise KeyError(f"unknown stream {name!r}; available: {sorted(STREAMS)}")
    return STREAMS[key](num_chunks, chunk_size, seed=seed, **kwargs)


def list_streams() -> list[str]:
    """Names of all registered streams."""
    return sorted(STREAMS)


# --------------------------------------------------------------------------- #
# Multi-tenant feeds (the serving layer's workload shape).
# --------------------------------------------------------------------------- #
def multi_tenant_feeds(
    num_tenants: int,
    num_chunks: int,
    chunk_size: int,
    *,
    seed: int = 0,
    stream: str = "drift-blobs",
    skew: float = 1.0,
    min_chunk_size: int = 8,
    **stream_kwargs,
) -> dict[str, list[np.ndarray]]:
    """Deterministic per-tenant chunk feeds with skewed arrival rates.

    Materialises ``num_tenants`` independent feeds of the named stream shape,
    one per tenant id ``"tenant-00" .. "tenant-NN"``.  Tenant ``t`` draws its
    own generator seeded with ``seed + t`` (so feeds are decorrelated but the
    whole ensemble is a pure function of ``seed``) and ingests at a Zipf-like
    rate: its chunk size is ``chunk_size`` scaled by ``(t + 1) ** -skew``,
    renormalised so the *mean* per-chunk arrival rate across tenants stays
    ``chunk_size``.  ``skew=0`` gives uniform tenants; larger values
    concentrate traffic on the first tenants — the hot-tenant/cold-tenant
    imbalance the service layer's batching and backpressure must absorb.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be a positive integer")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = (np.arange(1, num_tenants + 1, dtype=np.float64)) ** (-float(skew))
    weights *= num_tenants / weights.sum()
    width = max(2, len(str(num_tenants - 1)))
    feeds: dict[str, list[np.ndarray]] = {}
    for t in range(num_tenants):
        size = max(int(min_chunk_size), int(round(chunk_size * weights[t])))
        chunks = list(
            make_stream(stream, num_chunks, size, seed=seed + t, **stream_kwargs)
        )
        feeds[f"tenant-{t:0{width}d}"] = chunks
    return feeds


def interleave_feeds(
    feeds: dict[str, list[np.ndarray]], *, seed: int = 0
) -> Iterator[tuple[str, np.ndarray]]:
    """Deterministically interleave per-tenant feeds into one arrival order.

    Yields ``(tenant, chunk)`` pairs: each step picks uniformly among the
    tenants that still have chunks left, so per-tenant chunk order is
    preserved (a tenant's chunk *i* always arrives before its chunk *i+1*)
    while the global arrival order mixes tenants — the schedule the service
    concurrency tests replay against serial per-tenant baselines.
    """
    rng = np.random.default_rng(seed)
    pending = {tenant: list(chunks) for tenant, chunks in feeds.items() if chunks}
    order = sorted(pending)
    while order:
        tenant = order[int(rng.integers(len(order)))]
        yield tenant, pending[tenant].pop(0)
        if not pending[tenant]:
            order.remove(tenant)
