"""Synthetic equivalents of the paper's evaluation datasets.

The real 3DRoad / Porto / NGSIM / 3DIono datasets are not redistributable
here, so each has a generator that reproduces its spatial character (density
profile, dimensionality, extent) — see DESIGN.md for the substitution
rationale.  Generic generators (blobs, rings, moons, trajectories) back the
tests and examples.
"""

from .iono3d import IONO3D_DEFAULTS, generate_iono3d
from .ngsim import NGSIM_DEFAULTS, generate_ngsim
from .porto import PORTO_DEFAULTS, generate_porto
from .registry import DATASETS, DatasetSpec, generate, get_dataset, list_datasets
from .road3d import ROAD3D_DEFAULTS, generate_road3d
from .stream import (
    STREAMS,
    burst_hotspot_stream,
    chunk_stream,
    drift_blob_stream,
    interleave_feeds,
    list_streams,
    make_stream,
    multi_tenant_feeds,
    ngsim_replay_stream,
)
from .synthetic import (
    combine,
    make_blobs,
    make_moons,
    make_rings,
    make_trajectory,
    make_uniform_noise,
)

__all__ = [
    "IONO3D_DEFAULTS",
    "generate_iono3d",
    "NGSIM_DEFAULTS",
    "generate_ngsim",
    "PORTO_DEFAULTS",
    "generate_porto",
    "DATASETS",
    "DatasetSpec",
    "generate",
    "get_dataset",
    "list_datasets",
    "ROAD3D_DEFAULTS",
    "generate_road3d",
    "STREAMS",
    "burst_hotspot_stream",
    "chunk_stream",
    "drift_blob_stream",
    "interleave_feeds",
    "list_streams",
    "make_stream",
    "multi_tenant_feeds",
    "ngsim_replay_stream",
    "combine",
    "make_blobs",
    "make_moons",
    "make_rings",
    "make_trajectory",
    "make_uniform_noise",
]
