"""Synthetic stand-in for the 3DRoad dataset.

The real 3DRoad dataset (Kaul et al.) contains ~435 K GPS points sampled
along the road network of North Jutland, Denmark; the paper uses only the
latitude/longitude columns, i.e. a sparse 2D point set whose mass lies along
a web of roads connecting a handful of town centres.  The generator below
reproduces that structure: a random planar road graph over the same
geographic extent, points sampled along its edges with GPS jitter, and denser
sampling near "towns" so that DBSCAN finds a few large clusters plus many
small ones — the regimes the paper sweeps in Figs. 4, 5a and 6a.
"""

from __future__ import annotations

import numpy as np

from .synthetic import combine, make_blobs, make_trajectory

__all__ = ["generate_road3d", "ROAD3D_DEFAULTS"]

#: Parameter defaults matching the paper's experiments on this dataset.
ROAD3D_DEFAULTS = {
    "max_points": 435_000,
    "dimensions": 2,
    "min_pts": 100,
    "eps_sweep": (0.005, 0.01, 0.02, 0.035, 0.05),
    "fixed_eps": 0.05,
    "extent": ((56.5, 57.8), (8.1, 10.7)),  # (lat range, lon range) of North Jutland
}


def generate_road3d(
    n: int,
    *,
    seed: int = 0,
    num_towns: int = 12,
    roads_per_town: int = 3,
    town_fraction: float = 0.35,
    gps_jitter: float = 0.002,
) -> np.ndarray:
    """Generate ``n`` 2D points shaped like a regional road network.

    Parameters
    ----------
    n:
        Number of points to generate.
    seed:
        Deterministic seed.
    num_towns:
        Number of town centres (dense blobs) the road graph connects.
    roads_per_town:
        Average number of roads leaving each town.
    town_fraction:
        Fraction of points placed in town centres rather than along roads.
    gps_jitter:
        Standard deviation (in degrees) of the GPS noise around road
        centrelines.

    Returns
    -------
    ``(n, 2)`` array of (latitude, longitude)-like coordinates.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    (lat_lo, lat_hi), (lon_lo, lon_hi) = ROAD3D_DEFAULTS["extent"]

    towns = np.column_stack(
        [rng.uniform(lat_lo, lat_hi, num_towns), rng.uniform(lon_lo, lon_hi, num_towns)]
    )

    # Build the road graph: each town connects to a few nearest towns.
    edges: set[tuple[int, int]] = set()
    d2 = ((towns[:, None, :] - towns[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    for i in range(num_towns):
        nearest = np.argsort(d2[i])[:roads_per_town]
        for j in nearest:
            edges.add((min(i, int(j)), max(i, int(j))))

    n_town = int(round(n * town_fraction))
    n_road = n - n_town

    # Points along roads, allocated proportionally to road length.
    edge_list = sorted(edges)
    lengths = np.asarray([np.linalg.norm(towns[a] - towns[b]) for a, b in edge_list])
    weights = lengths / lengths.sum()
    counts = rng.multinomial(n_road, weights)
    road_points = []
    for (a, b), m in zip(edge_list, counts):
        if m == 0:
            continue
        # Roads are gently curved: insert a midpoint offset perpendicular
        # to the straight line between the towns.
        mid = 0.5 * (towns[a] + towns[b])
        direction = towns[b] - towns[a]
        normal = np.array([-direction[1], direction[0]])
        norm = np.linalg.norm(normal)
        if norm > 0:
            mid = mid + normal / norm * rng.normal(0, 0.08)
        waypoints = np.vstack([towns[a], mid, towns[b]])
        road_points.append(make_trajectory(int(m), waypoints, jitter=gps_jitter, seed=rng))
    road_points = np.vstack(road_points) if road_points else np.empty((0, 2))

    # Town centres: dense blobs of varying size.
    town_points, _ = make_blobs(
        n_town, centers=towns, std=rng.uniform(0.01, 0.04, num_towns), seed=rng
    )

    pts = combine(road_points, town_points, seed=rng)
    return pts[:n]
