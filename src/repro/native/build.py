"""cffi API-mode build of the native kernel extension.

The C source lives in ``_kernels.c`` next to this module.  Builds are lazy
(first kernel request, never at import time) and cached on disk under the
package's ``_build/`` directory: the extension module's name embeds a hash of
the C source and the cdef, so editing the kernels produces a new module name
and a stale cache can never be loaded.  Everything here raises on failure —
:mod:`repro.native.dispatch` catches, records the reason once and falls back
to the numpy tier.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
from pathlib import Path

__all__ = ["CDEF", "cache_dir", "kernel_source", "module_name", "load_kernels"]

#: The C declarations shared by the compiler and the ffi object.
CDEF = """
void repro_grid_scan(
    const double *qpts, int64_t nq,
    const double *points,
    const int64_t *order,
    const int64_t *cell_table, const int64_t *cell_indptr, int64_t ncells,
    const double *origin, double cell_size, const int64_t *dims,
    double r2, int self_query,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices,
    int64_t *candidates_out);

void repro_brute_block(
    const double *queries, int64_t nqb, int d,
    const double *data_t, int64_t nd,
    double r2,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices);

void repro_bvh_sphere(
    const double *qpts, int64_t nq,
    const double *confirm_pts,
    const double *node_lo, const double *node_hi,
    const int64_t *children, const uint8_t *leaf_mask,
    const int64_t *prim_start, const int64_t *prim_count,
    const int64_t *prim_indices,
    const double *centers, double r2,
    int exclude_self, const int64_t *self_map, const uint8_t *active,
    int64_t *stack,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices,
    int64_t *stats_out);

int64_t repro_uf_union_edges(
    int64_t *parent, int64_t n,
    const int64_t *a, const int64_t *b, int64_t ne);
"""

#: No -ffast-math: the kernels must stay bit-compatible with numpy.
COMPILE_ARGS = ["-O3", "-march=native", "-fno-math-errno"]


def kernel_source() -> str:
    """The C source of the kernels (raises if the file is missing)."""
    return (Path(__file__).parent / "_kernels.c").read_text()


def cache_dir() -> Path:
    """On-disk build cache directory (created on demand, gitignored)."""
    return Path(__file__).parent / "_build"


def module_name(source: str | None = None) -> str:
    """Extension module name derived from the source + cdef hash."""
    if source is None:
        source = kernel_source()
    digest = hashlib.sha256((CDEF + source).encode()).hexdigest()[:12]
    return f"_repro_kernels_{digest}"


def _load_extension(name: str, directory: Path):
    """Import a previously built extension module from the cache directory."""
    matches = sorted(directory.glob(f"{name}*.so"))
    if not matches:
        return None
    loader = importlib.machinery.ExtensionFileLoader(name, str(matches[0]))
    spec = importlib.util.spec_from_loader(name, loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def load_kernels():
    """Return ``(lib, ffi)`` for the compiled kernels, building if needed.

    Raises on any failure (no cffi, no compiler, compile error); the dispatch
    layer translates that into a recorded numpy fallback.
    """
    source = kernel_source()
    name = module_name(source)
    directory = cache_dir()

    module = _load_extension(name, directory)
    if module is None:
        from cffi import FFI

        builder = FFI()
        builder.cdef(CDEF)
        builder.set_source(name, source, extra_compile_args=COMPILE_ARGS)
        directory.mkdir(parents=True, exist_ok=True)
        builder.compile(tmpdir=str(directory), verbose=False)
        module = _load_extension(name, directory)
        if module is None:
            raise RuntimeError(
                f"cffi reported success but no {name}*.so in {directory}"
            )
    return module.lib, module.ffi
