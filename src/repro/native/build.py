"""cffi API-mode build of the native kernel extension.

The C source lives in ``_kernels.c`` next to this module.  Builds are lazy
(first kernel request, never at import time) and cached on disk under the
package's ``_build/`` directory: the extension module's name embeds the build
variant plus a hash of the C source and the cdef, so editing the kernels (or
switching between the OpenMP and serial builds) produces a new module name and
a stale cache can never be loaded.

Two build variants exist.  ``"omp"`` compiles with ``-fopenmp`` and fans the
query loops out across threads; ``"serial"`` omits the flag, so the pragmas
vanish and the identical single-threaded loops remain.  :func:`load_kernels`
tries the OpenMP variant first and silently falls back to the serial build
when the toolchain lacks OpenMP support — setting ``REPRO_NATIVE_NO_OPENMP``
to a non-empty value skips the OpenMP attempt entirely (CI uses this to prove
the serial-C fallback path).  Everything here raises on failure —
:mod:`repro.native.dispatch` catches, records the reason once and falls back
to the numpy tier.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
from pathlib import Path

__all__ = [
    "CDEF",
    "cache_dir",
    "kernel_source",
    "module_name",
    "load_kernels",
    "openmp_requested",
]

#: The C declarations shared by the compiler and the ffi object.
CDEF = """
int repro_openmp_max_threads(void);

void repro_grid_scan(
    const double *qpts, int64_t nq,
    const double *cxs, const double *cys, const double *czs,
    const int64_t *order,
    const int64_t *cell_table, const int64_t *cell_indptr, int64_t ncells,
    const double *origin, double cell_size, const int64_t *dims,
    double r2, int self_query, int nthreads,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices,
    int64_t *candidates_out);

void repro_brute_block(
    const double *queries, int64_t nqb, int d,
    const double *data_t, int64_t nd,
    double r2, int nthreads,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices);

void repro_bvh_sphere(
    const double *qpts, int64_t nq,
    const double *confirm_pts,
    const double *node_lo, const double *node_hi,
    const int64_t *children, const uint8_t *leaf_mask,
    const int64_t *prim_start, const int64_t *prim_count,
    const int64_t *prim_indices, int64_t num_nodes,
    const double *centers, double r2,
    int exclude_self, const int64_t *self_map, const uint8_t *active,
    int nthreads, int64_t *stack,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices,
    int64_t *stats_out);

void repro_confirm_pairs(
    const double *qblock, int64_t nqb, int d, int64_t qbase,
    const double *points,
    const int64_t *cands, const int64_t *pair_indptr,
    double r2, int self_query, int nthreads,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices);

int64_t repro_uf_union_edges(
    int64_t *parent, int64_t n,
    const int64_t *a, const int64_t *b, int64_t ne);
"""

#: No -ffast-math: the kernels must stay bit-compatible with numpy.
COMPILE_ARGS = ["-O3", "-march=native", "-fno-math-errno"]

#: Extra flags per build variant (compile *and* link for OpenMP).
VARIANT_FLAGS = {"omp": ["-fopenmp"], "serial": []}


def openmp_requested() -> bool:
    """Whether the OpenMP variant should be attempted at all."""
    return not os.environ.get("REPRO_NATIVE_NO_OPENMP", "").strip()


def kernel_source() -> str:
    """The C source of the kernels (raises if the file is missing)."""
    return (Path(__file__).parent / "_kernels.c").read_text()


def cache_dir() -> Path:
    """On-disk build cache directory (created on demand, gitignored)."""
    return Path(__file__).parent / "_build"


def module_name(source: str | None = None, variant: str = "omp") -> str:
    """Extension module name derived from the variant + source/cdef hash."""
    if source is None:
        source = kernel_source()
    digest = hashlib.sha256((CDEF + source + variant).encode()).hexdigest()[:12]
    return f"_repro_kernels_{variant}_{digest}"


def _load_extension(name: str, directory: Path):
    """Import a previously built extension module from the cache directory."""
    matches = sorted(directory.glob(f"{name}*.so"))
    if not matches:
        return None
    loader = importlib.machinery.ExtensionFileLoader(name, str(matches[0]))
    spec = importlib.util.spec_from_loader(name, loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def _build_variant(source: str, variant: str, directory: Path):
    """Load (or compile, then load) one build variant; raises on failure."""
    name = module_name(source, variant)
    module = _load_extension(name, directory)
    if module is None:
        from cffi import FFI

        flags = VARIANT_FLAGS[variant]
        builder = FFI()
        builder.cdef(CDEF)
        builder.set_source(
            name,
            source,
            extra_compile_args=COMPILE_ARGS + flags,
            extra_link_args=list(flags),
        )
        directory.mkdir(parents=True, exist_ok=True)
        builder.compile(tmpdir=str(directory), verbose=False)
        module = _load_extension(name, directory)
        if module is None:
            raise RuntimeError(
                f"cffi reported success but no {name}*.so in {directory}"
            )
    return module


def load_kernels():
    """Return ``(lib, ffi)`` for the compiled kernels, building if needed.

    Tries the OpenMP variant first (unless ``REPRO_NATIVE_NO_OPENMP`` is set),
    then the serial variant.  Raises on any total failure (no cffi, no
    compiler, both compiles failing); the dispatch layer translates that into
    a recorded numpy fallback.
    """
    source = kernel_source()
    directory = cache_dir()

    variants = ["omp", "serial"] if openmp_requested() else ["serial"]
    last_exc: Exception | None = None
    for variant in variants:
        try:
            module = _build_variant(source, variant, directory)
        except Exception as exc:  # try the next (serial) variant
            last_exc = exc
            continue
        return module.lib, module.ffi
    raise last_exc if last_exc is not None else RuntimeError("no build variant")
