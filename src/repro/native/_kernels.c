/* Native hot loops for the repro package (built via cffi API mode).
 *
 * Every kernel here replicates a pure-numpy loop *bit for bit*: the CSR
 * adjacencies, labels and charged operation counts must be byte-identical to
 * the numpy tier, which is what the parity test matrix asserts.  Three
 * details matter everywhere:
 *
 *   - numpy's ``einsum("ij,ij->i", d, d)`` accumulates a 3-wide row with a
 *     2-way pairwise unroll: (x*x + z*z) + y*y.  All squared distances below
 *     use exactly that association so the <= r2 comparison agrees with the
 *     numpy kernels on every borderline candidate.  2-wide rows are x*x + y*y.
 *   - CSR rows are emitted in query order with ascending indices (the
 *     canonical form of repro.adjacency), so per-row output is sorted before
 *     returning whenever the discovery order is not already ascending.
 *   - queries are independent: each writes only its own ``row_counts[i]``
 *     entry and its own ``indptr``-delimited slice of ``indices``, and the
 *     shared totals are exact integer reductions.  The OpenMP fan-out over
 *     queries below is therefore byte-identical to the serial sweep at any
 *     thread count — per-thread CSR fragments are the disjoint row slices
 *     themselves, already in query order.
 *
 * Kernels run in two passes (count, then fill into a caller-cumsum'd indptr)
 * so that all allocation stays on the numpy side; a NULL ``indptr`` selects
 * the counting pass.  When the compiler lacks -fopenmp the pragmas vanish
 * and every kernel degrades to the identical serial loop (the build layer
 * also retries without the flag, so a serial-C tier always exists).
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#ifdef _OPENMP
#include <omp.h>
#endif

/* OpenMP introspection for the dispatch layer: the worker count an
 * unrestricted parallel region would use, or 0 for a serial build. */
int repro_openmp_max_threads(void)
{
#ifdef _OPENMP
    return omp_get_max_threads();
#else
    return 0;
#endif
}

/* numpy einsum's pairwise association for a 3-component row. */
static inline double dist2_3(const double *q, const double *p)
{
    const double dx = q[0] - p[0];
    const double dy = q[1] - p[1];
    const double dz = q[2] - p[2];
    return (dx * dx + dz * dz) + dy * dy;
}

static int cmp_i64(const void *pa, const void *pb)
{
    const int64_t a = *(const int64_t *)pa;
    const int64_t b = *(const int64_t *)pb;
    return (a > b) - (a < b);
}

/* ---------------------------------------------------------------------- */
/* Uniform-grid stencil gather (neighbors/grid.py + GridNeighborBackend).  */
/*                                                                         */
/* The candidate coordinates arrive in SoA layout (cxs/cys/czs, 32-byte    */
/* aligned, already gathered into cell order), so the inner distance loop  */
/* streams three contiguous arrays instead of chasing ``order`` through    */
/* an AoS points array; ``order`` is only read to emit the candidate id.   */
/* ---------------------------------------------------------------------- */

static int64_t cell_lookup(const int64_t *cell_table, int64_t ncells, int64_t nid)
{
    int64_t lo = 0, hi = ncells;
    while (lo < hi) {
        const int64_t mid = lo + ((hi - lo) >> 1);
        if (cell_table[mid] < nid)
            lo = mid + 1;
        else
            hi = mid;
    }
    return (lo < ncells && cell_table[lo] == nid) ? lo : -1;
}

void repro_grid_scan(
    const double *qpts, int64_t nq,
    const double *cxs, const double *cys, const double *czs,
    const int64_t *order,
    const int64_t *cell_table, const int64_t *cell_indptr, int64_t ncells,
    const double *origin, double cell_size, const int64_t *dims,
    double r2, int self_query, int nthreads,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices,
    int64_t *candidates_out)
{
    int64_t candidates = 0;
    if (nthreads < 1)
        nthreads = 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthreads) \
    if (nthreads > 1) reduction(+ : candidates)
#endif
    for (int64_t i = 0; i < nq; ++i) {
        const double *q = qpts + 3 * i;
        int64_t c[3];
        for (int k = 0; k < 3; ++k) {
            /* floor + int64 cast + clip, matching UniformGrid._cell_coords */
            int64_t ck = (int64_t)floor((q[k] - origin[k]) / cell_size);
            if (ck < 0)
                ck = 0;
            if (ck > dims[k] - 1)
                ck = dims[k] - 1;
            c[k] = ck;
        }
        int64_t nhits = 0;
        const int64_t base = indptr ? indptr[i] : 0;
        const double qx = q[0], qy = q[1], qz = q[2];
        for (int64_t ox = -1; ox <= 1; ++ox) {
            const int64_t x = c[0] + ox;
            if (x < 0 || x >= dims[0])
                continue;
            for (int64_t oy = -1; oy <= 1; ++oy) {
                const int64_t y = c[1] + oy;
                if (y < 0 || y >= dims[1])
                    continue;
                for (int64_t oz = -1; oz <= 1; ++oz) {
                    const int64_t z = c[2] + oz;
                    if (z < 0 || z >= dims[2])
                        continue;
                    const int64_t nid = (x * dims[1] + y) * dims[2] + z;
                    const int64_t pos = cell_lookup(cell_table, ncells, nid);
                    if (pos < 0)
                        continue;
                    const int64_t s = cell_indptr[pos];
                    const int64_t e = cell_indptr[pos + 1];
                    candidates += e - s;
                    for (int64_t j = s; j < e; ++j) {
                        const double dx = qx - cxs[j];
                        const double dy = qy - cys[j];
                        const double dz = qz - czs[j];
                        if ((dx * dx + dz * dz) + dy * dy <= r2) {
                            const int64_t cand = order[j];
                            if (self_query && cand == i)
                                continue;
                            if (indices)
                                indices[base + nhits] = cand;
                            ++nhits;
                        }
                    }
                }
            }
        }
        if (row_counts)
            row_counts[i] = nhits;
        if (indices && nhits > 1)
            qsort(indices + base, (size_t)nhits, sizeof(int64_t), cmp_i64);
    }
    if (candidates_out)
        *candidates_out = candidates;
}

/* ---------------------------------------------------------------------- */
/* Blocked brute force (neighbors/brute.py).                               */
/*                                                                         */
/* The numpy path's BLAS prescreen admits every exact hit (the margin only  */
/* ever adds candidates), so the final set equals the direct componentwise */
/* test — which is what this kernel computes.  ``data_t`` is the data in   */
/* SoA layout (d rows of nd doubles) so the inner loop vectorises.         */
/* ---------------------------------------------------------------------- */

void repro_brute_block(
    const double *queries, int64_t nqb, int d,
    const double *data_t, int64_t nd,
    double r2, int nthreads,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices)
{
    const double *xs = data_t;
    const double *ys = data_t + nd;
    const double *zs = (d == 3) ? data_t + 2 * nd : NULL;
    if (nthreads < 1)
        nthreads = 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthreads) \
    if (nthreads > 1)
#endif
    for (int64_t i = 0; i < nqb; ++i) {
        const double *q = queries + (int64_t)d * i;
        int64_t nhits = 0;
        const int64_t base = indptr ? indptr[i] : 0;
        if (d == 3) {
            const double qx = q[0], qy = q[1], qz = q[2];
            for (int64_t j = 0; j < nd; ++j) {
                const double dx = qx - xs[j];
                const double dy = qy - ys[j];
                const double dz = qz - zs[j];
                if ((dx * dx + dz * dz) + dy * dy <= r2) {
                    if (indices)
                        indices[base + nhits] = j;
                    ++nhits;
                }
            }
        } else {
            const double qx = q[0], qy = q[1];
            for (int64_t j = 0; j < nd; ++j) {
                const double dx = qx - xs[j];
                const double dy = qy - ys[j];
                if (dx * dx + dy * dy <= r2) {
                    if (indices)
                        indices[base + nhits] = j;
                    ++nhits;
                }
            }
        }
        if (row_counts)
            row_counts[i] = nhits;
        /* data indices are discovered ascending: already canonical. */
    }
}

/* ---------------------------------------------------------------------- */
/* BVH sphere query (bvh/traversal.py + the sphere Intersection programs). */
/*                                                                         */
/* Depth-first traversal with an explicit stack.  The numpy kernel is a    */
/* level-synchronous BFS, but the per-query visit multiset is identical:   */
/* the root always enters the frontier, and both children of every         */
/* containment-passing internal node enter it — exactly the nodes this DFS */
/* pops.  node/leaf/candidate/confirmed counts and the max 1-based depth   */
/* therefore match the numpy TraversalStats field by field.                */
/*                                                                         */
/* ``stack`` is caller-provided scratch of nthreads * 2*(num_nodes+2)      */
/* int64 — one slab per worker (each node is pushed at most once per       */
/* query, so num_nodes+2 entries per slab suffice).                        */
/* ---------------------------------------------------------------------- */

void repro_bvh_sphere(
    const double *qpts, int64_t nq,
    const double *confirm_pts,
    const double *node_lo, const double *node_hi,
    const int64_t *children, const uint8_t *leaf_mask,
    const int64_t *prim_start, const int64_t *prim_count,
    const int64_t *prim_indices, int64_t num_nodes,
    const double *centers, double r2,
    int exclude_self, const int64_t *self_map, const uint8_t *active,
    int nthreads, int64_t *stack,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices,
    int64_t *stats_out)
{
    const int64_t stride = 2 * (num_nodes + 2);
    int64_t nv = 0, lv = 0, cand = 0, conf = 0, maxlvl = 0;
    (void)stride; /* only read inside the OpenMP region */
    if (nthreads < 1)
        nthreads = 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthreads) \
    if (nthreads > 1) reduction(+ : nv, lv, cand, conf) reduction(max : maxlvl)
#endif
    for (int64_t qi = 0; qi < nq; ++qi) {
#ifdef _OPENMP
        int64_t *stk = stack + (int64_t)omp_get_thread_num() * stride;
#else
        int64_t *stk = stack;
#endif
        const double *qp = qpts + 3 * qi;
        const double *cp = confirm_pts + 3 * qi;
        const int64_t self_prim =
            exclude_self ? qi : (self_map ? self_map[qi] : -1);
        int64_t nhits = 0;
        const int64_t base = indptr ? indptr[qi] : 0;
        int64_t top = 1;
        stk[0] = 0; /* root */
        stk[1] = 1; /* 1-based depth */
        while (top > 0) {
            --top;
            const int64_t node = stk[2 * top];
            const int64_t depth = stk[2 * top + 1];
            ++nv;
            if (depth > maxlvl)
                maxlvl = depth;
            const double *lo = node_lo + 3 * node;
            const double *hi = node_hi + 3 * node;
            if (qp[0] < lo[0] || qp[0] > hi[0] || qp[1] < lo[1] ||
                qp[1] > hi[1] || qp[2] < lo[2] || qp[2] > hi[2])
                continue;
            if (leaf_mask[node]) {
                ++lv;
                const int64_t s = prim_start[node];
                const int64_t cnt = prim_count[node];
                cand += cnt;
                for (int64_t t = 0; t < cnt; ++t) {
                    const int64_t prim = prim_indices[s + t];
                    if (active && !active[prim])
                        continue;
                    if (prim == self_prim)
                        continue;
                    if (dist2_3(cp, centers + 3 * prim) <= r2) {
                        if (indices)
                            indices[base + nhits] = prim;
                        ++nhits;
                    }
                }
            } else {
                stk[2 * top] = children[2 * node];
                stk[2 * top + 1] = depth + 1;
                stk[2 * top + 2] = children[2 * node + 1];
                stk[2 * top + 3] = depth + 1;
                top += 2;
            }
        }
        conf += nhits;
        if (row_counts)
            row_counts[qi] = nhits;
        if (indices && nhits > 1)
            qsort(indices + base, (size_t)nhits, sizeof(int64_t), cmp_i64);
    }
    if (stats_out) {
        stats_out[0] = nv;
        stats_out[1] = lv;
        stats_out[2] = cand;
        stats_out[3] = conf;
        stats_out[4] = maxlvl;
    }
}

/* ---------------------------------------------------------------------- */
/* Deduped candidate-pair confirm (neighbors/approx.py, the LSH backend).  */
/*                                                                         */
/* The LSH sweep dedupes its probe candidates into a composite key sorted  */
/* by (query, candidate), so ``cands`` is ascending within each row and    */
/* ``pair_indptr`` delimits every row's pair range — emitting hits in pair */
/* order is already the canonical CSR form, no per-row sort needed.  The   */
/* distance test replicates the numpy confirm (einsum association, hits    */
/* filtered by the q != cand self rule) exactly.                           */
/* ---------------------------------------------------------------------- */

void repro_confirm_pairs(
    const double *qblock, int64_t nqb, int d, int64_t qbase,
    const double *points,
    const int64_t *cands, const int64_t *pair_indptr,
    double r2, int self_query, int nthreads,
    const int64_t *indptr,
    int64_t *row_counts,
    int64_t *indices)
{
    if (nthreads < 1)
        nthreads = 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthreads) \
    if (nthreads > 1)
#endif
    for (int64_t i = 0; i < nqb; ++i) {
        const double *q = qblock + (int64_t)d * i;
        const int64_t self_id = qbase + i;
        int64_t nhits = 0;
        const int64_t base = indptr ? indptr[i] : 0;
        for (int64_t k = pair_indptr[i]; k < pair_indptr[i + 1]; ++k) {
            const int64_t c = cands[k];
            double d2;
            if (self_query && c == self_id)
                continue;
            if (d == 3) {
                d2 = dist2_3(q, points + 3 * c);
            } else {
                const double dx = q[0] - points[2 * c];
                const double dy = q[1] - points[2 * c + 1];
                d2 = dx * dx + dy * dy;
            }
            if (d2 <= r2) {
                if (indices)
                    indices[base + nhits] = c;
                ++nhits;
            }
        }
        if (row_counts)
            row_counts[i] = nhits;
    }
}

/* ---------------------------------------------------------------------- */
/* Batched union-find hook-and-jump rounds (dbscan/disjoint_set.py).       */
/*                                                                         */
/* Replicates ParallelDisjointSet.union_edges exactly: per round, freeze   */
/* the roots of every edge endpoint against the current parent array, then */
/* min-hook the larger root of each root-differing edge onto the smaller   */
/* (order-independent min accumulation), count those edges as hooks, and   */
/* fully compress.  Returns the total hook count, or -1 on allocation      */
/* failure (the caller falls back to the numpy rounds).  Deliberately      */
/* serial: the rounds are a sequential fixpoint over a shared parent       */
/* array, and the loop is a negligible slice of the measured profile.      */
/* ---------------------------------------------------------------------- */

int64_t repro_uf_union_edges(
    int64_t *parent, int64_t n,
    const int64_t *a, const int64_t *b, int64_t ne)
{
    int64_t *ra = (int64_t *)malloc((size_t)ne * sizeof(int64_t));
    int64_t *rb = (int64_t *)malloc((size_t)ne * sizeof(int64_t));
    if (!ra || !rb) {
        free(ra);
        free(rb);
        return -1;
    }
    int64_t hooks = 0;
    for (;;) {
        for (int64_t i = 0; i < ne; ++i) {
            int64_t r = a[i];
            while (parent[r] != r)
                r = parent[r];
            ra[i] = r;
            r = b[i];
            while (parent[r] != r)
                r = parent[r];
            rb[i] = r;
        }
        int64_t ndiff = 0;
        for (int64_t i = 0; i < ne; ++i) {
            if (ra[i] == rb[i])
                continue;
            const int64_t hi = ra[i] > rb[i] ? ra[i] : rb[i];
            const int64_t lo = ra[i] > rb[i] ? rb[i] : ra[i];
            if (lo < parent[hi])
                parent[hi] = lo;
            ++ndiff;
        }
        if (ndiff == 0)
            break;
        hooks += ndiff;
        for (int64_t i = 0; i < n; ++i) {
            int64_t r = i;
            while (parent[r] != r)
                r = parent[r];
            parent[i] = r;
        }
    }
    free(ra);
    free(rb);
    return hooks;
}
