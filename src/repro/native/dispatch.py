"""Native-tier dispatch: the single decision point for numpy vs C kernels.

Call sites (the grid/brute/kdtree neighbour backends, the approx confirm
pass, the RT sphere launch, the batched union-find) ask :func:`kernels` for a
:class:`NativeKernels` handle and fall back to their numpy path when it
returns ``None``.  The answer is governed by, in priority order:

1. the :func:`override` context manager (the ``native=`` field on
   ``ClustererSpec`` / ``RTDBSCAN`` pushes one around a fit),
2. the ``REPRO_NATIVE`` environment variable — ``0`` (off), ``1`` (on) or
   anything else / unset (``auto``), read at call time, and
3. availability: the cffi extension is compiled lazily on the first request
   and cached on disk (see :mod:`repro.native.build`).  A failed build is
   recorded once, logged once, and every subsequent request returns ``None``
   — the numpy tier keeps working and nothing ever raises out of here.

``REPRO_NATIVE=0`` (or an active ``override(False)``) short-circuits before
any build attempt, so disabling the tier guarantees no compiler is invoked.

Thread fan-out is governed the same way: :func:`thread_override` (pushed by
the ``native_threads=`` spec field) wins over the ``REPRO_NATIVE_THREADS``
environment variable (``auto`` or unset → one worker per core, a positive
integer → that many workers; anything else is treated as ``auto``), and both
collapse to a single thread when the loaded build lacks OpenMP.  The numpy
and native paths — at *any* thread count — produce byte-identical CSR
adjacencies, labels and charged operation counts, because each query owns a
disjoint CSR row slice and the shared totals are exact integer reductions;
the tier and thread count only change wall-clock time.
"""

from __future__ import annotations

import logging
import os
import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "NativeKernels",
    "kernels",
    "available",
    "active_tier",
    "mode",
    "override",
    "thread_override",
    "requested_threads",
    "resolve_threads",
    "status",
]

_log = logging.getLogger("repro.native")

_lock = threading.Lock()
_state: dict = {"attempted": False, "kernels": None, "reason": None}
_override_stack: list[bool] = []
_thread_stack: list[int | None] = []

_OFF_VALUES = frozenset(("0", "false", "off", "no"))
_ON_VALUES = frozenset(("1", "true", "on", "yes"))

#: Kernel slots a native-tier fit can engage, keyed by the layer they serve.
KERNEL_SLOTS = {
    "grid_scan": "neighbors/backend.py (grid stencil gather)",
    "brute_block": "neighbors/brute.py (blocked confirm sweep)",
    "bvh_sphere": "rtcore/pipeline.py + neighbors/backend.py (rt + kdtree)",
    "confirm_pairs": "neighbors/approx.py (lsh exact-distance confirm)",
    "uf_union_edges": "dbscan/disjoint_set.py (batched union-find, serial)",
}

#: Kernels whose query loop fans out across OpenMP threads.
PARALLEL_KERNELS = frozenset(
    ("grid_scan", "brute_block", "bvh_sphere", "confirm_pairs")
)


def _env_mode() -> str:
    raw = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
    if raw in _OFF_VALUES:
        return "off"
    if raw in _ON_VALUES:
        return "on"
    return "auto"


def mode() -> str:
    """Effective mode right now: ``"off"``, ``"on"`` or ``"auto"``.

    An active :func:`override` wins over the ``REPRO_NATIVE`` environment
    variable; both are consulted at call time, never cached.
    """
    if _override_stack:
        return "on" if _override_stack[-1] else "off"
    return _env_mode()


def _env_threads() -> int | None:
    """``REPRO_NATIVE_THREADS`` parsed to a worker count, ``None`` = auto.

    Accepts ``auto`` (or unset/empty) and positive integers; zero, negative
    numbers and garbage all collapse to auto rather than raising — the knob
    must never be able to break a fit.
    """
    raw = os.environ.get("REPRO_NATIVE_THREADS", "").strip().lower()
    if not raw or raw == "auto":
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def requested_threads() -> int | None:
    """The requested worker count (``None`` = auto), before availability.

    An active :func:`thread_override` wins over ``REPRO_NATIVE_THREADS``;
    both are consulted at call time, never cached.
    """
    if _thread_stack:
        return _thread_stack[-1]
    return _env_threads()


def _load() -> "NativeKernels | None":
    with _lock:
        if not _state["attempted"]:
            _state["attempted"] = True
            try:
                if np.dtype(np.intp).itemsize != 8:
                    raise RuntimeError("native kernels require 64-bit intp")
                from .build import load_kernels

                lib, ffi = load_kernels()
                _state["kernels"] = NativeKernels(lib, ffi)
            except Exception as exc:  # never propagate: numpy tier still works
                _state["reason"] = f"{type(exc).__name__}: {exc}"
                _log.warning(
                    "native kernel tier unavailable, using numpy fallback: %s",
                    exc,
                )
        return _state["kernels"]


def kernels() -> "NativeKernels | None":
    """The native kernel handle, or ``None`` when the numpy tier should run.

    Returns ``None`` without any build attempt when the effective mode is
    ``"off"``; otherwise triggers (at most once) the lazy compile.
    """
    if mode() == "off":
        return None
    return _load()


def available() -> bool:
    """Whether a native call made right now would use the C kernels."""
    return kernels() is not None


def active_tier() -> str:
    """``"native"`` or ``"numpy"`` — the tier a fit started now would use."""
    return "native" if available() else "numpy"


def resolve_threads() -> int:
    """The worker count a parallel kernel launched right now would use.

    ``1`` whenever the native tier is off/unavailable or the loaded build
    lacks OpenMP; otherwise the requested count, with auto resolving to one
    worker per core (``omp_get_max_threads``).
    """
    nk = kernels()
    if nk is None:
        return 1
    return nk.resolve_threads()


@contextmanager
def override(enabled: bool):
    """Force the tier on/off for the dynamic extent of a ``with`` block.

    This is how the ``native=`` field of ``ClustererSpec`` / ``RTDBSCAN`` is
    applied around a single fit without touching process-wide environment.
    """
    _override_stack.append(bool(enabled))
    try:
        yield
    finally:
        _override_stack.pop()


@contextmanager
def thread_override(nthreads: int | None):
    """Pin the worker count (``None`` = auto) for a ``with`` block.

    This is how the ``native_threads=`` field of ``ClustererSpec`` /
    ``RTDBSCAN`` is applied around a single fit without touching the
    process-wide ``REPRO_NATIVE_THREADS`` environment.
    """
    value = None if nthreads is None else max(1, int(nthreads))
    _thread_stack.append(value)
    try:
        yield
    finally:
        _thread_stack.pop()


def status() -> dict:
    """Diagnostic snapshot for the ``rt-dbscan native`` CLI subcommand."""
    from .build import cache_dir, kernel_source, module_name, openmp_requested

    try:
        source = kernel_source()
        names = {v: module_name(source, v) for v in ("omp", "serial")}
    except OSError:  # pragma: no cover - missing _kernels.c
        names = {"omp": None, "serial": None}
    current = mode()
    if current != "off":
        _load()  # make 'built'/'reason' reflect an actual attempt
    nk = _state["kernels"]
    active = current != "off" and nk is not None
    openmp = None if nk is None else nk.has_openmp
    tier = "native" if active else "numpy"
    return {
        "mode": current,
        "env": os.environ.get("REPRO_NATIVE", None),
        "active": active,
        "built": nk is not None,
        "attempted": _state["attempted"],
        "fallback_reason": (
            "disabled via REPRO_NATIVE=0 / override" if current == "off" else _state["reason"]
        ),
        "module": names["omp" if openmp in (None, True) else "serial"],
        "cache_dir": str(cache_dir()),
        "variant": None if nk is None else ("omp" if openmp else "serial"),
        "openmp": openmp,
        "openmp_requested": openmp_requested(),
        "max_threads": None if nk is None else nk.openmp_max_threads(),
        "threads_env": os.environ.get("REPRO_NATIVE_THREADS", None),
        "requested_threads": requested_threads(),
        "resolved_threads": nk.resolve_threads() if active else 1,
        "kernels": {
            name: {
                "serves": where,
                "tier": tier,
                "parallel": active
                and bool(openmp)
                and name in PARALLEL_KERNELS,
            }
            for name, where in KERNEL_SLOTS.items()
        },
    }


def _reset_for_testing() -> None:
    """Forget any build attempt and overrides (test hook)."""
    with _lock:
        _state.update({"attempted": False, "kernels": None, "reason": None})
    _override_stack.clear()
    _thread_stack.clear()


# ------------------------------------------------------------------------- #
# Thin typed wrappers over the compiled library.
# ------------------------------------------------------------------------- #
def _is_c_f64(arr: np.ndarray) -> bool:
    return arr.dtype == np.float64 and arr.flags.c_contiguous


def _is_c_i64(arr: np.ndarray) -> bool:
    return (
        arr.dtype.kind == "i"
        and arr.dtype.itemsize == 8
        and arr.flags.c_contiguous
    )


class NativeKernels:
    """Bound cffi library + the numpy-facing call wrappers.

    Every wrapper validates dtypes/contiguity and returns ``None`` when a
    precondition fails, which the call site treats exactly like an absent
    native tier — the numpy path runs instead.  Wrappers resolve the worker
    count per call (so ``thread_override`` takes effect mid-process) and the
    two passes of a count/fill pair always resolve identically because they
    run under the same override/environment.
    """

    def __init__(self, lib, ffi) -> None:
        self.lib = lib
        self.ffi = ffi
        #: 0 when compiled without OpenMP; else the unrestricted worker count.
        self._omp_max = int(lib.repro_openmp_max_threads())

    # -- thread resolution ----------------------------------------------- #
    @property
    def has_openmp(self) -> bool:
        return self._omp_max > 0

    def openmp_max_threads(self) -> int:
        """``omp_get_max_threads()`` of the loaded build, 0 for serial."""
        return self._omp_max

    def resolve_threads(self) -> int:
        """Worker count for the next parallel kernel launch (>= 1)."""
        if not self.has_openmp:
            return 1
        requested = requested_threads()
        if requested is None:
            return self._omp_max
        return max(1, requested)

    # -- buffer helpers ------------------------------------------------- #
    def _f64(self, arr: np.ndarray):
        return self.ffi.from_buffer("double[]", arr)

    def _i64(self, arr: np.ndarray):
        return self.ffi.from_buffer("int64_t[]", arr)

    def _i64w(self, arr: np.ndarray):
        return self.ffi.from_buffer("int64_t[]", arr, require_writable=True)

    def _u8(self, arr: np.ndarray):
        return self.ffi.from_buffer("uint8_t[]", arr)

    # -- grid ------------------------------------------------------------ #
    def grid_scan(
        self,
        qpts: np.ndarray,
        soa: tuple[np.ndarray, np.ndarray, np.ndarray],
        order: np.ndarray,
        cell_table: np.ndarray,
        cell_indptr: np.ndarray,
        origin: np.ndarray,
        cell_size: float,
        dims: np.ndarray,
        r2: float,
        self_query: bool,
        *,
        indptr: np.ndarray | None = None,
        row_counts: np.ndarray | None = None,
        indices: np.ndarray | None = None,
    ) -> int | None:
        """One stencil-gather pass; returns the charged candidate total.

        ``soa`` is the cell-ordered candidate coordinates as three aligned
        1-D arrays (see ``GridNeighborBackend._grid_soa``).
        """
        cxs, cys, czs = soa
        arrays_f = (qpts, cxs, cys, czs, origin)
        arrays_i = (order, cell_table, cell_indptr, dims)
        if not all(_is_c_f64(a) for a in arrays_f):
            return None
        if not all(_is_c_i64(a) for a in arrays_i):
            return None
        if qpts.ndim != 2 or qpts.shape[1] != 3:
            return None
        if not (cxs.shape == cys.shape == czs.shape == order.shape):
            return None
        cand_out = np.zeros(1, dtype=np.int64)
        self.lib.repro_grid_scan(
            self._f64(qpts),
            qpts.shape[0],
            self._f64(cxs),
            self._f64(cys),
            self._f64(czs),
            self._i64(order),
            self._i64(cell_table),
            self._i64(cell_indptr),
            cell_table.shape[0],
            self._f64(origin),
            float(cell_size),
            self._i64(dims),
            float(r2),
            1 if self_query else 0,
            self.resolve_threads(),
            self.ffi.NULL if indptr is None else self._i64(indptr),
            self.ffi.NULL if row_counts is None else self._i64w(row_counts),
            self.ffi.NULL if indices is None else self._i64w(indices),
            self._i64w(cand_out),
        )
        return int(cand_out[0])

    # -- brute ----------------------------------------------------------- #
    def brute_block(
        self,
        queries_block: np.ndarray,
        data_t: np.ndarray,
        r2: float,
        *,
        indptr: np.ndarray | None = None,
        row_counts: np.ndarray | None = None,
        indices: np.ndarray | None = None,
    ) -> bool:
        """Exact componentwise sweep of one query block against all data."""
        if not (_is_c_f64(queries_block) and _is_c_f64(data_t)):
            return False
        d = queries_block.shape[1]
        if d not in (2, 3) or data_t.shape[0] != d:
            return False
        self.lib.repro_brute_block(
            self._f64(queries_block),
            queries_block.shape[0],
            int(d),
            self._f64(data_t),
            data_t.shape[1],
            float(r2),
            self.resolve_threads(),
            self.ffi.NULL if indptr is None else self._i64(indptr),
            self.ffi.NULL if row_counts is None else self._i64w(row_counts),
            self.ffi.NULL if indices is None else self._i64w(indices),
        )
        return True

    # -- bvh sphere query ------------------------------------------------ #
    def bvh_sphere(
        self,
        qpts: np.ndarray,
        confirm_pts: np.ndarray,
        bvh,
        centers: np.ndarray,
        r2: float,
        *,
        exclude_self: bool = False,
        self_map: np.ndarray | None = None,
        active: np.ndarray | None = None,
        indptr: np.ndarray | None = None,
        row_counts: np.ndarray | None = None,
        indices: np.ndarray | None = None,
        stats: np.ndarray | None = None,
    ) -> bool:
        """One DFS sphere-query pass over ``bvh`` (count or fill mode).

        DFS scratch is allocated here — one slab per resolved worker, each
        sized for the worst-case push depth of a single query.
        """
        arrays_f = (qpts, confirm_pts, bvh.node_lower, bvh.node_upper, centers)
        arrays_i = (bvh.children, bvh.prim_start, bvh.prim_count, bvh.prim_indices)
        if not all(_is_c_f64(a) for a in arrays_f):
            return False
        if not all(_is_c_i64(a) for a in arrays_i):
            return False
        leaf_mask = bvh.leaf_mask
        if leaf_mask.dtype != np.bool_ or not leaf_mask.flags.c_contiguous:
            return False
        if qpts.shape[1] != 3 or confirm_pts.shape[0] < qpts.shape[0]:
            return False
        if self_map is not None and not (
            _is_c_i64(self_map) and self_map.shape[0] >= qpts.shape[0]
        ):
            return False
        if active is not None and not (
            active.dtype == np.bool_
            and active.flags.c_contiguous
            and active.shape[0] >= centers.shape[0]
        ):
            return False
        num_nodes = bvh.node_lower.shape[0]
        nthreads = self.resolve_threads()
        stack = np.empty(nthreads * 2 * (num_nodes + 2), dtype=np.int64)
        self.lib.repro_bvh_sphere(
            self._f64(qpts),
            qpts.shape[0],
            self._f64(confirm_pts),
            self._f64(bvh.node_lower),
            self._f64(bvh.node_upper),
            self._i64(bvh.children),
            self._u8(leaf_mask.view(np.uint8)),
            self._i64(bvh.prim_start),
            self._i64(bvh.prim_count),
            self._i64(bvh.prim_indices),
            num_nodes,
            self._f64(centers),
            float(r2),
            1 if exclude_self else 0,
            self.ffi.NULL if self_map is None else self._i64(self_map),
            self.ffi.NULL if active is None else self._u8(active.view(np.uint8)),
            nthreads,
            self._i64w(stack),
            self.ffi.NULL if indptr is None else self._i64(indptr),
            self.ffi.NULL if row_counts is None else self._i64w(row_counts),
            self.ffi.NULL if indices is None else self._i64w(indices),
            self.ffi.NULL if stats is None else self._i64w(stats),
        )
        return True

    # -- approx confirm --------------------------------------------------- #
    def confirm_pairs(
        self,
        qblock: np.ndarray,
        qbase: int,
        points: np.ndarray,
        cands: np.ndarray,
        pair_indptr: np.ndarray,
        r2: float,
        self_query: bool,
        *,
        indptr: np.ndarray | None = None,
        row_counts: np.ndarray | None = None,
        indices: np.ndarray | None = None,
    ) -> bool:
        """Exact-distance confirm of deduped (query, candidate) pair rows."""
        if not (_is_c_f64(qblock) and _is_c_f64(points)):
            return False
        if not (_is_c_i64(cands) and _is_c_i64(pair_indptr)):
            return False
        if qblock.ndim != 2 or qblock.shape[1] not in (2, 3):
            return False
        if points.ndim != 2 or points.shape[1] != qblock.shape[1]:
            return False
        if pair_indptr.shape[0] != qblock.shape[0] + 1:
            return False
        self.lib.repro_confirm_pairs(
            self._f64(qblock),
            qblock.shape[0],
            qblock.shape[1],
            int(qbase),
            self._f64(points),
            self._i64(cands),
            self._i64(pair_indptr),
            float(r2),
            1 if self_query else 0,
            self.resolve_threads(),
            self.ffi.NULL if indptr is None else self._i64(indptr),
            self.ffi.NULL if row_counts is None else self._i64w(row_counts),
            self.ffi.NULL if indices is None else self._i64w(indices),
        )
        return True

    # -- union-find ------------------------------------------------------ #
    def uf_union_edges(
        self, parent: np.ndarray, a: np.ndarray, b: np.ndarray
    ) -> int | None:
        """Batched hook-and-jump rounds; returns hooks or ``None`` (fallback)."""
        if not (_is_c_i64(parent) and parent.flags.writeable):
            return None
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        n = parent.shape[0]
        if a.size == 0:
            return 0
        # The C kernel chases parent pointers unchecked; validate the edge
        # endpoints here (the numpy path would raise IndexError instead).
        if min(a.min(), b.min()) < 0 or max(a.max(), b.max()) >= n:
            return None
        hooks = self.lib.repro_uf_union_edges(
            self._i64w(parent), n, self._i64(a), self._i64(b), a.shape[0]
        )
        return None if hooks < 0 else int(hooks)
