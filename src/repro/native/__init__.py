"""Optional native (C) kernel tier.

A small cffi-built extension implementing the four hottest numpy loops —
grid stencil gather, blocked brute force, BVH sphere queries and the batched
union-find — with byte-identical results.  See :mod:`repro.native.dispatch`
for the dispatch rules (``REPRO_NATIVE`` env knob, per-fit overrides, lazy
cached builds, silent numpy fallback).
"""

from . import dispatch
from .dispatch import active_tier, available, kernels, mode, override, status

__all__ = [
    "dispatch",
    "active_tier",
    "available",
    "kernels",
    "mode",
    "override",
    "status",
]
