"""Analytic device cost model.

The reproduction cannot run on real RT cores, so execution time is *modelled*:
every algorithm is instrumented to count the primitive operations it performs
(BVH node visits, intersection-program calls, distance computations,
union-find operations, bytes moved), and this module converts those counts
into simulated device time for the two execution units the paper contrasts:

* ``RT``  — the ray-tracing cores: hardware BVH build and traversal.
* ``SM``  — the streaming multiprocessors (shader cores): everything the
  CUDA baselines do, plus the user programs OptiX runs on behalf of the RT
  pipeline (Intersection / AnyHit programs).

Calibration
-----------
The per-operation costs are calibrated to the breakdown the paper reports in
Section V-D for 1 M 3DIono points (ε = 0.25, minPts = 100):

* the RT-accelerated clustering phases are ≈9× faster than FDBSCAN's
  shader-core clustering phases → the RT per-node traversal cost is set to
  ~1/9 of the SM per-node cost;
* the OptiX sphere-BVH build is ≈2.5× slower than FDBSCAN's plain BVH build
  → the RT per-primitive build cost is 2.5× the SM build cost;
* calling the AnyHit program per hit costs an extra fixed overhead, which is
  what makes the triangle-tessellation mode of Section VI-C 2×–5× slower.

Absolute numbers are therefore in "simulated milliseconds" that should not be
compared to the paper's wall-clock seconds; only ratios and trends are
meaningful, as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeviceCostModel", "OpCounts", "DEFAULT_COST_MODEL"]


@dataclass
class OpCounts:
    """Operation counts accumulated by an algorithm phase."""

    bvh_build_prims: int = 0
    bvh_refit_prims: int = 0
    rt_node_visits: int = 0
    sm_node_visits: int = 0
    intersection_calls: int = 0
    anyhit_calls: int = 0
    distance_computations: int = 0
    union_ops: int = 0
    atomic_ops: int = 0
    bytes_moved: int = 0
    kernel_launches: int = 0

    def merge(self, other: "OpCounts") -> "OpCounts":
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @classmethod
    def sum(cls, counts) -> "OpCounts":
        """Aggregate an iterable of OpCounts into a fresh instance.

        Used wherever per-shard records are stitched into one report — the
        tiled partition layer sums its per-tile stage counts with this so
        the simulated device totals stay comparable to a monolithic run.
        """
        total = cls()
        for c in counts:
            total.merge(c)
        return total

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass
class DeviceCostModel:
    """Per-operation costs (in nanoseconds of simulated device time).

    The costs are *throughput-amortised*: they already fold in the massive
    parallelism of the device, so simulated time is simply
    ``count × cost_ns × 1e-9`` summed over operation kinds.
    """

    # --- acceleration-structure build -------------------------------- #
    #: per-primitive cost of the OptiX sphere-BVH build on the RT device
    #: (includes memory compaction and bounds-program invocation).
    rt_build_per_prim_ns: float = 18.0
    #: per-primitive cost of a plain spatial BVH build on the shader cores
    #: (what FDBSCAN / ArborX does).
    sm_build_per_prim_ns: float = 7.5
    #: fixed cost of setting up the OptiX/OWL pipeline (context, programs,
    #: SBT).  This is the overhead that makes RT-DBSCAN lose to FDBSCAN on
    #: very small datasets (Section V-B1).
    rt_setup_ns: float = 250_000.0
    #: per-primitive cost of *refitting* an existing acceleration structure:
    #: recompute node bounds bottom-up without changing the topology.  OptiX
    #: exposes this as an accel update and it is roughly 4x cheaper than a
    #: fresh build (no Morton sort, no node emission); the streaming
    #: subsystem uses it for small window updates.
    rt_refit_per_prim_ns: float = 4.5
    #: per-primitive refit cost of a plain spatial BVH on the shader cores.
    sm_refit_per_prim_ns: float = 2.5

    # --- traversal ----------------------------------------------------- #
    #: per-node cost of hardware BVH traversal on RT cores.
    rt_node_visit_ns: float = 0.02
    #: per-node cost of software BVH traversal on shader cores.
    sm_node_visit_ns: float = 0.20
    # The 10x ratio reproduces the paper's ~9x clustering-phase speedup in
    # the traversal-bound regime (Section V-D).

    # --- user programs / arithmetic ------------------------------------ #
    #: cost of one Intersection-program invocation (distance check) when
    #: dispatched from the RT pipeline.  The ~2.5x gap to ``distance_ns``
    #: reproduces the speedups of the candidate-bound (dense, large-eps)
    #: regime such as Porto (Table I).
    intersection_call_ns: float = 0.028
    #: extra cost of routing a hit through the AnyHit program (Section VI-C).
    anyhit_call_ns: float = 0.25
    #: cost of one Euclidean distance computation on the shader cores.
    distance_ns: float = 0.07
    #: cost of a union-find find+union on the device.
    union_op_ns: float = 0.02
    #: cost of an atomic union (critical section in Algorithm 3 line 14).
    atomic_op_ns: float = 0.06

    # --- memory / launch ------------------------------------------------ #
    #: effective device bandwidth in bytes per nanosecond (≈ 336 GB/s).
    bytes_per_ns: float = 336.0
    #: fixed overhead of one kernel / pipeline launch, in nanoseconds.
    kernel_launch_ns: float = 20_000.0
    #: device memory capacity in bytes (6 GB on the paper's RTX 2060).
    device_memory_bytes: int = 6 * 1024**3

    #: optional label for reports.
    name: str = "rtx2060-analytic"
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def build_time_s(self, num_prims: int, *, unit: str = "rt") -> float:
        """Simulated seconds to build a BVH over ``num_prims`` primitives.

        The RT (OptiX) build additionally pays the fixed pipeline-setup cost,
        which is what prevents RT-DBSCAN's build from being amortised on very
        small inputs.
        """
        if unit == "rt":
            per, fixed = self.rt_build_per_prim_ns, self.rt_setup_ns
        else:
            per, fixed = self.sm_build_per_prim_ns, 0.0
        return (num_prims * per + fixed + self.kernel_launch_ns) * 1e-9

    def refit_time_s(self, num_prims: int, *, unit: str = "rt") -> float:
        """Simulated seconds to refit an existing BVH over ``num_prims``.

        Refit reuses the live pipeline, so it pays the per-primitive bounds
        update and one kernel launch but never the fixed pipeline setup cost.
        """
        per = self.rt_refit_per_prim_ns if unit == "rt" else self.sm_refit_per_prim_ns
        return (num_prims * per + self.kernel_launch_ns) * 1e-9

    def time_s(self, counts: OpCounts) -> float:
        """Simulated seconds for a bag of operation counts."""
        ns = 0.0
        ns += counts.bvh_build_prims * 0.0  # build is accounted via build_time_s
        ns += counts.bvh_refit_prims * 0.0  # refit is accounted via refit_time_s
        ns += counts.rt_node_visits * self.rt_node_visit_ns
        ns += counts.sm_node_visits * self.sm_node_visit_ns
        ns += counts.intersection_calls * self.intersection_call_ns
        ns += counts.anyhit_calls * self.anyhit_call_ns
        ns += counts.distance_computations * self.distance_ns
        ns += counts.union_ops * self.union_op_ns
        ns += counts.atomic_ops * self.atomic_op_ns
        ns += counts.bytes_moved / self.bytes_per_ns
        ns += counts.kernel_launches * self.kernel_launch_ns
        return ns * 1e-9

    def with_overrides(self, **kwargs) -> "DeviceCostModel":
        """Return a copy of the model with selected costs replaced."""
        params = {name: getattr(self, name) for name in self.__dataclass_fields__}
        params.update(kwargs)
        return DeviceCostModel(**params)


#: The default model used across benchmarks — the paper's RTX 2060 testbed.
DEFAULT_COST_MODEL = DeviceCostModel()
