"""Device-memory accounting.

The paper reports that G-DBSCAN and CUDA-DClust+ run out of memory on the
6 GB RTX 2060 once the dataset exceeds roughly 100 K points (Section V-B1).
That behaviour is reproduced by tracking each algorithm's dominant device
allocations against the cost model's memory capacity and raising
:class:`DeviceMemoryError` when the budget is exceeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeviceMemoryError", "MemoryTracker", "estimate_adjacency_bytes"]


class DeviceMemoryError(MemoryError):
    """Raised when an algorithm would exceed the simulated device memory."""

    def __init__(self, requested: int, capacity: int, label: str = "") -> None:
        self.requested = requested
        self.capacity = capacity
        self.label = label
        gb = 1024**3
        super().__init__(
            f"device out of memory: allocation {label!r} needs {requested / gb:.2f} GiB "
            f"but only {capacity / gb:.2f} GiB of device memory is available"
        )


@dataclass
class MemoryTracker:
    """Tracks live device allocations against a fixed capacity."""

    capacity_bytes: int
    allocations: dict = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return int(sum(self.allocations.values()))

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, label: str, nbytes: int) -> None:
        """Register an allocation, raising ``DeviceMemoryError`` on overflow."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise DeviceMemoryError(self.used_bytes + nbytes, self.capacity_bytes, label)
        self.allocations[label] = self.allocations.get(label, 0) + nbytes

    def free(self, label: str) -> None:
        """Release an allocation (no-op if the label is unknown)."""
        self.allocations.pop(label, None)

    def reset(self) -> None:
        self.allocations.clear()

    def peak_snapshot(self) -> dict:
        return dict(self.allocations)


def estimate_adjacency_bytes(num_points: int, mean_degree: float, *, index_bytes: int = 4) -> int:
    """Device footprint of G-DBSCAN's ε-neighbourhood adjacency structure.

    G-DBSCAN stores, for every point, the full neighbour list plus the CSR
    offsets and the per-point degree array.  ``mean_degree`` is the average
    neighbourhood size (excluding the point itself).
    """
    if num_points < 0 or mean_degree < 0:
        raise ValueError("num_points and mean_degree must be non-negative")
    edges = int(round(num_points * mean_degree))
    neighbour_lists = edges * index_bytes
    offsets = (num_points + 1) * index_bytes
    degrees = num_points * index_bytes
    visit_flags = num_points * 2  # frontier + visited bytes for the BFS
    return neighbour_lists + offsets + degrees + visit_flags
