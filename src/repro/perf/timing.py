"""Phase timing and execution reports.

Each DBSCAN implementation reports its execution as a sequence of named
phases (``bvh_build``, ``core_identification``, ``cluster_formation``, …).
A phase carries both the host wall-clock time (what actually elapsed in this
Python process) and the simulated device time derived from the cost model,
plus the raw operation counts, so benchmark reports can show the same
breakdown the paper gives in Section V-D.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .cost_model import DeviceCostModel, OpCounts

__all__ = ["Phase", "ExecutionReport", "PhaseTimer"]


@dataclass
class Phase:
    """One named execution phase of an algorithm run."""

    name: str
    wall_seconds: float = 0.0
    simulated_seconds: float = 0.0
    counts: OpCounts = field(default_factory=OpCounts)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "counts": self.counts.as_dict(),
        }


@dataclass
class ExecutionReport:
    """Aggregated timing of a full algorithm run."""

    algorithm: str
    phases: list[Phase] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def total_wall_seconds(self) -> float:
        return sum(p.wall_seconds for p in self.phases)

    @property
    def total_simulated_seconds(self) -> float:
        return sum(p.simulated_seconds for p in self.phases)

    def phase(self, name: str) -> Phase:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r} in report for {self.algorithm}")

    def fraction(self, name: str) -> float:
        """Fraction of simulated time spent in the named phase."""
        total = self.total_simulated_seconds
        if total == 0:
            return 0.0
        return self.phase(name).simulated_seconds / total

    def breakdown(self) -> dict:
        """Phase → simulated seconds mapping (Section V-D style)."""
        return {p.name: p.simulated_seconds for p in self.phases}

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "total_wall_seconds": self.total_wall_seconds,
            "total_simulated_seconds": self.total_simulated_seconds,
            "phases": [p.as_dict() for p in self.phases],
            "metadata": dict(self.metadata),
        }


class PhaseTimer:
    """Collects phases for one algorithm run.

    Example
    -------
    >>> timer = PhaseTimer("rt-dbscan", cost_model)
    >>> with timer.phase("bvh_build") as counts:
    ...     counts.bvh_build_prims = n
    ...     counts.kernel_launches += 1
    >>> report = timer.report()
    """

    def __init__(self, algorithm: str, cost_model: DeviceCostModel) -> None:
        self.algorithm = algorithm
        self.cost_model = cost_model
        self._phases: list[Phase] = []
        self.metadata: dict = {}

    @contextmanager
    def phase(self, name: str, *, simulated_seconds: float | None = None):
        """Record one phase; yields the ``OpCounts`` to fill in.

        If ``simulated_seconds`` is given it overrides the cost-model-derived
        time (used for the BVH build phase, whose cost is computed directly
        from the primitive count).
        """
        counts = OpCounts()
        start = time.perf_counter()
        try:
            yield counts
        finally:
            wall = time.perf_counter() - start
            sim = simulated_seconds if simulated_seconds is not None else self.cost_model.time_s(counts)
            self._phases.append(
                Phase(name=name, wall_seconds=wall, simulated_seconds=sim, counts=counts)
            )

    def set_last_phase_seconds(self, simulated_seconds: float) -> None:
        """Override the simulated time of the most recently recorded phase.

        Used when a phase's cost is computed directly (e.g. the BVH build
        estimate from the primitive count) rather than from the operation
        counts the phase recorded.  This is the public replacement for
        reaching into the private phase list.
        """
        if not self._phases:
            raise ValueError("no phase has been recorded yet")
        self._phases[-1].simulated_seconds = float(simulated_seconds)

    def add_phase(self, name: str, *, counts: OpCounts | None = None,
                  simulated_seconds: float | None = None, wall_seconds: float = 0.0) -> None:
        """Record a phase whose counts/time were computed elsewhere."""
        counts = counts or OpCounts()
        sim = simulated_seconds if simulated_seconds is not None else self.cost_model.time_s(counts)
        self._phases.append(
            Phase(name=name, wall_seconds=wall_seconds, simulated_seconds=sim, counts=counts)
        )

    def report(self) -> ExecutionReport:
        return ExecutionReport(
            algorithm=self.algorithm, phases=list(self._phases), metadata=dict(self.metadata)
        )
