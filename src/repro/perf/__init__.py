"""Device cost model, phase timing and memory accounting.

Converts the operation counts the instrumented algorithms collect into
simulated device time (Section V-D style breakdowns) and reproduces the
6 GB device-memory ceiling that limits the G-DBSCAN and CUDA-DClust+
baselines in the paper.
"""

from .cost_model import DEFAULT_COST_MODEL, DeviceCostModel, OpCounts
from .memory import DeviceMemoryError, MemoryTracker, estimate_adjacency_bytes
from .timing import ExecutionReport, Phase, PhaseTimer

__all__ = [
    "DEFAULT_COST_MODEL",
    "DeviceCostModel",
    "OpCounts",
    "DeviceMemoryError",
    "MemoryTracker",
    "estimate_adjacency_bytes",
    "ExecutionReport",
    "Phase",
    "PhaseTimer",
]
