"""The original sequential DBSCAN (Ester et al. 1996, the paper's Algorithm 1).

This implementation is the correctness oracle for every accelerated variant:
it expands clusters one seed at a time with a breadth-first frontier, exactly
following Algorithm 1, with the neighbour convention documented in
:mod:`repro.dbscan.params` (the ε-neighbourhood excludes the point itself).

Neighbour queries use a KD-tree by default so the oracle stays usable on the
tens of thousands of points the integration tests run; a brute-force mode is
available for the property tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..api.protocol import ClustererMixin
from ..api.registry import register_algorithm
from ..geometry.transforms import validate_points
from ..neighbors.brute import brute_force_neighbors
from .params import NOISE, UNCLASSIFIED, DBSCANParams, DBSCANResult, canonicalize_labels

__all__ = ["ClassicDBSCAN", "classic_dbscan"]


def _neighbor_lists(points: np.ndarray, eps: float, method: str) -> list[np.ndarray]:
    if method == "kdtree":
        tree = cKDTree(points)
        lists = tree.query_ball_point(points, r=eps)
        return [np.setdiff1d(np.asarray(lst, dtype=np.intp), [i]) for i, lst in enumerate(lists)]
    if method == "brute":
        return brute_force_neighbors(points, eps, include_self=False)
    raise ValueError(f"unknown neighbour search method {method!r}")


def classic_dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    neighbor_method: str = "kdtree",
) -> DBSCANResult:
    """Run the original sequential DBSCAN.

    Parameters
    ----------
    points:
        ``(n, 2)`` or ``(n, 3)`` data points.
    eps, min_pts:
        The DBSCAN parameters (see :class:`repro.dbscan.params.DBSCANParams`).
    neighbor_method:
        ``"kdtree"`` (default) or ``"brute"`` — which exact neighbour search
        backs ``FindNeighbors``.

    Returns
    -------
    DBSCANResult
        Canonical labels, the core-point mask and the per-point neighbour
        counts.  No timing report is attached: the oracle is not part of the
        performance evaluation.
    """
    pts = validate_points(points)
    params = DBSCANParams(eps=eps, min_pts=min_pts)

    neighbors = _neighbor_lists(pts, params.eps, neighbor_method)
    counts = np.asarray([len(nb) for nb in neighbors], dtype=np.int64)
    core_mask = counts >= params.min_pts

    n = pts.shape[0]
    labels = np.full(n, UNCLASSIFIED, dtype=np.int64)
    cluster_id = 0

    for seed in range(n):
        if labels[seed] != UNCLASSIFIED:
            continue
        if not core_mask[seed]:
            labels[seed] = NOISE
            continue
        # Start a new cluster and expand it breadth-first (Algorithm 1, 8-16).
        labels[seed] = cluster_id
        frontier = deque(neighbors[seed].tolist())
        while frontier:
            q = frontier.popleft()
            if labels[q] == NOISE:
                labels[q] = cluster_id  # noise becomes a border point
            if labels[q] != UNCLASSIFIED:
                continue
            labels[q] = cluster_id
            if core_mask[q]:
                frontier.extend(neighbors[q].tolist())
        cluster_id += 1

    labels[labels == UNCLASSIFIED] = NOISE
    return DBSCANResult(
        labels=canonicalize_labels(labels),
        core_mask=core_mask,
        params=params,
        algorithm="classic-dbscan",
        neighbor_counts=counts,
        points=np.asarray(pts, dtype=np.float64),
    )


@register_algorithm(
    "classic",
    description="The sequential Ester et al. oracle (exact, uninstrumented).",
    instrumented=False,
)
@dataclass
class ClassicDBSCAN(ClustererMixin):
    """Estimator wrapper around :func:`classic_dbscan`.

    Gives the sequential oracle the same ``fit`` / ``fit_predict`` surface as
    the accelerated clusterers so the registry, the benchmark runner and the
    :func:`repro.cluster` facade treat it uniformly.  ``device`` is accepted
    for interface parity and ignored — the oracle runs on the host and is not
    part of the simulated-time evaluation.
    """

    eps: float
    min_pts: int
    device: object | None = None
    neighbor_method: str = "kdtree"

    def __post_init__(self) -> None:
        self.params = DBSCANParams(eps=self.eps, min_pts=self.min_pts)

    def fit(self, points: np.ndarray) -> DBSCANResult:
        return classic_dbscan(
            points, self.params.eps, self.params.min_pts,
            neighbor_method=self.neighbor_method,
        )
