"""Stage-2 cluster formation from confirmed ε-pairs (Algorithm 3, lines 7-18).

Shared by batch RT-DBSCAN (on every neighbour backend) and by
:meth:`~repro.dbscan.params.DBSCANResult.refit`: given the confirmed
``(query, neighbour)`` pairs and the core mask, merge core–core pairs in a
union–find forest, attach border points deterministically, and emit the
canonical labelling.  Keeping this in one place is what guarantees that a
re-labelling with a different ``min_pts`` — or a run on a different search
substrate — produces bit-identical labels to a fresh fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .disjoint_set import ParallelDisjointSet
from .labels import labels_from_roots
from .params import canonicalize_labels

__all__ = ["FormationResult", "form_clusters"]


@dataclass
class FormationResult:
    """Outcome of one cluster-formation pass."""

    #: canonical labels (clusters numbered by smallest member, noise = -1).
    labels: np.ndarray
    #: union (hook) operations performed — for the device cost model.
    num_unions: int
    #: atomic border attachments performed — for the device cost model.
    num_atomics: int


def form_clusters(
    q_hit: np.ndarray, p_hit: np.ndarray, core_mask: np.ndarray
) -> FormationResult:
    """Form clusters from confirmed ε-pairs and a core mask.

    Only pairs whose query point is a core point expand clusters: core–core
    pairs are unioned, and border points are attached to the lowest-indexed
    neighbouring core's cluster — equivalent to launching the core rays in
    index order, which keeps the assignment independent of traversal order
    (and therefore independent of the neighbour backend).
    """
    core_mask = np.asarray(core_mask, dtype=bool)
    n = core_mask.shape[0]
    q_hit = np.asarray(q_hit, dtype=np.intp)
    p_hit = np.asarray(p_hit, dtype=np.intp)

    forest = ParallelDisjointSet(n)
    from_core = core_mask[q_hit]
    cq, cp = q_hit[from_core], p_hit[from_core]

    both_core = core_mask[cp]
    forest.union_edges(cq[both_core], cp[both_core])

    border_children = cp[~both_core]
    border_parents = cq[~both_core]
    if border_children.size:
        order = np.lexsort((border_parents, border_children))
        border_children = border_children[order]
        border_parents = border_parents[order]
    forest.attach(border_children, border_parents)

    roots = forest.roots()
    assigned = np.zeros(n, dtype=bool)
    assigned[np.unique(border_children)] = True
    labels = labels_from_roots(roots, core_mask, assigned_mask=assigned)
    return FormationResult(
        labels=canonicalize_labels(labels),
        num_unions=forest.num_unions,
        num_atomics=forest.num_atomics,
    )
