"""Stage-2 cluster formation from confirmed ε-adjacency (Algorithm 3, lines 7-18).

Shared by batch RT-DBSCAN (on every neighbour backend), the tiled partition
merge and :meth:`~repro.dbscan.params.DBSCANResult.refit`: given the
confirmed ε-adjacency and the core mask, merge core–core pairs in a
union–find forest, attach border points deterministically, and emit the
canonical labelling.  Keeping this in one place is what guarantees that a
re-labelling with a different ``min_pts`` — or a run on a different search
substrate — produces bit-identical labels to a fresh fit.

:func:`form_clusters_csr` is the primary entry point: it consumes the CSR
adjacency the backends produce (see :mod:`repro.adjacency`) **directly**,
walking the rows in bounded chunks and expanding only the edges the forest
actually needs (core–core union edges and border attachments) — the flat
``(q, p)`` pair arrays are never materialised.  :func:`form_clusters` keeps
the legacy pair-array surface for callers that already hold flat pairs.

Both entry points are deterministic functions of the pair *multiset* and the
core mask — the batched min-hooking union is order-independent, border
attachment reduces to "lowest-indexed neighbouring core wins", and the final
numbering depends only on cluster membership — so they produce identical
labels *and identical union/atomic operation counts* for any representation
of the same adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adjacency import expand_ranges
from .disjoint_set import ParallelDisjointSet
from .labels import labels_from_roots
from .params import canonicalize_labels

__all__ = ["FormationResult", "form_clusters", "form_clusters_csr"]

#: CSR rows processed per expansion step — bounds the transient edge buffers.
_ROW_CHUNK = 262_144


@dataclass
class FormationResult:
    """Outcome of one cluster-formation pass."""

    #: canonical labels (clusters numbered by smallest member, noise = -1).
    labels: np.ndarray
    #: union (hook) operations performed — for the device cost model.
    num_unions: int
    #: atomic border attachments performed — for the device cost model.
    num_atomics: int


def _finish(
    n: int,
    core_mask: np.ndarray,
    union_a: np.ndarray,
    union_b: np.ndarray,
    border_children: np.ndarray,
    border_parents: np.ndarray,
) -> FormationResult:
    """Shared tail: one batched union pass, deterministic attach, labelling."""
    forest = ParallelDisjointSet(n)
    forest.union_edges(union_a, union_b)

    if border_children.size:
        order = np.lexsort((border_parents, border_children))
        border_children = border_children[order]
        border_parents = border_parents[order]
    forest.attach(border_children, border_parents)

    roots = forest.roots()
    assigned = np.zeros(n, dtype=bool)
    assigned[np.unique(border_children)] = True
    labels = labels_from_roots(roots, core_mask, assigned_mask=assigned)
    return FormationResult(
        labels=canonicalize_labels(labels),
        num_unions=forest.num_unions,
        num_atomics=forest.num_atomics,
    )


def form_clusters_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    core_mask: np.ndarray,
    *,
    rows: np.ndarray | None = None,
) -> FormationResult:
    """Form clusters directly from a CSR ε-adjacency.

    Only rows whose query point is a core point expand clusters: core–core
    pairs are unioned, and border points are attached to the lowest-indexed
    neighbouring core's cluster — equivalent to launching the core rays in
    index order, which keeps the assignment independent of traversal order
    (and therefore independent of the neighbour backend).

    Parameters
    ----------
    indptr, indices:
        The CSR adjacency.  Rows default to dataset points ``0 .. n-1``.
    core_mask:
        ``(n,)`` boolean core flags over the *global* point ids.
    rows:
        Optional global point id of each CSR row — the segmented form the
        tiled partition merge hands over (each shard contributes the rows it
        owns, in any order).  ``None`` means row ``i`` is point ``i``.

    Memory note: the core–core edge list *is* materialised here — it is the
    required input of the single batched ``union_edges`` call (splitting the
    unions into chunks would change the hook counts the cost model charges).
    What is avoided is everything beyond that: candidate arrays, the
    redundant flat query column for non-core rows, and any re-sorting of the
    adjacency; the ``_ROW_CHUNK`` loop additionally bounds the transient
    expansion buffers of each filtering step.
    """
    core_mask = np.asarray(core_mask, dtype=bool)
    n = core_mask.shape[0]
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.intp)
    num_rows = indptr.shape[0] - 1
    row_ids = None if rows is None else np.asarray(rows, dtype=np.intp)

    ua: list[np.ndarray] = []
    ub: list[np.ndarray] = []
    bc: list[np.ndarray] = []
    bp: list[np.ndarray] = []
    for lo in range(0, num_rows, _ROW_CHUNK):
        hi = min(num_rows, lo + _ROW_CHUNK)
        chunk_rows = (
            np.arange(lo, hi, dtype=np.intp) if row_ids is None else row_ids[lo:hi]
        )
        counts = indptr[lo + 1 : hi + 1] - indptr[lo:hi]
        core_rows = core_mask[chunk_rows]
        if not core_rows.any():
            continue
        cq = np.repeat(chunk_rows[core_rows], counts[core_rows])
        # Gather the core rows' index slices without touching the others.
        cp = indices[expand_ranges(indptr[lo:hi][core_rows], counts[core_rows])]

        both_core = core_mask[cp]
        ua.append(cq[both_core])
        ub.append(cp[both_core])
        bc.append(cp[~both_core])
        bp.append(cq[~both_core])

    empty = np.empty(0, dtype=np.intp)
    return _finish(
        n,
        core_mask,
        np.concatenate(ua) if ua else empty,
        np.concatenate(ub) if ub else empty,
        np.concatenate(bc) if bc else empty,
        np.concatenate(bp) if bp else empty,
    )


def form_clusters(
    q_hit: np.ndarray, p_hit: np.ndarray, core_mask: np.ndarray
) -> FormationResult:
    """Form clusters from confirmed ε-pairs and a core mask (legacy surface).

    Identical semantics to :func:`form_clusters_csr` — deterministic in the
    pair multiset — for callers that already hold flat pair arrays (e.g. the
    streaming engine's incremental updates).
    """
    core_mask = np.asarray(core_mask, dtype=bool)
    n = core_mask.shape[0]
    q_hit = np.asarray(q_hit, dtype=np.intp)
    p_hit = np.asarray(p_hit, dtype=np.intp)

    from_core = core_mask[q_hit]
    cq, cp = q_hit[from_core], p_hit[from_core]
    both_core = core_mask[cp]
    return _finish(
        n, core_mask, cq[both_core], cp[both_core], cp[~both_core], cq[~both_core]
    )
