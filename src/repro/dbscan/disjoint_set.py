"""Disjoint-set (union–find) forests.

RT-DBSCAN follows FDBSCAN in replacing the breadth-first cluster expansion of
the original DBSCAN with a union–find structure (Hopcroft & Ullman): stage 2
of Algorithm 3 unions every core point with its core neighbours and attaches
border points to a neighbouring core's set.  Two variants are provided:

* :class:`DisjointSet` — the classic sequential structure with union by rank
  and path compression; used by the reference implementations and the tests.
* :class:`ParallelDisjointSet` — an array-based structure with a *batched*
  edge-union operation that performs the hooking / pointer-jumping iterations
  GPU union–find kernels use, vectorised with NumPy.  It also counts the
  union and atomic operations it performs so the device cost model can charge
  them.
"""

from __future__ import annotations

import numpy as np

from ..native import dispatch as native_dispatch

__all__ = ["DisjointSet", "ParallelDisjointSet"]


class DisjointSet:
    """Sequential union–find with union by rank and path compression."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.intp)
        self.rank = np.zeros(n, dtype=np.int8)
        self.num_unions = 0

    def __len__(self) -> int:
        return int(self.parent.shape[0])

    def find(self, x: int) -> int:
        """Representative of ``x``'s set, compressing the path walked."""
        root = x
        while self.parent[root] != root:
            root = int(self.parent[root])
        while self.parent[x] != root:
            self.parent[x], x = root, int(self.parent[x])
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.num_unions += 1
        return ra

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def roots(self) -> np.ndarray:
        """Representative of every element (fully compressed)."""
        return np.asarray([self.find(i) for i in range(len(self))], dtype=np.intp)

    def num_sets(self) -> int:
        return int(np.unique(self.roots()).size)


class ParallelDisjointSet:
    """Array-based union–find with batched edge unions (GPU-style).

    The batched :meth:`union_edges` implements the hook-and-jump iteration
    used by GPU connected-component/union-find kernels (and by FDBSCAN's
    ArborX implementation): every edge repeatedly hooks the larger root onto
    the smaller one, then all parent pointers are compressed by pointer
    jumping, until no edge spans two different sets.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.intp)
        #: number of elementary union (hook) operations performed.
        self.num_unions = 0
        #: number of atomic operations (used when attaching border points).
        self.num_atomics = 0

    def __len__(self) -> int:
        return int(self.parent.shape[0])

    # ------------------------------------------------------------------ #
    def find_many(self, idx: np.ndarray) -> np.ndarray:
        """Representatives for an array of elements (no mutation)."""
        idx = np.asarray(idx, dtype=np.intp)
        roots = self.parent[idx]
        while True:
            nxt = self.parent[roots]
            if np.array_equal(nxt, roots):
                return roots
            roots = nxt

    def find(self, x: int) -> int:
        return int(self.find_many(np.asarray([x]))[0])

    def compress(self) -> None:
        """Pointer-jump every element until the forest is flat."""
        while True:
            nxt = self.parent[self.parent]
            if np.array_equal(nxt, self.parent):
                return
            self.parent = nxt

    # ------------------------------------------------------------------ #
    def union_edges(self, a: np.ndarray, b: np.ndarray) -> int:
        """Union the endpoint sets of every edge ``(a[i], b[i])``.

        Returns the number of hook operations performed (also accumulated in
        :attr:`num_unions`).  The iteration count is O(log n) in practice.
        """
        a = np.asarray(a, dtype=np.intp)
        b = np.asarray(b, dtype=np.intp)
        if a.shape != b.shape:
            raise ValueError("edge endpoint arrays must have the same shape")
        hooks = 0
        if a.size == 0:
            return hooks
        nk = native_dispatch.kernels()
        if nk is not None and self.parent.flags.c_contiguous:
            # The C kernel runs the identical freeze-roots / min-hook /
            # compress rounds, so the hook count (and therefore the charged
            # union_ops) matches the numpy iteration exactly.
            native_hooks = nk.uf_union_edges(self.parent, a.ravel(), b.ravel())
            if native_hooks is not None:
                self.num_unions += native_hooks
                return native_hooks
        while True:
            ra = self.find_many(a)
            rb = self.find_many(b)
            diff = ra != rb
            if not diff.any():
                break
            hi = np.maximum(ra[diff], rb[diff])
            lo = np.minimum(ra[diff], rb[diff])
            # Hook the larger root onto the smaller one; np.minimum.at makes
            # concurrent hooks onto the same root deterministic.
            np.minimum.at(self.parent, hi, lo)
            hooks += int(diff.sum())
            self.compress()
        self.num_unions += hooks
        return hooks

    def attach(self, children: np.ndarray, parents: np.ndarray) -> int:
        """Atomically attach each child to its parent's set (border points).

        Children are expected to be singleton sets (unclassified points); if a
        child appears several times only one attachment wins, mirroring the
        critical section of Algorithm 3 line 13–14.  Returns the number of
        atomic attachments performed.
        """
        children = np.asarray(children, dtype=np.intp)
        parents = np.asarray(parents, dtype=np.intp)
        if children.shape != parents.shape:
            raise ValueError("children and parents must have the same shape")
        if children.size == 0:
            return 0
        # Keep the first occurrence of each child (deterministic winner).
        uniq, first = np.unique(children, return_index=True)
        winners = parents[first]
        roots = self.find_many(winners)
        self.parent[uniq] = roots
        self.num_atomics += int(uniq.size)
        return int(uniq.size)

    def grow(self, n: int) -> None:
        """Extend the forest to ``n`` elements; new elements are singletons.

        Existing set structure is preserved.  Used by the streaming engine
        when the scene's slot capacity grows.
        """
        old = len(self)
        if n < old:
            raise ValueError(f"cannot shrink forest from {old} to {n}")
        if n > old:
            self.parent = np.concatenate([self.parent, np.arange(old, n, dtype=np.intp)])

    def roots(self) -> np.ndarray:
        """Fully compressed representative of every element."""
        self.compress()
        return self.parent.copy()

    def num_sets(self) -> int:
        return int(np.unique(self.roots()).size)
