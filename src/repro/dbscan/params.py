"""Shared DBSCAN parameter and result types.

Conventions
-----------
All DBSCAN implementations in this package use the same definitions so their
outputs are directly comparable:

* the ε-neighbourhood of a point **excludes the point itself**, matching the
  ``q != s`` filter in the paper's Algorithm 2;
* a point is a **core point** when it has at least ``min_pts`` neighbours
  within ε (under the convention above);
* a **border point** is a non-core point within ε of at least one core point;
* every other point is **noise** and is labelled ``-1``;
* cluster labels are consecutive integers starting at 0, numbered by the
  smallest point index contained in each cluster (deterministic across runs).

Border points reachable from several clusters may legitimately be assigned to
any one of them (the paper's "critical section" in Algorithm 3 exists exactly
because of this race); the agreement metrics in :mod:`repro.metrics` treat
such assignments as equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..perf.timing import ExecutionReport

__all__ = ["DBSCANParams", "DBSCANResult", "UNCLASSIFIED", "NOISE"]

#: Internal label for points not yet assigned to any cluster.
UNCLASSIFIED = -2
#: Label of noise points in the output.
NOISE = -1


@dataclass(frozen=True)
class DBSCANParams:
    """The two DBSCAN parameters, validated."""

    eps: float
    min_pts: int

    def __post_init__(self) -> None:
        if not np.isfinite(self.eps) or self.eps <= 0:
            raise ValueError(f"eps must be a positive finite number, got {self.eps}")
        if int(self.min_pts) != self.min_pts or self.min_pts < 1:
            raise ValueError(f"min_pts must be a positive integer, got {self.min_pts}")
        object.__setattr__(self, "min_pts", int(self.min_pts))


@dataclass
class DBSCANResult:
    """Output of one DBSCAN run.

    Attributes
    ----------
    labels:
        ``(n,)`` integer labels; ``-1`` marks noise.
    core_mask:
        ``(n,)`` boolean array marking core points.
    params:
        The ε / minPts used.
    report:
        Per-phase timing and operation counts (None for reference
        implementations that are not instrumented).
    neighbor_counts:
        Optional per-point ε-neighbour counts (saved so :meth:`refit` can
        relabel with a different ``min_pts`` while skipping stage 1, per
        Section VI-B).
    points:
        Optional copy of the clustered points (lifted to 3D), kept alongside
        ``neighbor_counts`` so :meth:`refit` can recompute stage 2.
    """

    labels: np.ndarray
    core_mask: np.ndarray
    params: DBSCANParams
    algorithm: str = "dbscan"
    report: ExecutionReport | None = None
    neighbor_counts: np.ndarray | None = None
    points: np.ndarray | None = None
    extra: dict = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return int(self.labels.shape[0])

    @property
    def num_clusters(self) -> int:
        unique = np.unique(self.labels)
        return int((unique >= 0).sum())

    @property
    def noise_mask(self) -> np.ndarray:
        return self.labels == NOISE

    @property
    def num_noise(self) -> int:
        return int(self.noise_mask.sum())

    @property
    def border_mask(self) -> np.ndarray:
        return (~self.core_mask) & (~self.noise_mask)

    def cluster_sizes(self) -> np.ndarray:
        """Sizes of the clusters, indexed by cluster label."""
        if self.num_clusters == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels[self.labels >= 0], minlength=self.num_clusters)

    def refit(self, min_pts: int) -> "DBSCANResult":
        """Relabel with a different ``min_pts``, skipping stage 1 entirely.

        This is the Section VI-B shortcut: the stored per-point neighbour
        counts already determine the new core set, so only cluster formation
        (stage 2) runs again — no second core-identification launch.  The
        ε-adjacency is recomputed host-side with the KD-tree backend as a
        CSR launch and consumed directly by the same union–find formation
        pass every backend uses (no pair arrays are materialised), so the
        result is bit-identical to a fresh ``RTDBSCAN(eps, min_pts).fit``.

        Requires ``neighbor_counts`` and ``points`` (kept by default via
        ``keep_neighbor_counts=True``).
        """
        if self.neighbor_counts is None:
            raise ValueError(
                "refit requires stored neighbor_counts; "
                "run with keep_neighbor_counts=True"
            )
        if self.points is None:
            raise ValueError("refit requires the result to carry its points")
        params = DBSCANParams(eps=self.params.eps, min_pts=min_pts)
        core_mask = self.neighbor_counts >= params.min_pts

        from ..neighbors.backend import KDTreeNeighborBackend
        from .formation import form_clusters_csr

        backend = KDTreeNeighborBackend(self.points, params.eps)
        try:
            indptr, indices, _ = backend.neighbor_csr()
        finally:
            backend.release()
        formation = form_clusters_csr(indptr, indices, core_mask)
        return DBSCANResult(
            labels=formation.labels,
            core_mask=core_mask,
            params=params,
            algorithm=self.algorithm,
            report=None,
            neighbor_counts=self.neighbor_counts,
            points=self.points,
            extra={"refit_from_min_pts": self.params.min_pts},
        )

    def summary(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "num_points": self.num_points,
            "num_clusters": self.num_clusters,
            "num_core": int(self.core_mask.sum()),
            "num_border": int(self.border_mask.sum()),
            "num_noise": self.num_noise,
            "eps": self.params.eps,
            "min_pts": self.params.min_pts,
        }
        if self.report is not None:
            out["simulated_seconds"] = self.report.total_simulated_seconds
            out["wall_seconds"] = self.report.total_wall_seconds
        return out


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber cluster labels so clusters are ordered by smallest member index.

    Noise (``-1``) is preserved.  Used by every implementation so that two
    algorithms producing the same partition emit identical label arrays.
    """
    labels = np.asarray(labels)
    out = np.full(labels.shape, NOISE, dtype=np.int64)
    seen: dict[int, int] = {}
    next_id = 0
    clustered = np.flatnonzero(labels >= 0)
    for idx in clustered:
        lab = int(labels[idx])
        if lab not in seen:
            seen[lab] = next_id
            next_id += 1
    for old, new in seen.items():
        out[labels == old] = new
    return out
