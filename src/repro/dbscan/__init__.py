"""DBSCAN implementations and shared clustering machinery.

``RTDBSCAN`` is the paper's contribution (Algorithm 3) on the simulated RT
device; ``classic_dbscan`` is the sequential Ester et al. oracle; the
disjoint-set forests and label helpers are shared with the GPU baselines in
:mod:`repro.baselines`.
"""

from .classic import classic_dbscan
from .disjoint_set import DisjointSet, ParallelDisjointSet
from .labels import PointClass, classify_points, labels_from_roots
from .params import NOISE, UNCLASSIFIED, DBSCANParams, DBSCANResult, canonicalize_labels
from .rt_dbscan import RTDBSCAN, rt_dbscan

__all__ = [
    "classic_dbscan",
    "DisjointSet",
    "ParallelDisjointSet",
    "PointClass",
    "classify_points",
    "labels_from_roots",
    "NOISE",
    "UNCLASSIFIED",
    "DBSCANParams",
    "DBSCANResult",
    "canonicalize_labels",
    "RTDBSCAN",
    "rt_dbscan",
]
