"""DBSCAN implementations and shared clustering machinery.

``RTDBSCAN`` is the paper's contribution (Algorithm 3) on the simulated RT
device — with pluggable neighbour backends — ``classic_dbscan`` is the
sequential Ester et al. oracle (wrapped by ``ClassicDBSCAN`` for the
estimator API); the disjoint-set forests, the stage-2 formation pass and the
label helpers are shared with the GPU baselines in :mod:`repro.baselines`.
"""

from .classic import ClassicDBSCAN, classic_dbscan
from .disjoint_set import DisjointSet, ParallelDisjointSet
from .formation import FormationResult, form_clusters, form_clusters_csr
from .labels import PointClass, classify_points, labels_from_roots
from .params import NOISE, UNCLASSIFIED, DBSCANParams, DBSCANResult, canonicalize_labels
from .rt_dbscan import RTDBSCAN, rt_dbscan

__all__ = [
    "ClassicDBSCAN",
    "classic_dbscan",
    "DisjointSet",
    "ParallelDisjointSet",
    "FormationResult",
    "form_clusters",
    "form_clusters_csr",
    "PointClass",
    "classify_points",
    "labels_from_roots",
    "NOISE",
    "UNCLASSIFIED",
    "DBSCANParams",
    "DBSCANResult",
    "canonicalize_labels",
    "RTDBSCAN",
    "rt_dbscan",
]
